(* Benchmark and reproduction harness.

   Three jobs:

   1. Regenerate every experimental artefact of the paper (DESIGN.md's
      experiment index): the three Figure-1 panels, the headline
      reduction percentages, and the ablations A1-A4.  The series are
      printed so the output can be diffed against EXPERIMENTS.md.

   2. Register one Bechamel timing benchmark per experiment, so the
      cost of the planner itself is tracked.

   3. Emit a machine-readable artefact, BENCH_nocplan.json by default:
      per-experiment wall time, the Figure-1 sweep timing against the
      recorded seed baseline, and every Figure-1 makespan series.

   Flags: [--smoke] runs only the Figure-1 sweeps and writes the JSON
   (CI-sized); [--json PATH] redirects the artefact. *)

module Itc02 = Nocplan_itc02
module Noc = Nocplan_noc
module Proc = Nocplan_proc
module Core = Nocplan_core
open Core

let section title =
  Fmt.pr "@.=== %s ===@.@." title

(* Wall time of each experiment, for the JSON artefact. *)
let experiment_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  experiment_times := (name, Unix.gettimeofday () -. t0) :: !experiment_times;
  r

(* ------------------------------------------------------------------ *)
(* A2: NoC characterization (paper flow, step 1)                      *)

let noc_characterization () =
  section "A2: NoC characterization (flit-level simulator)";
  let topology = Noc.Topology.make ~width:5 ~height:5 in
  let latency = Noc.Latency.hermes_like in
  let config = Noc.Flit_sim.config topology latency in
  let timing = Noc.Characterize.measure_timing config in
  Fmt.pr "true parameters:     %a@." Noc.Latency.pp latency;
  Fmt.pr "measured on the sim: %a@." Noc.Characterize.pp_timing timing;
  let power =
    Noc.Characterize.measure_power config (Noc.Traffic.spec ~packets:400 ())
  in
  Fmt.pr "mean stream power (random size/payload packets): %a@." Noc.Power.pp
    power

(* ------------------------------------------------------------------ *)
(* A3: processor characterization (paper flow, step 2)                *)

let processor_characterization () =
  section "A3: processor test-application characterization (ISS)";
  List.iter
    (fun p -> Fmt.pr "%a@.@." Proc.Processor.pp p)
    [ Proc.Processor.leon ~id:1; Proc.Processor.plasma ~id:1 ];
  Fmt.pr
    "paper's assumption: \"the processor takes 10 clock cycles to generate a \
     test pattern\" — measured Leon BIST: %d cycles/pattern@."
    (Proc.Processor.generation_overhead (Proc.Processor.leon ~id:1)
       Proc.Processor.Bist)

(* ------------------------------------------------------------------ *)
(* F1a-F1c: Figure 1                                                  *)

let figure1_panel name system =
  section (Printf.sprintf "F1: Figure 1 panel — %s" name);
  let unconstrained = Planner.reuse_sweep system in
  let constrained =
    Planner.reuse_sweep ~power_limit_pct:Experiments.binding_power_pct system
  in
  Fmt.pr "power limit for the constrained series: %.0f%% of total core power@."
    Experiments.binding_power_pct;
  print_string (Report.figure1_table ~unconstrained ~constrained);
  Fmt.pr "@.";
  print_string
    (Report.ascii_chart
       [ ("no power limit", unconstrained);
         ( Printf.sprintf "power %.0f%%" Experiments.binding_power_pct,
           constrained ) ]);
  (unconstrained, constrained)

(* ------------------------------------------------------------------ *)
(* T1: headline reductions                                            *)

let headline_table results =
  section "T1: headline test-time reductions (paper: d695 28%, p93791 44%, 37% under power)";
  List.iter
    (fun (name, (unconstrained, constrained)) ->
      let free = Report.headline unconstrained in
      let limited = Report.headline constrained in
      Fmt.pr "%-14s unconstrained: %5.1f%% (reuse %d)   power-limited: %5.1f%% (reuse %d)@."
        name free.Report.reduction_pct free.Report.best_reuse
        limited.Report.reduction_pct limited.Report.best_reuse)
    results

(* ------------------------------------------------------------------ *)
(* A1: greedy anomaly vs look-ahead                                   *)

let monotonicity_violations (s : Planner.sweep) =
  let rec go = function
    | (a : Planner.point) :: (b :: _ as rest) ->
        (if b.Planner.makespan > a.Planner.makespan then 1 else 0) + go rest
    | [ _ ] | [] -> 0
  in
  go s.Planner.points

let greedy_vs_lookahead () =
  section "A1: greedy anomaly on p22810_leon (paper section 3) vs look-ahead";
  let system = Experiments.p22810_leon () in
  let greedy = Planner.reuse_sweep system in
  let lookahead = Planner.reuse_sweep ~policy:Scheduler.Lookahead system in
  print_string
    (Report.comparison_table ~label_a:"greedy (paper)" ~label_b:"lookahead"
       greedy lookahead);
  Fmt.pr "monotonicity violations: greedy %d, lookahead %d@."
    (monotonicity_violations greedy)
    (monotonicity_violations lookahead)

(* ------------------------------------------------------------------ *)
(* A4: power-limit sensitivity                                        *)

let power_sensitivity () =
  section "A4: power-limit sensitivity (d695_leon, full reuse)";
  let system = Experiments.d695_leon () in
  let points =
    Planner.power_sweep ~reuse:6
      ~pcts:[ 100.0; 50.0; 40.0; 30.0; 25.0; 20.0 ]
      system
  in
  Fmt.pr "%-10s %-12s %-12s@." "limit %" "makespan" "peak power";
  List.iter
    (fun (pct, (p : Planner.point)) ->
      Fmt.pr "%-10.0f %-12d %-12.1f@." pct p.Planner.makespan
        p.Planner.peak_power)
    points

(* ------------------------------------------------------------------ *)
(* A5: number of external interfaces                                  *)

let io_port_sensitivity () =
  section "A5: external interface count (d695_leon, 1..4 port pairs)";
  Fmt.pr "%-8s %-12s %-12s %-10s@." "ports" "baseline" "best" "reduction";
  List.iter
    (fun ports ->
      let system = Experiments.d695_leon_with_io ~ports in
      let h = Report.headline (Planner.reuse_sweep system) in
      Fmt.pr "%-8d %-12d %-12d %-10.1f@." ports h.Report.baseline
        h.Report.best_makespan h.Report.reduction_pct)
    [ 1; 2; 3; 4 ];
  Fmt.pr
    "@.more external pins shrink the baseline, so the relative value of \
     processor reuse drops — the pin-cost economics the paper argues.@."

(* ------------------------------------------------------------------ *)
(* A6: processor placement                                            *)

let placement_sensitivity () =
  section "A6: processor placement (d695_leon arrangements)";
  Fmt.pr "%-10s %-12s %-12s %-10s@." "placement" "baseline" "best" "reduction";
  List.iter
    (fun a ->
      let system = Experiments.d695_leon_arranged a in
      let h = Report.headline (Planner.reuse_sweep system) in
      Fmt.pr "%-10s %-12d %-12d %-10.1f@."
        (Experiments.arrangement_name a)
        h.Report.baseline h.Report.best_makespan h.Report.reduction_pct)
    [ Experiments.Spread; Experiments.Corners; Experiments.Center ]

(* ------------------------------------------------------------------ *)
(* A7: greedy optimality gap on small instances                       *)

let optimality_gap () =
  section "A7: greedy vs certified optimum (branch and bound, small systems)";
  let small n_procs =
    let soc =
      Nocplan_itc02.Soc.make ~name:(Printf.sprintf "small%d" n_procs)
        ~modules:
          [
            Nocplan_itc02.Module_def.make ~id:1 ~name:"a" ~inputs:8 ~outputs:8
              ~scan_chains:[ 16; 16 ] ~patterns:10 ();
            Nocplan_itc02.Module_def.make ~id:2 ~name:"b" ~inputs:16
              ~outputs:4 ~scan_chains:[] ~patterns:25 ();
            Nocplan_itc02.Module_def.make ~id:3 ~name:"c" ~inputs:10
              ~outputs:40 ~scan_chains:[ 100; 90; 80 ] ~patterns:60 ();
            Nocplan_itc02.Module_def.make ~id:4 ~name:"d" ~inputs:20
              ~outputs:20 ~scan_chains:[ 40; 40 ] ~patterns:30 ();
          ]
    in
    System.build ~soc
      ~topology:(Noc.Topology.make ~width:3 ~height:3)
      ~processors:(List.init n_procs (fun _ -> Proc.Processor.leon ~id:1))
      ~io_inputs:[ Noc.Coord.make ~x:0 ~y:0 ]
      ~io_outputs:[ Noc.Coord.make ~x:2 ~y:2 ]
      ()
  in
  Fmt.pr "%-8s %-10s %-10s %-8s %-8s@." "procs" "greedy" "optimal" "gap%"
    "nodes";
  List.iter
    (fun n ->
      let system = small n in
      let greedy =
        (Scheduler.run system (Scheduler.config ~reuse:n ())).Schedule.makespan
      in
      let r = Exhaustive.schedule ~reuse:n system in
      Fmt.pr "%-8d %-10d %-10d %-8.2f %-8d%s@." n greedy
        r.Exhaustive.schedule.Schedule.makespan
        (100.0
        *. (1.0
           -. float_of_int r.Exhaustive.schedule.Schedule.makespan
              /. float_of_int greedy))
        r.Exhaustive.nodes
        (if r.Exhaustive.exact then "" else " (budget hit)"))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* A8: cost model vs flit-level simulation                            *)

let model_validation () =
  section "A8: analytic cost model vs flit-level replay (downscaled d695_leon)";
  let system =
    Schedule_sim.downscale ~max_patterns:20 (Experiments.d695_leon ())
  in
  List.iter
    (fun reuse ->
      let sched = Planner.schedule ~reuse system in
      let r = Schedule_sim.replay system sched in
      Fmt.pr "reuse %d: worst slack %d cycles, max sim/analytic ratio %.3f@."
        reuse r.Schedule_sim.worst_slack r.Schedule_sim.max_ratio)
    [ 0; 3; 6 ]

(* ------------------------------------------------------------------ *)
(* A9: preemption                                                     *)

let preemption () =
  section "A9: preemptive scheduling (session splitting, d695_leon, full reuse)";
  let system = Experiments.d695_leon () in
  Fmt.pr "%-20s %-14s %-14s@." "max sessions" "no power limit"
    (Printf.sprintf "power %.0f%%" Experiments.binding_power_pct);
  let limit =
    Some (System.power_limit_of_pct system ~pct:Experiments.binding_power_pct)
  in
  List.iter
    (fun max_sessions ->
      let free =
        Preemptive.schedule system
          (Preemptive.config ~max_sessions ~reuse:6 ())
      in
      let limited =
        Preemptive.schedule system
          (Preemptive.config ~power_limit:limit ~max_sessions ~reuse:6 ())
      in
      Fmt.pr "%-20d %-14d %-14d@." max_sessions free.Preemptive.makespan
        limited.Preemptive.makespan)
    [ 1; 2; 3; 5 ];
  Fmt.pr
    "@.splitting does not pay here: every session re-pays setup, path fill \
     and drain, and the fixed chunking fragments the resource timeline — \
     evidence for the paper's non-preemptive choice under this cost model.@."

(* ------------------------------------------------------------------ *)
(* A10: flit width (TAM width)                                        *)

let flit_width_sweep () =
  section "A10: NoC flit width as TAM width (d695_leon)";
  Fmt.pr "%-8s %-12s %-12s %-10s@." "flits" "baseline" "best" "reduction";
  List.iter
    (fun width ->
      let system = Experiments.d695_leon_flit ~width in
      let h = Report.headline (Planner.reuse_sweep system) in
      Fmt.pr "%-8d %-12d %-12d %-10.1f@." width h.Report.baseline
        h.Report.best_makespan h.Report.reduction_pct)
    [ 8; 16; 32; 64 ];
  Fmt.pr
    "@.wider flits shorten every wrapper chain (the classic ITC'02 \
     TAM-width curve); the relative reuse gain is stable across widths.@."

(* ------------------------------------------------------------------ *)
(* A11: link failures                                                 *)

let fault_sweep () =
  section "A11: planning around failed NoC channels (d695_leon, full reuse)";
  Fmt.pr "%-10s %-12s %-12s@." "failures" "makespan" "vs fault-free";
  let fault_free =
    (Planner.schedule ~reuse:6 (Experiments.d695_leon ())).Schedule.makespan
  in
  List.iter
    (fun failures ->
      let system = Experiments.d695_leon_faulty ~failures ~seed:0xFA17L in
      match Planner.schedule ~reuse:6 system with
      | sched ->
          Fmt.pr "%-10d %-12d %+.1f%%@." failures sched.Schedule.makespan
            (100.0
            *. (float_of_int sched.Schedule.makespan
                /. float_of_int fault_free
               -. 1.0))
      | exception Scheduler.Unschedulable _ ->
          Fmt.pr "%-10d %-12s (a core is unreachable under XY routing)@."
            failures "infeasible")
    [ 0; 1; 2; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* A15: processor reuse across the whole ITC'02 corpus               *)

let corpus_sweep () =
  section "A15: reuse gains across the full ITC'02 corpus (4 Leons each)";
  Fmt.pr "%-10s %-8s %-12s %-12s %-10s@." "benchmark" "modules" "baseline"
    "best" "reduction";
  List.iter
    (fun soc ->
      let modules = Itc02.Soc.module_count soc + 4 in
      let side = int_of_float (ceil (sqrt (float_of_int modules))) in
      let topology = Noc.Topology.make ~width:side ~height:side in
      let system =
        System.build ~soc ~topology
          ~processors:(List.init 4 (fun _ -> Proc.Processor.leon ~id:1))
          ~io_inputs:[ Noc.Coord.make ~x:0 ~y:0 ]
          ~io_outputs:[ Noc.Coord.make ~x:(side - 1) ~y:(side - 1) ]
          ()
      in
      let h = Report.headline (Planner.reuse_sweep system) in
      Fmt.pr "%-10s %-8d %-12d %-12d %-10.1f@." soc.Itc02.Soc.name
        (Itc02.Soc.module_count soc)
        h.Report.baseline h.Report.best_makespan h.Report.reduction_pct)
    (Itc02.Benchmarks.all ())

(* ------------------------------------------------------------------ *)
(* A19: fault coverage of the software BIST patterns                  *)

let coverage_curve () =
  section "A19: stuck-at coverage growth of the software BIST LFSR";
  let cut = Proc.Coverage.cut ~seed:3L ~inputs:64 ~outputs:32 in
  let patterns =
    Proc.Coverage.lfsr_patterns ~seed:0xACE1 ~inputs:64 ~count:128
  in
  let curve = Proc.Coverage.run cut ~patterns in
  Fmt.pr "%-10s %-10s@." "patterns" "coverage";
  List.iteri
    (fun i detected ->
      let n = i + 1 in
      if List.mem n [ 1; 2; 4; 8; 16; 32; 64; 128 ] then
        Fmt.pr "%-10d %.3f@." n
          (float_of_int detected /. float_of_int curve.Proc.Coverage.total_faults))
    curve.Proc.Coverage.detected;
  Fmt.pr
    "@.the classical pseudo-random curve: most faults fall in the first \
     dozen patterns, a resistant tail saturates — grounding the hundreds of \
     patterns the benchmark cores specify.@."

(* ------------------------------------------------------------------ *)
(* A18: energy under power limits                                     *)

let energy_tradeoff () =
  section "A18: time/peak-power/energy trade-off (d695_leon, full reuse)";
  let system = Experiments.d695_leon () in
  Fmt.pr "%-10s %-12s %-12s %-14s %-14s@." "limit %" "makespan" "peak power"
    "total energy" "avg power";
  List.iter
    (fun pct ->
      let sched = Planner.schedule ~power_limit_pct:pct ~reuse:6 system in
      let m = Metrics.of_schedule system ~reuse:6 sched in
      Fmt.pr "%-10.0f %-12d %-12.1f %-14.3e %-14.1f@." pct
        m.Metrics.makespan m.Metrics.peak_power m.Metrics.total_energy
        m.Metrics.average_power)
    [ 100.0; 30.0; 25.0; 20.0 ];
  Fmt.pr
    "@.tight limits stretch the schedule and cap the peak, while the energy \
     (the work to be done) stays essentially constant — power limiting is a \
     scheduling, not an energy, lever.@."

(* ------------------------------------------------------------------ *)
(* A17: assumed vs measured test-data compression                     *)

let compression_measurement () =
  section
    "A17: decompression memory — assumed run-length vs measured on \
     synthesized ATPG-like data (d695)";
  let system = Experiments.d695_leon () in
  Fmt.pr "%-10s %-12s %-12s %-10s@." "core" "estimate" "measured" "ratio";
  List.iter
    (fun (m : Itc02.Module_def.t) ->
      let id = m.Itc02.Module_def.id in
      if not (System.is_processor_module system id) then begin
        let estimate = Test_access.decompression_footprint system ~module_id:id in
        let measured =
          Test_access.decompression_footprint_measured system ~module_id:id
        in
        Fmt.pr "%-10s %-12d %-12d %-10.2f@." m.Itc02.Module_def.name estimate
          measured
          (float_of_int estimate /. float_of_int measured)
      end)
    system.System.soc.Itc02.Soc.modules;
  (* On the big benchmark the difference decides which cores a
     small-memory processor can serve at all. *)
  let big = Experiments.p93791_leon () in
  let cuts =
    List.filter
      (fun (m : Itc02.Module_def.t) ->
        not (System.is_processor_module big m.Itc02.Module_def.id))
      big.System.soc.Itc02.Soc.modules
  in
  let count f =
    List.length
      (List.filter
         (fun (m : Itc02.Module_def.t) -> f m.Itc02.Module_def.id <= 8_192)
         cuts)
  in
  Fmt.pr
    "@.p93791 cores fitting Plasma's 8k-word memory: %d of %d by the \
     estimate, %d of %d measured — the conservative estimate under-uses \
     small-memory processors.@."
    (count (fun id -> Test_access.decompression_footprint big ~module_id:id))
    (List.length cuts)
    (count (fun id ->
         Test_access.decompression_footprint_measured big ~module_id:id))
    (List.length cuts)

(* ------------------------------------------------------------------ *)
(* A16: adaptive re-planning after a mid-session fault                *)

let replanning () =
  section "A16: adaptive re-planning after a mid-session channel failure";
  let system = Experiments.d695_leon () in
  let sched = Planner.schedule ~reuse:6 system in
  let failed =
    [
      Noc.Link.channel (Noc.Coord.make ~x:1 ~y:0) (Noc.Coord.make ~x:2 ~y:0);
      Noc.Link.channel (Noc.Coord.make ~x:2 ~y:1) (Noc.Coord.make ~x:2 ~y:0);
    ]
  in
  Fmt.pr "fault-free makespan: %d@." sched.Schedule.makespan;
  Fmt.pr "%-12s %-8s %-8s %-12s %-10s@." "event at" "kept" "voided"
    "new makespan" "penalty";
  List.iter
    (fun pct ->
      let at = sched.Schedule.makespan * pct / 100 in
      match Replan.after_fault ~reuse:6 ~at ~failed system sched with
      | r ->
          Fmt.pr "%-12d %-8d %-8d %-12d %+.1f%%@." at
            (List.length r.Replan.kept)
            (List.length r.Replan.voided)
            r.Replan.makespan
            (100.0
            *. (float_of_int r.Replan.makespan
                /. float_of_int sched.Schedule.makespan
               -. 1.0))
      | exception Scheduler.Unschedulable _ ->
          Fmt.pr "%-12d %-8s (remaining cores unreachable)@." at "-")
    [ 10; 30; 50; 70; 90 ]

(* ------------------------------------------------------------------ *)
(* A14: mesh vs torus                                                 *)

let mesh_vs_torus () =
  section "A14: mesh vs torus topology (same placements, wraparound channels)";
  Fmt.pr "%-14s %-22s %-22s@." "system" "mesh base/best" "torus base/best";
  List.iter
    (fun (name, system) ->
      let torus = Experiments.torus_variant system in
      let h_mesh = Report.headline (Planner.reuse_sweep system) in
      let h_torus = Report.headline (Planner.reuse_sweep torus) in
      Fmt.pr "%-14s %9d /%9d  %9d /%9d@." name h_mesh.Report.baseline
        h_mesh.Report.best_makespan h_torus.Report.baseline
        h_torus.Report.best_makespan)
    [
      ("d695_leon", Experiments.d695_leon ());
      ("p93791_leon", Experiments.p93791_leon ());
    ];
  Fmt.pr
    "@.wraparound channels shorten path fills and spread conflicts; gains \
     are modest because the per-pattern cadence, not the fill, dominates.@."

(* ------------------------------------------------------------------ *)
(* A13: NoC vs shared-bus test access (the paper's motivation)        *)

let bus_vs_noc () =
  section "A13: NoC vs shared-bus test access (related-work architectures)";
  Fmt.pr "%-14s %-12s %-14s %-14s %-8s@." "system" "bus (ext)" "bus (proc src)"
    "NoC (reuse)" "speedup";
  List.iter
    (fun (name, system) ->
      let reuse = List.length system.System.processors in
      let bus_ext = Bus_baseline.plan system in
      let bus_proc = Bus_baseline.plan ~use_processor_sources:true system in
      let noc = (Planner.schedule ~reuse system).Schedule.makespan in
      Fmt.pr "%-14s %-12d %-14d %-14d %-8.2f@." name
        bus_ext.Bus_baseline.makespan bus_proc.Bus_baseline.makespan noc
        (Bus_baseline.speedup system ~noc_makespan:noc bus_ext);
      ignore bus_proc)
    [
      ("d695_leon", Experiments.d695_leon ());
      ("p22810_leon", Experiments.p22810_leon ());
      ("p93791_leon", Experiments.p93791_leon ());
    ];
  Fmt.pr
    "@.on a bus, tests serialize and processor reuse buys nothing — the \
     spatial concurrency of the NoC is what the paper's method exploits.@."

(* ------------------------------------------------------------------ *)
(* A12: simulated annealing over test orders                          *)

type anneal_row = {
  an_system : string;
  an_greedy : int;
  an_lookahead : int;
  an_annealed : int;
  an_evaluations : int;
  an_seconds : float;
}

(* Filled by [annealing] for the JSON artefact (and the regression
   gate: seconds within tolerance, makespans equal-or-better). *)
let anneal_rows : anneal_row list ref = ref []

let annealing () =
  section "A12: scheduler quality ladder (greedy / lookahead / annealed / optimal*)";
  Fmt.pr "%-14s %-12s %-12s %-12s %-8s %-10s@." "system" "greedy" "lookahead"
    "annealed" "evals" "seconds";
  anneal_rows :=
    List.map
      (fun (name, system) ->
        let reuse = List.length system.System.processors in
        (* One access table per system, shared by all three ladder
           rungs (as every search user does via [?access]), so the
           timed annealing column measures the search itself. *)
        let access = Test_access.table system in
        let greedy =
          (Scheduler.run ~access system (Scheduler.config ~reuse ()))
            .Schedule.makespan
        in
        let lookahead =
          (Scheduler.run ~access system
             (Scheduler.config ~policy:Scheduler.Lookahead ~reuse ()))
            .Schedule.makespan
        in
        let t0 = Unix.gettimeofday () in
        let r = Annealing.schedule ~iterations:250 ~access ~reuse system in
        let seconds = Unix.gettimeofday () -. t0 in
        let annealed = r.Annealing.schedule.Schedule.makespan in
        Fmt.pr "%-14s %-12d %-12d %-12d %-8d %-10.4f@." name greedy lookahead
          annealed r.Annealing.evaluations seconds;
        {
          an_system = name;
          an_greedy = greedy;
          an_lookahead = lookahead;
          an_annealed = annealed;
          an_evaluations = r.Annealing.evaluations;
          an_seconds = seconds;
        })
      [
        ("d695_leon", Experiments.d695_leon ());
        ("p22810_leon", Experiments.p22810_leon ());
        ("p93791_leon", Experiments.p93791_leon ());
      ];
  Fmt.pr
    "@.(*) certified optima are only tractable on small fixtures — see A7.@."

(* ------------------------------------------------------------------ *)
(* backend: greedy vs binpack, solo and raced                          *)

type backend_row = {
  bk_system : string;
  bk_greedy : int;
  bk_binpack : int;
  bk_race : int;
  bk_winner : string;
  bk_binpack_valid : bool;
  bk_greedy_seconds : float;
  bk_binpack_seconds : float;
  bk_race_seconds : float;
}

(* Filled by [backend_race] for the JSON artefact and the gate: race
   must never return a worse test time than greedy alone (it includes
   greedy and ties break in its favour), and every binpack schedule
   must pass the independent validator. *)
let backend_rows : backend_row list ref = ref []

let backend_race systems =
  section "backend: greedy vs binpack vs race (test time and wall clock)";
  Fmt.pr "%-14s %-10s %-10s %-10s %-8s %-9s %-9s %-9s@." "system" "greedy"
    "binpack" "race" "winner" "greedy_s" "binpack_s" "race_s";
  backend_rows :=
    List.map
      (fun (name, system) ->
        let reuse = List.length system.System.processors in
        let access = Test_access.table system in
        let config = Scheduler.config ~reuse () in
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let greedy_sched, greedy_seconds =
          time (fun () -> Backend.solve Backend.greedy ~access system config)
        in
        let binpack_sched, binpack_seconds =
          time (fun () -> Backend.solve Backend.binpack ~access system config)
        in
        let binpack_valid =
          Schedule.validate ~access system ~application:config.application
            ~power_limit:config.power_limit ~reuse binpack_sched
          = Ok ()
        in
        let outcome, race_seconds =
          time (fun () ->
              Backend.race ~clock:Unix.gettimeofday ~access system config)
        in
        let row =
          {
            bk_system = name;
            bk_greedy = greedy_sched.Schedule.makespan;
            bk_binpack = binpack_sched.Schedule.makespan;
            bk_race = outcome.Backend.schedule.Schedule.makespan;
            bk_winner = outcome.Backend.winner;
            bk_binpack_valid = binpack_valid;
            bk_greedy_seconds = greedy_seconds;
            bk_binpack_seconds = binpack_seconds;
            bk_race_seconds = race_seconds;
          }
        in
        Fmt.pr "%-14s %-10d %-10d %-10d %-8s %-9.4f %-9.4f %-9.4f@." name
          row.bk_greedy row.bk_binpack row.bk_race row.bk_winner
          greedy_seconds binpack_seconds race_seconds;
        row)
      systems;
  Fmt.pr
    "@.race wall clock pays one extra domain per backend; its test time is \
     min over the valid results, so it can only match or beat greedy.@."

(* ------------------------------------------------------------------ *)
(* A20: joint order+placement annealing                                *)

type placement_row = {
  pl_system : string;
  pl_order_only : int;
  pl_joint : int;
  pl_placement_evals : int;
  pl_placement_accepted : int;
  pl_seconds : float;
}

(* Filled by [placement_annealing] for the JSON artefact and the gate
   (joint makespans are deterministic: equal-or-better, no tolerance). *)
let placement_rows : placement_row list ref = ref []

let placement_annealing () =
  section
    "anneal:placement — joint order+placement annealing (mesh vs torus, \
     same seed and budget)";
  Fmt.pr "%-18s %-12s %-12s %-10s %-10s@." "system" "order-only" "joint"
    "tile-swaps" "seconds";
  placement_rows :=
    List.map
      (fun (name, system) ->
        let reuse = List.length system.System.processors in
        let iterations = 150 and seed = 7L in
        let order_only =
          Annealing.schedule ~iterations ~seed ~chains:1 ~reuse system
        in
        let t0 = Unix.gettimeofday () in
        (* Chain 0 stays order-only, so the joint run is never worse
           than the order-only one under the same seed; the comparison
           isolates what the placement dimension itself buys. *)
        let joint =
          Annealing.schedule ~iterations ~seed ~chains:2
            ~exchange_period:(iterations + 1) ~placement_moves:0.3 ~reuse
            system
        in
        let seconds = Unix.gettimeofday () -. t0 in
        let oo = order_only.Annealing.schedule.Schedule.makespan in
        let jm = joint.Annealing.schedule.Schedule.makespan in
        Fmt.pr "%-18s %-12d %-12d %-10d %-10.4f@." name oo jm
          joint.Annealing.placement_accepted seconds;
        {
          pl_system = name;
          pl_order_only = oo;
          pl_joint = jm;
          pl_placement_evals = joint.Annealing.placement_evals;
          pl_placement_accepted = joint.Annealing.placement_accepted;
          pl_seconds = seconds;
        })
      [
        ("d695_leon", Experiments.d695_leon ());
        ("d695_leon_torus", Experiments.torus_variant (Experiments.d695_leon ()));
      ];
  Fmt.pr
    "@.on the torus the order-only walk mostly rearranges equal path \
     lengths; moving cores across the wraparound is where the remaining \
     test time lives.@."

(* ------------------------------------------------------------------ *)
(* Tracing overhead                                                    *)

module Obs = Nocplan_obs

(* The observability layer promises near-zero cost when disabled: with
   no collector installed every emitter reduces to one atomic load.
   Time the same reuse sweep with tracing off, under a Spans collector
   and under a Decisions collector.  The disabled number is the one
   the figure-1 regression gate pins; the other two quantify what
   [--trace] and [--explain] cost when actually requested. *)
let tracing_overhead systems =
  section "obs: tracing overhead on the d695_leon reuse sweep";
  let system = List.assoc "d695_leon" systems in
  let access = Test_access.table system in
  let time f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let sweep () = ignore (Planner.reuse_sweep ~access system) in
  let off = time sweep in
  let spans =
    time (fun () -> ignore (Obs.Trace.with_collector sweep))
  in
  let decisions =
    time (fun () ->
        ignore (Obs.Trace.with_collector ~level:Obs.Trace.Decisions sweep))
  in
  let pct v = 100.0 *. ((v /. off) -. 1.0) in
  Fmt.pr "disabled  %.4f s@." off;
  Fmt.pr "spans     %.4f s (%+.1f%%)@." spans (pct spans);
  Fmt.pr "decisions %.4f s (%+.1f%%)@." decisions (pct decisions)

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                    *)

let timing_benchmarks systems =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel timings (one Test per experiment)";
  let sweep_test name system =
    Test.make ~name (Staged.stage (fun () -> ignore (Planner.reuse_sweep system)))
  in
  let tests =
    List.map (fun (name, system) -> sweep_test ("fig1/" ^ name) system) systems
    @ [
        Test.make ~name:"ablation/greedy_vs_lookahead"
          (Staged.stage (fun () ->
               ignore
                 (Planner.reuse_sweep ~policy:Scheduler.Lookahead
                    (List.assoc "p22810_leon" systems))));
        Test.make ~name:"ablation/power_sweep"
          (Staged.stage (fun () ->
               ignore
                 (Planner.power_sweep ~reuse:6 ~pcts:[ 50.0; 25.0 ]
                    (List.assoc "d695_leon" systems))));
        Test.make ~name:"ablation/noc_characterization"
          (Staged.stage (fun () ->
               let topology = Noc.Topology.make ~width:5 ~height:5 in
               let config =
                 Noc.Flit_sim.config topology Noc.Latency.hermes_like
               in
               ignore (Noc.Characterize.measure_timing config)));
        Test.make ~name:"ablation/proc_characterization"
          (Staged.stage (fun () ->
               ignore
                 (Proc.Characterization.of_bist ~costs:Proc.Leon.costs
                    ~power:1.0 ())));
        Test.make ~name:"headline/baseline_d695"
          (Staged.stage (fun () ->
               ignore (Baseline.schedule (List.assoc "d695_leon" systems))));
      ]
  in
  let grouped = Test.make_grouped ~name:"nocplan" ~fmt:"%s %s" tests in
  let benchmark test =
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
    in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let raw = benchmark grouped in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                   ~predictors:[| Measure.run |])
      (Instance.monotonic_clock) raw
  in
  Fmt.pr "%-40s %16s@." "benchmark" "time/run";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
            else Printf.sprintf "%8.0f ns" est
          in
          Fmt.pr "%-40s %16s@." name pretty
      | Some _ | None -> Fmt.pr "%-40s %16s@." name "n/a")
    results

(* ------------------------------------------------------------------ *)
(* Serve: in-process load generation                                   *)

module Serve = Nocplan_serve

type load_result = {
  load_requests : int;
  load_clients : int;
  load_seconds : float;
  load_failures : int;  (* responses without "ok": true *)
  load_stats : Serve.Stats.snapshot;
}

(* Drive the planning service exactly as a socket client would — same
   protocol lines, concurrent clients — but in-process, so the numbers
   measure the service (queue, cache, workers), not connection setup.
   Requests cycle through the reuse counts of one system: after the
   first miss every request hits the access-table cache, which is the
   steady state of a long-running server. *)
let service_load ~requests ~clients =
  section
    (Printf.sprintf "serve: in-process load (%d requests, %d clients)"
       requests clients);
  let service = Serve.Service.create ~queue_capacity:(max 64 requests) () in
  let line i =
    Printf.sprintf
      "{\"id\": %d, \"op\": \"plan\", \"system\": \"d695_leon\", \"reuse\": %d}"
      i (i mod 7)
  in
  let failures = Atomic.make 0 in
  let ok_marker = "\"ok\": true" in
  let contains_ok resp =
    let n = String.length resp and m = String.length ok_marker in
    let rec at i = i + m <= n && (String.sub resp i m = ok_marker || at (i + 1)) in
    at 0
  in
  let worker (offset, count) =
    for k = 0 to count - 1 do
      let resp = Serve.Service.request service (line (offset + k)) in
      if not (contains_ok resp) then Atomic.incr failures
    done
  in
  let per_client = requests / clients and extra = requests mod clients in
  let slices =
    List.init clients (fun c ->
        ( (c * per_client) + min c extra,
          per_client + if c < extra then 1 else 0 ))
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.map (fun s -> Thread.create worker s) slices in
  List.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  let stats = Serve.Service.stats service in
  Serve.Service.shutdown service;
  Fmt.pr "served %d, failed %d, cache %d hits / %d misses in %.3f s \
          (%.1f req/s)@."
    stats.Serve.Stats.served stats.Serve.Stats.failed
    stats.Serve.Stats.cache_hits stats.Serve.Stats.cache_misses seconds
    (float_of_int requests /. seconds);
  (match stats.Serve.Stats.latency with
  | Some q ->
      Fmt.pr "latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms@."
        q.Serve.Stats.p50_ms q.Serve.Stats.p90_ms q.Serve.Stats.p99_ms
        q.Serve.Stats.max_ms
  | None -> ());
  {
    load_requests = requests;
    load_clients = clients;
    load_seconds = seconds;
    load_failures = Atomic.get failures;
    load_stats = stats;
  }

(* TCP stress: real sockets, one OS thread per client, every client
   holding its own live connection for the whole run (default 100
   concurrent connections) and doing synchronous request/response
   rounds, so each observes true per-request latency.  Unlike the
   in-process load above, the numbers include accept handling,
   per-connection server threads and line framing — the path an
   external tool actually hits. *)

type tcp_result = {
  tcp_requests : int;
  tcp_clients : int;
  tcp_seconds : float;
  tcp_failures : int;
  tcp_client_p50 : float array;  (* per-client latency quantiles, ms *)
  tcp_client_p99 : float array;
}

let tcp_request_line i =
  Printf.sprintf
    "{\"id\": %d, \"op\": \"plan\", \"system\": \"d695_leon\", \"reuse\": %d}"
    i (i mod 7)

(* Nearest-rank quantile on a sorted sample; 0 on an empty one (a
   client that got no requests when clients > requests). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let tcp_load ~requests ~clients =
  section
    (Printf.sprintf "serve: TCP stress (%d requests, %d concurrent connections)"
       requests clients);
  let service = Serve.Service.create ~queue_capacity:(max 64 requests) () in
  let listener = Serve.Server.listen_tcp service ~host:"127.0.0.1" ~port:0 in
  let port =
    match Serve.Server.port listener with Some p -> p | None -> assert false
  in
  let ok_marker = "\"ok\": true" in
  let contains_ok resp =
    let n = String.length resp and m = String.length ok_marker in
    let rec at i = i + m <= n && (String.sub resp i m = ok_marker || at (i + 1)) in
    at 0
  in
  let per_client = requests / clients and extra = requests mod clients in
  let failures = Atomic.make 0 in
  let p50 = Array.make clients 0.0 in
  let p99 = Array.make clients 0.0 in
  let client c =
    let count = per_client + if c < extra then 1 else 0 in
    let offset = (c * per_client) + min c extra in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let ic = Unix.in_channel_of_descr sock in
    let oc = Unix.out_channel_of_descr sock in
    let latencies = Array.make count 0.0 in
    for k = 0 to count - 1 do
      let t0 = Unix.gettimeofday () in
      output_string oc (tcp_request_line (offset + k));
      output_char oc '\n';
      flush oc;
      (match input_line ic with
      | resp -> if not (contains_ok resp) then Atomic.incr failures
      | exception End_of_file -> Atomic.incr failures);
      latencies.(k) <- (Unix.gettimeofday () -. t0) *. 1e3
    done;
    Unix.close sock;
    Array.sort compare latencies;
    p50.(c) <- percentile latencies 0.50;
    p99.(c) <- percentile latencies 0.99
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun c -> Thread.create client c) in
  List.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  Serve.Server.stop listener;
  Serve.Server.wait listener;
  Serve.Service.shutdown service;
  let worst a = Array.fold_left max 0.0 a in
  Fmt.pr "%d requests over %d connections in %.3f s (%.1f req/s), %d failed@."
    requests clients seconds
    (float_of_int requests /. seconds)
    (Atomic.get failures);
  Fmt.pr "per-client latency: worst p50 %.2f ms, worst p99 %.2f ms@."
    (worst p50) (worst p99);
  {
    tcp_requests = requests;
    tcp_clients = clients;
    tcp_seconds = seconds;
    tcp_failures = Atomic.get failures;
    tcp_client_p50 = p50;
    tcp_client_p99 = p99;
  }

(* Repeat traffic: many clients asking the identical question — the
   dashboard-refresh / CI-fanout shape the request path is built for.
   Run the same workload twice, with coalescing on and off, on
   otherwise identical services: the ratio is what admission-time
   coalescing (plus cross-request warm starts) buys. *)

type repeat_result = {
  rt_requests : int;
  rt_clients : int;
  rt_workers : int;
  rt_coalesced_seconds : float;
  rt_uncoalesced_seconds : float;
  rt_coalesced : int;  (* requests answered by another request's solve *)
  rt_warm_hits : int;
  rt_failures : int;
}

(* PR-5 recorded 18 req/s on this workload (every identical request
   solved from scratch); the rebuilt request path must hold >= 10x
   that, and coalescing must beat its own uncoalesced twin >= 5x. *)
let pr5_repeat_req_per_s = 18.0
let repeat_speedup_floor = 5.0
let repeat_req_per_s_floor = 10.0 *. pr5_repeat_req_per_s

let repeat_traffic ~requests ~clients =
  section
    (Printf.sprintf "serve: repeat traffic (%d identical requests, %d clients)"
       requests clients);
  let line =
    "{\"op\": \"anneal\", \"system\": \"d695_leon\", \"reuse\": 3, \
     \"iterations\": 250}"
  in
  let ok_marker = "\"ok\": true" in
  let contains_ok resp =
    let n = String.length resp and m = String.length ok_marker in
    let rec at i = i + m <= n && (String.sub resp i m = ok_marker || at (i + 1)) in
    at 0
  in
  let workers = max 1 (Domain.recommended_domain_count () - 1) in
  let run ~coalescing =
    let service =
      Serve.Service.create ~workers ~coalescing
        ~queue_capacity:(max 64 requests) ()
    in
    let failures = Atomic.make 0 in
    let worker count =
      for _ = 1 to count do
        if not (contains_ok (Serve.Service.request service line)) then
          Atomic.incr failures
      done
    in
    let per_client = requests / clients and extra = requests mod clients in
    let slices =
      List.init clients (fun c -> per_client + if c < extra then 1 else 0)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.map (fun s -> Thread.create worker s) slices in
    List.iter Thread.join threads;
    let seconds = Unix.gettimeofday () -. t0 in
    let stats = Serve.Service.stats service in
    Serve.Service.shutdown service;
    (seconds, stats, Atomic.get failures)
  in
  let coalesced_seconds, cstats, cfail = run ~coalescing:true in
  let uncoalesced_seconds, _ustats, ufail = run ~coalescing:false in
  let coalesced =
    List.fold_left (fun acc (_, n) -> acc + n) 0 cstats.Serve.Stats.coalesced
  in
  let failures = cfail + ufail in
  Fmt.pr
    "coalesced: %.3f s (%.0f req/s), %d of %d requests attached, %d warm \
     hits@."
    coalesced_seconds
    (float_of_int requests /. coalesced_seconds)
    coalesced requests cstats.Serve.Stats.warm_hits;
  Fmt.pr "uncoalesced: %.3f s (%.0f req/s); speedup %.1fx@."
    uncoalesced_seconds
    (float_of_int requests /. uncoalesced_seconds)
    (uncoalesced_seconds /. coalesced_seconds);
  {
    rt_requests = requests;
    rt_clients = clients;
    rt_workers = workers;
    rt_coalesced_seconds = coalesced_seconds;
    rt_uncoalesced_seconds = uncoalesced_seconds;
    rt_coalesced = coalesced;
    rt_warm_hits = cstats.Serve.Stats.warm_hits;
    rt_failures = failures;
  }

(* Distinct compatible traffic: many clients asking *different*
   questions about the same SoC — the shape coalescing cannot touch
   (every request carries a unique [seed], so no two coalesce keys are
   ever equal; the solver ignores seeds for plan/validate) but batching
   and the shared evaluation-cache registry are built for.  The
   workload cycles plan and validate over four reuse budgets of
   p93791_leon under the lookahead policy — the most expensive builtin
   solves — so the runtime is dominated by scheduler work the shared
   caches can actually elide.
   Run twice on the same worker pool — with batching + shared caches
   on, then with both off (the PR-6 request path) — the ratio is what
   this layer buys. *)

type batch_result = {
  bt_requests : int;
  bt_clients : int;
  bt_workers : int;
  bt_batched_seconds : float;
  bt_unbatched_seconds : float;
  bt_batched : int;  (* requests served through shared batch passes *)
  bt_batches : int;
  bt_shared_hits : int;  (* solves resuming a resident shared cache *)
  bt_failures : int;
}

let batch_speedup_floor = 2.0

let batch_traffic ~requests ~clients =
  section
    (Printf.sprintf
       "serve: distinct compatible traffic (%d requests, %d clients)"
       requests clients);
  let line i =
    let reuse = 2 * (1 + (i mod 4)) in
    let op = if i mod 2 = 0 then "plan" else "validate" in
    Printf.sprintf
      "{\"id\": %d, \"op\": \"%s\", \"system\": \"p93791_leon\", \"policy\": \
       \"lookahead\", \"reuse\": %d, \"seed\": %d}"
      i op reuse i
  in
  let ok_marker = "\"ok\": true" in
  let contains_ok resp =
    let n = String.length resp and m = String.length ok_marker in
    let rec at i = i + m <= n && (String.sub resp i m = ok_marker || at (i + 1)) in
    at 0
  in
  let workers = max 1 (Domain.recommended_domain_count () - 1) in
  let run ~batching =
    let service =
      Serve.Service.create ~workers ~batching
        ~shared_capacity:(if batching then 16 else 0)
        ~queue_capacity:(max 64 requests) ()
    in
    let failures = Atomic.make 0 in
    let worker (offset, count) =
      for k = 0 to count - 1 do
        if not (contains_ok (Serve.Service.request service (line (offset + k))))
        then Atomic.incr failures
      done
    in
    let per_client = requests / clients and extra = requests mod clients in
    let slices =
      List.init clients (fun c ->
          ( (c * per_client) + min c extra,
            per_client + if c < extra then 1 else 0 ))
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.map (fun s -> Thread.create worker s) slices in
    List.iter Thread.join threads;
    let seconds = Unix.gettimeofday () -. t0 in
    let stats = Serve.Service.stats service in
    Serve.Service.shutdown service;
    (seconds, stats, Atomic.get failures)
  in
  let batched_seconds, bstats, bfail = run ~batching:true in
  let unbatched_seconds, _ustats, ufail = run ~batching:false in
  Fmt.pr
    "batched: %.3f s (%.0f req/s), %d requests in %d batch passes, %d shared \
     cache hits@."
    batched_seconds
    (float_of_int requests /. batched_seconds)
    bstats.Serve.Stats.batched bstats.Serve.Stats.batches
    bstats.Serve.Stats.shared_cache_hits;
  Fmt.pr "unbatched: %.3f s (%.0f req/s); speedup %.1fx@." unbatched_seconds
    (float_of_int requests /. unbatched_seconds)
    (unbatched_seconds /. batched_seconds);
  {
    bt_requests = requests;
    bt_clients = clients;
    bt_workers = workers;
    bt_batched_seconds = batched_seconds;
    bt_unbatched_seconds = unbatched_seconds;
    bt_batched = bstats.Serve.Stats.batched;
    bt_batches = bstats.Serve.Stats.batches;
    bt_shared_hits = bstats.Serve.Stats.shared_cache_hits;
    bt_failures = bfail + ufail;
  }

(* ------------------------------------------------------------------ *)
(* fault: availability under seeded injection                          *)

module Fault = Nocplan_fault

type fault_avail_row = {
  fa_system : string;
  fa_seed : int;
  fa_points : Fault.Injector.point list;
}

(* The deterministic availability / makespan-degradation curve of the
   fault subsystem: one seeded campaign per rate, nested fault sets, so
   the injected count is monotone by construction.  Availability is
   monotone on these benchmark seeds too (the fault-smoke gate checks
   that from the CLI), though replan dynamics mean that is not a
   theorem — see the corpus fault_monotonicity suite.  Smoke keeps it
   to d695. *)
let fault_availability ~smoke systems =
  section "fault: availability under seeded injection (rate sweep)";
  let names =
    if smoke then [ "d695_leon" ] else [ "d695_leon"; "p22810_leon" ]
  in
  let rates = [ 0.0; 0.05; 0.1; 0.15; 0.2 ] in
  let seed = 7 in
  List.map
    (fun name ->
      let system = List.assoc name systems in
      let reuse = List.length system.System.processors in
      let points = Fault.Injector.sweep ~reuse ~seed ~rates system in
      Fmt.pr "%s (seed %d):@." name seed;
      List.iter
        (fun (p, _) -> Fmt.pr "  %a@." Fault.Injector.pp_point p)
        points;
      { fa_system = name; fa_seed = seed; fa_points = List.map fst points })
    names

(* ------------------------------------------------------------------ *)
(* fault: detour table-build overhead                                  *)

type detour_cost = {
  dc_faults : int;
  dc_xy_seconds : float;
  dc_detour_seconds : float;
}

(* What fault awareness costs at table-build time: the full access
   table through a detour table with a drawn fault set, against the
   plain XY build.  Best of 5 each; the ratio is the number that
   matters (the BFS tables themselves are microseconds — the wrapper
   pricing dominates both builds). *)
let detour_overhead () =
  section "fault: detour vs XY access-table build (d695_leon)";
  let system = Experiments.d695_leon () in
  let topology = system.System.topology in
  let faults =
    Fault.Injector.fault_set_of
      (List.map
         (fun (e : Fault.Injector.event) -> e.Fault.Injector.target)
         (Fault.Injector.draw ~seed:7 ~rate:0.05 ~horizon:1000 topology))
  in
  let best f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let xy = best (fun () -> ignore (Test_access.table system)) in
  let detour =
    best (fun () ->
        let t = Fault.Detour.table topology faults in
        ignore (Test_access.table ~route:(Fault.Detour.route_fn t) system))
  in
  Fmt.pr "xy build     %.4f s@." xy;
  Fmt.pr "detour build %.4f s (%.2fx, %d faults)@." detour (detour /. xy)
    (Fault.Detour.fault_count faults);
  { dc_faults = Fault.Detour.fault_count faults;
    dc_xy_seconds = xy;
    dc_detour_seconds = detour }

(* ------------------------------------------------------------------ *)
(* corpus:sweep — Domain-parallel testplan verification                *)

module Corpus_lib = Nocplan_corpus

type corpus_row = {
  co_systems : int;
  co_jobs : int;
  co_seq_seconds : float;
  co_par_seconds : float;
  co_failures : int;
  co_checks : int;
}

(* The verify engine must scale: running the checked-in testplan over a
   synthetic corpus on all recommended domains has to beat the same run
   on one domain by >= 2x wherever >= 4 domains are available (the gate
   below self-skips on smaller machines, where the comparison would
   only measure spawn overhead), and no check may fail either way. *)
let corpus_speedup_floor = 2.0

let corpus_testplan_sweep ~smoke =
  section "corpus:sweep — testplan verification, 1 domain vs all";
  let path =
    List.find_opt Sys.file_exists
      [ "test/testplan.json"; "testplan.json"; "../test/testplan.json" ]
  in
  match path with
  | None ->
      Fmt.pr "testplan.json not found from %s — skipping@." (Sys.getcwd ());
      None
  | Some path -> (
      match Corpus_lib.Testplan.load path with
      | Error msg ->
          Fmt.pr "cannot load %s: %s — skipping@." path msg;
          None
      | Ok testplan ->
          let count = if smoke then 48 else 144 in
          let items = Corpus_lib.Corpus.generate ~seed:11L ~count in
          let jobs = Core.Domains.clamp max_int in
          let timed_run jobs =
            let t0 = Unix.gettimeofday () in
            let report =
              Corpus_lib.Runner.run ~jobs ~clock:Unix.gettimeofday ~testplan
                items
            in
            (report, Unix.gettimeofday () -. t0)
          in
          let seq, seq_seconds = timed_run 1 in
          let par, par_seconds = timed_run jobs in
          let totals (r : Corpus_lib.Runner.report) =
            List.fold_left
              (fun (fails, checks) (p : Corpus_lib.Runner.point) ->
                ( fails + p.Corpus_lib.Runner.fail,
                  checks + Corpus_lib.Runner.coverage p ))
              (0, 0) r.Corpus_lib.Runner.points
          in
          let seq_fails, seq_checks = totals seq in
          let par_fails, par_checks = totals par in
          Fmt.pr "%-10s %-8s %-10s %-10s@." "domains" "systems" "checks"
            "seconds";
          Fmt.pr "%-10d %-8d %-10d %-10.3f@." 1 count seq_checks seq_seconds;
          Fmt.pr "%-10d %-8d %-10d %-10.3f@." jobs count par_checks
            par_seconds;
          Fmt.pr "speedup %.2fx on %d domain(s), %d failed checks@."
            (seq_seconds /. par_seconds)
            jobs (seq_fails + par_fails);
          if seq_checks <> par_checks then
            Fmt.pr "WARNING: domain count changed the check count (%d vs %d)@."
              seq_checks par_checks;
          Some
            {
              co_systems = count;
              co_jobs = jobs;
              co_seq_seconds = seq_seconds;
              co_par_seconds = par_seconds;
              co_failures = seq_fails + par_fails;
              co_checks = par_checks;
            })

(* ------------------------------------------------------------------ *)
(* Machine-readable artefact (BENCH_nocplan.json)                      *)

(* Figure-1 wall time of the SEED scheduler (commit b8727be), recorded
   on this machine as the minimum of three best-of-3 runs of exactly
   the protocol in [figure1_timing] below: greedy reuse sweeps of all
   three systems, unconstrained and power-constrained series.  The
   current code must beat this by >= 2x (DESIGN.md, Performance). *)
let seed_figure1_greedy_seconds = 0.1845

(* Time the full Figure-1 production: for each system, one shared
   access table and both sweeps.  Best of [reps] (the sweeps are
   deterministic, so only the last rep's panels are kept). *)
let figure1_timing systems ~reps =
  let best = ref infinity in
  let panels = ref [] in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let run =
      List.map
        (fun (name, system) ->
          let access = Test_access.table system in
          let unconstrained = Planner.reuse_sweep ~access system in
          let constrained =
            Planner.reuse_sweep ~access
              ~power_limit_pct:Experiments.binding_power_pct system
          in
          (name, unconstrained, constrained))
        systems
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    panels := run
  done;
  (!best, !panels)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_points buf points =
  Buffer.add_char buf '[';
  List.iteri
    (fun i (p : Planner.point) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{\"reuse\": %d, \"makespan\": %d, \"peak_power\": %.3f, \
         \"validated\": %b}"
        p.Planner.reuse p.Planner.makespan p.Planner.peak_power
        p.Planner.validated)
    points;
  Buffer.add_char buf ']'

let write_json path ~smoke ~figure1_seconds ~panels ~load ~repeat ~batch ~tcp
    ~fault_rows ~detour ~corpus =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"schema\": \"nocplan-bench/1\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" smoke;
  Printf.bprintf buf
    "  \"seed_baseline\": {\"figure1_greedy_seconds\": %.4f, \"commit\": \
     \"b8727be\"},\n"
    seed_figure1_greedy_seconds;
  Printf.bprintf buf
    "  \"figure1\": {\n    \"seconds\": %.4f,\n    \"speedup_vs_seed\": \
     %.2f,\n    \"power_limit_pct\": %.1f,\n    \"panels\": [\n"
    figure1_seconds
    (seed_figure1_greedy_seconds /. figure1_seconds)
    Experiments.binding_power_pct;
  List.iteri
    (fun i (name, (unconstrained : Planner.sweep), (constrained : Planner.sweep)) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf "      {\"system\": \"%s\", \"unconstrained\": "
        (json_escape name);
      json_points buf unconstrained.Planner.points;
      Buffer.add_string buf ", \"power_limited\": ";
      json_points buf constrained.Planner.points;
      Buffer.add_char buf '}')
    panels;
  Buffer.add_string buf "\n    ]\n  },\n";
  let s = load.load_stats in
  Printf.bprintf buf
    "  \"serve\": {\n    \"requests\": %d,\n    \"clients\": %d,\n    \
     \"seconds\": %.4f,\n    \"requests_per_second\": %.1f,\n    \
     \"failures\": %d,\n    \"served\": %d,\n    \"cache_hits\": %d,\n    \
     \"cache_misses\": %d,\n"
    load.load_requests load.load_clients load.load_seconds
    (float_of_int load.load_requests /. load.load_seconds)
    load.load_failures s.Serve.Stats.served s.Serve.Stats.cache_hits
    s.Serve.Stats.cache_misses;
  (match s.Serve.Stats.latency with
  | Some q ->
      Printf.bprintf buf
        "    \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \
         \"max\": %.3f},\n"
        q.Serve.Stats.p50_ms q.Serve.Stats.p90_ms q.Serve.Stats.p99_ms
        q.Serve.Stats.max_ms
  | None -> Buffer.add_string buf "    \"latency_ms\": null,\n");
  Printf.bprintf buf
    "    \"repeat\": {\"requests\": %d, \"clients\": %d, \"workers\": %d, \
     \"coalesced_seconds\": %.4f, \"coalesced_req_per_s\": %.1f, \
     \"uncoalesced_seconds\": %.4f, \"uncoalesced_req_per_s\": %.1f, \
     \"speedup\": %.2f, \"coalesced\": %d, \"warm_hits\": %d, \"failures\": \
     %d},\n"
    repeat.rt_requests repeat.rt_clients repeat.rt_workers
    repeat.rt_coalesced_seconds
    (float_of_int repeat.rt_requests /. repeat.rt_coalesced_seconds)
    repeat.rt_uncoalesced_seconds
    (float_of_int repeat.rt_requests /. repeat.rt_uncoalesced_seconds)
    (repeat.rt_uncoalesced_seconds /. repeat.rt_coalesced_seconds)
    repeat.rt_coalesced repeat.rt_warm_hits repeat.rt_failures;
  Printf.bprintf buf
    "    \"batch\": {\"requests\": %d, \"clients\": %d, \"workers\": %d, \
     \"batched_seconds\": %.4f, \"batched_req_per_s\": %.1f, \
     \"unbatched_seconds\": %.4f, \"unbatched_req_per_s\": %.1f, \
     \"speedup\": %.2f, \"batched\": %d, \"batches\": %d, \
     \"shared_cache_hits\": %d, \"failures\": %d},\n"
    batch.bt_requests batch.bt_clients batch.bt_workers
    batch.bt_batched_seconds
    (float_of_int batch.bt_requests /. batch.bt_batched_seconds)
    batch.bt_unbatched_seconds
    (float_of_int batch.bt_requests /. batch.bt_unbatched_seconds)
    (batch.bt_unbatched_seconds /. batch.bt_batched_seconds)
    batch.bt_batched batch.bt_batches batch.bt_shared_hits batch.bt_failures;
  Printf.bprintf buf
    "    \"tcp\": {\"requests\": %d, \"clients\": %d, \"seconds\": %.4f, \
     \"requests_per_second\": %.1f, \"failures\": %d,\n      \
     \"per_client_latency_ms\": ["
    tcp.tcp_requests tcp.tcp_clients tcp.tcp_seconds
    (float_of_int tcp.tcp_requests /. tcp.tcp_seconds)
    tcp.tcp_failures;
  Array.iteri
    (fun i p50 ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "{\"p50\": %.3f, \"p99\": %.3f}" p50
        tcp.tcp_client_p99.(i))
    tcp.tcp_client_p50;
  Buffer.add_string buf "]}\n";
  Buffer.add_string buf "  },\n  \"fault\": {\n    \"availability\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf "      {\"system\": \"%s\", \"seed\": %d, \"points\": ["
        (json_escape r.fa_system) r.fa_seed;
      List.iteri
        (fun j (p : Fault.Injector.point) ->
          if j > 0 then Buffer.add_string buf ", ";
          Printf.bprintf buf
            "{\"rate\": %.3f, \"injected\": %d, \"availability\": %.4f, \
             \"makespan\": %d, \"abandoned\": %d, \"replans\": %d}"
            p.Fault.Injector.rate p.Fault.Injector.injected
            p.Fault.Injector.availability p.Fault.Injector.makespan
            p.Fault.Injector.abandoned_count p.Fault.Injector.replans)
        r.fa_points;
      Buffer.add_string buf "]}")
    fault_rows;
  Printf.bprintf buf
    "\n    ],\n    \"detour_overhead\": {\"faults\": %d, \"xy_seconds\": \
     %.4f, \"detour_seconds\": %.4f, \"ratio\": %.2f}\n  },\n"
    detour.dc_faults detour.dc_xy_seconds detour.dc_detour_seconds
    (detour.dc_detour_seconds /. detour.dc_xy_seconds);
  (match corpus with
  | Some c ->
      Printf.bprintf buf
        "  \"corpus\": {\"systems\": %d, \"jobs\": %d, \
         \"sequential_seconds\": %.4f, \"parallel_seconds\": %.4f, \
         \"speedup\": %.2f, \"checks\": %d, \"failures\": %d},\n"
        c.co_systems c.co_jobs c.co_seq_seconds c.co_par_seconds
        (c.co_seq_seconds /. c.co_par_seconds)
        c.co_checks c.co_failures
  | None -> Buffer.add_string buf "  \"corpus\": null,\n");
  Buffer.add_string buf "  \"annealing\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "    {\"system\": \"%s\", \"greedy\": %d, \"lookahead\": %d, \
         \"annealed\": %d, \"evaluations\": %d, \"seconds\": %.4f}"
        (json_escape r.an_system) r.an_greedy r.an_lookahead r.an_annealed
        r.an_evaluations r.an_seconds)
    !anneal_rows;
  Buffer.add_string buf "\n  ],\n  \"placement_annealing\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "    {\"system\": \"%s\", \"order_only\": %d, \"joint\": %d, \
         \"placement_evals\": %d, \"placement_accepted\": %d, \"seconds\": \
         %.4f}"
        (json_escape r.pl_system) r.pl_order_only r.pl_joint
        r.pl_placement_evals r.pl_placement_accepted r.pl_seconds)
    !placement_rows;
  Buffer.add_string buf "\n  ],\n  \"backend\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "    {\"system\": \"%s\", \"greedy\": %d, \"binpack\": %d, \"race\": \
         %d, \"winner\": \"%s\", \"binpack_valid\": %b, \"greedy_seconds\": \
         %.4f, \"binpack_seconds\": %.4f, \"race_seconds\": %.4f}"
        (json_escape r.bk_system) r.bk_greedy r.bk_binpack r.bk_race
        (json_escape r.bk_winner) r.bk_binpack_valid r.bk_greedy_seconds
        r.bk_binpack_seconds r.bk_race_seconds)
    !backend_rows;
  Buffer.add_string buf "\n  ],\n  \"experiments\": [\n";
  List.iteri
    (fun i (name, seconds) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf "    {\"name\": \"%s\", \"seconds\": %.4f}"
        (json_escape name) seconds)
    (List.rev !experiment_times);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %s (figure1 %.4f s, %.2fx vs seed %.4f s)@." path
    figure1_seconds
    (seed_figure1_greedy_seconds /. figure1_seconds)
    seed_figure1_greedy_seconds

(* ------------------------------------------------------------------ *)
(* Regression gate against a committed baseline artefact               *)

(* Compare this run's wall times against a recorded BENCH_nocplan.json.
   A timing regresses when it exceeds the baseline by BOTH the relative
   tolerance (default 25%, NOCPLAN_GATE_TOLERANCE_PCT overrides) and an
   absolute 50 ms slack (sub-tenth-second experiments jitter).  The
   annealed makespans are deterministic, so they must be equal or
   better, with no tolerance.  NOCPLAN_BENCH_GATE=off skips the gate
   (for machines unrelated to the one that recorded the baseline). *)
let run_gate ~baseline_path ~figure1_seconds ~repeat ~batch ~tcp ~corpus =
  match Sys.getenv_opt "NOCPLAN_BENCH_GATE" with
  | Some "off" ->
      Fmt.pr "@.gate: skipped (NOCPLAN_BENCH_GATE=off)@.";
      true
  | _ -> (
      let tolerance_pct =
        match Sys.getenv_opt "NOCPLAN_GATE_TOLERANCE_PCT" with
        | Some s -> (
            match float_of_string_opt s with
            | Some f when f >= 0.0 -> f
            | Some _ | None ->
                Fmt.epr "gate: bad NOCPLAN_GATE_TOLERANCE_PCT %S, using 25@." s;
                25.0)
        | None -> 25.0
      in
      let contents =
        let ic = open_in baseline_path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Serve.Json.parse contents with
      | Error e ->
          Fmt.epr "gate: cannot parse %s: %s@." baseline_path e;
          false
      | Ok baseline ->
          let failures = ref [] in
          let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
          let check_seconds name ~base ~fresh =
            if
              fresh > base *. (1.0 +. (tolerance_pct /. 100.0))
              && fresh > base +. 0.05
            then
              fail "%s: %.4f s vs baseline %.4f s (> +%.0f%%)" name fresh base
                tolerance_pct
            else
              Fmt.pr "gate: %-24s %.4f s (baseline %.4f s) ok@." name fresh
                base
          in
          (match
             Option.bind
               (Serve.Json.member "figure1" baseline)
               (Serve.Json.float_field "seconds")
           with
          | Some base -> check_seconds "figure1" ~base ~fresh:figure1_seconds
          | None -> fail "baseline lacks figure1.seconds");
          let baseline_experiment name =
            match Serve.Json.member "experiments" baseline with
            | Some (Serve.Json.List entries) ->
                List.find_map
                  (fun e ->
                    if Serve.Json.str_field "name" e = Some name then
                      Serve.Json.float_field "seconds" e
                    else None)
                  entries
            | Some _ | None -> None
          in
          List.iter
            (fun name ->
              match
                (baseline_experiment name, List.assoc_opt name !experiment_times)
              with
              | Some base, Some fresh -> check_seconds name ~base ~fresh
              | None, _ -> fail "baseline lacks experiment %s" name
              | Some _, None -> fail "this run did not time %s" name)
            [ "A7:optimality_gap"; "A12:annealing"; "anneal:placement" ];
          (match Serve.Json.member "annealing" baseline with
          | Some (Serve.Json.List entries) ->
              List.iter
                (fun r ->
                  match
                    List.find_map
                      (fun e ->
                        if Serve.Json.str_field "system" e = Some r.an_system
                        then Serve.Json.int_field "annealed" e
                        else None)
                      entries
                  with
                  | Some base ->
                      if r.an_annealed > base then
                        fail
                          "annealed makespan %s: %d vs baseline %d (must be \
                           equal or better)"
                          r.an_system r.an_annealed base
                      else
                        Fmt.pr "gate: %-24s makespan %d (baseline %d) ok@."
                          r.an_system r.an_annealed base
                  | None -> fail "baseline lacks annealing row %s" r.an_system)
                !anneal_rows
          | Some _ | None -> fail "baseline lacks the annealing section");
          (match Serve.Json.member "placement_annealing" baseline with
          | Some (Serve.Json.List entries) ->
              List.iter
                (fun r ->
                  match
                    List.find_map
                      (fun e ->
                        if Serve.Json.str_field "system" e = Some r.pl_system
                        then Serve.Json.int_field "joint" e
                        else None)
                      entries
                  with
                  | Some base ->
                      if r.pl_joint > base then
                        fail
                          "joint anneal makespan %s: %d vs baseline %d (must \
                           be equal or better)"
                          r.pl_system r.pl_joint base
                      else if r.pl_joint > r.pl_order_only then
                        fail
                          "joint anneal %s: %d worse than its own order-only \
                           run %d"
                          r.pl_system r.pl_joint r.pl_order_only
                      else
                        Fmt.pr "gate: %-24s joint %d (baseline %d) ok@."
                          r.pl_system r.pl_joint base
                  | None ->
                      fail "baseline lacks placement_annealing row %s"
                        r.pl_system)
                !placement_rows
          | Some _ | None -> fail "baseline lacks the placement_annealing \
                                   section");
          (* Backend checks are absolute properties of this run: race
             includes greedy among its racers and breaks ties in its
             favour, so a race result worse than greedy alone is a
             correctness bug, not a performance drift; and every
             binpack schedule must clear the independent validator. *)
          if !backend_rows = [] then
            fail "backend: no rows recorded (backend_race did not run)";
          List.iter
            (fun r ->
              if r.bk_race > r.bk_greedy then
                fail
                  "backend race %s: makespan %d worse than greedy alone %d \
                   (race must never lose to a racer it contains)"
                  r.bk_system r.bk_race r.bk_greedy
              else
                Fmt.pr "gate: %-24s race %d <= greedy %d ok@."
                  ("backend " ^ r.bk_system) r.bk_race r.bk_greedy;
              if not r.bk_binpack_valid then
                fail "backend binpack %s: schedule failed the validator"
                  r.bk_system)
            !backend_rows;
          (* Repeat-traffic floors are absolute properties of this run,
             not baseline comparisons: coalescing must beat its own
             uncoalesced twin, and throughput must hold the 10x margin
             over the PR-5 request path (18 req/s recorded on this
             machine). *)
          let repeat_req_per_s =
            float_of_int repeat.rt_requests /. repeat.rt_coalesced_seconds
          in
          let repeat_speedup =
            repeat.rt_uncoalesced_seconds /. repeat.rt_coalesced_seconds
          in
          if repeat_speedup < repeat_speedup_floor then
            fail "serve repeat: coalesced only %.1fx uncoalesced (floor %.0fx)"
              repeat_speedup repeat_speedup_floor
          else
            Fmt.pr "gate: %-24s %.1fx uncoalesced (floor %.0fx) ok@."
              "serve repeat speedup" repeat_speedup repeat_speedup_floor;
          if repeat_req_per_s < repeat_req_per_s_floor then
            fail "serve repeat: %.0f req/s under floor %.0f (10x PR-5's %.0f)"
              repeat_req_per_s repeat_req_per_s_floor pr5_repeat_req_per_s
          else
            Fmt.pr "gate: %-24s %.0f req/s (floor %.0f) ok@."
              "serve repeat throughput" repeat_req_per_s repeat_req_per_s_floor;
          if repeat.rt_failures > 0 then
            fail "serve repeat: %d failed responses" repeat.rt_failures;
          (* Batch floors, likewise absolute: distinct compatible
             traffic must hold >= 2x its unbatched twin on the same
             worker pool, with the shared evaluation-cache registry
             actually carrying state across requests. *)
          let batch_speedup =
            batch.bt_unbatched_seconds /. batch.bt_batched_seconds
          in
          if batch_speedup < batch_speedup_floor then
            fail "serve batch: batched only %.1fx unbatched (floor %.0fx)"
              batch_speedup batch_speedup_floor
          else
            Fmt.pr "gate: %-24s %.1fx unbatched (floor %.0fx) ok@."
              "serve batch speedup" batch_speedup batch_speedup_floor;
          if batch.bt_shared_hits = 0 then
            fail "serve batch: shared evaluation cache never hit"
          else
            Fmt.pr "gate: %-24s %d shared cache hits ok@." "serve batch"
              batch.bt_shared_hits;
          if batch.bt_failures > 0 then
            fail "serve batch: %d failed responses" batch.bt_failures;
          if tcp.tcp_failures > 0 then
            fail "serve tcp: %d failed responses under %d-connection stress"
              tcp.tcp_failures tcp.tcp_clients
          else
            Fmt.pr "gate: %-24s %d connections, 0 failures ok@." "serve tcp"
              tcp.tcp_clients;
          (* Corpus checks are absolute properties of this run: every
             testplan check must pass on every domain count, and the
             Domain-parallel run must hold the speedup floor wherever
             enough domains exist for the comparison to mean anything
             (single- and dual-core machines self-skip it). *)
          (match corpus with
          | None -> fail "corpus: sweep did not run (no testplan found?)"
          | Some c ->
              if c.co_failures > 0 then
                fail "corpus: %d failed checks across %d systems"
                  c.co_failures c.co_systems
              else if c.co_checks = 0 then
                fail "corpus: sweep ran no checks"
              else
                Fmt.pr "gate: %-24s %d checks, 0 failures ok@." "corpus sweep"
                  c.co_checks;
              let speedup = c.co_seq_seconds /. c.co_par_seconds in
              if c.co_jobs >= 4 then
                if speedup < corpus_speedup_floor then
                  fail
                    "corpus: %.2fx speedup on %d domains (floor %.0fx)"
                    speedup c.co_jobs corpus_speedup_floor
                else
                  Fmt.pr "gate: %-24s %.2fx on %d domains (floor %.0fx) ok@."
                    "corpus speedup" speedup c.co_jobs corpus_speedup_floor
              else
                Fmt.pr
                  "gate: %-24s skipped (%d domain(s) available, need 4)@."
                  "corpus speedup" c.co_jobs);
          (match !failures with
          | [] -> Fmt.pr "gate: PASS vs %s@." baseline_path
          | fs ->
              Fmt.epr "@.gate: FAIL vs %s@." baseline_path;
              List.iter (fun m -> Fmt.epr "  - %s@." m) (List.rev fs));
          !failures = [])

let () =
  let smoke = ref false in
  let json_path = ref "BENCH_nocplan.json" in
  let gate_path = ref None in
  let load_requests = ref None in
  let load_clients = ref 4 in
  let tcp_clients = ref 100 in
  Arg.parse
    [
      ( "--smoke",
        Arg.Set smoke,
        " quick run: Figure-1 sweeps, a small service load and the JSON \
         artefact only" );
      ( "--json",
        Arg.Set_string json_path,
        "PATH write the machine-readable results there (default \
         BENCH_nocplan.json)" );
      ( "--load",
        Arg.Int (fun n -> load_requests := Some n),
        "N requests for the planning-service load generator (default: 40 \
         smoke, 200 full)" );
      ( "--clients",
        Arg.Set_int load_clients,
        "N concurrent load-generator clients (default 4)" );
      ( "--gate",
        Arg.String (fun p -> gate_path := Some p),
        "PATH fail (exit 1) if this run regresses >25% against the recorded \
         baseline artefact" );
      ( "--tcp-clients",
        Arg.Set_int tcp_clients,
        "N concurrent TCP stress connections (default 100)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--smoke] [--json PATH] [--load N] [--clients N] [--tcp-clients N] \
     [--gate BASELINE]";
  Fmt.pr "nocplan reproduction harness%s@."
    (if !smoke then " (smoke)" else "");
  let systems =
    [
      ("d695_leon", Experiments.d695_leon ());
      ("p22810_leon", Experiments.p22810_leon ());
      ("p93791_leon", Experiments.p93791_leon ());
    ]
  in
  if not !smoke then begin
    timed "A2:noc_characterization" noc_characterization;
    timed "A3:processor_characterization" processor_characterization;
    let results =
      timed "F1:figure1_panels" (fun () ->
          List.map (fun (name, sys) -> (name, figure1_panel name sys)) systems)
    in
    headline_table results;
    timed "A1:greedy_vs_lookahead" greedy_vs_lookahead;
    timed "A4:power_sensitivity" power_sensitivity;
    timed "A5:io_port_sensitivity" io_port_sensitivity;
    timed "A6:placement_sensitivity" placement_sensitivity;
    timed "A7:optimality_gap" optimality_gap;
    timed "A8:model_validation" model_validation;
    timed "A9:preemption" preemption;
    timed "A10:flit_width_sweep" flit_width_sweep;
    timed "A11:fault_sweep" fault_sweep;
    timed "A12:annealing" annealing;
    timed "anneal:placement" placement_annealing;
    timed "A13:bus_vs_noc" bus_vs_noc;
    timed "A14:mesh_vs_torus" mesh_vs_torus;
    timed "A15:corpus_sweep" corpus_sweep;
    timed "A16:replanning" replanning;
    timed "A17:compression_measurement" compression_measurement;
    timed "A18:energy_tradeoff" energy_tradeoff;
    timed "A19:coverage_curve" coverage_curve
  end;
  if !smoke then begin
    (* The regression gate needs these timings even in smoke mode. *)
    timed "A7:optimality_gap" optimality_gap;
    timed "A12:annealing" annealing;
    timed "anneal:placement" placement_annealing
  end;
  (* Both modes: the gate's race-vs-greedy check needs the rows. *)
  timed "backend:race" (fun () -> backend_race systems);
  timed "obs:tracing_overhead" (fun () -> tracing_overhead systems);
  if not !smoke then timed "bechamel" (fun () -> timing_benchmarks systems);
  let figure1_seconds, panels =
    figure1_timing systems ~reps:(if !smoke then 1 else 3)
  in
  let requests =
    match !load_requests with
    | Some n -> max 1 n
    | None -> if !smoke then 40 else 200
  in
  let load =
    timed "serve:load"
      (fun () ->
        service_load ~requests ~clients:(max 1 (min requests !load_clients)))
  in
  let repeat_requests = if !smoke then 120 else 240 in
  let repeat =
    timed "serve:repeat"
      (fun () -> repeat_traffic ~requests:repeat_requests ~clients:32)
  in
  let batch =
    timed "serve:batch" (fun () ->
        batch_traffic
          ~requests:(if !smoke then 168 else 336)
          ~clients:28)
  in
  let tcp =
    let clients = max 1 !tcp_clients in
    timed "serve:tcp" (fun () ->
        tcp_load ~requests:(max (2 * clients) 200) ~clients)
  in
  let fault_rows =
    timed "fault:availability" (fun () ->
        fault_availability ~smoke:!smoke systems)
  in
  let detour = timed "fault:detour_overhead" detour_overhead in
  let corpus =
    timed "corpus:sweep" (fun () -> corpus_testplan_sweep ~smoke:!smoke)
  in
  write_json !json_path ~smoke:!smoke ~figure1_seconds ~panels ~load ~repeat
    ~batch ~tcp ~fault_rows ~detour ~corpus;
  match !gate_path with
  | None -> ()
  | Some baseline_path ->
      if not
           (run_gate ~baseline_path ~figure1_seconds ~repeat ~batch ~tcp
              ~corpus)
      then exit 1
