(* Hand-rolled rendering: obs sits below the serve library that owns
   the repo's JSON codec, and the trace-event subset is tiny — objects,
   strings, numbers and booleans, all built here. *)

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.3f" f)

let add_value b = function
  | Trace.Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> add_float b f
  | Trace.String s -> add_string b s

let phase_letter = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter -> "C"

let add_event b (ev : Trace.event) =
  Buffer.add_string b "{\"name\":";
  add_string b ev.Trace.name;
  Buffer.add_string b ",\"cat\":\"nocplan\",\"ph\":\"";
  Buffer.add_string b (phase_letter ev.Trace.phase);
  Buffer.add_string b "\",\"ts\":";
  add_float b ev.Trace.ts;
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int ev.Trace.tid);
  (match ev.Trace.phase with
  | Trace.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | _ -> ());
  (match ev.Trace.attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_string b k;
          Buffer.add_char b ':';
          add_value b v)
        attrs;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_string events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      add_event b ev)
    events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let to_file path events =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string events))

(* ------------------------------------------------------------------ *)
(* Incremental (streaming) writer                                     *)

type stream = {
  oc : Out_channel.t;
  mutable written : int;  (* events written so far *)
  mutable closed : bool;
}

let stream path =
  let oc = Out_channel.open_text path in
  Out_channel.output_string oc "{\"traceEvents\":[";
  { oc; written = 0; closed = false }

let stream_events s events =
  if s.closed then invalid_arg "Chrome.stream_events: stream closed";
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      if s.written > 0 then Buffer.add_string b ",\n";
      add_event b ev;
      s.written <- s.written + 1)
    events;
  Out_channel.output_string s.oc (Buffer.contents b);
  Out_channel.flush s.oc

let close_stream s =
  if not s.closed then begin
    s.closed <- true;
    Out_channel.output_string s.oc "],\"displayTimeUnit\":\"ms\"}\n";
    Out_channel.close s.oc
  end;
  s.written
