type kind = Counter | Gauge | Summary

type sample = {
  suffix : string;
  labels : (string * string) list;
  value : float;
}

let sample ?(suffix = "") ?(labels = []) value = { suffix; labels; value }

type metric = {
  name : string;
  help : string option;
  kind : kind;
  samples : sample list;
}

let valid_name ?(allow_colon = true) name =
  name <> ""
  && String.for_all (fun c -> c <> ':' || allow_colon) name
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let metric ?help kind ~name samples =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Prometheus.metric: invalid name %S" name);
  List.iter
    (fun s ->
      List.iter
        (fun (l, _) ->
          if not (valid_name ~allow_colon:false l) then
            invalid_arg
              (Printf.sprintf "Prometheus.metric: invalid label name %S" l))
        s.labels)
    samples;
  { name; help; kind; samples }

let kind_label = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

(* HELP text: backslash and newline escaped; label values additionally
   escape the double quote (the format's two escaping contexts). *)
let escape_help s =
  String.concat ""
    (List.map
       (function '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let escape_label_value s =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | '"' -> "\\\""
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let add_float b f =
  if Float.is_nan f then Buffer.add_string b "NaN"
  else if f = Float.infinity then Buffer.add_string b "+Inf"
  else if f = Float.neg_infinity then Buffer.add_string b "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%g" f)

let render metrics =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      (match m.help with
      | Some h ->
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" m.name (escape_help h))
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" m.name (kind_label m.kind));
      List.iter
        (fun s ->
          Buffer.add_string b m.name;
          Buffer.add_string b s.suffix;
          (match s.labels with
          | [] -> ()
          | labels ->
              Buffer.add_char b '{';
              List.iteri
                (fun i (l, v) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_string b l;
                  Buffer.add_string b "=\"";
                  Buffer.add_string b (escape_label_value v);
                  Buffer.add_char b '"')
                labels;
              Buffer.add_char b '}');
          Buffer.add_char b ' ';
          add_float b s.value;
          Buffer.add_char b '\n')
        m.samples)
    metrics;
  Buffer.contents b
