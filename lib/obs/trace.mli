(** Structured trace spans.

    A process-global event stream the planning layers emit into when —
    and only when — a {!collector} is installed.  With no collector
    the emitters reduce to one atomic load and a branch, so
    instrumented hot paths cost nothing in production runs (the bench
    regression gate pins this).

    Events are deterministic {e in structure}: names, nesting, thread
    ids under a single domain and attribute keys/values depend only on
    the computation, while wall-clock time is isolated in the [ts]
    field — and the default collector clock is a deterministic
    per-collector tick counter, so golden tests can pin whole event
    sequences.  Callers that want real time (the CLI's [--trace])
    install a [Unix.gettimeofday]-based clock explicitly.

    Two verbosity levels: [Spans] records the span skeleton (runs,
    sweeps, chains, cache outcomes, commits); [Decisions] additionally
    records per-commit candidate sets and reservation conflicts — the
    input of [plan --explain] — at a cost that scales with the
    scheduler's inner candidate loop. *)

type value = Bool of bool | Int of int | Float of float | String of string

type phase =
  | Begin  (** span start; paired with the next matching [End] *)
  | End
  | Instant  (** a point event *)
  | Counter  (** a sampled numeric series (attrs hold the values) *)

type event = {
  seq : int;  (** global emission order, 0-based per collector *)
  name : string;
  phase : phase;
  ts : float;  (** microseconds on the collector's clock *)
  tid : int;  (** emitting domain id *)
  attrs : (string * value) list;
}

type level = Spans | Decisions

type collector
(** A mutex-protected event sink; safe to emit into from any domain. *)

val collector :
  ?clock:(unit -> float) ->
  ?capacity:int ->
  ?on_flush:(event list -> unit) ->
  unit ->
  collector
(** A fresh collector.  [clock] defaults to a deterministic counter
    that advances by one microsecond per event.

    [capacity] bounds the in-memory buffer (default: unbounded, the
    historical whole-lifetime behaviour).  When the buffer reaches
    [capacity]:
    - with [on_flush], the whole buffer is handed to [on_flush] (in
      emission order) and cleared — the periodic-flush mode a
      long-running server streams its trace with.  [on_flush] runs
      under the collector mutex so batches reach the sink in order;
      it must not emit events itself.
    - without [on_flush], an emission that would exceed [capacity]
      drops the oldest buffered event (ring mode) and counts it in
      {!dropped}: {!events} is always the newest [capacity] events.

    @raise Invalid_argument if [capacity < 1]. *)

val events : collector -> event list
(** Events currently buffered (flushed / ring-dropped events are
    gone), in emission ([seq]) order. *)

val flush : collector -> unit
(** Hand any buffered events to [on_flush] now and clear the buffer
    (e.g. at shutdown, for the final partial batch).  A no-op without
    [on_flush]. *)

val dropped : collector -> int
(** Events discarded by ring mode so far. *)

val flushed : collector -> int
(** Events handed to [on_flush] so far. *)

val install : ?level:level -> collector -> unit
(** Make [collector] the process-global sink (default level:
    [Spans]).  Replaces any previously installed collector. *)

val uninstall : unit -> unit

val enabled : unit -> bool
(** A collector is installed.  The fast guard: call sites building
    non-trivial attribute lists should test this first. *)

val decisions : unit -> bool
(** A collector is installed at the [Decisions] level. *)

val emit : ?attrs:(string * value) list -> phase -> string -> unit
(** Emit one event; a no-op when no collector is installed. *)

val begin_span : ?attrs:(string * value) list -> string -> unit
val end_span : ?attrs:(string * value) list -> string -> unit
val instant : ?attrs:(string * value) list -> string -> unit
val counter : ?attrs:(string * value) list -> string -> unit

val span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] in a [Begin]/[End] pair; the [End]
    carries [("raised", Bool true)] if [f] raises.  When no collector
    is installed this is exactly [f ()]. *)

val with_collector :
  ?level:level -> ?clock:(unit -> float) -> (unit -> 'a) -> 'a * event list
(** Run [f] under a fresh installed collector, then restore whatever
    was installed before (also on exceptions) and return [f]'s result
    with the collected events. *)

(** {1 Reading events back} *)

val attr : event -> string -> value option
val attr_int : event -> string -> int option
val attr_bool : event -> string -> bool option
val attr_string : event -> string -> string option

val pp_value : value Fmt.t
val pp_phase : phase Fmt.t

val pp_event : event Fmt.t
(** One line: phase, name, attrs — no [seq]/[ts]/[tid], so the output
    is the deterministic structure golden tests compare. *)
