type value = Bool of bool | Int of int | Float of float | String of string

type phase = Begin | End | Instant | Counter

type event = {
  seq : int;
  name : string;
  phase : phase;
  ts : float;
  tid : int;
  attrs : (string * value) list;
}

type level = Spans | Decisions

type collector = {
  mutex : Mutex.t;
  clock : unit -> float;
  mutable ticks : float;  (* the deterministic default clock *)
  buffered : event Queue.t;  (* oldest first *)
  capacity : int option;  (* None: unbounded (the historical default) *)
  on_flush : (event list -> unit) option;
  mutable next_seq : int;
  mutable dropped : int;
  mutable flushed : int;
}

(* The installed sink, plus two dedicated flags so the disabled-path
   guard is a single atomic load (reading the option would box the
   comparison; the flags are what the scheduler's inner loops poll). *)
let installed : collector option Atomic.t = Atomic.make None
let spans_on = Atomic.make false
let decisions_on = Atomic.make false

let deterministic_clock c () =
  c.ticks <- c.ticks +. 1.0;
  c.ticks

let collector ?clock ?capacity ?on_flush () =
  (match capacity with
  | Some n when n < 1 -> invalid_arg "Trace.collector: capacity must be >= 1"
  | _ -> ());
  let rec c =
    {
      mutex = Mutex.create ();
      clock =
        (match clock with
        | Some f -> f
        | None -> fun () -> deterministic_clock c ());
      ticks = 0.0;
      buffered = Queue.create ();
      capacity;
      on_flush;
      next_seq = 0;
      dropped = 0;
      flushed = 0;
    }
  in
  c

let drain_locked c =
  let batch = List.of_seq (Queue.to_seq c.buffered) in
  Queue.clear c.buffered;
  batch

let events c =
  Mutex.lock c.mutex;
  let evs = List.of_seq (Queue.to_seq c.buffered) in
  Mutex.unlock c.mutex;
  evs

let flush c =
  match c.on_flush with
  | None -> ()
  | Some f ->
      Mutex.lock c.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock c.mutex)
        (fun () ->
          match drain_locked c with
          | [] -> ()
          | batch ->
              c.flushed <- c.flushed + List.length batch;
              f batch)

let dropped c =
  Mutex.lock c.mutex;
  let n = c.dropped in
  Mutex.unlock c.mutex;
  n

let flushed c =
  Mutex.lock c.mutex;
  let n = c.flushed in
  Mutex.unlock c.mutex;
  n

let install ?(level = Spans) c =
  Atomic.set installed (Some c);
  Atomic.set decisions_on (level = Decisions);
  Atomic.set spans_on true

let uninstall () =
  Atomic.set spans_on false;
  Atomic.set decisions_on false;
  Atomic.set installed None

let enabled () = Atomic.get spans_on
let decisions () = Atomic.get decisions_on

let emit ?(attrs = []) phase name =
  match Atomic.get installed with
  | None -> ()
  | Some c ->
      let tid = (Domain.self () :> int) in
      Mutex.lock c.mutex;
      let ev =
        { seq = c.next_seq; name; phase; ts = c.clock (); tid; attrs }
      in
      c.next_seq <- c.next_seq + 1;
      Queue.push ev c.buffered;
      (match c.capacity with
      | Some cap -> (
          match c.on_flush with
          | Some f when Queue.length c.buffered >= cap ->
              (* Flushed under the collector mutex so batches reach the
                 sink in emission order; the sink must not emit. *)
              let batch = drain_locked c in
              c.flushed <- c.flushed + List.length batch;
              f batch
          | Some _ -> ()
          | None ->
              (* Ring mode: overwrite the oldest event. *)
              if Queue.length c.buffered > cap then begin
                ignore (Queue.pop c.buffered);
                c.dropped <- c.dropped + 1
              end)
      | None -> ());
      Mutex.unlock c.mutex

let begin_span ?attrs name = emit ?attrs Begin name
let end_span ?attrs name = emit ?attrs End name
let instant ?attrs name = emit ?attrs Instant name
let counter ?attrs name = emit ?attrs Counter name

let span ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    emit ?attrs Begin name;
    match f () with
    | v ->
        emit End name;
        v
    | exception exn ->
        emit ~attrs:[ ("raised", Bool true) ] End name;
        raise exn
  end

let with_collector ?level ?clock f =
  let previous = Atomic.get installed
  and previous_decisions = Atomic.get decisions_on in
  let c = collector ?clock () in
  install ?level c;
  let restore () =
    match previous with
    | None -> uninstall ()
    | Some p ->
        install
          ~level:(if previous_decisions then Decisions else Spans)
          p
  in
  match f () with
  | v ->
      restore ();
      (v, events c)
  | exception exn ->
      restore ();
      raise exn

let attr ev key = List.assoc_opt key ev.attrs

let attr_int ev key =
  match attr ev key with Some (Int i) -> Some i | _ -> None

let attr_bool ev key =
  match attr ev key with Some (Bool b) -> Some b | _ -> None

let attr_string ev key =
  match attr ev key with Some (String s) -> Some s | _ -> None

let pp_value ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | String s -> Fmt.pf ppf "%S" s

let pp_phase ppf p =
  Fmt.string ppf
    (match p with Begin -> "B" | End -> "E" | Instant -> "i" | Counter -> "C")

let pp_event ppf ev =
  Fmt.pf ppf "@[<h>%a %s%a@]" pp_phase ev.phase ev.name
    (Fmt.list ~sep:Fmt.nop (fun ppf (k, v) ->
         Fmt.pf ppf " %s=%a" k pp_value v))
    ev.attrs
