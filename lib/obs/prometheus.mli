(** Prometheus text exposition.

    A minimal renderer of the Prometheus text format (version 0.0.4):
    metric families with [# HELP]/[# TYPE] headers and one sample line
    per label set.  The planning service answers its [prometheus] op
    with this, so the server scrapes like any other target:

    {v
    # HELP nocplan_requests_total Responses by outcome.
    # TYPE nocplan_requests_total counter
    nocplan_requests_total{outcome="served"} 12
    nocplan_request_latency_ms{quantile="0.5"} 18.4
    nocplan_request_latency_ms_count 12
    v}

    Summaries follow the convention above: quantile samples on the
    base name plus [_count]/[_sum] suffixed samples, all declared by
    one [summary] TYPE line.  Empty reservoirs simply omit the
    quantile samples — absent is the Prometheus idiom for "no
    observations", never a quantile of zero samples. *)

type kind = Counter | Gauge | Summary

type sample = {
  suffix : string;  (** appended to the family name, e.g. ["_count"] *)
  labels : (string * string) list;
  value : float;
}

val sample : ?suffix:string -> ?labels:(string * string) list -> float -> sample

type metric = {
  name : string;
  help : string option;
  kind : kind;
  samples : sample list;
}

val metric : ?help:string -> kind -> name:string -> sample list -> metric
(** @raise Invalid_argument if [name] or a label name is not a valid
    Prometheus identifier ([[a-zA-Z_:][a-zA-Z0-9_:]*] for metric
    names, no colon for label names). *)

val render : metric list -> string
(** The exposition document; each family renders its [# HELP] (when
    given), [# TYPE], then its samples in order. *)
