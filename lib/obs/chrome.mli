(** Chrome trace-event export.

    Renders a {!Trace.event} list as the JSON object format of the
    Chrome trace-event specification, so a [--trace out.json] run
    opens directly in [chrome://tracing] or Perfetto:

    {v
    { "traceEvents":
        [ { "name": "scheduler.run", "cat": "nocplan", "ph": "B",
            "ts": 12.0, "pid": 1, "tid": 0,
            "args": { "policy": "greedy", "reuse": 2 } },
          ... ],
      "displayTimeUnit": "ms" }
    v}

    Phases map 1:1: [Begin]→["B"], [End]→["E"], [Instant]→["i"] (with
    thread scope ["s": "t"]), [Counter]→["C"].  Timestamps are the
    collector clock's microseconds; attrs become ["args"]. *)

val to_string : Trace.event list -> string
(** The complete JSON document, ending in a newline. *)

val to_file : string -> Trace.event list -> unit

(** {1 Streaming}

    For long-running processes ([nocplan serve --trace]) the
    whole-lifetime event list would grow without bound; instead the
    collector is created with a capacity and an [on_flush] that
    appends each batch here, so memory stays at one ring's worth while
    the file grows incrementally.  The document on disk is the same
    trace-event JSON as {!to_file} once {!close_stream} has run; both
    Chrome and Perfetto also accept a file cut short before the
    closing bracket (a crashed server still leaves a loadable
    trace). *)

type stream

val stream : string -> stream
(** Open [path] (truncating) and write the document preamble. *)

val stream_events : stream -> Trace.event list -> unit
(** Append a batch of events and flush the channel.
    @raise Invalid_argument after {!close_stream}. *)

val close_stream : stream -> int
(** Write the document epilogue and close the file; returns the total
    number of events written.  Idempotent. *)
