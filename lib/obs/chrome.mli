(** Chrome trace-event export.

    Renders a {!Trace.event} list as the JSON object format of the
    Chrome trace-event specification, so a [--trace out.json] run
    opens directly in [chrome://tracing] or Perfetto:

    {v
    { "traceEvents":
        [ { "name": "scheduler.run", "cat": "nocplan", "ph": "B",
            "ts": 12.0, "pid": 1, "tid": 0,
            "args": { "policy": "greedy", "reuse": 2 } },
          ... ],
      "displayTimeUnit": "ms" }
    v}

    Phases map 1:1: [Begin]→["B"], [End]→["E"], [Instant]→["i"] (with
    thread scope ["s": "t"]), [Counter]→["C"].  Timestamps are the
    collector clock's microseconds; attrs become ["args"]. *)

val to_string : Trace.event list -> string
(** The complete JSON document, ending in a newline. *)

val to_file : string -> Trace.event list -> unit
