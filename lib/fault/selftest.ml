module Coord = Nocplan_noc.Coord
module Link = Nocplan_noc.Link
module Topology = Nocplan_noc.Topology
module Scheduler = Nocplan_core.Scheduler

type policy = Eager | Interleaved

let policy_label = function Eager -> "eager" | Interleaved -> "interleaved"
let pp_policy ppf p = Fmt.string ppf (policy_label p)

type params = { router_test : int; link_test : int; lanes : int }

let params ?(router_test = 2000) ?(link_test = 500) ?(lanes = 4) () =
  if router_test < 0 then
    invalid_arg "Selftest.params: negative router_test";
  if link_test < 0 then invalid_arg "Selftest.params: negative link_test";
  if lanes < 1 then invalid_arg "Selftest.params: lanes < 1";
  { router_test; link_test; lanes }

(* Router BISTs run in waves of [lanes] concurrent engines, in
   row-major router order; router i's verdict lands at the end of its
   wave.  A channel's own test starts once every router it touches has
   passed. *)
let router_done p topology c =
  ((Topology.index topology c / p.lanes) + 1) * p.router_test

let link_done p topology = function
  | Link.Inject c | Link.Eject c -> router_done p topology c + p.link_test
  | Link.Channel (a, b) ->
      max (router_done p topology a) (router_done p topology b) + p.link_test

let all_links topology =
  List.concat_map
    (fun c ->
      Link.Inject c :: Link.Eject c
      :: List.map (Link.channel c) (Topology.neighbors topology c))
    (Topology.coords topology)

let horizon p topology =
  List.fold_left
    (fun acc l -> max acc (link_done p topology l))
    0 (all_links topology)

let ready_times ?(policy = Interleaved) p topology =
  let links = all_links topology in
  match policy with
  | Interleaved -> List.map (fun l -> (l, link_done p topology l)) links
  | Eager ->
      (* test-first: no test traffic until the whole network has
         passed — the conservative health phase the makespan
         comparison benchmarks Interleaved against *)
      let h = horizon p topology in
      List.map (fun l -> (l, h)) links

let gate ?policy p topology config =
  { config with Scheduler.link_ready = ready_times ?policy p topology }

let schedule ?access ?policy p system config =
  Scheduler.run ?access system
    (gate ?policy p system.Nocplan_core.System.topology config)
