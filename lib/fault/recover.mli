(** Fault-aware session recovery.

    The detour-routing counterpart of {!Nocplan_core.Replan}: when
    routers or links die mid-session, [after] keeps the finished
    tests, voids the in-flight ones, prices the remainder over
    {!Detour} routes on the degraded system — and, unlike the plain
    replanner, {e abandons} modules the fault set leaves without any
    test path instead of raising [Unschedulable].  The fraction still
    testable is the availability figure the sweeps plot. *)

type outcome = {
  kept : Nocplan_core.Schedule.entry list;
      (** finished strictly before the event *)
  voided : Nocplan_core.Schedule.entry list;  (** in flight; discarded *)
  abandoned : int list;
      (** module ids with no test path on the degraded NoC — sorted,
          {e cumulative} (includes the ids passed in) *)
  replanned : Nocplan_core.Schedule.entry list;
  makespan : int;  (** max finish over kept + replanned *)
  availability : float;
      (** (modules - abandoned) / modules, in [0, 1] *)
}

val after :
  ?policy:Nocplan_core.Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?abandoned:int list ->
  reuse:int ->
  at:int ->
  faults:Detour.fault_set ->
  Nocplan_core.System.t ->
  Nocplan_core.Schedule.t ->
  outcome
(** [after ~reuse ~at ~faults system schedule] reacts to [faults]
    materializing at instant [at] of [schedule].  Entries finished by
    [at] are kept (their processors count as pretested); in-flight and
    future entries are voided; remaining modules are re-planned from
    [at] on the degraded system with a detour-routed access table.  A
    remaining module none of whose endpoint pairs is feasible over
    healthy routes — directly, or transitively because every usable
    source/sink processor is itself untestable — is abandoned rather
    than scheduled.  [abandoned] carries the ids already given up in
    earlier events of the same campaign; they stay abandoned and are
    excluded from coverage.

    Emits a ["fault.replan"] trace span (the detour table build inside
    adds its own ["fault.detour"] span).

    @raise Invalid_argument on a negative [at] or out-of-range
    [reuse].
    @raise Nocplan_core.Scheduler.Unschedulable only through the power
    limit: path existence is prefiltered, but a cap no feasible pair
    fits under still surfaces. *)

val availability_of : Nocplan_core.System.t -> abandoned:int list -> float

type violation =
  | Coverage of int
      (** non-abandoned module not tested exactly once across
          kept + replanned *)
  | Abandoned_but_tested of int
  | Too_early of Nocplan_core.Schedule.entry
  | Entry_invalid of Nocplan_core.Schedule.entry
      (** infeasible or mispriced under the detour-routed table *)
  | Faulty_link_used of {
      entry : Nocplan_core.Schedule.entry;
      link : Nocplan_noc.Link.t;
    }  (** a replanned test touches a blocked channel *)
  | Endpoint_conflict of Nocplan_core.Resource.endpoint
  | Link_conflict of Nocplan_noc.Link.t
  | Processor_not_ready of {
      user : Nocplan_core.Schedule.entry;
      processor_id : int;
    }

val validate :
  ?application:Nocplan_proc.Processor.application ->
  reuse:int ->
  at:int ->
  faults:Detour.fault_set ->
  Nocplan_core.System.t ->
  outcome ->
  (unit, violation list) result
(** Re-derive the detour table and degraded system from scratch and
    check the outcome against them: abandoned modules untested, the
    rest covered exactly once; replanned entries start at or after
    [at], are feasible and correctly priced under detour routing, and
    touch no blocked channel; no endpoint or channel double-booking
    among replanned entries; processor endpoints only used after their
    own test.  Shares no state with {!after}. *)

val pp_outcome : outcome Fmt.t
val pp_violation : violation Fmt.t
