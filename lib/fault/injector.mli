(** Seeded fault injection campaigns.

    Kills routers and channels at drawn instants of a running test
    session and drives {!Recover.after} at each event, accumulating
    the fault set, the surviving schedule and the abandoned modules —
    the engine behind the availability sweeps and the [faults] CLI.

    Everything is deterministic in the seed: {!draw} makes one seeded
    permutation of all candidate targets plus one time per target, and
    a rate takes a prefix of that sequence.  Fault sets at increasing
    rates are therefore {e nested}, so the {e injected fault count} of
    a {!sweep} is monotone by construction.  Availability usually falls
    with the rate too, but that is not guaranteed: an extra early fault
    triggers a replan that can move a module ahead of a later shared
    fault which would have abandoned it at the lower rate, so
    availability can locally rise (corpus sweeps hit this on roughly
    0.5% of synthetic systems). *)

type target =
  | Router of Nocplan_noc.Coord.t
  | Channel of Nocplan_noc.Link.t

val pp_target : target Fmt.t

type event = { at : int; target : target }

val pp_event : event Fmt.t

val candidates : Nocplan_noc.Topology.t -> target list
(** Everything that can fail, in deterministic order: every router
    (row-major), then every directed inter-router channel. *)

val draw :
  seed:int -> rate:float -> horizon:int -> Nocplan_noc.Topology.t -> event list
(** [ceil (rate * candidates)] fault events with times uniform in
    [[1, horizon]], sorted by time.  Same seed, higher rate: a
    superset of the events.
    @raise Invalid_argument if [rate] is outside [[0, 1]] or
    [horizon < 1]. *)

val fault_set_of : target list -> Detour.fault_set

type step = {
  at : int;
  injected : target list;  (** targets that died at this instant *)
  faults : Detour.fault_set;  (** cumulative fault set after them *)
  outcome : Recover.outcome;
}

type run = {
  baseline : Nocplan_core.Schedule.t;
      (** the fault-free schedule the campaign starts from — with no
          events, [schedule] is this very value (physical equality,
          hence bit-identical to the plain scheduler output) *)
  steps : step list;
  schedule : Nocplan_core.Schedule.t;  (** final kept + replanned schedule *)
  faults : Detour.fault_set;
  abandoned : int list;
  makespan : int;
  availability : float;
  replans : int;  (** distinct event instants handled *)
}

val run :
  ?policy:Nocplan_core.Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  reuse:int ->
  events:event list ->
  Nocplan_core.System.t ->
  run
(** Schedule the session fault-free, then replay [events] in time
    order: events sharing an instant are injected together, each
    distinct instant drives one {!Recover.after} against the schedule
    surviving so far.  Emits a ["fault.inject"] trace instant per
    event group.  Raises as {!Recover.after}. *)

type point = {
  rate : float;
  injected : int;
  availability : float;
  makespan : int;
  abandoned_count : int;
  replans : int;
}

val sweep :
  ?policy:Nocplan_core.Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  reuse:int ->
  seed:int ->
  rates:float list ->
  Nocplan_core.System.t ->
  (point * run) list
(** One campaign per rate, all drawn with [seed] over the fault-free
    makespan as horizon — the availability / makespan-degradation
    curve. *)

val pp_point : point Fmt.t
