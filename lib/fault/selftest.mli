(** Router and link self-test scheduling.

    Before the NoC can be trusted as a test access mechanism, the
    network itself must be tested: each router runs a BIST of its
    switching fabric, then each channel (inter-router and local
    inject/eject ports) runs a link test once both its end routers
    have passed.  This module models that health phase as per-channel
    ready times and feeds them to the scheduler's [link_ready] gates —
    a channel carries no test traffic before its gate opens.

    Two policies:
    - {!Eager} — test-first: no core test starts before the whole
      network has passed (every gate opens at the common {!horizon}).
    - {!Interleaved} — test-on-demand: each channel opens the moment
      its own chain of self-tests completes, so core tests in
      already-verified regions overlap the remaining health phase. *)

type policy = Eager | Interleaved

val policy_label : policy -> string
val pp_policy : policy Fmt.t

type params = private { router_test : int; link_test : int; lanes : int }
(** [router_test]: cycles of one router BIST; [link_test]: cycles of
    one channel test; [lanes]: how many router BISTs run concurrently
    (wave width). *)

val params : ?router_test:int -> ?link_test:int -> ?lanes:int -> unit -> params
(** Defaults: 2000-cycle router BIST, 500-cycle link test, 4 lanes.
    @raise Invalid_argument on a negative test length or [lanes < 1]. *)

val router_done : params -> Nocplan_noc.Topology.t -> Nocplan_noc.Coord.t -> int
(** The instant this router's BIST verdict is available: routers run
    in waves of [lanes] in row-major order. *)

val link_done : params -> Nocplan_noc.Topology.t -> Nocplan_noc.Link.t -> int
(** The instant this channel's own test completes: the latest verdict
    among the routers it touches, plus the link test itself. *)

val all_links : Nocplan_noc.Topology.t -> Nocplan_noc.Link.t list
(** Every channel of the topology: per-tile inject and eject ports
    plus all directed inter-router channels (wraparounds included on
    tori). *)

val horizon : params -> Nocplan_noc.Topology.t -> int
(** The instant the whole network has passed — the common gate time of
    the {!Eager} policy. *)

val ready_times :
  ?policy:policy ->
  params ->
  Nocplan_noc.Topology.t ->
  (Nocplan_noc.Link.t * int) list
(** Per-channel gate times under the policy (default {!Interleaved}) —
    the value for {!Nocplan_core.Scheduler.config}'s [link_ready]. *)

val gate :
  ?policy:policy ->
  params ->
  Nocplan_noc.Topology.t ->
  Nocplan_core.Scheduler.config ->
  Nocplan_core.Scheduler.config
(** The configuration with its [link_ready] replaced by
    {!ready_times}. *)

val schedule :
  ?access:Nocplan_core.Test_access.table ->
  ?policy:policy ->
  params ->
  Nocplan_core.System.t ->
  Nocplan_core.Scheduler.config ->
  Nocplan_core.Schedule.t
(** {!Nocplan_core.Scheduler.run} under {!gate}: the core test
    schedule with the health phase folded in.  Raises as
    [Scheduler.run]. *)
