module Link = Nocplan_noc.Link
module Processor = Nocplan_proc.Processor
module Trace = Nocplan_obs.Trace
module System = Nocplan_core.System
module Schedule = Nocplan_core.Schedule
module Scheduler = Nocplan_core.Scheduler
module Test_access = Nocplan_core.Test_access
module Resource = Nocplan_core.Resource

type outcome = {
  kept : Schedule.entry list;
  voided : Schedule.entry list;
  abandoned : int list;
  replanned : Schedule.entry list;
  makespan : int;
  availability : float;
}

let availability_of system ~abandoned =
  let total = List.length (System.module_ids system) in
  if total = 0 then 1.0
  else float_of_int (total - List.length abandoned) /. float_of_int total

let after ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ?(abandoned = []) ~reuse ~at ~faults system
    (schedule : Schedule.t) =
  if at < 0 then invalid_arg "Recover.after: negative event time";
  Trace.span "fault.replan"
    ~attrs:
      [
        ("at", Trace.Int at);
        ("faults", Trace.Int (Detour.fault_count faults));
      ]
  @@ fun () ->
  let kept, voided =
    List.partition
      (fun (e : Schedule.entry) -> e.Schedule.finish <= at)
      schedule.Schedule.entries
  in
  let done_ids =
    List.map (fun (e : Schedule.entry) -> e.Schedule.module_id) kept
  in
  let remaining =
    List.filter
      (fun id -> (not (List.mem id done_ids)) && not (List.mem id abandoned))
      (System.module_ids system)
  in
  let topology = system.System.topology in
  let detour = Detour.table topology faults in
  let degraded =
    System.with_failed_links system (Detour.blocked_links topology faults)
  in
  let access =
    Test_access.table ~application ~route:(Detour.route_fn detour) degraded
  in
  let endpoints = Resource.all_endpoints degraded ~reuse in
  let pretested =
    List.filter (fun id -> System.is_processor_module system id) done_ids
  in
  (* Which remaining modules can still be tested at all?  Closure over
     the endpoint pool: the pool starts as the external ports plus the
     pretested processors; a module is testable when some feasible
     pair draws only on the pool; a testable within-reuse processor
     then joins the pool.  Whatever the fixpoint leaves out has no
     test path on the degraded NoC and is abandoned — handing it to
     the scheduler would only deadlock it. *)
  let avail = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace avail id ()) pretested;
  let endpoint_live = function
    | Resource.External_in _ | Resource.External_out _ -> true
    | Resource.Processor id -> Hashtbl.mem avail id
  in
  let testable id =
    List.exists
      (fun src ->
        endpoint_live src
        && List.exists
             (fun snk ->
               endpoint_live snk
               && Resource.valid_pair ~source:src ~sink:snk
               && Test_access.table_feasible access ~module_id:id ~source:src
                    ~sink:snk)
             endpoints)
      endpoints
  in
  let schedulable = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if (not (Hashtbl.mem schedulable id)) && testable id then begin
          Hashtbl.replace schedulable id ();
          if
            System.is_processor_module system id
            && List.exists (Resource.equal (Resource.Processor id)) endpoints
          then Hashtbl.replace avail id ();
          changed := true
        end)
      remaining
  done;
  let schedulable_ids = List.filter (Hashtbl.mem schedulable) remaining in
  let newly_abandoned =
    List.filter (fun id -> not (Hashtbl.mem schedulable id)) remaining
  in
  let abandoned = List.sort_uniq Int.compare (abandoned @ newly_abandoned) in
  let replanned =
    if schedulable_ids = [] then []
    else
      (Scheduler.run ~access degraded
         (Scheduler.config ~policy ~application ~power_limit ~start_time:at
            ~modules:schedulable_ids ~pretested ~reuse ()))
        .Schedule.entries
  in
  let makespan =
    List.fold_left
      (fun acc (e : Schedule.entry) -> max acc e.Schedule.finish)
      0 (kept @ replanned)
  in
  {
    kept;
    voided;
    abandoned;
    replanned;
    makespan;
    availability = availability_of system ~abandoned;
  }

type violation =
  | Coverage of int
  | Abandoned_but_tested of int
  | Too_early of Schedule.entry
  | Entry_invalid of Schedule.entry
  | Faulty_link_used of { entry : Schedule.entry; link : Link.t }
  | Endpoint_conflict of Resource.endpoint
  | Link_conflict of Link.t
  | Processor_not_ready of { user : Schedule.entry; processor_id : int }

let validate ?(application = Processor.Bist) ~reuse ~at ~faults system o =
  ignore reuse;
  let topology = system.System.topology in
  let detour = Detour.table topology faults in
  let blocked_list = Detour.blocked_links topology faults in
  let blocked = Link.Set.of_list blocked_list in
  let degraded = System.with_failed_links system blocked_list in
  let access =
    Test_access.table ~application ~route:(Detour.route_fn detour) degraded
  in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let combined = o.kept @ o.replanned in
  (* every module is either abandoned and untested, or tested exactly
     once across kept + replanned *)
  List.iter
    (fun id ->
      let count =
        List.length
          (List.filter
             (fun (e : Schedule.entry) -> e.Schedule.module_id = id)
             combined)
      in
      if List.mem id o.abandoned then begin
        if count > 0 then add (Abandoned_but_tested id)
      end
      else if count <> 1 then add (Coverage id))
    (System.module_ids system);
  (* replanned entries: timing, feasibility under the detour-priced
     table, and — the point of the subsystem — healthy links only *)
  List.iter
    (fun (e : Schedule.entry) ->
      if e.Schedule.start < at then add (Too_early e);
      let feasible =
        match
          Test_access.table_cost access ~module_id:e.Schedule.module_id
            ~source:e.Schedule.source ~sink:e.Schedule.sink
        with
        | c ->
            Test_access.table_feasible access ~module_id:e.Schedule.module_id
              ~source:e.Schedule.source ~sink:e.Schedule.sink
            && e.Schedule.finish - e.Schedule.start = c.Test_access.duration
        | exception Invalid_argument _ -> false
      in
      if not feasible then add (Entry_invalid e);
      List.iter
        (fun l ->
          if Link.Set.mem l blocked then add (Faulty_link_used { entry = e; link = l }))
        e.Schedule.links)
    o.replanned;
  (* exclusivity among replanned entries (kept entries all end by [at]) *)
  let overlapping (a : Schedule.entry) (b : Schedule.entry) =
    a.Schedule.start < b.Schedule.finish && b.Schedule.start < a.Schedule.finish
  in
  let rec pairs = function
    | [] -> ()
    | (e : Schedule.entry) :: rest ->
        List.iter
          (fun (e' : Schedule.entry) ->
            if overlapping e e' then begin
              List.iter
                (fun (a, b) ->
                  if Resource.equal a b then add (Endpoint_conflict a))
                [
                  (e.Schedule.source, e'.Schedule.source);
                  (e.Schedule.source, e'.Schedule.sink);
                  (e.Schedule.sink, e'.Schedule.source);
                  (e.Schedule.sink, e'.Schedule.sink);
                ];
              let links' = Link.Set.of_list e'.Schedule.links in
              List.iter
                (fun l -> if Link.Set.mem l links' then add (Link_conflict l))
                e.Schedule.links
            end)
          rest;
        pairs rest
  in
  pairs o.replanned;
  (* processor precedence across the whole session *)
  let tested_by id =
    match
      List.find_opt
        (fun (e : Schedule.entry) -> e.Schedule.module_id = id)
        combined
    with
    | Some e -> Some e.Schedule.finish
    | None -> None
  in
  List.iter
    (fun (e : Schedule.entry) ->
      let check = function
        | Resource.Processor id -> (
            match tested_by id with
            | Some finish when finish <= e.Schedule.start -> ()
            | Some _ | None ->
                add (Processor_not_ready { user = e; processor_id = id }))
        | Resource.External_in _ | Resource.External_out _ -> ()
      in
      check e.Schedule.source;
      check e.Schedule.sink)
    o.replanned;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>fault recovery (makespan %d, availability %.3f):@,\
     kept %d tests, voided %d, abandoned %d, replanned %d@,\
     %a@]"
    o.makespan o.availability (List.length o.kept) (List.length o.voided)
    (List.length o.abandoned)
    (List.length o.replanned)
    (Fmt.list ~sep:Fmt.cut (fun ppf (e : Schedule.entry) ->
         Fmt.pf ppf "  [%d,%d) module %d: %a -> %a" e.Schedule.start
           e.Schedule.finish e.Schedule.module_id Resource.pp
           e.Schedule.source Resource.pp e.Schedule.sink))
    o.replanned

let pp_violation ppf = function
  | Coverage id -> Fmt.pf ppf "module %d not covered exactly once" id
  | Abandoned_but_tested id ->
      Fmt.pf ppf "module %d both abandoned and scheduled" id
  | Too_early e ->
      Fmt.pf ppf "replanned entry starts before the event: module %d at %d"
        e.Schedule.module_id e.Schedule.start
  | Entry_invalid e ->
      Fmt.pf ppf "replanned entry infeasible on the degraded NoC: module %d"
        e.Schedule.module_id
  | Faulty_link_used { entry; link } ->
      Fmt.pf ppf "module %d routed over faulty link %a" entry.Schedule.module_id
        Link.pp link
  | Endpoint_conflict r -> Fmt.pf ppf "endpoint %a double-booked" Resource.pp r
  | Link_conflict l -> Fmt.pf ppf "link %a double-booked" Link.pp l
  | Processor_not_ready { user; processor_id } ->
      Fmt.pf ppf "processor %d used before its test completed (module %d)"
        processor_id user.Schedule.module_id
