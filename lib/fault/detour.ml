module Coord = Nocplan_noc.Coord
module Link = Nocplan_noc.Link
module Topology = Nocplan_noc.Topology
module Xy = Nocplan_noc.Xy_routing
module Trace = Nocplan_obs.Trace
module Coord_set = Set.Make (Coord)

type fault_set = { routers : Coord.t list; links : Link.t list }

let fault_set ?(routers = []) ?(links = []) () =
  {
    routers = List.sort_uniq Coord.compare routers;
    links = List.sort_uniq Link.compare links;
  }

let no_faults = fault_set ()
let is_empty fs = fs.routers = [] && fs.links = []

let union a b =
  fault_set ~routers:(a.routers @ b.routers) ~links:(a.links @ b.links) ()

let fault_count fs = List.length fs.routers + List.length fs.links

let pp_fault_set ppf fs =
  Fmt.pf ppf "@[<h>faults(%d routers: %a; %d links: %a)@]"
    (List.length fs.routers)
    (Fmt.list ~sep:Fmt.comma Coord.pp)
    fs.routers (List.length fs.links)
    (Fmt.list ~sep:Fmt.comma Link.pp)
    fs.links

(* Every channel the fault set takes out of service: the channels
   listed directly, plus — a dead router neither routes nor serves its
   tile — every channel incident to a faulty router, including its
   local inject/eject ports. *)
let blocked_links topology fs =
  let incident c =
    Link.Inject c :: Link.Eject c
    :: List.concat_map
         (fun nb -> [ Link.channel c nb; Link.channel nb c ])
         (Topology.neighbors topology c)
  in
  List.sort_uniq Link.compare (fs.links @ List.concat_map incident fs.routers)

type t = {
  topology : Topology.t;
  faults : fault_set;
  faulty_routers : Coord_set.t;
  faulty_links : Link.Set.t;
  (* dist.(d).(u): hops from router u to destination d over healthy
     directed channels; [max_int] when d is unreachable from u. *)
  dist : int array array;
}

let topology t = t.topology
let faults t = t.faults
let router_ok t c = not (Coord_set.mem c t.faulty_routers)

let channel_ok t a b =
  router_ok t a && router_ok t b
  && not (Link.Set.mem (Link.channel a b) t.faulty_links)

let table topology fs =
  Trace.span "fault.detour"
    ~attrs:
      [
        ("routers", Trace.Int (List.length fs.routers));
        ("links", Trace.Int (List.length fs.links));
      ]
  @@ fun () ->
  let n = Topology.router_count topology in
  let t0 =
    {
      topology;
      faults = fs;
      faulty_routers = Coord_set.of_list fs.routers;
      faulty_links = Link.Set.of_list fs.links;
      dist = [||];
    }
  in
  (* One backward BFS per destination over the healthy directed graph:
     u is one hop closer than v whenever the channel u -> v is alive.
     Distances are unique, so neighbour enumeration order only breaks
     path-reconstruction ties (deterministically, in [Topology.neighbors]
     order). *)
  let dist =
    Array.init n (fun d ->
        let dd = Array.make n max_int in
        let dc = Topology.of_index topology d in
        if router_ok t0 dc then begin
          dd.(d) <- 0;
          let q = Queue.create () in
          Queue.push dc q;
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            let dv = dd.(Topology.index topology v) in
            List.iter
              (fun u ->
                let ui = Topology.index topology u in
                if dd.(ui) = max_int && channel_ok t0 u v then begin
                  dd.(ui) <- dv + 1;
                  Queue.push u q
                end)
              (Topology.neighbors topology v)
          done
        end;
        dd)
  in
  { t0 with dist }

(* Whether the plain XY path is fully healthy — if so the detour
   router returns it verbatim, so the empty fault set reproduces
   {!Nocplan_noc.Xy_routing} exactly (and with it, bit-identical
   access tables and schedules). *)
let xy_healthy t ~src ~dst =
  List.for_all
    (fun l ->
      (not (Link.Set.mem l t.faulty_links))
      && List.for_all (router_ok t) (Link.routers l))
    (Xy.links t.topology ~src ~dst)

let route t ~src ~dst =
  if
    (not (Topology.in_bounds t.topology src))
    || not (Topology.in_bounds t.topology dst)
  then invalid_arg "Detour.route: endpoint out of bounds";
  if
    (not (router_ok t src))
    || (not (router_ok t dst))
    || Link.Set.mem (Link.Inject src) t.faulty_links
    || Link.Set.mem (Link.Eject dst) t.faulty_links
  then None
  else if xy_healthy t ~src ~dst then Some (Xy.route t.topology ~src ~dst)
  else begin
    let dd = t.dist.(Topology.index t.topology dst) in
    if dd.(Topology.index t.topology src) = max_int then None
    else begin
      let rec go c acc =
        if Coord.equal c dst then List.rev (c :: acc)
        else
          let dc = dd.(Topology.index t.topology c) in
          let next =
            List.find
              (fun v ->
                channel_ok t c v && dd.(Topology.index t.topology v) = dc - 1)
              (Topology.neighbors t.topology c)
          in
          go next (c :: acc)
      in
      Some (go src [])
    end
  end

let links t ~src ~dst = Option.map Xy.links_of_route (route t ~src ~dst)
let route_fn t ~src ~dst = route t ~src ~dst

let reachable t ~src ~dst =
  match route t ~src ~dst with Some _ -> true | None -> false
