module Coord = Nocplan_noc.Coord
module Link = Nocplan_noc.Link
module Topology = Nocplan_noc.Topology
module System = Nocplan_core.System
module Schedule = Nocplan_core.Schedule
module Scheduler = Nocplan_core.Scheduler
module Processor = Nocplan_proc.Processor
module Trace = Nocplan_obs.Trace
module Rng = Nocplan_itc02.Data_gen.Rng

type target = Router of Coord.t | Channel of Link.t

let pp_target ppf = function
  | Router c -> Fmt.pf ppf "router %a" Coord.pp c
  | Channel l -> Fmt.pf ppf "channel %a" Link.pp l

type event = { at : int; target : target }

let pp_event ppf e = Fmt.pf ppf "@%d %a" e.at pp_target e.target

let candidates topology =
  List.map (fun c -> Router c) (Topology.coords topology)
  @ List.concat_map
      (fun c ->
        List.map (fun nb -> Channel (Link.channel c nb)) (Topology.neighbors topology c))
      (Topology.coords topology)

let draw ~seed ~rate ~horizon topology =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Injector.draw: rate outside [0, 1]";
  if horizon < 1 then invalid_arg "Injector.draw: horizon < 1";
  let targets = Array.of_list (candidates topology) in
  let n = Array.length targets in
  let rng = Rng.create (Int64.of_int seed) in
  (* One permutation and one time per candidate, drawn up front: a
     higher rate takes a longer prefix of the same sequence, so the
     fault sets of a sweep are nested and the injected count is
     monotone in rate by construction.  (Availability is not: replans
     caused by the extra faults can reorder work around later shared
     faults.) *)
  for i = n - 1 downto 1 do
    let j = Rng.int rng ~bound:(i + 1) in
    let tmp = targets.(i) in
    targets.(i) <- targets.(j);
    targets.(j) <- tmp
  done;
  let times = Array.init n (fun _ -> Rng.int_range rng ~lo:1 ~hi:horizon) in
  let k = min n (int_of_float (Float.round (rate *. float_of_int n))) in
  List.stable_sort
    (fun a b -> Int.compare a.at b.at)
    (List.init k (fun i -> { at = times.(i); target = targets.(i) }))

let fault_set_of targets =
  Detour.fault_set
    ~routers:(List.filter_map (function Router c -> Some c | _ -> None) targets)
    ~links:(List.filter_map (function Channel l -> Some l | _ -> None) targets)
    ()

type step = {
  at : int;
  injected : target list;
  faults : Detour.fault_set;  (* cumulative, after this step *)
  outcome : Recover.outcome;
}

type run = {
  baseline : Schedule.t;
  steps : step list;
  schedule : Schedule.t;
  faults : Detour.fault_set;
  abandoned : int list;
  makespan : int;
  availability : float;
  replans : int;
}

let run ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ~reuse ~events system =
  let baseline =
    Scheduler.run system
      (Scheduler.config ~policy ~application ~power_limit ~reuse ())
  in
  let rec group = function
    | [] -> []
    | (e : event) :: rest ->
        let same, others =
          List.partition (fun (e' : event) -> e'.at = e.at) rest
        in
        (e.at, e.target :: List.map (fun (e' : event) -> e'.target) same)
        :: group others
  in
  let groups =
    group
      (List.stable_sort
         (fun (a : event) (b : event) -> Int.compare a.at b.at)
         events)
  in
  let step_fold (sched, faults, abandoned, steps) (at, targets) =
    let faults = Detour.union faults (fault_set_of targets) in
    Trace.instant "fault.inject"
      ~attrs:
        [ ("at", Trace.Int at); ("targets", Trace.Int (List.length targets)) ];
    let outcome =
      Recover.after ~policy ~application ~power_limit ~abandoned ~reuse ~at
        ~faults system sched
    in
    let sched' =
      Schedule.of_entries (outcome.Recover.kept @ outcome.Recover.replanned)
    in
    ( sched',
      faults,
      outcome.Recover.abandoned,
      { at; injected = targets; faults; outcome } :: steps )
  in
  let schedule, faults, abandoned, steps_rev =
    List.fold_left step_fold (baseline, Detour.no_faults, [], []) groups
  in
  {
    baseline;
    steps = List.rev steps_rev;
    schedule;
    faults;
    abandoned;
    makespan = schedule.Schedule.makespan;
    availability = Recover.availability_of system ~abandoned;
    replans = List.length groups;
  }

type point = {
  rate : float;
  injected : int;
  availability : float;
  makespan : int;
  abandoned_count : int;
  replans : int;
}

let sweep ?policy ?application ?power_limit ~reuse ~seed ~rates system =
  let baseline_cfg =
    Scheduler.config ?policy ?application ?power_limit ~reuse ()
  in
  let baseline = Scheduler.run system baseline_cfg in
  let horizon = max 1 baseline.Schedule.makespan in
  List.map
    (fun rate ->
      let events = draw ~seed ~rate ~horizon system.System.topology in
      let r = run ?policy ?application ?power_limit ~reuse ~events system in
      ( {
          rate;
          injected = List.length events;
          availability = r.availability;
          makespan = r.makespan;
          abandoned_count = List.length r.abandoned;
          replans = r.replans;
        },
        r ))
    rates

let pp_point ppf p =
  Fmt.pf ppf
    "rate %.3f: %d faults, %d replans, %d abandoned, availability %.3f, makespan %d"
    p.rate p.injected p.replans p.abandoned_count p.availability p.makespan
