(** Fault-aware detour routing.

    Deterministic XY routing cannot steer around a dead router or
    channel: a single fault on a path makes every test using that path
    infeasible.  This module precomputes, for a given fault set, a
    table-based routing function that prefers the plain XY path and
    falls back to a shortest healthy detour when the XY path crosses a
    fault — the routing tables a NoC with per-router fault registers
    would hold.

    Tables are immutable after construction and safe to share across
    domains.  Construction is one backward BFS per destination over
    the healthy directed channel graph: O(routers · channels), a few
    microseconds on the paper-scale meshes. *)

type fault_set = private {
  routers : Nocplan_noc.Coord.t list;  (** dead routers, sorted *)
  links : Nocplan_noc.Link.t list;  (** dead channels, sorted *)
}
(** A set of failed network elements.  A dead router implies every
    channel incident to it (including its local inject/eject ports) is
    unusable; a dead channel leaves its end routers routable. *)

val fault_set :
  ?routers:Nocplan_noc.Coord.t list ->
  ?links:Nocplan_noc.Link.t list ->
  unit ->
  fault_set
(** Normalizing constructor: sorts and deduplicates. *)

val no_faults : fault_set
val is_empty : fault_set -> bool

val union : fault_set -> fault_set -> fault_set
(** The cumulative fault set as an injection campaign progresses. *)

val fault_count : fault_set -> int
val pp_fault_set : fault_set Fmt.t

val blocked_links : Nocplan_noc.Topology.t -> fault_set -> Nocplan_noc.Link.t list
(** Every channel the fault set takes out of service — the listed
    links plus all links incident to a dead router — sorted and
    deduplicated: the argument for {!Nocplan_core.System.with_failed_links}
    when deriving the degraded system. *)

type t
(** A routing table for one (topology, fault set). *)

val table : Nocplan_noc.Topology.t -> fault_set -> t
(** Build the table.  Emits a ["fault.detour"] trace span.  The empty
    fault set yields a table whose {!route} is extensionally equal to
    {!Nocplan_noc.Xy_routing.route} — and in fact {!route} returns the
    XY path verbatim whenever that path is fully healthy, so access
    tables and schedules built through a no-fault detour table are
    bit-identical to the classic ones. *)

val topology : t -> Nocplan_noc.Topology.t
val faults : t -> fault_set

val route :
  t -> src:Nocplan_noc.Coord.t -> dst:Nocplan_noc.Coord.t -> Nocplan_noc.Coord.t list option
(** The router path from [src] to [dst]: the XY path when it is fully
    healthy, otherwise a shortest path over healthy routers and
    channels (ties broken deterministically in
    {!Nocplan_noc.Topology.neighbors} order).  [None] when either
    endpoint's router is dead, its local inject/eject port is dead, or
    no healthy path exists.
    @raise Invalid_argument on an out-of-bounds coordinate. *)

val links :
  t -> src:Nocplan_noc.Coord.t -> dst:Nocplan_noc.Coord.t -> Nocplan_noc.Link.t list option
(** The channel sequence of {!route}: inject, inter-router channels,
    eject. *)

val reachable : t -> src:Nocplan_noc.Coord.t -> dst:Nocplan_noc.Coord.t -> bool

val route_fn :
  t ->
  src:Nocplan_noc.Coord.t ->
  dst:Nocplan_noc.Coord.t ->
  Nocplan_noc.Coord.t list option
(** {!route} shaped as a {!Nocplan_core.Test_access.route_fn}, for
    [Test_access.table ~route:(Detour.route_fn t)]. *)

val router_ok : t -> Nocplan_noc.Coord.t -> bool
(** The router at this coordinate is not in the fault set. *)

val channel_ok : t -> Nocplan_noc.Coord.t -> Nocplan_noc.Coord.t -> bool
(** The directed channel [a -> b] and both its end routers are
    healthy. *)
