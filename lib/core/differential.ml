type row = {
  label : string;
  outcome : (Backend.outcome, string) result;
}

let race_row ?clock ?backends ?access ~label system config =
  match Backend.race ?clock ?backends ?access system config with
  | outcome -> { label; outcome = Ok outcome }
  | exception Scheduler.Unschedulable msg -> { label; outcome = Error msg }
  | exception Invalid_argument msg -> { label; outcome = Error msg }

let sweep ?(domains = 1) ?clock ?backends instances =
  Domains.map ~domains
    (fun (label, system, config) ->
      race_row ?clock ?backends ~label system config)
    instances

let greedy_attempt (o : Backend.outcome) =
  List.find_opt
    (fun (a : Backend.attempt) -> a.Backend.backend = "greedy")
    o.Backend.attempts

let greedy_makespan row =
  match row.outcome with
  | Error _ -> None
  | Ok o -> (
      match greedy_attempt o with
      | Some { Backend.outcome = Ok s; _ } -> Some s.Schedule.makespan
      | Some { Backend.outcome = Error _; _ } | None -> None)

let race_never_worse row =
  match row.outcome with
  | Error _ -> true
  | Ok o -> (
      match greedy_makespan row with
      | None -> true
      | Some greedy -> o.Backend.schedule.Schedule.makespan <= greedy)

let all_backends_valid row =
  match row.outcome with
  | Error _ -> false
  | Ok o ->
      List.for_all
        (fun (a : Backend.attempt) ->
          match a.Backend.outcome with
          | Error _ -> true (* raised, nothing to validate *)
          | Ok _ -> a.Backend.valid)
        o.Backend.attempts
