let clamp requested =
  max 1 (min requested (Domain.recommended_domain_count ()))
