let clamp requested =
  max 1 (min requested (Domain.recommended_domain_count ()))

let map ?(domains = 1) f items =
  let domains = clamp domains in
  if domains = 1 then List.map f items
  else begin
    (* Round-robin slices keep per-domain work balanced when item cost
       correlates with position (e.g. corpora generated in size order),
       and reassembly by index restores input order exactly. *)
    let indexed = List.mapi (fun i x -> (i, x)) items in
    let slices =
      List.init domains (fun d ->
          List.filter (fun (i, _) -> i mod domains = d) indexed)
    in
    let workers =
      List.map
        (fun slice ->
          Domain.spawn (fun () -> List.map (fun (i, x) -> (i, f x)) slice))
        slices
    in
    let results = List.concat_map Domain.join workers in
    List.map (fun (i, _) -> List.assoc i results) indexed
  end
