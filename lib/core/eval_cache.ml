type snapshot = {
  evaluations : int;
  full_runs : int;
  resumed : int;
  exact_hits : int;
}

type t = {
  (* [system]/[access] are the cache's key; mutable because a placement
     move rebases the whole cache onto the mutated system ({!rebase}) —
     every retained trace always belongs to the current key. *)
  mutable system : System.t;
  cfg : Scheduler.config;
  mutable access : Test_access.table;
  (* One arena per cache: a cache already serves exactly one search
     chain (it is not domain-safe), which is the ownership contract
     [Scheduler.workspace] asks for. *)
  workspace : Scheduler.workspace;
  capacity : int;
  mutable traces : Scheduler.trace list;  (* most recently used first *)
  mutable evaluations : int;
  mutable full_runs : int;
  mutable resumed : int;
  mutable exact_hits : int;
}

let create ?(capacity = 4) ?access system cfg =
  if capacity < 1 then invalid_arg "Eval_cache.create: capacity must be >= 1";
  let application = cfg.Scheduler.application in
  let access =
    match access with
    | Some tbl when Test_access.table_for tbl ~system ~application -> tbl
    | Some _ | None -> Test_access.table ~application system
  in
  {
    system;
    cfg = { cfg with Scheduler.order = None };
    access;
    workspace = Scheduler.workspace ();
    capacity;
    traces = [];
    evaluations = 0;
    full_runs = 0;
    resumed = 0;
    exact_hits = 0;
  }

let access t = t.access
let traces t = t.traces
let system t = t.system

let matches t ~system cfg =
  t.system == system && t.cfg = { cfg with Scheduler.order = None }

let stats t =
  {
    evaluations = t.evaluations;
    full_runs = t.full_runs;
    resumed = t.resumed;
    exact_hits = t.exact_hits;
  }

(* Keep [trace] at the front; drop the least recently used entry
   beyond the capacity. *)
let remember t trace =
  let rest = List.filter (fun tr -> tr != trace) t.traces in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | tr :: rest -> tr :: take (n - 1) rest
  in
  t.traces <- trace :: take (t.capacity - 1) rest

let seed t trace =
  if not (Scheduler.trace_matches trace ~system:t.system t.cfg) then
    invalid_arg
      "Eval_cache.seed: trace was produced for another system or \
       configuration";
  remember t trace

let rebase t trace =
  let system = Scheduler.trace_system trace in
  (* Against the trace's own system this reduces to the configuration
     check (a trace's access table always matches its system). *)
  if not (Scheduler.trace_matches trace ~system t.cfg) then
    invalid_arg "Eval_cache.rebase: trace was produced under another \
                 configuration";
  let access = Scheduler.trace_access trace in
  if system == t.system && access == t.access then remember t trace
  else begin
    (* The key changed: every retained trace belongs to the old
       placement and must not be resumed under the new one. *)
    t.system <- system;
    t.access <- access;
    t.traces <- [ trace ]
  end

let evaluate t order =
  t.evaluations <- t.evaluations + 1;
  (* Rank entries by how many commits [resume] would replay verbatim,
     not by shared-prefix length: a trace with a shorter prefix but a
     narrower changed window can be far cheaper to resume from.  Ties
     keep the most recently used entry. *)
  let best =
    List.fold_left
      (fun acc tr ->
        let g = Scheduler.resume_gain tr order in
        match acc with
        | Some (_, best_g) when best_g >= g -> acc
        | _ -> Some (tr, g))
      None t.traces
  in
  let module Trace = Nocplan_obs.Trace in
  match best with
  | Some (tr, g) when g = max_int ->
      t.exact_hits <- t.exact_hits + 1;
      if Trace.enabled () then Trace.instant "eval.hit";
      remember t tr;
      tr
  | Some (tr, g) ->
      t.resumed <- t.resumed + 1;
      if Trace.enabled () then
        Trace.instant "eval.resume"
          ~attrs:
            [
              ("gain", Trace.Int g);
              ("modules", Trace.Int (Array.length order));
            ];
      let tr' = Scheduler.resume ~workspace:t.workspace tr order in
      remember t tr';
      tr'
  | None ->
      t.full_runs <- t.full_runs + 1;
      if Trace.enabled () then Trace.instant "eval.full";
      let tr =
        Scheduler.run_traced ~workspace:t.workspace ~access:t.access t.system
          { t.cfg with Scheduler.order = Some (Array.to_list order) }
      in
      remember t tr;
      tr

let schedule t order = Scheduler.trace_schedule (evaluate t order)

let seed_matching t trace =
  if Scheduler.trace_matches trace ~system:t.system t.cfg then remember t trace

module Shared = struct
  type cache = t

  type entry = { key : string; cache : cache }

  type registry = {
    capacity : int;
    mutex : Mutex.t;
    mutable entries : entry list;  (* most recently used first *)
    mutable hits : int;
    mutable misses : int;
  }

  let registry ?(capacity = 8) () =
    if capacity < 1 then
      invalid_arg "Eval_cache.Shared.registry: capacity must be >= 1";
    { capacity; mutex = Mutex.create (); entries = []; hits = 0; misses = 0 }

  let locked r f =
    Mutex.lock r.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.mutex) f

  let checkout r ~key ?cache_capacity ?access system cfg =
    locked r (fun () ->
        let resident, rest =
          List.partition (fun e -> String.equal e.key key) r.entries
        in
        r.entries <- rest;
        match resident with
        | { cache; _ } :: _ when matches cache ~system cfg ->
            r.hits <- r.hits + 1;
            (cache, true)
        | _ ->
            (* Either absent or keyed to a stale system instance (the
               table cache rebuilt the system after an eviction): the
               retained traces must not be resumed against the new
               instance, so start fresh. *)
            r.misses <- r.misses + 1;
            (create ?capacity:cache_capacity ?access system cfg, false))

  let checkin r ~key cache =
    locked r (fun () ->
        match List.find_opt (fun e -> String.equal e.key key) r.entries with
        | Some { cache = resident; _ } ->
            (* Another worker checked a cache in under this key while we
               held ours.  Keep the resident (later arrivals see it) and
               merge our traces into it, oldest first so its recency
               order ends with our most recent work. *)
            if resident != cache then
              List.iter (seed_matching resident) (List.rev cache.traces)
        | None ->
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | e :: rest -> e :: take (n - 1) rest
            in
            r.entries <- { key; cache } :: take (r.capacity - 1) r.entries)

  let hits r = locked r (fun () -> r.hits)
  let misses r = locked r (fun () -> r.misses)
  let length r = locked r (fun () -> List.length r.entries)
end
