(** The test planning engine.

    Event-driven list scheduler over the system's resources.  Pending
    cores are visited in {!Priority} order; a core is started as soon
    as a role-compatible (source, sink) pair is idle, its XY paths are
    free for the whole test duration, and the power limit holds.
    Processor endpoints join the resource pool the moment the
    processor's own test completes ("a processor is reused for test
    just after it has been successfully tested").

    Two resource-selection policies:

    - {!Greedy} — the paper's algorithm: among the pairs idle {e right
      now}, take the first available (ordered by how long they have
      been idle).  This exhibits the anomaly the paper describes on
      p22810: a slow processor idle now is preferred over a faster
      external interface that frees an instant later.
    - {!Lookahead} — also considers busy endpoints' release times and
      picks the pair minimizing the estimated completion time; if the
      best pair is not idle yet, the core waits for it instead of
      settling for a worse one. *)

type policy = Greedy | Lookahead

type config = {
  policy : policy;
  application : Nocplan_proc.Processor.application;
  reuse : int;  (** how many of the system's processors are reusable *)
  power_limit : float option;  (** absolute power cap, or [None] *)
  order : int list option;
      (** visit pending cores in this order instead of the {!Priority}
          heuristic — the knob the {!Annealing} optimizer searches *)
  start_time : int;  (** schedule nothing before this instant *)
  modules : int list option;
      (** schedule only these modules (default: all of them) — used by
          {!Replan} to re-plan the unfinished remainder of a session *)
  pretested : int list;
      (** processor module ids already tested before [start_time]:
          their endpoints are available immediately *)
  link_ready : (Nocplan_noc.Link.t * int) list;
      (** network health gates: a channel listed here may not carry
          test traffic before its ready time — the instant its router
          self-test passes ({!Nocplan_fault.Selftest} produces these).
          Unlisted channels are ready from the start; an empty list
          (the default) is the classic trusted-TAM behaviour,
          bit-identical to schedules produced before gates existed. *)
}

val config :
  ?policy:policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?order:int list ->
  ?start_time:int ->
  ?modules:int list ->
  ?pretested:int list ->
  ?link_ready:(Nocplan_noc.Link.t * int) list ->
  reuse:int ->
  unit ->
  config
(** Defaults: [Greedy], [Bist], no power limit, {!Priority} order,
    [start_time = 0], all modules, nothing pretested, no link gates.
    @raise Invalid_argument on a negative [start_time] or a negative
    [link_ready] time. *)

exception Unschedulable of string
(** Raised when no progress is possible — e.g. a single core's power
    alone exceeds the limit. *)

val run : ?access:Test_access.table -> System.t -> config -> Schedule.t
(** Produce a complete schedule.

    [access] is a precomputed {!Test_access.table} for the same system
    and application; passing one shares the (time-invariant)
    feasibility and cost evaluations across runs — the sweep, annealing
    and branch-and-bound drivers build a single table and reuse it for
    every evaluation.  Without it, a fresh table is built for this run.

    @raise Unschedulable when the instance is infeasible.
    @raise Invalid_argument if [reuse] is out of range, or if [access]
    was built for a different system or application. *)

type trace
(** A completed evaluation together with its commit log: the evaluated
    order, every committed test in chronological order (tagged with
    the slot pair it occupied and its module's order position), and
    the resulting schedule.  Traces are immutable and safe to share
    across domains; they are what makes evaluations resumable. *)

type workspace
(** A reusable evaluation arena: the order-independent engine state
    (endpoint resolution, availability array, release heap,
    reservation calendar) of the last evaluation it served, reset in
    place instead of rebuilt when the next evaluation targets the same
    system, access table and configuration.  Search drivers evaluate
    thousands of orders against one configuration, where the per-run
    setup allocation otherwise dominates short incremental runs.

    A workspace serves one evaluation at a time — keep one per search
    chain and never share it across domains. *)

val workspace : unit -> workspace
(** A fresh, empty workspace.  Passing it is always optional and never
    changes results, only allocation. *)

val run_traced :
  ?workspace:workspace -> ?access:Test_access.table -> System.t -> config ->
  trace
(** Like {!run}, but keep the commit log so later evaluations of
    orders sharing a prefix can {!resume} instead of re-running.
    Raises as {!run}. *)

val resume : ?workspace:workspace -> trace -> int array -> trace
(** [resume trace order] evaluates [order] by replaying the traced
    commits that precede the divergence event — the start time of the
    first traced commit at an order position inside the smallest
    window [[p, hi]] containing every position where [order] differs —
    and re-entering the normal event loop there.  The result is
    byte-identical to running [order] from scratch under the trace's
    configuration (attempts proceed in order position within an event
    and failed attempts are side-effect-free, so the replayed history
    is shared by both runs; commits outside the window are seen
    identically by every later attempt).  Returns [trace] itself when
    [order] equals the traced order.

    @raise Unschedulable as {!run}.
    @raise Invalid_argument if [order] is not a permutation of the
    traced module set. *)

val resume_onto :
  ?workspace:workspace ->
  trace ->
  system:System.t ->
  access:Test_access.table ->
  affected:int list ->
  trace
(** [resume_onto trace ~system ~access ~affected] re-evaluates the
    traced order on a {e placement-mutated} copy of the traced system:
    [system] must differ from the trace's system only in the tiles of
    the (non-processor) [affected] modules (e.g. one
    {!System.swap_tiles}), and [access] must be the mutated system's
    table with the trace's channel numbering extended
    ({!Test_access.table_rebuild} of the trace's table).  Commits of
    unaffected modules replay verbatim until the first event at which
    an affected module behaves differently (its live attempt commits
    where the trace shows none, or the trace commits it under its old
    costs); from there the event's remaining attempt pass and the rest
    of the run proceed live.  The result is byte-identical to
    [run_traced] of the mutated system under the same order and
    configuration — the placement move evaluator of {!Annealing}.

    @raise Unschedulable as {!run}.
    @raise Invalid_argument if [access] does not match [system] and the
    trace's application. *)

val resume_gain : trace -> int array -> int
(** Number of traced commits {!resume} would replay verbatim for
    [order] ([max_int] when [order] equals the traced order, so exact
    hits always win).  {!Eval_cache} ranks its entries with this to
    resume from the cheapest trace, not merely the longest shared
    prefix. *)

val trace_schedule : trace -> Schedule.t
val trace_order : trace -> int array
(** A copy of the evaluated order. *)

val trace_length : trace -> int
(** Number of modules in the evaluated order. *)

val trace_system : trace -> System.t
(** The system the trace was evaluated on — after placement moves, a
    chain's current system lives in its current trace. *)

val trace_access : trace -> Test_access.table
(** The access table the trace was evaluated with. *)

val trace_lcp : trace -> int array -> int
(** Length of the longest common prefix of the traced order and the
    argument. *)

val trace_matches : trace -> system:System.t -> config -> bool
(** Whether the trace was produced for this system (physically) and an
    equal configuration, ignoring [order] — the cache-validity check
    of {!Eval_cache}. *)

val prefix_bound : trace -> prefix_len:int -> int
(** A lower bound on the makespan of {e every} order agreeing with the
    traced one on its first [prefix_len] positions: the largest finish
    among traced commits logged before the first commit at a position
    >= [prefix_len] (those commits replay identically in all such
    runs).  Nondecreasing in [prefix_len]; at [prefix_len = 0] it
    degenerates to the configured start time. *)

val pp_policy : policy Fmt.t

