(** The test planning engine.

    Event-driven list scheduler over the system's resources.  Pending
    cores are visited in {!Priority} order; a core is started as soon
    as a role-compatible (source, sink) pair is idle, its XY paths are
    free for the whole test duration, and the power limit holds.
    Processor endpoints join the resource pool the moment the
    processor's own test completes ("a processor is reused for test
    just after it has been successfully tested").

    Two resource-selection policies:

    - {!Greedy} — the paper's algorithm: among the pairs idle {e right
      now}, take the first available (ordered by how long they have
      been idle).  This exhibits the anomaly the paper describes on
      p22810: a slow processor idle now is preferred over a faster
      external interface that frees an instant later.
    - {!Lookahead} — also considers busy endpoints' release times and
      picks the pair minimizing the estimated completion time; if the
      best pair is not idle yet, the core waits for it instead of
      settling for a worse one. *)

type policy = Greedy | Lookahead

type config = {
  policy : policy;
  application : Nocplan_proc.Processor.application;
  reuse : int;  (** how many of the system's processors are reusable *)
  power_limit : float option;  (** absolute power cap, or [None] *)
  order : int list option;
      (** visit pending cores in this order instead of the {!Priority}
          heuristic — the knob the {!Annealing} optimizer searches *)
  start_time : int;  (** schedule nothing before this instant *)
  modules : int list option;
      (** schedule only these modules (default: all of them) — used by
          {!Replan} to re-plan the unfinished remainder of a session *)
  pretested : int list;
      (** processor module ids already tested before [start_time]:
          their endpoints are available immediately *)
}

val config :
  ?policy:policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?order:int list ->
  ?start_time:int ->
  ?modules:int list ->
  ?pretested:int list ->
  reuse:int ->
  unit ->
  config
(** Defaults: [Greedy], [Bist], no power limit, {!Priority} order,
    [start_time = 0], all modules, nothing pretested. *)

exception Unschedulable of string
(** Raised when no progress is possible — e.g. a single core's power
    alone exceeds the limit. *)

val run : ?access:Test_access.table -> System.t -> config -> Schedule.t
(** Produce a complete schedule.

    [access] is a precomputed {!Test_access.table} for the same system
    and application; passing one shares the (time-invariant)
    feasibility and cost evaluations across runs — the sweep, annealing
    and branch-and-bound drivers build a single table and reuse it for
    every evaluation.  Without it, a fresh table is built for this run.

    @raise Unschedulable when the instance is infeasible.
    @raise Invalid_argument if [reuse] is out of range, or if [access]
    was built for a different system or application. *)

val pp_policy : policy Fmt.t
