(** Prefix-keyed evaluation cache over {!Scheduler} traces.

    The search drivers ({!Annealing}, the order-space branch-and-bound
    in {!Exhaustive}) evaluate many orders that agree on long
    prefixes: a swap move changes nothing before its first swapped
    position, permutations are enumerated in lexicographic order, and
    a rejected move's revert is the previous order verbatim.  The
    cache keeps the most recent traces for one (system, configuration)
    key; each evaluation finds the cached trace with the longest
    common order prefix and {!Scheduler.resume}s it, which is
    byte-identical to a from-scratch run at a fraction of the work.
    An identical order is a pure lookup. *)

type t

val create :
  ?capacity:int -> ?access:Test_access.table -> System.t ->
  Scheduler.config -> t
(** A cache for evaluations of one system under one configuration
    (the [order] field of the configuration is ignored — it is the
    quantity being searched).  [capacity] (default 4) bounds the
    retained traces, evicted least-recently-used.  [access] shares a
    precomputed table as in {!Planner.reuse_sweep}: a table built for
    a different system or application is ignored and a fresh one built
    instead.

    @raise Invalid_argument if [capacity < 1]. *)

val evaluate : t -> int array -> Scheduler.trace
(** Evaluate one order (not mutated; traces copy it).  Exact hits
    return the cached trace; otherwise the best-prefix trace is
    resumed, or a full run performed on an empty cache.

    @raise Scheduler.Unschedulable as {!Scheduler.run} (nothing is
    cached for the failed order).
    @raise Invalid_argument if [order] is not a permutation of the
    configured module set. *)

val schedule : t -> int array -> Schedule.t
(** [Scheduler.trace_schedule (evaluate t order)]. *)

val seed : t -> Scheduler.trace -> unit
(** Insert a trace produced elsewhere (e.g. the shared initial
    evaluation of the tempering chains, or a best-exchange import).
    @raise Invalid_argument if the trace belongs to another system or
    configuration. *)

val rebase : t -> Scheduler.trace -> unit
(** Adopt [trace] {e together with its system and access table} as the
    cache's new key.  When the trace belongs to the cache's current
    system this is exactly {!seed}; when it belongs to a different one
    (an accepted placement move, or a tempering exchange importing a
    chain's mutated placement) the retained traces — all evaluated
    under the old placement — are dropped and the cache restarts from
    [trace] alone.  Statistics survive; the evaluation arena
    re-validates itself on the next run.
    @raise Invalid_argument if the trace's configuration (ignoring
    order) differs from the cache's. *)

val traces : t -> Scheduler.trace list
(** Retained traces, most recently used first — the branch-and-bound
    reads these to prune with {!Scheduler.prefix_bound}. *)

val access : t -> Test_access.table
(** The access table every evaluation shares. *)

type snapshot = {
  evaluations : int;  (** {!evaluate} calls *)
  full_runs : int;  (** evaluated from scratch (cold cache) *)
  resumed : int;  (** evaluated by prefix resume *)
  exact_hits : int;  (** returned a cached trace unchanged *)
}

val stats : t -> snapshot
