(** Prefix-keyed evaluation cache over {!Scheduler} traces.

    The search drivers ({!Annealing}, the order-space branch-and-bound
    in {!Exhaustive}) evaluate many orders that agree on long
    prefixes: a swap move changes nothing before its first swapped
    position, permutations are enumerated in lexicographic order, and
    a rejected move's revert is the previous order verbatim.  The
    cache keeps the most recent traces for one (system, configuration)
    key; each evaluation finds the cached trace with the longest
    common order prefix and {!Scheduler.resume}s it, which is
    byte-identical to a from-scratch run at a fraction of the work.
    An identical order is a pure lookup. *)

type t

val create :
  ?capacity:int -> ?access:Test_access.table -> System.t ->
  Scheduler.config -> t
(** A cache for evaluations of one system under one configuration
    (the [order] field of the configuration is ignored — it is the
    quantity being searched).  [capacity] (default 4) bounds the
    retained traces, evicted least-recently-used.  [access] shares a
    precomputed table as in {!Planner.reuse_sweep}: a table built for
    a different system or application is ignored and a fresh one built
    instead.

    @raise Invalid_argument if [capacity < 1]. *)

val evaluate : t -> int array -> Scheduler.trace
(** Evaluate one order (not mutated; traces copy it).  Exact hits
    return the cached trace; otherwise the best-prefix trace is
    resumed, or a full run performed on an empty cache.

    @raise Scheduler.Unschedulable as {!Scheduler.run} (nothing is
    cached for the failed order).
    @raise Invalid_argument if [order] is not a permutation of the
    configured module set. *)

val schedule : t -> int array -> Schedule.t
(** [Scheduler.trace_schedule (evaluate t order)]. *)

val seed : t -> Scheduler.trace -> unit
(** Insert a trace produced elsewhere (e.g. the shared initial
    evaluation of the tempering chains, or a best-exchange import).
    @raise Invalid_argument if the trace belongs to another system or
    configuration. *)

val rebase : t -> Scheduler.trace -> unit
(** Adopt [trace] {e together with its system and access table} as the
    cache's new key.  When the trace belongs to the cache's current
    system this is exactly {!seed}; when it belongs to a different one
    (an accepted placement move, or a tempering exchange importing a
    chain's mutated placement) the retained traces — all evaluated
    under the old placement — are dropped and the cache restarts from
    [trace] alone.  Statistics survive; the evaluation arena
    re-validates itself on the next run.
    @raise Invalid_argument if the trace's configuration (ignoring
    order) differs from the cache's. *)

val traces : t -> Scheduler.trace list
(** Retained traces, most recently used first — the branch-and-bound
    reads these to prune with {!Scheduler.prefix_bound}. *)

val access : t -> Test_access.table
(** The access table every evaluation shares. *)

val system : t -> System.t
(** The system the retained traces belong to.  Starts as the [system]
    given to {!create}; {!rebase} moves it to the adopted trace's
    (possibly placement-mutated) instance. *)

val matches : t -> system:System.t -> Scheduler.config -> bool
(** Whether the cache's key is exactly this (physical) system instance
    under this configuration modulo order — i.e. whether its traces
    may legally serve evaluations for [cfg] on [system]. *)

type snapshot = {
  evaluations : int;  (** {!evaluate} calls *)
  full_runs : int;  (** evaluated from scratch (cold cache) *)
  resumed : int;  (** evaluated by prefix resume *)
  exact_hits : int;  (** returned a cached trace unchanged *)
}

val stats : t -> snapshot

(** Cross-request sharing of caches.

    A cache itself is single-threaded by contract (its workspace arena
    is exclusive), so concurrent users cannot evaluate through one
    simultaneously.  The registry makes sharing safe by handing out
    {e exclusive ownership}: {!Shared.checkout} removes the cache for a
    key from the registry (building a fresh one on a miss), the caller
    evaluates through it alone, and {!Shared.checkin} returns it for
    the next request on the same key.  Two simultaneous requests on one
    key simply each get a cache — the later check-in merges its traces
    into the resident one — so the registry never blocks for the
    duration of a solve, only for list surgery. *)
module Shared : sig
  type cache := t
  type registry

  val registry : ?capacity:int -> unit -> registry
  (** An empty registry holding at most [capacity] (default 8) caches,
      evicted least recently used.
      @raise Invalid_argument if [capacity < 1]. *)

  val checkout :
    registry -> key:string -> ?cache_capacity:int ->
    ?access:Test_access.table -> System.t -> Scheduler.config ->
    cache * bool
  (** [checkout r ~key system cfg] takes exclusive ownership of the
      cache registered under [key], or creates a fresh one (forwarding
      [cache_capacity] and [access] to {!create}) when the key is
      absent — or present but keyed to a different physical system
      instance or configuration, in which case the stale cache is
      dropped.  Returns [(cache, hit)]; [hit] is true iff a resident
      matching cache was reused. *)

  val checkin : registry -> key:string -> cache -> unit
  (** Return a checked-out (or freshly built) cache to the registry.
      If another cache was checked in under [key] in the meantime, the
      resident one is kept and the returned cache's traces are merged
      into it (mismatching traces — e.g. after a placement-move
      {!rebase} — are silently skipped).  Callers should not check in
      a cache whose {!system} no longer is the instance other requests
      resolve to. *)

  val hits : registry -> int
  (** Checkouts served by a resident matching cache. *)

  val misses : registry -> int
  (** Checkouts that had to build a fresh cache. *)

  val length : registry -> int
  (** Currently resident caches. *)
end
