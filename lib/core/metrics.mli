(** Schedule quality metrics beyond the makespan.

    The paper reports only total test time; these figures explain
    {e why} a plan is fast or slow: how parallel it is, how hard each
    resource works, and how much of the work the external tester still
    carries (the pin-cost the method is trying to avoid). *)

type t = {
  makespan : int;
  total_test_time : int;  (** sum of all entry durations *)
  average_concurrency : float;  (** [total_test_time / makespan] *)
  peak_concurrency : int;  (** most tests running at one instant *)
  peak_power : float;
  average_power : float;  (** energy over the makespan *)
  total_energy : float;  (** sum over tests of power x duration *)
  utilization : (Resource.endpoint * float) list;
      (** per endpoint: busy cycles / makespan, in endpoint order *)
  external_share : float;
      (** fraction of total test time with an external endpoint on
          either side — 1.0 for the no-reuse baseline *)
}

val of_schedule : System.t -> reuse:int -> Schedule.t -> t
(** Compute all metrics.  An empty schedule yields zeros. *)

val peak_power : Schedule.entry list -> float
(** Peak instantaneous power of the entries alone — the step-function
    maximum, attained at some entry's start.  The planner records this
    per sweep point without paying for the full metric set. *)

val pp : t Fmt.t
