module Topology = Nocplan_noc.Topology
module Coord = Nocplan_noc.Coord

module Int_map = Map.Make (Int)

type t = { by_module : Coord.t Int_map.t }

let of_assoc topology assignments =
  if assignments = [] then invalid_arg "Placement.of_assoc: empty placement";
  let by_module =
    List.fold_left
      (fun map (id, coord) ->
        if not (Topology.in_bounds topology coord) then
          invalid_arg
            (Fmt.str "Placement.of_assoc: module %d at %a is out of bounds" id
               Coord.pp coord);
        if Int_map.mem id map then
          invalid_arg
            (Printf.sprintf "Placement.of_assoc: module %d placed twice" id);
        Int_map.add id coord map)
      Int_map.empty assignments
  in
  { by_module }

let spread topology ~pinned ids =
  let pinned_ids = List.map fst pinned in
  List.iter
    (fun id ->
      if List.mem id pinned_ids then
        invalid_arg
          (Printf.sprintf "Placement.spread: module %d both pinned and free" id))
    ids;
  let pinned_coords = List.map snd pinned in
  let free_tiles =
    List.filter
      (fun c -> not (List.exists (Coord.equal c) pinned_coords))
      (Topology.coords topology)
  in
  let tiles = if free_tiles = [] then Topology.coords topology else free_tiles in
  let tile_count = List.length tiles in
  let tile_array = Array.of_list tiles in
  let placed =
    List.mapi (fun i id -> (id, tile_array.(i mod tile_count))) ids
  in
  of_assoc topology (pinned @ placed)

let coord t id = Int_map.find id t.by_module
let mem t id = Int_map.mem id t.by_module

let swap t a b =
  match (Int_map.find_opt a t.by_module, Int_map.find_opt b t.by_module) with
  | Some ca, Some cb ->
      { by_module = Int_map.add a cb (Int_map.add b ca t.by_module) }
  | None, _ ->
      invalid_arg (Printf.sprintf "Placement.swap: module %d is not placed" a)
  | _, None ->
      invalid_arg (Printf.sprintf "Placement.swap: module %d is not placed" b)

let modules_at t c =
  Int_map.fold
    (fun id coord acc -> if Coord.equal coord c then id :: acc else acc)
    t.by_module []
  |> List.rev

let module_ids t = List.map fst (Int_map.bindings t.by_module)

let pp ppf t =
  let pp_binding ppf (id, c) = Fmt.pf ppf "%d@@%a" id Coord.pp c in
  Fmt.pf ppf "@[<hov>%a@]"
    (Fmt.list ~sep:Fmt.sp pp_binding)
    (Int_map.bindings t.by_module)
