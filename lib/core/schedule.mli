(** Test schedules and their independent validator.

    A schedule assigns every module of the system a time window, a
    source, a sink and a NoC path footprint.  The validator re-checks
    every constraint from scratch — it shares no state with the
    schedulers, so scheduler bugs cannot hide. *)

type entry = {
  module_id : int;
  source : Resource.endpoint;
  sink : Resource.endpoint;
  start : int;
  finish : int;
  power : float;
  links : Nocplan_noc.Link.t list;
}

type t = private {
  entries : entry list;  (** sorted by [start], then [module_id] *)
  makespan : int;  (** max finish, 0 for an empty schedule *)
}

val of_entries : entry list -> t
(** Sorts entries and computes the makespan.  Structural sanity
    ([start <= finish], non-negative times) is enforced here;
    semantic checks are {!validate}'s job.
    @raise Invalid_argument on malformed intervals. *)

val entries_for : t -> int -> entry list
(** Entries testing the given module (a valid schedule has exactly
    one). *)

type violation =
  | Unknown_module of int
  | Module_not_tested of int
  | Module_tested_twice of int
  | Invalid_pair of entry
  | Endpoint_overlap of Resource.endpoint * entry * entry
  | Link_overlap of Nocplan_noc.Link.t * entry * entry
  | Power_exceeded of { time : int; total : float; limit : float }
  | Processor_not_reusable of entry
  | Processor_used_before_tested of { user : entry; processor_id : int }
  | Wrong_cost of { entry : entry; expected_duration : int }
  | Insufficient_memory of entry
      (** the source processor cannot hold the test data the
          application needs for this core *)
  | Uses_failed_link of entry
      (** the XY paths of this test cross a channel marked faulty *)

val validate :
  ?access:Test_access.table ->
  System.t ->
  application:Nocplan_proc.Processor.application ->
  power_limit:float option ->
  reuse:int ->
  t ->
  (unit, violation list) result
(** Check that: every module of the system is tested exactly once; all
    pairs are valid and only reusable processors are used; a processor
    endpoint is only used after its own test finished; no endpoint and
    no link carries two overlapping tests; instantaneous power never
    exceeds the limit; and each entry's duration and power match the
    {!Test_access} cost model.

    [?access] is a pure cache: a {!Test_access.table} built for this
    system and application lets the cost/memory/route checks use O(1)
    lookups instead of recomputing wrapper designs per entry.  A table
    built for a different system or application is ignored, and any
    entry the table does not cover falls back to the direct
    computation, so the verdict never depends on the table. *)

val pp_violation : violation Fmt.t
val pp : t Fmt.t

val resource_busy_time : t -> Resource.endpoint -> int
(** Total cycles the endpoint spends serving tests. *)
