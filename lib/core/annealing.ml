module Rng = Nocplan_itc02.Data_gen.Rng

type result = {
  schedule : Schedule.t;
  initial_makespan : int;
  evaluations : int;
  accepted : int;
}

let improvement_pct r =
  100.0
  *. (1.0
     -. float_of_int r.schedule.Schedule.makespan
        /. float_of_int r.initial_makespan)

let schedule ?(policy = Scheduler.Greedy)
    ?(application = Nocplan_proc.Processor.Bist) ?(power_limit = None)
    ?(iterations = 400) ?initial_temperature ?(cooling = 0.99)
    ?(seed = 0x5AL) ~reuse system =
  if iterations < 1 then invalid_arg "Annealing.schedule: iterations < 1";
  if cooling <= 0.0 || cooling > 1.0 then
    invalid_arg "Annealing.schedule: cooling must be in (0, 1]";
  let rng = Rng.create seed in
  (* One access table for all ~[iterations] engine evaluations: the
     cost model does not depend on the test order being searched. *)
  let access = Test_access.table ~application system in
  let evaluate order =
    Scheduler.run ~access system
      (Scheduler.config ~policy ~application ~power_limit ~order ~reuse ())
  in
  let initial_order = Array.of_list (Priority.order system ~reuse) in
  let n = Array.length initial_order in
  let initial = evaluate (Array.to_list initial_order) in
  let initial_makespan = initial.Schedule.makespan in
  let temperature0 =
    match initial_temperature with
    | Some t ->
        if t < 0.0 then invalid_arg "Annealing.schedule: negative temperature";
        t
    | None -> 0.02 *. float_of_int initial_makespan
  in
  let current_order = Array.copy initial_order in
  let current = ref initial in
  let best = ref initial in
  let evaluations = ref 1 in
  let accepted = ref 0 in
  let temperature = ref temperature0 in
  if n >= 2 then
    for _ = 1 to iterations do
      let i = Rng.int rng ~bound:n in
      let j = Rng.int rng ~bound:n in
      if i <> j then begin
        let swap () =
          let tmp = current_order.(i) in
          current_order.(i) <- current_order.(j);
          current_order.(j) <- tmp
        in
        swap ();
        match evaluate (Array.to_list current_order) with
        | exception Scheduler.Unschedulable _ -> swap () (* revert *)
        | candidate ->
            incr evaluations;
            let delta =
              float_of_int
                (candidate.Schedule.makespan - !current.Schedule.makespan)
            in
            let accept =
              delta <= 0.0
              || !temperature > 0.0
                 && Rng.float rng < exp (-.delta /. !temperature)
            in
            if accept then begin
              incr accepted;
              current := candidate;
              if
                candidate.Schedule.makespan < !best.Schedule.makespan
              then best := candidate
            end
            else swap () (* revert *)
      end;
      temperature := !temperature *. cooling
    done;
  {
    schedule = !best;
    initial_makespan;
    evaluations = !evaluations;
    accepted = !accepted;
  }
