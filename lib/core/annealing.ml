module Rng = Nocplan_itc02.Data_gen.Rng
module Trace = Nocplan_obs.Trace

type result = {
  schedule : Schedule.t;
  system : System.t;
  best_trace : Scheduler.trace;
  initial_makespan : int;
  warm_started : bool;
  evaluations : int;
  accepted : int;
  placement_evals : int;
  placement_accepted : int;
  chains : int;
  exchanges : int;
}

let improvement_pct r =
  if r.initial_makespan = 0 then 0.0
  else
    100.0
    *. (1.0
       -. float_of_int r.schedule.Schedule.makespan
          /. float_of_int r.initial_makespan)

(* One tempering chain: its own generator, temperature, order buffer
   and evaluation cache; traces flow between chains read-only.  The
   chain's current *system* (its placement) lives in its current
   trace; [swappable] — the non-pinned module ids eligible for tile
   swaps — is placement-invariant and shared by every chain. *)
type chain = {
  index : int;  (** position in the temperature ladder, for tracing *)
  rng : Rng.t;
  ratio : float;  (** probability that a move is a placement swap *)
  swappable : int array;
  order : int array;
  cache : Eval_cache.t;
  mutable current : Scheduler.trace;
  mutable best : Scheduler.trace;
  mutable temperature : float;
  mutable evaluations : int;
  mutable accepted : int;
  mutable placement_evals : int;
  mutable placement_accepted : int;
}

let makespan trace = (Scheduler.trace_schedule trace).Schedule.makespan

(* Deterministic per-chain seed: chain 0 keeps the base seed (so a
   single chain reproduces the historical sequential results exactly);
   higher chains offset it by multiples of the splitmix64 golden-ratio
   increment, decorrelating the streams without any cross-chain
   coordination. *)
let chain_seed base c =
  if c = 0 then base
  else Int64.add base (Int64.mul (Int64.of_int c) 0x9E3779B97F4A7C15L)

(* The Metropolis rule, shared by both move classes.  Consumes one
   [Rng.float] draw only on an uphill candidate at positive
   temperature — the same consumption pattern as the historical
   order-only annealer. *)
let metropolis ch candidate =
  let delta = float_of_int (makespan candidate - makespan ch.current) in
  delta <= 0.0
  || ch.temperature > 0.0 && Rng.float ch.rng < exp (-.delta /. ch.temperature)

(* One placement move: swap the tiles of two random non-pinned
   modules, rebuild only their access-table rows, and re-evaluate the
   current order on the mutated system by verified replay
   ([Scheduler.resume_onto]).  Nothing is mutated until acceptance —
   [System.swap_tiles] and [Test_access.table_rebuild] are functional
   — so a rejection simply drops the candidate. *)
let placement_move ch =
  let ns = Array.length ch.swappable in
  let a = ch.swappable.(Rng.int ch.rng ~bound:ns) in
  let b = ch.swappable.(Rng.int ch.rng ~bound:ns) in
  if a <> b then begin
    let sys = System.swap_tiles (Scheduler.trace_system ch.current) a b in
    let access =
      Test_access.table_rebuild
        (Scheduler.trace_access ch.current)
        ~system:sys ~affected:[ a; b ]
    in
    match
      Scheduler.resume_onto ch.current ~system:sys ~access ~affected:[ a; b ]
    with
    | exception Scheduler.Unschedulable _ -> ()
    | candidate ->
        ch.evaluations <- ch.evaluations + 1;
        ch.placement_evals <- ch.placement_evals + 1;
        let accept = metropolis ch candidate in
        if Trace.enabled () then
          Trace.instant "anneal.move"
            ~attrs:
              [
                ("move", Trace.String "placement");
                ("chain", Trace.Int ch.index);
                ("accepted", Trace.Bool accept);
                ("makespan", Trace.Int (makespan candidate));
              ];
        if accept then begin
          ch.accepted <- ch.accepted + 1;
          ch.placement_accepted <- ch.placement_accepted + 1;
          ch.current <- candidate;
          (* The candidate trace carries the mutated system and its
             rebuilt table; rebasing keeps the cache's key — and every
             later order move — on the chain's current placement. *)
          Eval_cache.rebase ch.cache candidate;
          if makespan candidate < makespan ch.best then ch.best <- candidate
        end
  end

(* [iterations] annealing moves on one chain.  For a single chain with
   [ratio = 0] this is, move for move, the historical sequential
   annealer: same generator consumption (the ratio gate draws nothing
   when the ratio is zero), same Metropolis rule, same cooling — only
   the evaluation goes through the prefix cache, which is
   result-identical to a from-scratch run. *)
let run_segment ~cooling ch iterations =
  Trace.span "anneal.segment"
    ~attrs:
      [ ("chain", Trace.Int ch.index); ("iterations", Trace.Int iterations) ]
  @@ fun () ->
  let n = Array.length ch.order in
  let ns = Array.length ch.swappable in
  if n >= 2 || (ch.ratio > 0.0 && ns >= 2) then
    for _ = 1 to iterations do
      let placement =
        ch.ratio > 0.0 && ns >= 2 && Rng.float ch.rng < ch.ratio
      in
      if placement then placement_move ch
      else if n >= 2 then begin
        let i = Rng.int ch.rng ~bound:n in
        let j = Rng.int ch.rng ~bound:n in
        if i <> j then begin
          let swap () =
            let tmp = ch.order.(i) in
            ch.order.(i) <- ch.order.(j);
            ch.order.(j) <- tmp
          in
          swap ();
          match Eval_cache.evaluate ch.cache ch.order with
          | exception Scheduler.Unschedulable _ -> swap () (* revert *)
          | candidate ->
              ch.evaluations <- ch.evaluations + 1;
              let accept = metropolis ch candidate in
              if accept then begin
                ch.accepted <- ch.accepted + 1;
                ch.current <- candidate;
                if makespan candidate < makespan ch.best then
                  ch.best <- candidate
              end
              else swap () (* revert *)
        end
      end;
      ch.temperature <- ch.temperature *. cooling
    done

let schedule ?(policy = Scheduler.Greedy)
    ?(application = Nocplan_proc.Processor.Bist) ?(power_limit = None)
    ?(iterations = 400) ?initial_temperature ?(cooling = 0.99)
    ?(seed = 0x5AL) ?(chains = 1) ?(exchange_period = 50)
    ?(placement_moves = 0.0) ?access ?warm_start ?eval_cache ~reuse system =
  if iterations < 1 then invalid_arg "Annealing.schedule: iterations < 1";
  if cooling <= 0.0 || cooling > 1.0 then
    invalid_arg "Annealing.schedule: cooling must be in (0, 1]";
  if chains < 1 then invalid_arg "Annealing.schedule: chains < 1";
  if exchange_period < 1 then
    invalid_arg "Annealing.schedule: exchange_period < 1";
  if placement_moves < 0.0 || placement_moves > 1.0 then
    invalid_arg "Annealing.schedule: placement_moves must be within [0, 1]";
  (* One access table for all engine evaluations across every chain:
     the cost model does not depend on the test order being searched,
     and the table is immutable, so the Domain fan-out can share it. *)
  let access =
    match access with
    | Some tbl when Test_access.table_for tbl ~system ~application -> tbl
    | Some _ | None -> Test_access.table ~application system
  in
  let base_config =
    Scheduler.config ~policy ~application ~power_limit ~reuse ()
  in
  (* Cross-request warm start: a best trace from an earlier search of
     the same system and configuration is adopted as the shared
     initial evaluation — the walk starts from the best-known point
     (so the result can never be worse than it) and the initial
     engine run is skipped entirely.  A trace for a different system
     or configuration is ignored, like a mismatched [access]. *)
  let warm =
    match warm_start with
    | Some t when Scheduler.trace_matches t ~system base_config -> Some t
    | Some _ | None -> None
  in
  let initial_order =
    match warm with
    | Some t -> Scheduler.trace_order t
    | None -> Array.of_list (Priority.order system ~reuse)
  in
  let n = Array.length initial_order in
  (* One shared initial evaluation seeds every chain's cache. *)
  let initial =
    match warm with
    | Some t -> t
    | None ->
        Scheduler.run_traced ~access system
          {
            base_config with
            Scheduler.order = Some (Array.to_list initial_order);
          }
  in
  let initial_makespan = makespan initial in
  let temperature0 =
    match initial_temperature with
    | Some t ->
        if t < 0.0 then invalid_arg "Annealing.schedule: negative temperature";
        t
    | None -> 0.02 *. float_of_int initial_makespan
  in
  (* Tile-swap candidates: every scheduled module that is not a pinned
     processor.  Placement-invariant (swapping never changes the set),
     so one sorted array serves every chain and every move. *)
  let swappable =
    Array.of_list
      (List.filter
         (fun id -> not (System.is_processor_module system id))
         (System.module_ids system))
  in
  (* Cross-request cache sharing: a caller-owned cache for the same
     system and configuration is adopted as chain 0's evaluation cache,
     so this search resumes the prefix traces earlier searches left
     behind (and leaves its own for the next one).  Like [access] and
     [warm_start], a mismatched cache is ignored.  Results are
     unaffected either way: every evaluation through the cache is
     byte-identical to a from-scratch run. *)
  let adopted =
    match eval_cache with
    | Some c when Eval_cache.matches c ~system base_config -> Some c
    | Some _ | None -> None
  in
  let make_chain c =
    let cache =
      match adopted with
      | Some cache when c = 0 -> cache
      | _ -> Eval_cache.create ~access system base_config
    in
    Eval_cache.seed cache initial;
    {
      index = c;
      rng = Rng.create (chain_seed seed c);
      (* Chain 0 of a multi-chain run stays a pure order annealer: the
         coldest rung of the ladder then reproduces the order-only
         trajectory bit for bit, which makes the joint result provably
         no worse than order-only annealing under the same seed — and
         gives the exchange a placement-free reference walk.  A single
         chain applies the full ratio. *)
      ratio = (if chains > 1 && c = 0 then 0.0 else placement_moves);
      swappable;
      order = Array.copy initial_order;
      cache;
      current = initial;
      best = initial;
      (* Temperature ladder: chain c starts 2^c hotter, so higher
         chains explore while chain 0 refines. *)
      temperature = temperature0 *. (2.0 ** float_of_int c);
      evaluations = 0;
      accepted = 0;
      placement_evals = 0;
      placement_accepted = 0;
    }
  in
  let all_chains = List.init chains make_chain in
  let exchanges = ref 0 in
  Trace.span "anneal.run"
    ~attrs:
      [
        ("chains", Trace.Int chains);
        ("iterations", Trace.Int iterations);
        ("initial_makespan", Trace.Int initial_makespan);
        ("warm_start", Trace.Bool (Option.is_some warm));
      ]
  @@ fun () ->
  if chains = 1 then run_segment ~cooling (List.hd all_chains) iterations
  else begin
    (* Chains are batched round-robin over at most the recommended
       domain count; the outcome depends only on the chain states at
       the exchange barriers, never on how they were batched, so the
       result is identical on any machine. *)
    let workers = Domains.clamp chains in
    let remaining = ref iterations in
    while !remaining > 0 do
      let span = min exchange_period !remaining in
      remaining := !remaining - span;
      if workers = 1 then
        List.iter (fun ch -> run_segment ~cooling ch span) all_chains
      else
        List.init workers (fun d ->
            let slice =
              List.filteri (fun c _ -> c mod workers = d) all_chains
            in
            Domain.spawn (fun () ->
                List.iter (fun ch -> run_segment ~cooling ch span) slice))
        |> List.iter Domain.join;
      (* Best-exchange: every chain strictly worse than the global
         best restarts its walk there (keeping its own temperature —
         the tempering part). *)
      let global_best =
        List.fold_left
          (fun acc ch -> if makespan ch.best < makespan acc then ch.best else acc)
          (List.hd all_chains).best (List.tl all_chains)
      in
      if !remaining > 0 then begin
        let adopted = ref 0 in
        List.iter
          (fun ch ->
            if makespan ch.current > makespan global_best then begin
              incr exchanges;
              incr adopted;
              ch.current <- global_best;
              Array.blit (Scheduler.trace_order global_best) 0 ch.order 0 n;
              (* The global best may carry another chain's placement;
                 [rebase] adopts system and table along with the trace
                 (and is exactly [seed] when the system is shared). *)
              Eval_cache.rebase ch.cache global_best
            end)
          all_chains;
        if Trace.enabled () then
          Trace.instant "anneal.exchange"
            ~attrs:
              [
                ("best", Trace.Int (makespan global_best));
                ("adopted", Trace.Int !adopted);
                ("remaining", Trace.Int !remaining);
              ]
      end
    done
  end;
  let best =
    List.fold_left
      (fun acc ch -> if makespan ch.best < makespan acc then ch.best else acc)
      (List.hd all_chains).best (List.tl all_chains)
  in
  {
    schedule = Scheduler.trace_schedule best;
    system = Scheduler.trace_system best;
    best_trace = best;
    initial_makespan;
    warm_started = Option.is_some warm;
    evaluations =
      (* The shared initial evaluation counts as one engine run —
         except under a warm start, where it is reused, not run. *)
      List.fold_left
        (fun acc ch -> acc + ch.evaluations)
        (if Option.is_some warm then 0 else 1)
        all_chains;
    accepted = List.fold_left (fun acc ch -> acc + ch.accepted) 0 all_chains;
    placement_evals =
      List.fold_left (fun acc ch -> acc + ch.placement_evals) 0 all_chains;
    placement_accepted =
      List.fold_left
        (fun acc ch -> acc + ch.placement_accepted)
        0 all_chains;
    chains;
    exchanges = !exchanges;
  }
