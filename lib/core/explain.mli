(** Decision explanations.

    Reconstructs the scheduler's decision log — one entry per
    committed test, with the {e full} candidate set the policy ranked
    (busy pairs included) — from a [Decisions]-level
    {!Nocplan_obs.Trace} event stream, and names the commits
    exhibiting the paper's greedy anomaly: a processor endpoint idle
    right now chosen over an external-interface pair that was busy at
    commit time but would have finished the test earlier.

    This is the machinery behind [nocplan plan --explain]. *)

type candidate = {
  source : string;  (** endpoint, pretty-printed by {!Resource.pp} *)
  sink : string;
  source_is_processor : bool;
  sink_is_processor : bool;
  ready : int;  (** when both endpoints are (or will be) idle *)
  duration : int;  (** test duration on this pair *)
  est_finish : int;  (** [max now ready + duration] *)
  eligible : bool;  (** idle at commit time — all greedy ever admits *)
  chosen : bool;
}

type decision = {
  module_id : int;
  time : int;  (** commit time *)
  policy : string;
  candidates : candidate list;  (** every feasible pooled pair *)
}

val decisions_of_events : Nocplan_obs.Trace.event list -> decision list
(** The decision log of an event stream recorded at the [Decisions]
    level (events from other levels yield an empty log). *)

val chosen : decision -> candidate option
(** The committed candidate.  Always [Some] for decisions produced by
    the scheduler. *)

val anomaly : decision -> (candidate * candidate) option
(** [Some (winner, better)] when the decision exhibits the greedy
    anomaly: the chosen pair touches a processor, while [better] — an
    all-external pair that was still busy ([ready > time]) — would
    have finished strictly earlier.  [better] is the earliest-finishing
    such pair. *)

val plan :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  reuse:int ->
  System.t ->
  Schedule.t * decision list
(** Run one schedule under a private [Decisions]-level collector and
    return it with its decision log.  Raises as {!Scheduler.run}. *)

val pp_decision : decision Fmt.t
(** One line per decision plus, when {!anomaly} fires, an [ANOMALY]
    line naming the faster-but-later external pair. *)

val pp_report : decision list Fmt.t
(** Every decision, then a summary counting the anomalies. *)
