module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Topology = Nocplan_noc.Topology
module Coord = Nocplan_noc.Coord
module Latency = Nocplan_noc.Latency
module Power = Nocplan_noc.Power
module Processor = Nocplan_proc.Processor
module Link = Nocplan_noc.Link

type placed_processor = {
  module_id : int;
  processor : Processor.t;
  coord : Coord.t;
}

type t = {
  soc : Soc.t;
  topology : Topology.t;
  latency : Latency.t;
  noc_power : Power.t;
  flit_width : int;
  placement : Placement.t;
  processors : placed_processor list;
  io_inputs : Coord.t list;
  io_outputs : Coord.t list;
  failed_links : Link.Set.t;
}

let make ?(failed_links = []) ~soc ~topology ~latency ~noc_power ~flit_width
    ~placement ~processors ~io_inputs ~io_outputs () =
  if flit_width < 1 then invalid_arg "System.make: flit_width must be >= 1";
  if io_inputs = [] || io_outputs = [] then
    invalid_arg "System.make: need at least one input and one output port";
  List.iter
    (fun c ->
      if not (Topology.in_bounds topology c) then
        invalid_arg (Fmt.str "System.make: IO port %a out of bounds" Coord.pp c))
    (io_inputs @ io_outputs);
  let soc_ids = Soc.module_ids soc in
  let placed_ids = Placement.module_ids placement in
  List.iter
    (fun id ->
      if not (List.mem id placed_ids) then
        invalid_arg (Printf.sprintf "System.make: module %d is unplaced" id))
    soc_ids;
  List.iter
    (fun id ->
      if not (List.mem id soc_ids) then
        invalid_arg
          (Printf.sprintf "System.make: placed id %d is not in the soc" id))
    placed_ids;
  List.iter
    (fun p ->
      match Soc.find soc p.module_id with
      | m ->
          if not (Module_def.equal m (Processor.with_self_test_id p.processor ~id:p.module_id).Processor.self_test)
          then
            invalid_arg
              (Printf.sprintf
                 "System.make: module %d differs from processor %s self-test"
                 p.module_id p.processor.Processor.name);
          if not (Coord.equal (Placement.coord placement p.module_id) p.coord)
          then
            invalid_arg
              (Printf.sprintf
                 "System.make: processor %d placement disagrees" p.module_id)
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "System.make: processor module %d not in soc"
               p.module_id))
    processors;
  {
    soc;
    topology;
    latency;
    noc_power;
    flit_width;
    placement;
    processors;
    io_inputs;
    io_outputs;
    failed_links = Link.Set.of_list failed_links;
  }

(* Evenly spaced tile indices for [n] pins over the mesh, skewed away
   from the corners where the IO ports usually sit. *)
let pin_tiles topology n =
  let count = Topology.router_count topology in
  let stride = max 1 (count / (n + 1)) in
  List.init n (fun i -> Topology.of_index topology (((i + 1) * stride) mod count))

let build ?(latency = Latency.hermes_like) ?(noc_power = Power.default)
    ?(flit_width = 32) ?processor_tiles ~soc ~topology ~processors ~io_inputs
    ~io_outputs () =
  let next_id = Soc.max_module_id soc + 1 in
  let renumbered =
    List.mapi
      (fun i p -> Processor.with_self_test_id p ~id:(next_id + i))
      processors
  in
  let soc =
    Soc.add_modules soc
      (List.map (fun p -> p.Processor.self_test) renumbered)
  in
  let proc_tiles =
    match processor_tiles with
    | None -> pin_tiles topology (List.length renumbered)
    | Some tiles ->
        if List.length tiles <> List.length renumbered then
          invalid_arg
            "System.build: processor_tiles length differs from processors";
        tiles
  in
  let placed =
    List.map2
      (fun p coord ->
        { module_id = p.Processor.self_test.Module_def.id; processor = p; coord })
      renumbered proc_tiles
  in
  let pinned = List.map (fun p -> (p.module_id, p.coord)) placed in
  let cut_ids =
    List.filter
      (fun id -> not (List.mem_assoc id pinned))
      (Soc.module_ids soc)
  in
  let placement = Placement.spread topology ~pinned cut_ids in
  make ~soc ~topology ~latency ~noc_power ~flit_width ~placement
    ~processors:placed ~io_inputs ~io_outputs ()

let coord_of_module t id = Placement.coord t.placement id

let processor_of_module t id =
  List.find_opt (fun p -> p.module_id = id) t.processors

let is_processor_module t id = Option.is_some (processor_of_module t id)
let module_ids t = Soc.module_ids t.soc

let swap_tiles t a b =
  if a = b then invalid_arg "System.swap_tiles: modules must be distinct";
  List.iter
    (fun id ->
      if is_processor_module t id then
        invalid_arg
          (Printf.sprintf
             "System.swap_tiles: module %d is a pinned processor" id))
    [ a; b ];
  (* [Placement.swap] validates that both ids are placed; processors
     (checked above) and IO ports (not modules) keep their tiles, so
     the [processors] list and its coords stay consistent. *)
  { t with placement = Placement.swap t.placement a b }

let with_failed_links t links =
  { t with failed_links = Link.Set.union t.failed_links (Link.Set.of_list links) }

let power_limit_of_pct t ~pct =
  if pct <= 0.0 then invalid_arg "System.power_limit_of_pct: pct must be > 0";
  pct /. 100.0 *. Soc.total_test_power t.soc

(* Canonical serialization for {!fingerprint}.  Every field that can
   change the cost model or the schedulers' behaviour is rendered into
   the buffer in a fixed order; floats use %h (exact hex) so distinct
   values never collapse. *)
let fingerprint t =
  let b = Buffer.create 2048 in
  let add fmt = Printf.bprintf b fmt in
  let coord (c : Coord.t) = Printf.sprintf "%d.%d" c.Coord.x c.Coord.y in
  add "soc %s\n" t.soc.Soc.name;
  List.iter
    (fun (m : Module_def.t) ->
      add "m %d %s %d/%d/%d [%s] p%d w%h par%s\n" m.Module_def.id
        m.Module_def.name m.Module_def.inputs m.Module_def.outputs
        m.Module_def.bidirs
        (String.concat "," (List.map string_of_int m.Module_def.scan_chains))
        m.Module_def.patterns m.Module_def.test_power
        (match m.Module_def.parent with
        | None -> "-"
        | Some p -> string_of_int p))
    t.soc.Soc.modules;
  add "topo %s %dx%d\n"
    (match t.topology.Topology.kind with
    | Topology.Mesh -> "mesh"
    | Topology.Torus -> "torus")
    t.topology.Topology.width t.topology.Topology.height;
  add "lat %d %d\n" t.latency.Latency.routing_latency
    t.latency.Latency.flow_latency;
  add "pow %h\n" t.noc_power.Power.router_stream_power;
  add "flit %d\n" t.flit_width;
  List.iter
    (fun id -> add "at %d %s\n" id (coord (Placement.coord t.placement id)))
    (List.sort compare (Placement.module_ids t.placement));
  List.iter
    (fun p ->
      let ch (c : Nocplan_proc.Characterization.t) =
        Printf.sprintf "%s %h %d %d %h"
          c.Nocplan_proc.Characterization.application
          c.Nocplan_proc.Characterization.cycles_per_pattern
          c.Nocplan_proc.Characterization.setup_cycles
          c.Nocplan_proc.Characterization.memory_words
          c.Nocplan_proc.Characterization.power
      in
      add "proc %d %s %s %s mem%d act%h {%s|%s|%s}\n" p.module_id
        p.processor.Processor.name p.processor.Processor.isa_family
        (coord p.coord)
        p.processor.Processor.memory_capacity_words
        p.processor.Processor.power_active
        (ch p.processor.Processor.bist)
        (ch p.processor.Processor.sink)
        (ch p.processor.Processor.decompression))
    t.processors;
  add "in %s\n" (String.concat " " (List.map coord t.io_inputs));
  add "out %s\n" (String.concat " " (List.map coord t.io_outputs));
  Link.Set.iter (fun l -> add "fail %s\n" (Fmt.str "%a" Link.pp l)) t.failed_links;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp ppf t =
  Fmt.pf ppf
    "@[<v>system %s: %a, flit width %d, %d processors, %d in / %d out ports@,%a@,placement: %a@]"
    t.soc.Soc.name Topology.pp t.topology t.flit_width
    (List.length t.processors)
    (List.length t.io_inputs)
    (List.length t.io_outputs)
    Soc.pp_summary t.soc Placement.pp t.placement
