(** Shared domain-count policy and fan-out helper for the Domain
    parallel drivers.

    OCaml 5 domains are heavyweight (one systhread + minor heap each),
    so every parallel driver in the tree — {!Planner.reuse_sweep}, the
    {!Annealing} tempering chains, the serve worker pool, the corpus
    sweep runner — clamps its requested parallelism the same way
    instead of each inventing its own. *)

val clamp : int -> int
(** [clamp requested] is [requested] bounded to
    [1 .. Domain.recommended_domain_count ()].  Counts above the
    recommendation cannot run in parallel anyway and only add spawn
    and contention overhead; results never depend on the domain count,
    so clamping is invisible to callers. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] is [List.map f items] evaluated on up to
    [clamp domains] domains (default [1], i.e. sequential).  Items are
    fanned out round-robin over the worker domains and reassembled in
    input order, so the result is independent of the domain count.  An
    exception raised by [f] on any item propagates from the join.  [f]
    must therefore be safe to run concurrently with itself on distinct
    items. *)
