(** Shared domain-count policy for the Domain fan-outs.

    OCaml 5 domains are heavyweight (one systhread + minor heap each),
    so every parallel driver in the tree — {!Planner.reuse_sweep}, the
    {!Annealing} tempering chains, the serve worker pool — clamps its
    requested parallelism the same way instead of each inventing its
    own. *)

val clamp : int -> int
(** [clamp requested] is [requested] bounded to
    [1 .. Domain.recommended_domain_count ()].  Counts above the
    recommendation cannot run in parallel anyway and only add spawn
    and contention overhead; results never depend on the domain count,
    so clamping is invisible to callers. *)
