module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper
module Soc = Nocplan_itc02.Soc
module Xy = Nocplan_noc.Xy_routing
module Link = Nocplan_noc.Link
module Latency = Nocplan_noc.Latency
module Power = Nocplan_noc.Power
module Coord = Nocplan_noc.Coord
module Processor = Nocplan_proc.Processor
module Characterization = Nocplan_proc.Characterization

type cost = {
  duration : int;
  power : float;
  links : Link.t list;
  routers : int;
  per_pattern : int;
}

(* Source-side steady overhead and one-time setup, and the power the
   endpoint draws. *)
let source_profile system ~application = function
  | Resource.External_in _ -> (0, 0, 0.0)
  | Resource.External_out _ ->
      invalid_arg "Test_access: External_out cannot source"
  | Resource.Processor id -> (
      match System.processor_of_module system id with
      | None -> invalid_arg "Test_access: source is not a processor"
      | Some p ->
          let c = Processor.source_characterization p.System.processor application in
          ( Processor.generation_overhead p.System.processor application,
            c.Characterization.setup_cycles,
            c.Characterization.power ))

let sink_profile system = function
  | Resource.External_out _ -> (0, 0, 0.0)
  | Resource.External_in _ -> invalid_arg "Test_access: External_in cannot sink"
  | Resource.Processor id -> (
      match System.processor_of_module system id with
      | None -> invalid_arg "Test_access: sink is not a processor"
      | Some p ->
          let c = p.System.processor.Processor.sink in
          ( int_of_float (Float.round c.Characterization.cycles_per_pattern),
            c.Characterization.setup_cycles,
            c.Characterization.power ))

let distinct_routers routes =
  List.sort_uniq Coord.compare (List.concat routes) |> List.length

(* The two halves of a test path, evaluated independently so the table
   can compute them once per (module, endpoint) instead of once per
   (module, source, sink) triple.  Transport: one flit per shift cycle
   per direction, plus a header flit per pattern packet.  The cadence
   term follows the sustainable wormhole model verified against the
   flit-level simulator by Schedule_sim: under back-to-back packets the
   successor's header trails the predecessor's tail by the routing
   setup at every one of the [hops + 2] port/channel crossings, on top
   of the flits' flow-control slots. *)
type source_leg = {
  gen_overhead : int;
  src_setup : int;
  src_power : float;
  links_in : Link.Set.t;
  route_in : Coord.t list;
  fill_in : int;
  transport_in : int;
}

type sink_leg = {
  sink_overhead : int;
  sink_setup : int;
  sink_power : float;
  links_out : Link.Set.t;
  route_out : Coord.t list;
  fill_out : int;
  transport_out : int;
  drain : int;
}

(* Both leg builders price an explicit router path (adjacent tiles,
   inclusive): the XY path in the classic case, a detour path when the
   table carries a custom route function.  Hops and the channel set
   fall out of the path itself, so the wormhole model prices a longer
   detour honestly (more fill, more routing setup, more routers). *)
let source_leg_of_route system ~application ~flits_in source route_in =
  let latency = system.System.latency in
  let flow = Latency.stream_cycle_per_flit latency in
  let routing = latency.Latency.routing_latency in
  let gen_overhead, src_setup, src_power =
    source_profile system ~application source
  in
  let hops_in = List.length route_in - 1 in
  {
    gen_overhead;
    src_setup;
    src_power;
    links_in = Link.Set.of_list (Xy.links_of_route route_in);
    route_in;
    fill_in = Latency.header_latency latency ~hops:hops_in;
    transport_in = ((hops_in + 2) * routing) + (flits_in * flow);
  }

let source_leg system ~application ~cut ~flits_in source =
  let src = Resource.coord system source in
  source_leg_of_route system ~application ~flits_in source
    (Xy.route system.System.topology ~src ~dst:cut)

let sink_leg_of_route system ~flits_out sink route_out =
  let latency = system.System.latency in
  let flow = Latency.stream_cycle_per_flit latency in
  let routing = latency.Latency.routing_latency in
  let sink_overhead, sink_setup, sink_power = sink_profile system sink in
  let hops_out = List.length route_out - 1 in
  {
    sink_overhead;
    sink_setup;
    sink_power;
    links_out = Link.Set.of_list (Xy.links_of_route route_out);
    route_out;
    fill_out = Latency.header_latency latency ~hops:hops_out;
    transport_out = ((hops_out + 2) * routing) + (flits_out * flow);
    (* After the last pattern slot the final response still drains
       through the sink path. *)
    drain = flits_out * flow;
  }

let sink_leg system ~cut ~flits_out sink =
  let snk = Resource.coord system sink in
  sink_leg_of_route system ~flits_out sink
    (Xy.route system.System.topology ~src:cut ~dst:snk)

let combine_legs system ~m ~shift_cycles ~pattern_count sleg kleg =
  let paths_shared =
    not (Link.Set.is_empty (Link.Set.inter sleg.links_in kleg.links_out))
  in
  (* If the two paths share a channel, the stimulus and response
     streams serialize on it and their occupancies add up. *)
  let transport =
    if paths_shared then sleg.transport_in + kleg.transport_out
    else max sleg.transport_in kleg.transport_out
  in
  let per_pattern =
    max shift_cycles transport + sleg.gen_overhead + kleg.sink_overhead
  in
  let duration =
    sleg.src_setup + kleg.sink_setup + sleg.fill_in + kleg.fill_out
    + (pattern_count * per_pattern)
    + kleg.drain
  in
  let links = Link.Set.elements (Link.Set.union sleg.links_in kleg.links_out) in
  let routers = distinct_routers [ sleg.route_in; kleg.route_out ] in
  let power =
    m.Module_def.test_power +. sleg.src_power +. kleg.sink_power
    +. Power.stream_power system.System.noc_power ~routers
  in
  { duration; power; links; routers; per_pattern }

(* The cost computation with the module record and its wrapper design
   already in hand — the wrapper is the expensive, per-module part (an
   LPT partition over every wrapper cell), so {!table} computes it once
   per module instead of once per (module, source, sink) triple. *)
let cost_with_wrapper system ~application ~m ~wrapper ~pattern_count ~module_id
    ~source ~sink =
  let cut = System.coord_of_module system module_id in
  let flits_in = wrapper.Wrapper.scan_in_max + 1 in
  let flits_out = wrapper.Wrapper.scan_out_max + 1 in
  let shift_cycles = Wrapper.pattern_cycles wrapper in
  combine_legs system ~m ~shift_cycles ~pattern_count
    (source_leg system ~application ~cut ~flits_in source)
    (sink_leg system ~cut ~flits_out sink)

let cost ?patterns system ~application ~module_id ~source ~sink =
  if not (Resource.valid_pair ~source ~sink) then
    invalid_arg "Test_access.cost: invalid source/sink pair";
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Test_access.cost: unknown module %d" module_id)
  in
  let pattern_count =
    match patterns with
    | None -> m.Module_def.patterns
    | Some p ->
        if p < 1 then invalid_arg "Test_access.cost: patterns must be >= 1";
        p
  in
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  cost_with_wrapper system ~application ~m ~wrapper ~pattern_count ~module_id
    ~source ~sink

let assumed_run_length = 4

let decompression_footprint_of_wrapper (m : Module_def.t) wrapper =
  let words = max 1 (m.Module_def.patterns * (wrapper.Wrapper.scan_in_max + 1)) in
  Nocplan_proc.Decompress.estimated_memory_words ~words
    ~mean_run_length:assumed_run_length

let decompression_footprint system ~module_id =
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Test_access.decompression_footprint: unknown module %d"
             module_id)
  in
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  decompression_footprint_of_wrapper m wrapper

let decompression_footprint_measured
    ?(style = Nocplan_proc.Test_data.Atpg 0.05) ?(seed = 7L) system
    ~module_id =
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf
             "Test_access.decompression_footprint_measured: unknown module %d"
             module_id)
  in
  Nocplan_proc.Test_data.measured_memory_words style ~seed
    ~flit_width:system.System.flit_width m

let memory_feasible_of_footprint system ~application ~footprint ~source =
  match (application, source) with
  | Processor.Bist, _
  | Processor.Decompression, (Resource.External_in _ | Resource.External_out _)
    ->
      true
  | Processor.Decompression, Resource.Processor id -> (
      match System.processor_of_module system id with
      | Some p -> footprint <= Processor.memory_capacity p.System.processor
      | None -> false)

let memory_feasible system ~application ~module_id ~source =
  match (application, source) with
  | Processor.Bist, _
  | Processor.Decompression, (Resource.External_in _ | Resource.External_out _)
    ->
      true
  | Processor.Decompression, Resource.Processor id -> (
      match System.processor_of_module system id with
      | Some p ->
          decompression_footprint system ~module_id
          <= Processor.memory_capacity p.System.processor
      | None -> false)

let route_feasible system ~module_id ~source ~sink =
  let failed = system.System.failed_links in
  Link.Set.is_empty failed
  ||
  let cut = System.coord_of_module system module_id in
  let src = Resource.coord system source in
  let snk = Resource.coord system sink in
  let topology = system.System.topology in
  List.for_all
    (fun l -> not (Link.Set.mem l failed))
    (Xy.links topology ~src ~dst:cut @ Xy.links topology ~src:cut ~dst:snk)

let feasible system ~application ~module_id ~source ~sink =
  Resource.valid_pair ~source ~sink
  && route_feasible system ~module_id ~source ~sink
  && memory_feasible system ~application ~module_id ~source

(* ------------------------------------------------------------------ *)
(* Precomputed access table                                           *)

type route_fn = src:Coord.t -> dst:Coord.t -> Coord.t list option

type table = {
  table_system : System.t;
  table_application : Processor.application;
  table_route : route_fn option;
      (** custom unicast routing (fault-aware detours); [None] means
          deterministic XY.  [Some f] with [f] returning [None] marks
          the (src, dst) pair unreachable: every cell needing that leg
          is infeasible with no cost. *)
  endpoints : Resource.endpoint array;
  endpoint_ids : (Resource.endpoint, int) Hashtbl.t;
  module_rows : (int, int) Hashtbl.t;
  width : int;  (** endpoint count — stride of one (module, source) row *)
  feasible_bits : bool array;  (** row-major [module][source][sink] *)
  route_bits : bool array;  (** row-major [module][source][sink] *)
  memory_bits : bool array;  (** row-major [module][source] *)
  costs : cost option array;  (** [None] on an invalid source/sink pair *)
  channels : int array array;
      (** row-major [module][source][sink]: the dense channel ids of
          the pair's path links (empty on an invalid pair), numbered
          per table for the {!Nocplan_noc.Reservation} calendar *)
  channel_ids : (Link.t, int) Hashtbl.t;
      (** the dense numbering itself, link -> channel id in first-use
          order.  Kept so {!table_rebuild} can extend the numbering of
          its base table instead of renumbering: a calendar populated
          under the base table stays valid under the rebuilt one. *)
}

(* Dense per-table channel numbering: every distinct link routed over
   by any (module, source, sink) pair gets one id, in first-use order —
   the reservation calendar indexes by it. *)
let channels_of_links t links =
  Array.of_list
    (List.map
       (fun l ->
         match Hashtbl.find_opt t.channel_ids l with
         | Some c -> c
         | None ->
             let c = Hashtbl.length t.channel_ids in
             Hashtbl.add t.channel_ids l c;
             c)
       links)

(* Fill one module's row of the table — every (source, sink) cell plus
   the per-source memory bits.  Shared by {!table} (every row, in order)
   and {!table_rebuild} (affected rows only). *)
let fill_row t row module_id =
  let system = t.table_system in
  let application = t.table_application in
  let endpoints = t.endpoints in
  let n = t.width in
  let no_failed = Link.Set.is_empty system.System.failed_links in
  let m = Soc.find system.System.soc module_id in
  (* The expensive per-module invariants, computed once. *)
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  let footprint =
    match application with
    | Processor.Bist -> 0
    | Processor.Decompression -> decompression_footprint_of_wrapper m wrapper
  in
  let cut = System.coord_of_module system module_id in
  let flits_in = wrapper.Wrapper.scan_in_max + 1 in
  let flits_out = wrapper.Wrapper.scan_out_max + 1 in
  let shift_cycles = Wrapper.pattern_cycles wrapper in
  (* Per-endpoint path legs, computed once per (module, endpoint)
     instead of once per (module, source, sink) triple. *)
  let topology = system.System.topology in
  let resolve ~src ~dst =
    match t.table_route with
    | None -> Some (Xy.route topology ~src ~dst)
    | Some f -> f ~src ~dst
  in
  let in_routes =
    Array.map
      (fun e -> resolve ~src:(Resource.coord system e) ~dst:cut)
      endpoints
  in
  let out_routes =
    Array.map
      (fun e -> resolve ~src:cut ~dst:(Resource.coord system e))
      endpoints
  in
  let source_legs =
    Array.mapi
      (fun i e ->
        match in_routes.(i) with
        | Some r when Resource.can_source e ->
            Some (source_leg_of_route system ~application ~flits_in e r)
        | Some _ | None -> None)
      endpoints
  in
  let sink_legs =
    Array.mapi
      (fun i e ->
        match out_routes.(i) with
        | Some r when Resource.can_sink e ->
            Some (sink_leg_of_route system ~flits_out e r)
        | Some _ | None -> None)
      endpoints
  in
  (* Route survivability of each path leg, for any endpoint — the
     validator probes arbitrary (source, sink) combinations, so
     these cover even endpoints that cannot legally play the role.
     Under a custom router a leg survives iff the router produced a
     path (which must itself avoid the faulty channels). *)
  let link_ok l = not (Link.Set.mem l system.System.failed_links) in
  let leg_ok routes =
    if no_failed && Option.is_none t.table_route then Array.make n true
    else
      Array.map
        (function
          | None -> false
          | Some r -> List.for_all link_ok (Xy.links_of_route r))
        routes
  in
  let in_route_ok = leg_ok in_routes in
  let out_route_ok = leg_ok out_routes in
  let base = row * n * n in
  Array.iteri
    (fun si source ->
      t.memory_bits.((row * n) + si) <-
        memory_feasible_of_footprint system ~application ~footprint ~source;
      Array.iteri
        (fun ki sink ->
          let idx = base + (si * n) + ki in
          t.route_bits.(idx) <- in_route_ok.(si) && out_route_ok.(ki);
          if Resource.valid_pair ~source ~sink then begin
            match (source_legs.(si), sink_legs.(ki)) with
            | Some sleg, Some kleg ->
                let c =
                  combine_legs system ~m ~shift_cycles
                    ~pattern_count:m.Module_def.patterns sleg kleg
                in
                t.costs.(idx) <- Some c;
                t.channels.(idx) <- channels_of_links t c.links;
                t.feasible_bits.(idx) <-
                  t.route_bits.(idx) && t.memory_bits.((row * n) + si)
            | _ ->
                (* A leg is unreachable under the custom router: the
                   pair has no path, hence no cost.  Explicit resets so
                   {!table_rebuild} rows forget their previous state. *)
                t.costs.(idx) <- None;
                t.channels.(idx) <- [||];
                t.feasible_bits.(idx) <- false
          end)
        endpoints)
    endpoints

let table ?(application = Processor.Bist) ?route system =
  Nocplan_obs.Trace.span "access.table"
    ~attrs:
      [
        ( "system",
          Nocplan_obs.Trace.String system.System.soc.Soc.name );
        ( "modules",
          Nocplan_obs.Trace.Int (Soc.module_count system.System.soc) );
      ]
  @@ fun () ->
  let endpoints =
    Array.of_list
      (Resource.all_endpoints system
         ~reuse:(List.length system.System.processors))
  in
  let n = Array.length endpoints in
  let endpoint_ids = Hashtbl.create (max 1 n) in
  Array.iteri (fun i e -> Hashtbl.replace endpoint_ids e i) endpoints;
  let module_ids = System.module_ids system in
  let module_rows = Hashtbl.create (List.length module_ids) in
  List.iteri (fun row id -> Hashtbl.replace module_rows id row) module_ids;
  let cells = List.length module_ids * n * n in
  let t =
    {
      table_system = system;
      table_application = application;
      table_route = route;
      endpoints;
      endpoint_ids;
      module_rows;
      width = n;
      feasible_bits = Array.make cells false;
      route_bits = Array.make cells false;
      memory_bits = Array.make (List.length module_ids * n) false;
      costs = Array.make (max 1 cells) None;
      channels = Array.make (max 1 cells) [||];
      channel_ids = Hashtbl.create 64;
    }
  in
  List.iteri (fun row module_id -> fill_row t row module_id) module_ids;
  t

let table_rebuild base ~system ~affected =
  Nocplan_obs.Trace.span "access.rebuild"
    ~attrs:
      [
        ("system", Nocplan_obs.Trace.String system.System.soc.Soc.name);
        ("affected", Nocplan_obs.Trace.Int (List.length affected));
      ]
  @@ fun () ->
  let old = base.table_system in
  List.iter
    (fun id ->
      if not (Hashtbl.mem base.module_rows id) then
        invalid_arg
          (Printf.sprintf "Test_access.table_rebuild: unknown module %d" id))
    affected;
  (* The contract: [system] differs from the base's system only in the
     placement of the [affected] modules.  Endpoints are pinned
     (processors and IO ports keep their tiles), so the endpoint set,
     its numbering and every unaffected module's row carry over; the
     checks below keep a buggy caller from silently trusting stale
     rows. *)
  Hashtbl.iter
    (fun id _row ->
      if
        (not (List.mem id affected))
        && not
             (Coord.equal
                (System.coord_of_module system id)
                (System.coord_of_module old id))
      then
        invalid_arg
          (Printf.sprintf
             "Test_access.table_rebuild: module %d moved but is not affected"
             id))
    base.module_rows;
  List.iter
    (fun (p : System.placed_processor) ->
      if
        not
          (Coord.equal p.System.coord
             (System.coord_of_module system p.System.module_id))
      then invalid_arg "Test_access.table_rebuild: a processor moved")
    system.System.processors;
  let t =
    {
      base with
      table_system = system;
      feasible_bits = Array.copy base.feasible_bits;
      route_bits = Array.copy base.route_bits;
      memory_bits = Array.copy base.memory_bits;
      costs = Array.copy base.costs;
      channels = Array.copy base.channels;
      (* Copy, then extend: links already numbered keep their ids, so
         reservations recorded under the base table's numbering remain
         meaningful; genuinely new links (routes touching the new
         tiles) are appended in first-use order. *)
      channel_ids = Hashtbl.copy base.channel_ids;
    }
  in
  List.iter
    (fun id -> fill_row t (Hashtbl.find t.module_rows id) id)
    (List.sort_uniq compare affected);
  t

let table_for t ~system ~application =
  t.table_system == system && t.table_application = application

let table_application t = t.table_application

let endpoint_id t endpoint =
  match Hashtbl.find_opt t.endpoint_ids endpoint with
  | Some i -> i
  | None ->
      invalid_arg
        (Fmt.str "Test_access.endpoint_id: %a is not in the table" Resource.pp
           endpoint)

let module_row t module_id =
  match Hashtbl.find_opt t.module_rows module_id with
  | Some row -> row
  | None ->
      invalid_arg
        (Printf.sprintf "Test_access.module_row: unknown module %d" module_id)

let feasible_ix t ~row ~src ~snk =
  t.feasible_bits.((row * t.width * t.width) + (src * t.width) + snk)

let cost_ix t ~row ~src ~snk =
  match t.costs.((row * t.width * t.width) + (src * t.width) + snk) with
  | Some c -> c
  | None -> invalid_arg "Test_access.cost_ix: invalid source/sink pair"

let channels_ix t ~row ~src ~snk =
  t.channels.((row * t.width * t.width) + (src * t.width) + snk)

let table_feasible t ~module_id ~source ~sink =
  feasible_ix t ~row:(module_row t module_id) ~src:(endpoint_id t source)
    ~snk:(endpoint_id t sink)

let table_cost t ~module_id ~source ~sink =
  cost_ix t ~row:(module_row t module_id) ~src:(endpoint_id t source)
    ~snk:(endpoint_id t sink)

let table_route_feasible t ~module_id ~source ~sink =
  t.route_bits.(
    (module_row t module_id * t.width * t.width)
    + (endpoint_id t source * t.width)
    + endpoint_id t sink)

let table_memory_feasible t ~module_id ~source =
  t.memory_bits.((module_row t module_id * t.width) + endpoint_id t source)

let pp_cost ppf c =
  Fmt.pf ppf
    "@[<h>cost(duration %d, per-pattern %d, power %.1f, %d links, %d routers)@]"
    c.duration c.per_pattern c.power (List.length c.links) c.routers
