module Reservation = Nocplan_noc.Reservation
module Processor = Nocplan_proc.Processor

let log_src =
  Logs.Src.create "nocplan.scheduler" ~doc:"Test scheduler decisions"

module Log = (val Logs.src_log log_src)

type policy = Greedy | Lookahead

type config = {
  policy : policy;
  application : Processor.application;
  reuse : int;
  power_limit : float option;
  order : int list option;
  start_time : int;
  modules : int list option;
  pretested : int list;
}

let config ?(policy = Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ?order ?(start_time = 0) ?modules
    ?(pretested = []) ~reuse () =
  if start_time < 0 then invalid_arg "Scheduler.config: negative start_time";
  { policy; application; reuse; power_limit; order; start_time; modules; pretested }

exception Unschedulable of string

let pp_policy ppf = function
  | Greedy -> Fmt.string ppf "greedy"
  | Lookahead -> Fmt.string ppf "lookahead"

(* Endpoint availability: [not_pooled] marks an endpoint that is not
   in the pool yet (a processor whose own test has not been
   scheduled); otherwise the slot holds the time it is (or will be)
   idle from. *)
let not_pooled = -1

let run ?access system config =
  let table =
    match access with
    | Some t ->
        if not (Test_access.table_for t ~system ~application:config.application)
        then
          invalid_arg
            "Scheduler.run: access table was built for another system or \
             application";
        t
    | None -> Test_access.table ~application:config.application system
  in
  let endpoints =
    Array.of_list (Resource.all_endpoints system ~reuse:config.reuse)
  in
  let n = Array.length endpoints in
  (* Slot index -> table endpoint index, resolved once. *)
  let tix = Array.map (Test_access.endpoint_id table) endpoints in
  let pretested = Hashtbl.create (max 1 (List.length config.pretested)) in
  List.iter (fun id -> Hashtbl.replace pretested id ()) config.pretested;
  let avail = Array.make (max 1 n) not_pooled in
  Array.iteri
    (fun i endpoint ->
      match endpoint with
      | Resource.External_in _ | Resource.External_out _ ->
          avail.(i) <- config.start_time
      | Resource.Processor id ->
          if Hashtbl.mem pretested id then avail.(i) <- config.start_time)
    endpoints;
  (* Processor module id -> slot index, for the pool-join on test
     completion. *)
  let proc_slot = Hashtbl.create (max 1 n) in
  Array.iteri
    (fun i endpoint ->
      match endpoint with
      | Resource.Processor id -> Hashtbl.replace proc_slot id i
      | Resource.External_in _ | Resource.External_out _ -> ())
    endpoints;
  (* Endpoint-release event queue.  Every future availability time is
     pushed when assigned; popped entries are validated against the
     current slot state, so stale (overwritten) times are discarded. *)
  let releases = Min_heap.create () in
  let now = ref config.start_time in
  let set_avail i time =
    avail.(i) <- time;
    if time > !now then Min_heap.push releases ~key:time ~value:i
  in
  let calendar = Reservation.create () in
  let monitor = Power_monitor.create ~limit:config.power_limit in
  let committed = ref [] in
  let wanted =
    match config.modules with
    | None -> System.module_ids system
    | Some ids ->
        List.iter
          (fun id ->
            if not (Nocplan_itc02.Soc.mem system.System.soc id) then
              invalid_arg
                (Printf.sprintf "Scheduler.run: unknown module %d" id))
          ids;
        List.sort_uniq Stdlib.compare ids
  in
  let initial_order =
    match config.order with
    | None ->
        let wanted_set = Hashtbl.create (List.length wanted) in
        List.iter (fun id -> Hashtbl.replace wanted_set id ()) wanted;
        List.filter
          (fun id -> Hashtbl.mem wanted_set id)
          (Priority.order system ~reuse:config.reuse)
    | Some order ->
        if List.sort Stdlib.compare order <> wanted then
          invalid_arg
            "Scheduler.run: order must be a permutation of the scheduled \
             module ids";
        order
  in
  let pending = ref initial_order in
  let try_commit ~now module_id row (i, j, _avail) =
    let c = Test_access.cost_ix table ~row ~src:tix.(i) ~snk:tix.(j) in
    let finish = now + c.Test_access.duration in
    if
      Reservation.is_free calendar c.Test_access.links ~start:now ~finish
      && Power_monitor.fits monitor ~start:now ~finish
           ~power:c.Test_access.power
    then begin
      Reservation.reserve calendar ~owner:module_id c.Test_access.links
        ~start:now ~finish;
      Power_monitor.add monitor ~start:now ~finish ~power:c.Test_access.power;
      set_avail i finish;
      set_avail j finish;
      let entry =
        {
          Schedule.module_id;
          source = endpoints.(i);
          sink = endpoints.(j);
          start = now;
          finish;
          power = c.Test_access.power;
          links = c.Test_access.links;
        }
      in
      committed := entry :: !committed;
      Log.debug (fun m ->
          m "t=%d: start module %d on %a -> %a (finish %d, power %.1f)" now
            module_id Resource.pp endpoints.(i) Resource.pp endpoints.(j)
            finish c.Test_access.power);
      (* A freshly tested reusable processor joins the pool when its
         test completes. *)
      (match System.processor_of_module system module_id with
      | Some _ -> (
          match Hashtbl.find_opt proc_slot module_id with
          | Some k -> set_avail k finish
          | None -> (* beyond the reuse horizon: tested but not reused *) ())
      | None -> ());
      true
    end
    else false
  in
  (* Candidate (source, sink) slot pairs for one core among the slots
     accepted by [eligible], each with the time both ends are idle.
     Pairs rejected by the admission table (role compatibility, faulty
     links on the XY paths, decompression memory) are dropped here.
     Built source-major in slot order, matching the visiting order the
     greedy tie-break depends on. *)
  let pairs_of ~row eligible =
    let candidates = ref [] in
    for i = n - 1 downto 0 do
      if eligible avail.(i) then
        for j = n - 1 downto 0 do
          if
            eligible avail.(j)
            && Test_access.feasible_ix table ~row ~src:tix.(i) ~snk:tix.(j)
          then candidates := (i, j, max avail.(i) avail.(j)) :: !candidates
        done
    done;
    !candidates
  in
  (* One scheduling attempt for one core at time [now].  Returns true
     if the core was started. *)
  let attempt_greedy ~now module_id =
    let row = Test_access.module_row table module_id in
    (* "The greedy behavior ... forces it to select the first test
       interface available": order pairs by how early they became
       idle. *)
    let candidates =
      List.stable_sort
        (fun (_, _, a) (_, _, b) -> Stdlib.compare a b)
        (pairs_of ~row (fun a -> a <> not_pooled && a <= now))
    in
    List.exists (try_commit ~now module_id row) candidates
  in
  let attempt_lookahead ~now module_id =
    let row = Test_access.module_row table module_id in
    let estimated_finish (i, j, avail) =
      let c = Test_access.cost_ix table ~row ~src:tix.(i) ~snk:tix.(j) in
      max now avail + c.Test_access.duration
    in
    let candidates =
      pairs_of ~row (fun a -> a <> not_pooled)
      |> List.map (fun pair -> (estimated_finish pair, pair))
      |> List.stable_sort (fun (fa, _) (fb, _) -> Stdlib.compare fa fb)
      |> List.map snd
    in
    (* Take candidates in completion order; commit the first idle one,
       but stop as soon as the best remaining pair is still busy —
       waiting for it beats settling for a worse pair. *)
    let rec go = function
      | [] -> false
      | ((_, _, avail) as pair) :: rest ->
          if avail > now then false
          else if try_commit ~now module_id row pair then true
          else go rest
    in
    go candidates
  in
  let attempt =
    match config.policy with
    | Greedy -> attempt_greedy
    | Lookahead -> attempt_lookahead
  in
  let guard = ref 0 in
  while !pending <> [] do
    incr guard;
    if !guard > 10_000_000 then
      raise (Unschedulable "scheduler did not converge");
    let scheduled, still_pending =
      List.partition (fun id -> attempt ~now:!now id) !pending
    in
    ignore scheduled;
    pending := still_pending;
    if !pending <> [] then begin
      (* Advance to the next endpoint-release event: pop until a pair
         that still matches its slot's availability (later bookings
         overwrite earlier release times, leaving stale entries). *)
      let rec next_event () =
        match Min_heap.pop releases with
        | None -> None
        | Some (time, i) ->
            if time > !now && avail.(i) = time then Some time
            else next_event ()
      in
      match next_event () with
      | Some t -> now := t
      | None ->
          raise
            (Unschedulable
               (Printf.sprintf
                  "no progress at t=%d with %d cores pending (power limit too \
                   tight or no resources)"
                  !now
                  (List.length !pending)))
    end
  done;
  Schedule.of_entries !committed
