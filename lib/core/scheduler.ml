module Reservation = Nocplan_noc.Reservation
module Processor = Nocplan_proc.Processor
module Trace = Nocplan_obs.Trace

let log_src =
  Logs.Src.create "nocplan.scheduler" ~doc:"Test scheduler decisions"

module Log = (val Logs.src_log log_src)

type policy = Greedy | Lookahead

type config = {
  policy : policy;
  application : Processor.application;
  reuse : int;
  power_limit : float option;
  order : int list option;
  start_time : int;
  modules : int list option;
  pretested : int list;
  link_ready : (Nocplan_noc.Link.t * int) list;
}

let config ?(policy = Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ?order ?(start_time = 0) ?modules
    ?(pretested = []) ?(link_ready = []) ~reuse () =
  if start_time < 0 then invalid_arg "Scheduler.config: negative start_time";
  List.iter
    (fun (_, t) ->
      if t < 0 then invalid_arg "Scheduler.config: negative link_ready time")
    link_ready;
  { policy; application; reuse; power_limit; order; start_time; modules;
    pretested; link_ready }

exception Unschedulable of string

let pp_policy ppf = function
  | Greedy -> Fmt.string ppf "greedy"
  | Lookahead -> Fmt.string ppf "lookahead"

(* Endpoint availability: [not_pooled] marks an endpoint that is not
   in the pool yet (a processor whose own test has not been
   scheduled); otherwise the slot holds the time it is (or will be)
   idle from. *)
let not_pooled = -1

(* ------------------------------------------------------------------ *)
(* Commit traces                                                      *)

(* One committed test, with enough context to replay it without a
   candidate search or an [is_free] revalidation: the slot indices it
   occupied, the position of its module in the evaluated order, and
   the channel ids it booked (shared with the access table, never
   mutated). *)
type commit = {
  c_entry : Schedule.entry;
  c_src : int;
  c_snk : int;
  c_pos : int;
  c_channels : int array;
}

type trace = {
  t_system : System.t;
  t_access : Test_access.table;
  t_config : config;  (* with [order = None]; the order lives in [t_order] *)
  t_order : int array;
  t_commits : commit array;  (* chronological: starts are nondecreasing *)
  t_schedule : Schedule.t;
  (* Final power ledger, kept so [resume] can restore any commit-prefix
     snapshot by truncation (never mutated once the trace is built). *)
  t_monitor : Power_monitor.t;
}

let trace_schedule t = t.t_schedule
let trace_order t = Array.copy t.t_order
let trace_length t = Array.length t.t_order
let trace_system t = t.t_system
let trace_access t = t.t_access

let trace_matches t ~system cfg =
  Test_access.table_for t.t_access ~system ~application:cfg.application
  && t.t_config = { cfg with order = None }

let trace_lcp t order =
  let n = min (Array.length t.t_order) (Array.length order) in
  let i = ref 0 in
  while !i < n && t.t_order.(!i) = order.(!i) do incr i done;
  !i

(* Last position at which [order] still differs from the traced order;
   -1 when they agree everywhere (callers only use it when they
   don't). *)
let trace_last_diff t order =
  let i = ref (min (Array.length t.t_order) (Array.length order) - 1) in
  while !i >= 0 && t.t_order.(!i) = order.(!i) do decr i done;
  !i

(* Index of the first traced commit whose order position falls in the
   changed window [[p, hi]] — the earliest point at which a run of the
   new order can diverge from the traced one (see the exactness note
   above [resume]).  -1 if no commit does (only possible when the
   window is empty). *)
let divergence_stop t ~p ~hi =
  let stop = ref (-1) in
  (try
     Array.iteri
       (fun k c ->
         if c.c_pos >= p && c.c_pos <= hi then begin
           stop := k;
           raise Exit
         end)
       t.t_commits
   with Exit -> ());
  !stop

(* Largest finish over the commits shared by every order agreeing with
   the traced one on its first [prefix_len] positions.  Commits logged
   before the first commit of a module at position >= [prefix_len]
   replay identically in all such runs (attempts proceed in order
   position, and failed attempts are side-effect-free), so their
   maximal finish lower-bounds every makespan in the subtree — the
   pruning rule of the order-space branch-and-bound. *)
let prefix_bound t ~prefix_len =
  let bound = ref t.t_config.start_time in
  (try
     Array.iter
       (fun c ->
         if c.c_pos >= prefix_len then raise Exit;
         if c.c_entry.Schedule.finish > !bound then
           bound := c.c_entry.Schedule.finish)
       t.t_commits
   with Exit -> ());
  !bound

(* ------------------------------------------------------------------ *)
(* Engine state                                                       *)

(* The full mutable state of one evaluation, snapshotted implicitly by
   the commit log: every field below is a pure function of the commit
   prefix applied so far, which is what makes [resume] possible. *)
type engine = {
  e_system : System.t;
  e_table : Test_access.table;
  e_config : config;
  e_order : int array;
  e_endpoints : Resource.endpoint array;
  e_n : int;
  e_tix : int array;  (* slot index -> table endpoint index *)
  e_proc_slot : (int, int) Hashtbl.t;
  e_pos : (int, int) Hashtbl.t;  (* module id -> position in e_order *)
  e_avail : int array;
  e_releases : Min_heap.t;
  e_calendar : Reservation.t;
  e_monitor : Power_monitor.t;
  (* Link health gates: a channel is unusable before its ready time
     (its router self-test has not passed yet).  Empty in the common
     case; the gate times also sit in [e_releases] as sentinel events
     (value [e_n], outside the slot range) so the loop advances to a
     gate opening even when no endpoint releases. *)
  e_gates : (Nocplan_noc.Link.t, int) Hashtbl.t;
  mutable e_now : int;
  mutable e_committed : Schedule.entry list;
  mutable e_commits : commit list;  (* reversed chronological log *)
}

let resolve_table ?access ~application system =
  match access with
  | Some t ->
      if not (Test_access.table_for t ~system ~application) then
        invalid_arg
          "Scheduler.run: access table was built for another system or \
           application";
      t
  | None -> Test_access.table ~application system

let wanted_modules system config =
  match config.modules with
  | None -> System.module_ids system
  | Some ids ->
      List.iter
        (fun id ->
          if not (Nocplan_itc02.Soc.mem system.System.soc id) then
            invalid_arg
              (Printf.sprintf "Scheduler.run: unknown module %d" id))
        ids;
      List.sort_uniq Int.compare ids

(* Membership check instead of sort-and-compare: O(n) and
   allocation-light, which matters because search drivers validate an
   order on every single evaluation. *)
let check_permutation ~wanted order =
  let remaining = Hashtbl.create (max 1 (List.length wanted)) in
  List.iter (fun id -> Hashtbl.replace remaining id ()) wanted;
  let consumed =
    List.for_all
      (fun id ->
        Hashtbl.mem remaining id
        && begin
             Hashtbl.remove remaining id;
             true
           end)
      order
  in
  if not (consumed && Hashtbl.length remaining = 0) then
    invalid_arg
      "Scheduler.run: order must be a permutation of the scheduled module ids"

(* The evaluation arena: every engine part that does not depend on the
   evaluated order, reusable across evaluations of one (system, table,
   config) triple.  Search drivers evaluate thousands of orders
   against a single configuration, and rebuilding the endpoint
   resolution, availability array, release heap and — above all — the
   reservation calendar per evaluation dominated the cost of short
   incremental runs. *)
type arena = {
  a_system : System.t;
  a_table : Test_access.table;
  a_config : config;  (* with [order = None], like [e_config] *)
  a_endpoints : Resource.endpoint array;
  a_n : int;
  a_tix : int array;
  a_proc_slot : (int, int) Hashtbl.t;
  a_avail0 : int array;  (* availability at [config.start_time] *)
  a_avail : int array;
  a_pos : (int, int) Hashtbl.t;
  a_releases : Min_heap.t;
  a_calendar : Reservation.t;
}

(* A workspace owns at most one arena (the last configuration it
   served).  Engines borrow the arena's mutable state, so a workspace
   must never serve two live engines at once — one workspace per
   search chain, never shared across domains. *)
type workspace = { mutable w_arena : arena option }

let workspace () = { w_arena = None }

let build_arena ~table system config =
  let endpoints =
    Array.of_list (Resource.all_endpoints system ~reuse:config.reuse)
  in
  let n = Array.length endpoints in
  let tix = Array.map (Test_access.endpoint_id table) endpoints in
  let pretested = Hashtbl.create (max 1 (List.length config.pretested)) in
  List.iter (fun id -> Hashtbl.replace pretested id ()) config.pretested;
  let avail0 = Array.make (max 1 n) not_pooled in
  Array.iteri
    (fun i endpoint ->
      match endpoint with
      | Resource.External_in _ | Resource.External_out _ ->
          avail0.(i) <- config.start_time
      | Resource.Processor id ->
          if Hashtbl.mem pretested id then avail0.(i) <- config.start_time)
    endpoints;
  let proc_slot = Hashtbl.create (max 1 n) in
  Array.iteri
    (fun i endpoint ->
      match endpoint with
      | Resource.Processor id -> Hashtbl.replace proc_slot id i
      | Resource.External_in _ | Resource.External_out _ -> ())
    endpoints;
  {
    a_system = system;
    a_table = table;
    a_config = { config with order = None };
    a_endpoints = endpoints;
    a_n = n;
    a_tix = tix;
    a_proc_slot = proc_slot;
    a_avail0 = avail0;
    a_avail = Array.copy avail0;
    a_pos = Hashtbl.create 32;
    a_releases = Min_heap.create ();
    a_calendar = Reservation.create ();
  }

let make_engine ?workspace ~table system config order =
  let cfg = { config with order = None } in
  let arena =
    match workspace with
    | Some { w_arena = Some a }
      when a.a_table == table && a.a_system == system && a.a_config = cfg ->
        (* Reset in place: capacities (calendar storage, heap arrays)
           stay warm from the previous evaluation. *)
        Array.blit a.a_avail0 0 a.a_avail 0 (Array.length a.a_avail0);
        Min_heap.clear a.a_releases;
        Reservation.clear a.a_calendar;
        Hashtbl.reset a.a_pos;
        a
    | Some w ->
        let a = build_arena ~table system config in
        w.w_arena <- Some a;
        a
    | None -> build_arena ~table system config
  in
  Array.iteri (fun p id -> Hashtbl.replace arena.a_pos id p) order;
  let gates = Hashtbl.create (max 1 (List.length cfg.link_ready)) in
  List.iter
    (fun (l, t) ->
      match Hashtbl.find_opt gates l with
      | Some t' when t' >= t -> ()
      | _ -> Hashtbl.replace gates l t)
    cfg.link_ready;
  let e =
    {
      e_system = system;
      e_table = table;
      e_config = cfg;
      e_order = order;
      e_endpoints = arena.a_endpoints;
      e_n = arena.a_n;
      e_tix = arena.a_tix;
      e_proc_slot = arena.a_proc_slot;
      e_pos = arena.a_pos;
      e_avail = arena.a_avail;
      e_releases = arena.a_releases;
      e_calendar = arena.a_calendar;
      e_monitor = Power_monitor.create ~limit:config.power_limit;
      e_now = config.start_time;
      e_committed = [];
      e_commits = [];
      e_gates = gates;
    }
  in
  (* Sentinel wake-ups at every gate opening still ahead of the start
     time; [value = e_n] marks them as non-slot events for the
     staleness filter. *)
  Hashtbl.iter
    (fun _ t -> if t > e.e_now then Min_heap.push e.e_releases ~key:t ~value:e.e_n)
    gates;
  e

let set_avail e i time =
  e.e_avail.(i) <- time;
  if time > e.e_now then Min_heap.push e.e_releases ~key:time ~value:i

(* Whether every channel of the candidate's path has passed its
   self-test by [now].  Gate times are static, so a closed gate only
   delays the pair — the sentinel events keep the loop advancing. *)
let gates_open e ~now links =
  Hashtbl.length e.e_gates = 0
  || List.for_all
       (fun l ->
         match Hashtbl.find_opt e.e_gates l with
         | Some ready -> ready <= now
         | None -> true)
       links

let try_commit e ~now module_id row (i, j, _avail) =
  let src = e.e_tix.(i) and snk = e.e_tix.(j) in
  let c = Test_access.cost_ix e.e_table ~row ~src ~snk in
  let channels = Test_access.channels_ix e.e_table ~row ~src ~snk in
  let finish = now + c.Test_access.duration in
  if
    gates_open e ~now c.Test_access.links
    && Reservation.is_free e.e_calendar channels ~start:now ~finish
    && Power_monitor.fits e.e_monitor ~start:now ~finish
         ~power:c.Test_access.power
  then begin
    Reservation.reserve e.e_calendar ~owner:module_id channels ~start:now
      ~finish;
    Power_monitor.add e.e_monitor ~start:now ~finish ~power:c.Test_access.power;
    set_avail e i finish;
    set_avail e j finish;
    let entry =
      {
        Schedule.module_id;
        source = e.e_endpoints.(i);
        sink = e.e_endpoints.(j);
        start = now;
        finish;
        power = c.Test_access.power;
        links = c.Test_access.links;
      }
    in
    e.e_committed <- entry :: e.e_committed;
    e.e_commits <-
      { c_entry = entry; c_src = i; c_snk = j;
        c_pos = Hashtbl.find e.e_pos module_id; c_channels = channels }
      :: e.e_commits;
    Log.debug (fun m ->
        m "t=%d: start module %d on %a -> %a (finish %d, power %.1f)" now
          module_id Resource.pp e.e_endpoints.(i) Resource.pp e.e_endpoints.(j)
          finish c.Test_access.power);
    if Trace.enabled () then
      Trace.instant "scheduler.commit"
        ~attrs:
          [
            ("module", Trace.Int module_id);
            ("source", Trace.String (Fmt.str "%a" Resource.pp e.e_endpoints.(i)));
            ("sink", Trace.String (Fmt.str "%a" Resource.pp e.e_endpoints.(j)));
            ("start", Trace.Int now);
            ("finish", Trace.Int finish);
            ("power", Trace.Float c.Test_access.power);
          ];
    (* A freshly tested reusable processor joins the pool when its
       test completes. *)
    (match System.processor_of_module e.e_system module_id with
    | Some _ -> (
        match Hashtbl.find_opt e.e_proc_slot module_id with
        | Some k -> set_avail e k finish
        | None -> (* beyond the reuse horizon: tested but not reused *) ())
    | None -> ());
    true
  end
  else false

(* Candidate (source, sink) slot pairs for one core among the
   eligible slots [slots.(0 .. k-1)] (ascending slot order), each with
   the time both ends are idle.  Pairs rejected by the admission table
   (role compatibility, faulty links on the XY paths, decompression
   memory) are dropped here.  Built source-major in slot order,
   matching the visiting order the greedy tie-break depends on. *)
let pairs_of e ~row slots k =
  let avail = e.e_avail and tix = e.e_tix in
  let candidates = ref [] in
  for a = k - 1 downto 0 do
    let i = slots.(a) in
    for b = k - 1 downto 0 do
      let j = slots.(b) in
      if Test_access.feasible_ix e.e_table ~row ~src:tix.(i) ~snk:tix.(j)
      then candidates := (i, j, max avail.(i) avail.(j)) :: !candidates
    done
  done;
  !candidates

(* ------------------------------------------------------------------ *)
(* Decision log                                                       *)

let is_processor = function
  | Resource.Processor _ -> true
  | Resource.External_in _ | Resource.External_out _ -> false

(* One decision-log candidate: a feasible pooled pair, busy or not.
   Captured {e before} the winning commit mutates the availability
   array, so every ready time is the one the policy actually saw. *)
type cand = { d_i : int; d_j : int; d_ready : int; d_dur : int }

(* Every feasible pair over the pooled slots — not just the subset the
   greedy policy admits (idle right now).  The paper's anomaly is
   precisely a faster external pair that was busy at commit time, so
   the decision log must record what the policy refused to look at.
   Only built at the [Decisions] trace level. *)
let all_candidates e ~row =
  let acc = ref [] in
  for i = e.e_n - 1 downto 0 do
    if e.e_avail.(i) <> not_pooled then
      for j = e.e_n - 1 downto 0 do
        if
          e.e_avail.(j) <> not_pooled
          && Test_access.feasible_ix e.e_table ~row ~src:e.e_tix.(i)
               ~snk:e.e_tix.(j)
        then begin
          let c =
            Test_access.cost_ix e.e_table ~row ~src:e.e_tix.(i)
              ~snk:e.e_tix.(j)
          in
          acc :=
            {
              d_i = i;
              d_j = j;
              d_ready = max e.e_avail.(i) e.e_avail.(j);
              d_dur = c.Test_access.duration;
            }
            :: !acc
        end
      done
  done;
  !acc

let emit_decision e ~now module_id ~policy cands ~winner:(wi, wj) =
  Trace.instant "scheduler.decision"
    ~attrs:
      [
        ("module", Trace.Int module_id);
        ("t", Trace.Int now);
        ("policy", Trace.String policy);
        ("candidates", Trace.Int (List.length cands));
      ];
  List.iter
    (fun c ->
      let src = e.e_endpoints.(c.d_i) and snk = e.e_endpoints.(c.d_j) in
      Trace.instant "scheduler.candidate"
        ~attrs:
          [
            ("module", Trace.Int module_id);
            ("source", Trace.String (Fmt.str "%a" Resource.pp src));
            ("sink", Trace.String (Fmt.str "%a" Resource.pp snk));
            ("source_processor", Trace.Bool (is_processor src));
            ("sink_processor", Trace.Bool (is_processor snk));
            ("ready", Trace.Int c.d_ready);
            ("duration", Trace.Int c.d_dur);
            ("est_finish", Trace.Int (max now c.d_ready + c.d_dur));
            ("eligible", Trace.Bool (c.d_ready <= now));
            ("chosen", Trace.Bool (c.d_i = wi && c.d_j = wj));
          ])
    cands

(* One scheduling attempt for one core at time [now].  Returns true
   if the core was started. *)
let attempt_greedy e ~slots ~k ~now module_id =
  let row = Test_access.module_row e.e_table module_id in
  (* "The greedy behavior ... forces it to select the first test
     interface available": order pairs by how early they became
     idle. *)
  let candidates =
    List.stable_sort
      (fun (_, _, a) (_, _, b) -> Int.compare a b)
      (pairs_of e ~row slots k)
  in
  (* The decision log needs the pre-commit availability picture. *)
  let shadow = if Trace.decisions () then Some (all_candidates e ~row) else None in
  let rec pick = function
    | [] -> None
    | pair :: rest ->
        if try_commit e ~now module_id row pair then Some pair else pick rest
  in
  match pick candidates with
  | None -> false
  | Some (wi, wj, _) ->
      (match shadow with
      | Some all ->
          emit_decision e ~now module_id ~policy:"greedy" all ~winner:(wi, wj)
      | None -> ());
      true

let attempt_lookahead e ~slots ~k ~now module_id =
  let row = Test_access.module_row e.e_table module_id in
  let estimated_finish (i, j, avail) =
    let c =
      Test_access.cost_ix e.e_table ~row ~src:e.e_tix.(i) ~snk:e.e_tix.(j)
    in
    max now avail + c.Test_access.duration
  in
  let candidates =
    pairs_of e ~row slots k
    |> List.map (fun pair -> (estimated_finish pair, pair))
    |> List.stable_sort (fun (fa, _) (fb, _) -> Int.compare fa fb)
    |> List.map snd
  in
  let shadow = if Trace.decisions () then Some (all_candidates e ~row) else None in
  (* Take candidates in completion order; commit the first idle one,
     but stop as soon as the best remaining pair is still busy —
     waiting for it beats settling for a worse pair. *)
  let rec go = function
    | [] -> None
    | ((_, _, avail) as pair) :: rest ->
        if avail > now then None
        else if try_commit e ~now module_id row pair then Some pair
        else go rest
  in
  match go candidates with
  | None -> false
  | Some (wi, wj, _) ->
      (match shadow with
      | Some all ->
          emit_decision e ~now module_id ~policy:"lookahead" all
            ~winner:(wi, wj)
      | None -> ());
      true

let event_loop e pending0 =
  (* The eligible-slot set is a function of the availability array and
     the current time, both of which change only on a commit or an
     event advance — so it is computed once per quiescent stretch and
     shared by every pending module's attempt, instead of rescanning
     all slots (most attempts fail) per attempt. *)
  let eligible =
    match e.e_config.policy with
    | Greedy -> fun a -> a <> not_pooled && a <= e.e_now
    | Lookahead -> fun a -> a <> not_pooled
  in
  let slots = Array.make (max 1 e.e_n) 0 in
  let k = ref 0 in
  let stale = ref true in
  let refresh () =
    k := 0;
    for i = 0 to e.e_n - 1 do
      if eligible e.e_avail.(i) then begin
        slots.(!k) <- i;
        incr k
      end
    done;
    stale := false
  in
  let attempt =
    let go =
      match e.e_config.policy with
      | Greedy -> attempt_greedy e
      | Lookahead -> attempt_lookahead e
    in
    fun ~now id ->
      if !stale then refresh ();
      let committed = go ~slots ~k:!k ~now id in
      if committed then stale := true;
      committed
  in
  let pending = ref pending0 in
  let guard = ref 0 in
  while !pending <> [] do
    incr guard;
    if !guard > 10_000_000 then
      raise (Unschedulable "scheduler did not converge");
    let scheduled, still_pending =
      List.partition (fun id -> attempt ~now:e.e_now id) !pending
    in
    ignore scheduled;
    pending := still_pending;
    if !pending <> [] then begin
      (* Advance to the next endpoint-release event: pop until a pair
         that still matches its slot's availability (later bookings
         overwrite earlier release times, leaving stale entries). *)
      let rec next_event () =
        match Min_heap.pop e.e_releases with
        | None -> None
        | Some (time, i) ->
            (* Sentinel gate events ([i = e_n]) carry no slot to
               cross-check; slot events must still match their slot's
               availability (later bookings overwrite earlier release
               times, leaving stale entries). *)
            if time > e.e_now && (i >= e.e_n || e.e_avail.(i) = time) then
              Some time
            else next_event ()
      in
      match next_event () with
      | Some t ->
          e.e_now <- t;
          if Trace.decisions () then
            Trace.instant "scheduler.advance" ~attrs:[ ("t", Trace.Int t) ];
          stale := true
      | None ->
          raise
            (Unschedulable
               (Printf.sprintf
                  "no progress at t=%d with %d cores pending (power limit too \
                   tight or no resources)"
                  e.e_now
                  (List.length !pending)))
    end
  done

let finish_trace e =
  {
    t_system = e.e_system;
    t_access = e.e_table;
    t_config = e.e_config;
    t_order = e.e_order;
    t_commits = Array.of_list (List.rev e.e_commits);
    t_schedule = Schedule.of_entries e.e_committed;
    t_monitor = e.e_monitor;
  }

let run_traced ?workspace ?access system config =
  let go () =
    let table = resolve_table ?access ~application:config.application system in
    let wanted = wanted_modules system config in
    let initial_order =
      match config.order with
      | None ->
          let wanted_set = Hashtbl.create (max 1 (List.length wanted)) in
          List.iter (fun id -> Hashtbl.replace wanted_set id ()) wanted;
          List.filter
            (fun id -> Hashtbl.mem wanted_set id)
            (Priority.order system ~reuse:config.reuse)
      | Some order ->
          check_permutation ~wanted order;
          order
    in
    let e =
      make_engine ?workspace ~table system config (Array.of_list initial_order)
    in
    event_loop e initial_order;
    finish_trace e
  in
  if not (Trace.enabled ()) then go ()
  else begin
    Trace.begin_span "scheduler.run"
      ~attrs:
        [
          ("policy", Trace.String (Fmt.str "%a" pp_policy config.policy));
          ("reuse", Trace.Int config.reuse);
        ];
    match go () with
    | tr ->
        Trace.end_span "scheduler.run"
          ~attrs:
            [
              ("makespan", Trace.Int tr.t_schedule.Schedule.makespan);
              ("commits", Trace.Int (Array.length tr.t_commits));
            ];
        tr
    | exception exn ->
        Trace.end_span "scheduler.run" ~attrs:[ ("raised", Trace.Bool true) ];
        raise exn
  end

let run ?access system config = (run_traced ?access system config).t_schedule

(* ------------------------------------------------------------------ *)
(* Prefix resume                                                      *)

(* Re-apply a traced commit's effects.  The calendar booking goes
   through the unchecked [Reservation.restore] (the trace proves the
   window free), and the power ledger is not touched here: [resume]
   restores it wholesale with [Power_monitor.copy_truncated], because
   the kept entries are exactly those of the replayed commits (commits
   apply in nondecreasing start order, and the cut is at a start
   time).  Direct array writes instead of [set_avail]: the release
   heap is rebuilt in one pass after the replay. *)
let replay_commit e c =
  let entry = c.c_entry in
  Reservation.restore e.e_calendar ~owner:entry.Schedule.module_id
    c.c_channels ~start:entry.Schedule.start ~finish:entry.Schedule.finish;
  e.e_avail.(c.c_src) <- entry.Schedule.finish;
  e.e_avail.(c.c_snk) <- entry.Schedule.finish;
  (match System.processor_of_module e.e_system entry.Schedule.module_id with
  | Some _ -> (
      match Hashtbl.find_opt e.e_proc_slot entry.Schedule.module_id with
      | Some k -> e.e_avail.(k) <- entry.Schedule.finish
      | None -> ())
  | None -> ());
  e.e_committed <- entry :: e.e_committed;
  e.e_commits <-
    { c with c_pos = Hashtbl.find e.e_pos entry.Schedule.module_id }
    :: e.e_commits

(* Why this is exact (and not just approximate): let [[p, hi]] be the
   smallest position window containing every position where the new
   order differs from the traced one.  Outside the window the two
   orders place the same module at the same position, so any two
   modules not both inside the window keep their relative order.
   Within every event, modules are attempted in order position and a
   failed attempt leaves no state behind, so the two runs evolve
   commit for commit identically as long as every committing module
   sits outside the window: such a commit is seen (or not seen) by any
   later attempt identically in both runs, because position
   comparisons against a position < p or > hi do not depend on how the
   window itself is arranged.  The first place the runs can diverge is
   therefore the event at which the first module at a position inside
   [[p, hi]] commits.  Replaying the commits that start strictly
   before that event, restoring the calendar and power ledger by
   truncation, jumping to the divergence event and re-entering the
   normal loop reproduces the from-scratch run byte for byte — the
   "incremental evaluation" property test pins this across systems,
   policies and power limits. *)

let resume ?workspace trace order =
  let order = Array.copy order in
  check_permutation
    ~wanted:(Array.to_list trace.t_order)
    (Array.to_list order);
  let p = trace_lcp trace order in
  if p = Array.length order then trace
  else begin
    let go () =
      (* First traced commit of a module inside the changed window; one
         exists because every position commits exactly once. *)
      let hi = trace_last_diff trace order in
      let s = divergence_stop trace ~p ~hi in
      assert (s >= 0);
      let t_star = trace.t_commits.(s).c_entry.Schedule.start in
      let e0 =
        make_engine ?workspace ~table:trace.t_access trace.t_system
          trace.t_config order
      in
      (* Restore the shared-prefix power ledger by truncating the
         trace's final one: the entries starting before [t_star] are
         exactly those of the commits replayed below (which rebuild the
         calendar side themselves through [Reservation.restore]). *)
      let mon = Power_monitor.copy_truncated trace.t_monitor ~before:t_star in
      let e = { e0 with e_monitor = mon } in
      let committed = Hashtbl.create (max 1 s) in
      let k = ref 0 in
      while !k < s && trace.t_commits.(!k).c_entry.Schedule.start < t_star do
        let c = trace.t_commits.(!k) in
        replay_commit e c;
        Hashtbl.replace committed c.c_entry.Schedule.module_id ();
        incr k
      done;
      if Trace.enabled () then
        Trace.instant "scheduler.replay"
          ~attrs:
            [ ("commits", Trace.Int !k); ("divergence_t", Trace.Int t_star) ];
      e.e_now <- t_star;
      for i = 0 to e.e_n - 1 do
        if e.e_avail.(i) > t_star then
          Min_heap.push e.e_releases ~key:e.e_avail.(i) ~value:i
      done;
      let pending =
        List.filter
          (fun id -> not (Hashtbl.mem committed id))
          (Array.to_list order)
      in
      event_loop e pending;
      finish_trace e
    in
    if not (Trace.enabled ()) then go ()
    else begin
      Trace.begin_span "scheduler.resume"
        ~attrs:[ ("modules", Trace.Int (Array.length order)) ];
      match go () with
      | tr ->
          Trace.end_span "scheduler.resume"
            ~attrs:
              [ ("makespan", Trace.Int tr.t_schedule.Schedule.makespan) ];
          tr
      | exception exn ->
          Trace.end_span "scheduler.resume"
            ~attrs:[ ("raised", Trace.Bool true) ];
          raise exn
    end
  end

(* ------------------------------------------------------------------ *)
(* Placement resume                                                   *)

(* Re-evaluate a trace's order on a placement-mutated system.  Unlike
   [resume], which handles a changed {e order} on the same system, here
   the system itself changed — but only the [affected] modules' rows of
   the cost model did ({!Test_access.table_rebuild}), so every commit
   of an unaffected module replays verbatim while the affected modules
   are re-attempted live at every event, exactly where the from-scratch
   run would attempt them.

   Why this is exact: at every event the from-scratch run attempts the
   pending modules once, in order position.  An unaffected module's
   attempt outcome is a deterministic function of the engine state and
   its (bit-identical) table row, so while the replayed state equals
   the traced state its outcome equals the traced outcome — commit for
   commit, including the events at which nothing commits.  Only the
   affected modules can behave differently, so the first divergence is
   the first event at which an affected module's live attempt commits
   where the trace shows none, or the trace commits an affected module
   itself (whose new cost makes the outcome different either way).  Up
   to that point we replay; at that point we finish the event's attempt
   pass over the remaining positions live — re-entering [event_loop] at
   the same instant would re-attempt earlier positions, which the
   from-scratch run never does (observable under Lookahead, where a
   commit can reorder the estimated-finish ranking) — and only then
   hand over to the normal loop.  The "placement resume oracle"
   property test pins resume_onto = run-from-scratch across generated
   systems, policies and power limits. *)
let resume_onto ?workspace trace ~system ~access ~affected =
  let cfg = trace.t_config in
  if not (Test_access.table_for access ~system ~application:cfg.application)
  then
    invalid_arg
      "Scheduler.resume_onto: access table does not match the mutated system";
  let order = Array.copy trace.t_order in
  check_permutation ~wanted:(wanted_modules system cfg) (Array.to_list order);
  let aff_tbl = Hashtbl.create 4 in
  List.iter (fun id -> Hashtbl.replace aff_tbl id ()) affected;
  let go () =
    let e = make_engine ?workspace ~table:access system cfg order in
    (* Affected modules that are actually scheduled, ascending by order
       position; the per-event cursor below walks them in step with the
       replayed commits (whose positions also ascend within an event,
       because pending lists preserve order). *)
    let aff_arr =
      let l = ref [] in
      Array.iteri
        (fun p id -> if Hashtbl.mem aff_tbl id then l := (p, id) :: !l)
        order;
      Array.of_list (List.rev !l)
    in
    let done_tbl = Hashtbl.create 16 in
    (* Live-attempt machinery, mirroring [event_loop]'s. *)
    let eligible =
      match cfg.policy with
      | Greedy -> fun a -> a <> not_pooled && a <= e.e_now
      | Lookahead -> fun a -> a <> not_pooled
    in
    let slots = Array.make (max 1 e.e_n) 0 in
    let k = ref 0 in
    let stale = ref true in
    let refresh () =
      k := 0;
      for i = 0 to e.e_n - 1 do
        if eligible e.e_avail.(i) then begin
          slots.(!k) <- i;
          incr k
        end
      done;
      stale := false
    in
    let attempt =
      let go_attempt =
        match cfg.policy with
        | Greedy -> attempt_greedy e
        | Lookahead -> attempt_lookahead e
      in
      fun id ->
        if !stale then refresh ();
        let committed = go_attempt ~slots ~k:!k ~now:e.e_now id in
        if committed then stale := true;
        committed
    in
    let n_commits = Array.length trace.t_commits in
    let ci = ref 0 in
    let diverged = ref false in
    let div_pos = ref (-1) in
    let replayed = ref 0 in
    (* The next event exactly as the engine would compute it — the
       earliest pending release.  [replay_commit] bypasses the release
       heap, so scan the availability array instead: the heap's
       staleness filter makes its answer equal to this minimum. *)
    let next_event_after t =
      let best = ref max_int in
      for i = 0 to e.e_n - 1 do
        let a = e.e_avail.(i) in
        if a > t && a < !best then best := a
      done;
      (* Gate openings are events too (the heap's sentinels are not
         consulted here). *)
      Hashtbl.iter
        (fun _ r -> if r > t && r < !best then best := r)
        e.e_gates;
      if !best = max_int then None else Some !best
    in
    let remaining () =
      !ci < n_commits
      || Array.exists (fun (_, id) -> not (Hashtbl.mem done_tbl id)) aff_arr
    in
    while (not !diverged) && remaining () do
      let t = e.e_now in
      stale := true;
      (* One attempt pass at event [t], merged by order position from
         the replayed commits and the affected modules' live attempts;
         [cursor] visits each affected module at most once per event. *)
      let cursor = ref 0 in
      let try_aff_upto limit =
        let hit = ref None in
        while
          !hit = None
          && !cursor < Array.length aff_arr
          && fst aff_arr.(!cursor) < limit
        do
          let p, id = aff_arr.(!cursor) in
          incr cursor;
          if (not (Hashtbl.mem done_tbl id)) && attempt id then begin
            Hashtbl.replace done_tbl id ();
            hit := Some p
          end
        done;
        !hit
      in
      while
        (not !diverged)
        && !ci < n_commits
        && trace.t_commits.(!ci).c_entry.Schedule.start = t
      do
        let c = trace.t_commits.(!ci) in
        match try_aff_upto c.c_pos with
        | Some p ->
            diverged := true;
            div_pos := p
        | None ->
            let id = c.c_entry.Schedule.module_id in
            incr ci;
            if Hashtbl.mem aff_tbl id then begin
              (* The trace commits an affected module here; under the
                 new placement its outcome differs either way (other
                 resources, other duration, or outright failure), so
                 the runs part company at this position. *)
              if attempt id then Hashtbl.replace done_tbl id ();
              diverged := true;
              div_pos := c.c_pos
            end
            else begin
              replay_commit e c;
              (* [replay_commit] leaves the power ledger alone (plain
                 [resume] restores it wholesale by truncation); here
                 live commits interleave with replays within one event,
                 so re-add each replayed window — chronological order,
                 the same floats the from-scratch run would add. *)
              Power_monitor.add e.e_monitor ~start:c.c_entry.Schedule.start
                ~finish:c.c_entry.Schedule.finish
                ~power:c.c_entry.Schedule.power;
              Hashtbl.replace done_tbl id ();
              incr replayed;
              stale := true
            end
      done;
      if not !diverged then begin
        (match try_aff_upto max_int with
        | Some p ->
            diverged := true;
            div_pos := p
        | None -> ());
        if (not !diverged) && remaining () then
          match next_event_after t with
          | Some t' -> e.e_now <- t'
          | None ->
              raise
                (Unschedulable
                   (Printf.sprintf
                      "no progress at t=%d resuming onto mutated placement" t))
      end
    done;
    if !diverged then begin
      (* Finish the divergence event's pass: the from-scratch run goes
         on to attempt every later pending position with the diverged
         state before it advances time. *)
      for p = !div_pos + 1 to Array.length order - 1 do
        let id = order.(p) in
        if not (Hashtbl.mem done_tbl id) then
          if attempt id then Hashtbl.replace done_tbl id ()
      done;
      let pending =
        List.filter
          (fun id -> not (Hashtbl.mem done_tbl id))
          (Array.to_list order)
      in
      if pending <> [] then begin
        (match next_event_after e.e_now with
        | Some t' -> e.e_now <- t'
        | None ->
            raise
              (Unschedulable
                 (Printf.sprintf
                    "no progress at t=%d with %d cores pending (power limit \
                     too tight or no resources)"
                    e.e_now (List.length pending))));
        for i = 0 to e.e_n - 1 do
          if e.e_avail.(i) > e.e_now then
            Min_heap.push e.e_releases ~key:e.e_avail.(i) ~value:i
        done;
        event_loop e pending
      end
    end;
    if Trace.enabled () then
      Trace.instant "scheduler.replay_onto"
        ~attrs:
          [
            ("replayed", Trace.Int !replayed);
            ("diverged_at", Trace.Int !div_pos);
          ];
    finish_trace e
  in
  if not (Trace.enabled ()) then go ()
  else begin
    Trace.begin_span "scheduler.resume_onto"
      ~attrs:
        [
          ("modules", Trace.Int (Array.length order));
          ("affected", Trace.Int (List.length affected));
        ];
    match go () with
    | tr ->
        Trace.end_span "scheduler.resume_onto"
          ~attrs:[ ("makespan", Trace.Int tr.t_schedule.Schedule.makespan) ];
        tr
    | exception exn ->
        Trace.end_span "scheduler.resume_onto"
          ~attrs:[ ("raised", Trace.Bool true) ];
        raise exn
  end

let resume_gain trace order =
  let p = trace_lcp trace order in
  if p = Array.length order && p = Array.length trace.t_order then max_int
  else begin
    let hi = trace_last_diff trace order in
    let s = divergence_stop trace ~p ~hi in
    if s < 0 then 0
    else begin
      let t_star = trace.t_commits.(s).c_entry.Schedule.start in
      let g = ref 0 in
      while
        !g < s && trace.t_commits.(!g).c_entry.Schedule.start < t_star
      do
        incr g
      done;
      !g
    end
  end
