module Noc = Nocplan_noc
module Trace = Nocplan_obs.Trace

let log_src =
  Logs.Src.create "nocplan.binpack" ~doc:"Bin-packing scheduler decisions"

module Log = (val Logs.src_log log_src)

(* One packed rectangle candidate: the pair it sits on and its cost. *)
type candidate = {
  cd_source : Resource.endpoint;
  cd_sink : Resource.endpoint;
  cd_cost : Test_access.cost;
}

let ensure_table ?access system ~application =
  match access with
  | Some t ->
      if not (Test_access.table_for t ~system ~application) then
        invalid_arg
          "Binpack.schedule: access table built for a different system or \
           application";
      t
  | None -> Test_access.table ~application system

(* The latest opening time among the candidate's gated channels, or
   the shelf start when none are gated: the first shelf instant this
   rectangle may occupy. *)
let gate_ready gates links ~start =
  List.fold_left
    (fun acc l ->
      match Hashtbl.find_opt gates l with
      | Some t -> max acc t
      | None -> acc)
    start links

let pack ?access system (config : Scheduler.config) =
  let application = config.application and reuse = config.reuse in
  if reuse < 0 || reuse > List.length system.System.processors then
    invalid_arg "Binpack.schedule: reuse out of range";
  let table = ensure_table ?access system ~application in
  let endpoints = Array.of_list (Resource.all_endpoints system ~reuse) in
  let n_ep = Array.length endpoints in
  (* Self-test gates: a channel may not carry test traffic before its
     ready time.  Duplicate listings keep the latest time, matching
     the event-driven engine's conservative reading. *)
  let gates = Hashtbl.create 16 in
  List.iter
    (fun (l, t) ->
      match Hashtbl.find_opt gates l with
      | Some t' when t' >= t -> ()
      | _ -> Hashtbl.replace gates l t)
    config.link_ready;
  (* Processor readiness: module id -> instant its endpoint may serve.
     Pretested processors are ready from the start; the rest become
     ready when their own test is packed. *)
  let proc_ready = Hashtbl.create 8 in
  List.iter
    (fun id -> Hashtbl.replace proc_ready id config.start_time)
    config.pretested;
  let endpoint_ready ep ~now =
    match ep with
    | Resource.External_in _ | Resource.External_out _ -> true
    | Resource.Processor id -> (
        match Hashtbl.find_opt proc_ready id with
        | Some t -> t <= now
        | None -> false)
  in
  let modules =
    match config.modules with
    | Some l -> l
    | None -> System.module_ids system
  in
  (* Rectangle height for the decreasing sort: the cheapest duration
     achievable over any feasible pair.  A module with no feasible
     pair at all can never be packed, whatever the shelf. *)
  let min_duration id =
    let best = ref max_int in
    for i = 0 to n_ep - 1 do
      for j = 0 to n_ep - 1 do
        let source = endpoints.(i) and sink = endpoints.(j) in
        if
          Resource.valid_pair ~source ~sink
          && Test_access.table_feasible table ~module_id:id ~source ~sink
        then begin
          let c = Test_access.table_cost table ~module_id:id ~source ~sink in
          if c.Test_access.duration < !best then best := c.Test_access.duration
        end
      done
    done;
    if !best = max_int then
      raise
        (Scheduler.Unschedulable
           (Fmt.str "binpack: module %d has no feasible (source, sink) pair"
              id));
    !best
  in
  let sorted =
    (* Best-fit decreasing: tallest rectangles first, ids break ties
       so the packing is deterministic. *)
    List.sort
      (fun (_, da) (_, db) -> if da <> db then compare db da else 0)
      (List.map (fun id -> (id, min_duration id)) modules)
    |> List.map fst
  in
  let entries = ref [] in
  let remaining = ref sorted in
  let now = ref config.start_time in
  let shelves = ref 0 in
  while !remaining <> [] do
    (* One shelf: every test starts at [!now] on pairwise-disjoint
       endpoints and channels, under the running power sum. *)
    let used_ep = Array.make n_ep false in
    let used_links = ref Noc.Link.Set.empty in
    let power_used = ref 0.0 in
    let placed = ref [] in
    let rest = ref [] in
    List.iter
      (fun id ->
        (* Best-fit within the shelf: the admissible pair minimizing
           the rectangle height, then the narrowest footprint, then
           endpoint indices for determinism. *)
        let best = ref None in
        for i = 0 to n_ep - 1 do
          for j = 0 to n_ep - 1 do
            if not (used_ep.(i) || used_ep.(j)) then begin
              let source = endpoints.(i) and sink = endpoints.(j) in
              if
                Resource.valid_pair ~source ~sink
                && endpoint_ready source ~now:!now
                && endpoint_ready sink ~now:!now
                && Test_access.table_feasible table ~module_id:id ~source
                     ~sink
              then begin
                let c =
                  Test_access.table_cost table ~module_id:id ~source ~sink
                in
                let fits_power =
                  match config.power_limit with
                  | None -> true
                  | Some limit -> !power_used +. c.Test_access.power <= limit
                in
                let links_free =
                  List.for_all
                    (fun l -> not (Noc.Link.Set.mem l !used_links))
                    c.Test_access.links
                in
                let gates_open =
                  gate_ready gates c.Test_access.links ~start:!now <= !now
                in
                if fits_power && links_free && gates_open then
                  let width = List.length c.Test_access.links in
                  let better =
                    match !best with
                    | None -> true
                    | Some (_, bc) ->
                        c.Test_access.duration < bc.cd_cost.Test_access.duration
                        || (c.Test_access.duration
                              = bc.cd_cost.Test_access.duration
                           && width < List.length bc.cd_cost.Test_access.links)
                  in
                  if better then
                    best :=
                      Some ((i, j), { cd_source = source; cd_sink = sink;
                                      cd_cost = c })
              end
            end
          done
        done;
        match !best with
        | None -> rest := id :: !rest
        | Some ((i, j), cd) ->
            used_ep.(i) <- true;
            used_ep.(j) <- true;
            List.iter
              (fun l -> used_links := Noc.Link.Set.add l !used_links)
              cd.cd_cost.Test_access.links;
            power_used := !power_used +. cd.cd_cost.Test_access.power;
            let finish = !now + cd.cd_cost.Test_access.duration in
            let entry =
              {
                Schedule.module_id = id;
                source = cd.cd_source;
                sink = cd.cd_sink;
                start = !now;
                finish;
                power = cd.cd_cost.Test_access.power;
                links = cd.cd_cost.Test_access.links;
              }
            in
            entries := entry :: !entries;
            placed := entry :: !placed;
            (* A packed processor self-test releases its endpoint to
               every shelf opening at or after its finish. *)
            if System.processor_of_module system id <> None then
              Hashtbl.replace proc_ready id finish;
            Log.debug (fun m ->
                m "shelf %d (t=%d): module %d on %a -> %a (finish %d)"
                  !shelves !now id Resource.pp cd.cd_source Resource.pp
                  cd.cd_sink finish))
      !remaining;
    (match !placed with
    | [] ->
        (* Nothing fit at this instant.  The only state that changes
           without a placement is a self-test gate opening later —
           advance to the next opening, or give up. *)
        let next_gate =
          Hashtbl.fold
            (fun _ t acc -> if t > !now && t < acc then t else acc)
            gates max_int
        in
        if next_gate = max_int then
          raise
            (Scheduler.Unschedulable
               (Fmt.str
                  "binpack: no module packable at t=%d (power limit %a, %d \
                   modules left)"
                  !now
                  Fmt.(option ~none:(any "none") float)
                  config.power_limit
                  (List.length !remaining)))
        else now := next_gate
    | placed ->
        incr shelves;
        let shelf_end =
          List.fold_left (fun acc e -> max acc e.Schedule.finish) !now placed
        in
        if Trace.enabled () then
          Trace.instant "binpack.shelf"
            ~attrs:
              [
                ("shelf", Trace.Int (!shelves - 1));
                ("start", Trace.Int !now);
                ("finish", Trace.Int shelf_end);
                ("packed", Trace.Int (List.length placed));
              ];
        now := shelf_end);
    remaining := List.rev !rest
  done;
  (Schedule.of_entries (List.rev !entries), !shelves)

let schedule ?access system config = fst (pack ?access system config)
let shelf_count system config = snd (pack system config)
