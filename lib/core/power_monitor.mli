(** Running power accounting over the schedule horizon.

    The instantaneous system power is the sum of the powers of all
    concurrently running tests; a power-constrained schedule must keep
    it below the limit at every instant.  Intervals are half-open. *)

type t

val create : limit:float option -> t
(** [limit = None] disables the constraint. *)

val limit : t -> float option

val fits : t -> start:int -> finish:int -> power:float -> bool
(** Would adding a test of this power over the window keep the peak
    within the limit?  Always true without a limit, or for an empty
    window. *)

val add : t -> start:int -> finish:int -> power:float -> unit
(** Record a test.  @raise Invalid_argument if the window is malformed
    or [fits] is violated (callers must check first). *)

val copy_truncated : t -> before:int -> t
(** A new monitor holding exactly the recorded tests that start before
    [before], sharing no mutable state with [t].  The kept entries
    appear in their original application order, so later [fits] checks
    sum the same floats in the same order as a monitor built by
    re-adding them — the scheduler's prefix resume depends on that. *)

val peak : t -> float
(** Highest instantaneous power recorded so far (0 when empty). *)

val power_at : t -> int -> float
(** Instantaneous power at a time point. *)
