module Link = Nocplan_noc.Link
module Processor = Nocplan_proc.Processor

type result = { schedule : Schedule.t; exact : bool; nodes : int }

type order_result = {
  schedule : Schedule.t;
  exact : bool;
  evaluations : int;
  pruned : int;
}

(* ------------------------------------------------------------------ *)
(* Order-space search                                                 *)

(* Depth-first over permutations of the module order, in lexicographic
   order relative to the priority heuristic, so consecutive leaves
   share long prefixes and every evaluation is a cheap
   {!Scheduler.resume} through the shared {!Eval_cache}.  Subtrees are
   cut with {!Scheduler.prefix_bound}: the commits a cached trace
   logged before its first commit at a changed position are shared by
   every order in the subtree, so their largest finish lower-bounds
   all of its makespans. *)
let order_search ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ?(max_evals = 20_000) ~reuse system =
  if max_evals < 1 then
    invalid_arg "Exhaustive.order_search: max_evals must be >= 1";
  let cfg = Scheduler.config ~policy ~application ~power_limit ~reuse () in
  let cache = Eval_cache.create ~capacity:8 system cfg in
  let modules = Priority.order system ~reuse in
  let n = List.length modules in
  let makespan tr = (Scheduler.trace_schedule tr).Schedule.makespan in
  let best = ref None in
  let best_makespan () =
    match !best with None -> max_int | Some tr -> makespan tr
  in
  let evaluations = ref 0 in
  let pruned = ref 0 in
  let exact = ref true in
  let buf = Array.make (max 1 n) 0 in
  let rec go depth remaining =
    if !exact then
      match remaining with
      | [] ->
          if !evaluations >= max_evals then exact := false
          else begin
            incr evaluations;
            match Eval_cache.evaluate cache (Array.sub buf 0 n) with
            | exception Scheduler.Unschedulable _ -> ()
            | tr -> if makespan tr < best_makespan () then best := Some tr
          end
      | _ ->
          List.iter
            (fun id ->
              if !exact then begin
                buf.(depth) <- id;
                let incumbent = best_makespan () in
                let prefix = Array.sub buf 0 (depth + 1) in
                let cut =
                  incumbent < max_int
                  && List.exists
                       (fun tr ->
                         let l = Scheduler.trace_lcp tr prefix in
                         Scheduler.prefix_bound tr ~prefix_len:l >= incumbent)
                       (Eval_cache.traces cache)
                in
                if cut then incr pruned
                else
                  go (depth + 1)
                    (List.filter (fun other -> other <> id) remaining)
              end)
            remaining
  in
  go 0 modules;
  match !best with
  | None ->
      raise (Scheduler.Unschedulable "no order admits a complete schedule")
  | Some tr ->
      {
        schedule = Scheduler.trace_schedule tr;
        exact = !exact;
        evaluations = !evaluations;
        pruned = !pruned;
      }

(* Endpoint availability in a search node: [None] means not yet in the
   pool (untested processor). *)
type slot = { endpoint : Resource.endpoint; avail : int option }

type node = {
  time : int;
  committed : Schedule.entry list;
  committed_makespan : int;
  pending : int list;
  slots : slot list;
}

let overlapping (a : Schedule.entry) ~start ~finish =
  a.Schedule.start < finish && start < a.Schedule.finish

let links_free committed links ~start ~finish =
  let link_set = Link.Set.of_list links in
  List.for_all
    (fun (e : Schedule.entry) ->
      (not (overlapping e ~start ~finish))
      || List.for_all
           (fun l -> not (Link.Set.mem l link_set))
           e.Schedule.links)
    committed

let power_fits committed ~limit ~start ~finish ~power =
  match limit with
  | None -> true
  | Some limit ->
      (* The instantaneous sum changes only at entry starts. *)
      let at time =
        List.fold_left
          (fun acc (e : Schedule.entry) ->
            if e.Schedule.start <= time && time < e.Schedule.finish then
              acc +. e.Schedule.power
            else acc)
          0.0 committed
      in
      let candidates =
        start
        :: List.filter_map
             (fun (e : Schedule.entry) ->
               if e.Schedule.start > start && e.Schedule.start < finish then
                 Some e.Schedule.start
               else None)
             committed
      in
      List.for_all (fun t -> at t +. power <= limit +. 1e-9) candidates

let schedule ?(application = Processor.Bist) ?(power_limit = None)
    ?(max_nodes = 300_000) ~reuse system =
  let endpoints = Resource.all_endpoints system ~reuse in
  (* One precomputed access table serves every node of the search (and
     the greedy incumbent seed below). *)
  let access = Test_access.table ~application system in
  let cost module_id source sink =
    Test_access.table_cost access ~module_id ~source ~sink
  in
  (* Cheapest possible duration of each module over all valid pairs:
     the lower-bound ingredient. *)
  let best_duration_cache = Hashtbl.create 32 in
  let best_duration module_id =
    match Hashtbl.find_opt best_duration_cache module_id with
    | Some d -> d
    | None ->
        let d =
          List.fold_left
            (fun acc source ->
              List.fold_left
                (fun acc sink ->
                  if Resource.valid_pair ~source ~sink then
                    min acc (cost module_id source sink).Test_access.duration
                  else acc)
                acc endpoints)
            max_int endpoints
        in
        Hashtbl.add best_duration_cache module_id d;
        d
  in
  (* Seed the incumbent with the greedy solution. *)
  let incumbent =
    ref
      (Scheduler.run ~access system
         (Scheduler.config ~policy:Scheduler.Greedy ~application ~power_limit
            ~reuse ()))
  in
  let nodes = ref 0 in
  let exact = ref true in
  let lower_bound node =
    List.fold_left
      (fun acc id -> max acc (node.time + best_duration id))
      node.committed_makespan node.pending
  in
  let update_slots_for_commit slots entry finish =
    List.map
      (fun s ->
        let used =
          Resource.equal s.endpoint entry.Schedule.source
          || Resource.equal s.endpoint entry.Schedule.sink
        in
        let tested_processor =
          match s.endpoint with
          | Resource.Processor id -> id = entry.Schedule.module_id
          | Resource.External_in _ | Resource.External_out _ -> false
        in
        if used || tested_processor then { s with avail = Some finish } else s)
      slots
  in
  let rec explore node =
    incr nodes;
    if !nodes > max_nodes then exact := false
    else if node.pending = [] then begin
      if node.committed_makespan < !incumbent.Schedule.makespan then
        incumbent := Schedule.of_entries node.committed
    end
    else if lower_bound node < !incumbent.Schedule.makespan then begin
      (* Moves: start any pending core on any feasible idle pair now. *)
      let idle =
        List.filter
          (fun s -> match s.avail with Some a -> a <= node.time | None -> false)
          node.slots
      in
      let moves =
        List.concat_map
          (fun module_id ->
            List.concat_map
              (fun src ->
                List.filter_map
                  (fun snk ->
                    if
                      not
                        (Test_access.table_feasible access ~module_id
                           ~source:src.endpoint ~sink:snk.endpoint)
                    then None
                    else
                      let c = cost module_id src.endpoint snk.endpoint in
                      let finish = node.time + c.Test_access.duration in
                      if
                        links_free node.committed c.Test_access.links
                          ~start:node.time ~finish
                        && power_fits node.committed ~limit:power_limit
                             ~start:node.time ~finish
                             ~power:c.Test_access.power
                      then
                        Some
                          {
                            Schedule.module_id;
                            source = src.endpoint;
                            sink = snk.endpoint;
                            start = node.time;
                            finish;
                            power = c.Test_access.power;
                            links = c.Test_access.links;
                          }
                      else None)
                  idle)
              idle)
          node.pending
      in
      (* Explore promising moves first: shortest completion. *)
      let moves =
        List.sort
          (fun (a : Schedule.entry) b ->
            Int.compare a.Schedule.finish b.Schedule.finish)
          moves
      in
      List.iter
        (fun (entry : Schedule.entry) ->
          let child =
            {
              time = node.time;
              committed = entry :: node.committed;
              committed_makespan =
                max node.committed_makespan entry.Schedule.finish;
              pending =
                List.filter (fun id -> id <> entry.Schedule.module_id)
                  node.pending;
              slots = update_slots_for_commit node.slots entry entry.Schedule.finish;
            }
          in
          explore child)
        moves;
      (* Waiting branch: deliberately advance to the next release even
         though moves may exist (covers delay schedules). *)
      let next_event =
        List.fold_left
          (fun acc s ->
            match s.avail with
            | Some a when a > node.time -> (
                match acc with Some m -> Some (min m a) | None -> Some a)
            | Some _ | None -> acc)
          None node.slots
      in
      match next_event with
      | Some t -> explore { node with time = t }
      | None -> ()
    end
  in
  let initial_slots =
    List.map
      (fun endpoint ->
        match endpoint with
        | Resource.External_in _ | Resource.External_out _ ->
            { endpoint; avail = Some 0 }
        | Resource.Processor _ -> { endpoint; avail = None })
      endpoints
  in
  explore
    {
      time = 0;
      committed = [];
      committed_makespan = 0;
      pending = System.module_ids system;
      slots = initial_slots;
    };
  { schedule = !incumbent; exact = !exact; nodes = !nodes }
