(** The paper's experimental systems.

    "To system, cores representing the Leon and Plasma processors are
    added.  For d695 system, six processor cores are added, whereas
    for p22810 and p93791 benchmarks, eight cores are added.  The
    total number of cores of the new systems is 16, 36, and 40 ...
    The network dimensions ... are 4x4, 5x6 and 5x5."

    The [_leon] systems (the ones in Figure 1) carry Leon processors
    only; the [_mixed] variants alternate Leon and Plasma, exercising
    heterogeneous characterizations.  All systems use two external
    interfaces: one input port at the north-west corner and one output
    port at the south-east corner. *)

val d695_leon : unit -> System.t
(** 10 + 6 cores on a 4x4 mesh. *)

val p22810_leon : unit -> System.t
(** 28 + 8 cores on a 5x6 mesh. *)

val p93791_leon : unit -> System.t
(** 32 + 8 cores on a 5x5 mesh. *)

val d695_mixed : unit -> System.t
val p22810_mixed : unit -> System.t
val p93791_mixed : unit -> System.t

val all : unit -> (string * System.t) list
(** All six systems with their names. *)

val builders : (string * (unit -> System.t)) list
(** The same six systems as named constructors, for callers that want
    one system without building the other five (the serve request
    path resolves every request's system by name — building all six
    per request cost more than the solve). *)

val d695_leon_with_io : ports:int -> System.t
(** d695_leon with [ports] external input interfaces along the north
    edge and [ports] output interfaces along the south edge — the
    "number and position of the IO ports" knob of the paper's system
    description.  @raise Invalid_argument unless [1 <= ports <= mesh
    width]. *)

type arrangement =
  | Spread  (** evenly spaced over the mesh (the default) *)
  | Corners  (** packed into the mesh corners, far from the centre *)
  | Center  (** clustered around the mesh centre *)

val d695_leon_arranged : arrangement -> System.t
(** d695_leon with its six processors placed per the arrangement —
    the "position of each core" knob: placement drives both the test
    priority order and the path conflicts. *)

val arrangement_name : arrangement -> string

val d695_leon_flit : width:int -> System.t
(** d695_leon at a different NoC flit width — the TAM-width knob: a
    wider flit means shorter wrapper chains and fewer shift cycles per
    pattern.  @raise Invalid_argument if [width < 1]. *)

val torus_variant : System.t -> System.t
(** The same system with the mesh replaced by a torus of the same
    dimensions — wraparound channels shorten paths; placements, ports
    and processors are unchanged. *)

val d695_leon_faulty : failures:int -> seed:int64 -> System.t
(** d695_leon with [failures] distinct inter-router channels marked
    faulty, drawn deterministically from [seed].  Some draws may make
    cores unreachable (XY routing cannot detour) — callers should be
    prepared for {!Scheduler.Unschedulable}.
    @raise Invalid_argument if [failures] is negative or exceeds the
    channel count. *)

val paper_power_pct : float
(** The power limit the paper defines as its example: 50% of the sum
    of all core powers ("a power limit of 50% indicates that the power
    limit corresponds to half of the sum of all cores power
    consumption in test mode"). *)

val binding_power_pct : float
(** A tighter limit (25%) under which the constraint actually binds on
    these systems.  Our synthetic toggle-proportional powers are more
    uniform across cores than the real Philips core powers, so the
    concurrency-limiting point sits lower than the paper's 50%; see
    DESIGN.md, "Substitutions". *)
