(** Cost model of one core test over the NoC.

    Testing core [c] from source [s] to sink [k] streams one stimulus
    packet and one response packet per test pattern along the XY paths
    [s -> c] and [c -> k].  Patterns are pipelined: the path-fill
    latency is paid once, and in steady state each pattern costs the
    maximum of the core's shift time, the two transport times and the
    source/sink software overheads (zero for the external tester; the
    measured cycles-per-pattern for a processor — the paper's
    "processor takes 10 clock cycles to generate a test pattern,
    while the external tester takes zero"). *)

type cost = {
  duration : int;  (** cycles from stream start to last response *)
  power : float;
      (** instantaneous power while the test runs: CUT + source +
          sink + occupied routers *)
  links : Nocplan_noc.Link.t list;
      (** deduplicated channels of both paths — the reservation
          footprint *)
  routers : int;  (** distinct routers the two paths traverse *)
  per_pattern : int;  (** steady-state cycles per pattern *)
}

val cost :
  ?patterns:int ->
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  cost
(** [patterns] overrides the module's pattern count — used by the
    preemptive scheduler to price a partial test session (the path
    fill, setup and drain are paid per session).
    @raise Invalid_argument if the pair is not {!Resource.valid_pair},
    the module id is unknown, [patterns < 1], or an endpoint refers to
    a non-processor module. *)

val assumed_run_length : int
(** Mean run length assumed when estimating how well a core's test set
    compresses (matches the default of
    {!Nocplan_proc.Characterization.of_decompress}). *)

val decompression_footprint : System.t -> module_id:int -> int
(** Memory words a processor needs to serve this core's full test set
    through the decompression application: the RLE image of
    [patterns * scan-in flits] stimulus words plus the program,
    estimated at {!assumed_run_length}.
    @raise Invalid_argument on an unknown module. *)

val decompression_footprint_measured :
  ?style:Nocplan_proc.Test_data.style ->
  ?seed:int64 ->
  System.t ->
  module_id:int ->
  int
(** The same footprint, {e measured}: the module's stimulus stream is
    synthesized ({!Nocplan_proc.Test_data}, default [Atpg 0.05],
    seed 7) and actually RLE-encoded.  Slower but exact for the
    synthesized data; the bench harness compares it against the
    estimate. *)

val route_feasible :
  System.t ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** Whether the XY paths source->CUT and CUT->sink avoid every link in
    the system's [failed_links].  Routing is deterministic, so a test
    whose path crosses a faulty channel simply cannot run; the planner
    must pick other resources (or the instance is unschedulable). *)

val feasible :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** [route_feasible && memory_feasible] — the full admission check the
    schedulers apply to a candidate pair. *)

val memory_feasible :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  bool
(** Whether the source can hold the test data the application needs:
    always true for the external tester and for BIST (the generator is
    a few words); for decompression, true iff
    {!decompression_footprint} fits the processor's memory capacity. *)

(** {1 Precomputed access table}

    The cost model is time-invariant: for a fixed system and test
    application, the feasibility and cost of every (module, source,
    sink) triple never change while scheduling.  A {!table} evaluates
    all of them once — including the per-module wrapper design, the
    expensive part — and the schedulers then answer every query with
    an array lookup.  One table serves every scheduler run on the same
    system (all reuse counts, all power limits, all test orders), which
    is where reuse sweeps, annealing and branch-and-bound spend their
    time.

    A table is immutable after construction, so it is safe to share
    across OCaml domains (e.g. {!Planner.reuse_sweep}'s fan-out). *)

type table

type route_fn =
  src:Nocplan_noc.Coord.t ->
  dst:Nocplan_noc.Coord.t ->
  Nocplan_noc.Coord.t list option
(** A unicast routing function: the router path from [src] to [dst]
    (adjacent tiles, inclusive of both; [Some [src]] when they are
    equal), or [None] when [dst] is unreachable from [src].  Paths
    must avoid the system's [failed_links] — the table trusts them. *)

val table :
  ?application:Nocplan_proc.Processor.application ->
  ?route:route_fn ->
  System.t ->
  table
(** Precompute feasibility and cost for every module of the system
    against every endpoint pair at full reuse (the endpoint set of any
    smaller reuse count is a subset).  Default application: [Bist].

    [route] overrides the deterministic XY routing with a custom
    (e.g. fault-aware detour, {!Nocplan_fault.Detour}) path function:
    every leg is priced along the path it returns — longer detours
    honestly cost more fill, routing setup and router power — and a
    [None] leg makes every pair needing it infeasible, with no cost
    and no channels.  With no faults a detour router that returns the
    XY paths yields a bit-identical table.  {!table_rebuild} carries
    the route function over. *)

val table_rebuild : table -> system:System.t -> affected:int list -> table
(** [table_rebuild base ~system ~affected] is the access table of
    [system] — a copy of [base] with only the [affected] modules' rows
    recomputed.  [system] must differ from [base]'s system solely in
    the placement of the [affected] (non-processor) modules, e.g. via
    {!System.swap_tiles}: every other module's cut coordinate and every
    endpoint keep their tiles, so their rows are bit-identical and are
    carried over.  The dense channel numbering {e extends} the base's
    (already-seen links keep their ids; links first routed over by the
    new placement get fresh ids), so a reservation calendar or commit
    trace recorded under [base] stays meaningful under the result —
    the property {!Scheduler.resume_onto} relies on.  Cost: O(table
    copy) + O(|affected| · endpoints²) instead of a full rebuild's
    O(modules · endpoints²) wrapper designs.
    @raise Invalid_argument if an affected id is unknown, or if a
    module outside [affected] (or a processor) sits on a different tile
    in [system] than in the base table's system. *)

val table_for :
  table ->
  system:System.t ->
  application:Nocplan_proc.Processor.application ->
  bool
(** Whether the table was built for exactly this system (physical
    equality) and application — the schedulers' sanity check before
    trusting a caller-supplied table. *)

val table_application : table -> Nocplan_proc.Processor.application

val table_feasible :
  table ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** Same truth value as {!feasible}, via lookup.
    @raise Invalid_argument on a module or endpoint the table does not
    cover. *)

val table_cost :
  table ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  cost
(** Same value as {!cost} with the module's own pattern count, via
    lookup.  @raise Invalid_argument on an invalid pair or an unknown
    module/endpoint. *)

val table_route_feasible :
  table ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** Same truth value as {!route_feasible}, via lookup.
    @raise Invalid_argument on a module or endpoint the table does not
    cover. *)

val table_memory_feasible :
  table -> module_id:int -> source:Resource.endpoint -> bool
(** Same truth value as {!memory_feasible}, via lookup.
    @raise Invalid_argument on a module or endpoint the table does not
    cover. *)

(** {2 Index-level access}

    The scheduler inner loop resolves endpoints and modules to integer
    indices once, then queries by index. *)

val endpoint_id : table -> Resource.endpoint -> int
(** @raise Invalid_argument if the endpoint is not in the table. *)

val module_row : table -> int -> int
(** @raise Invalid_argument on an unknown module id. *)

val feasible_ix : table -> row:int -> src:int -> snk:int -> bool
val cost_ix : table -> row:int -> src:int -> snk:int -> cost

val channels_ix : table -> row:int -> src:int -> snk:int -> int array
(** Dense channel ids of the links of [cost_ix] (empty on an invalid
    pair): the key set the {!Nocplan_noc.Reservation} calendar indexes
    by.  Ids are assigned per table, so a calendar must only ever be
    queried with channels of one table — the scheduler ties both to
    one engine. *)

val pp_cost : cost Fmt.t
