module Topology = Nocplan_noc.Topology
module Coord = Nocplan_noc.Coord
module Processor = Nocplan_proc.Processor
module Soc = Nocplan_itc02.Soc

let paper_power_pct = 50.0
let binding_power_pct = 25.0

let corners topology =
  let open Topology in
  ( Coord.make ~x:0 ~y:0,
    Coord.make ~x:(topology.width - 1) ~y:(topology.height - 1) )

(* Processor ids are assigned by [System.build]; the [~id:0] templates
   here are renumbered there. *)
let leons n = List.init n (fun _ -> Processor.leon ~id:1)

let mixed n =
  List.init n (fun i ->
      if i mod 2 = 0 then Processor.leon ~id:1 else Processor.plasma ~id:1)

let build ~soc ~width ~height ~processors =
  let topology = Topology.make ~width ~height in
  let input, output = corners topology in
  System.build ~soc ~topology ~processors ~io_inputs:[ input ]
    ~io_outputs:[ output ] ()

let rename suffix soc =
  Soc.make ~name:(soc.Soc.name ^ suffix) ~modules:soc.Soc.modules

let d695_leon () =
  build
    ~soc:(rename "_leon" (Nocplan_itc02.Data_d695.soc ()))
    ~width:4 ~height:4 ~processors:(leons 6)

let p22810_leon () =
  build
    ~soc:(rename "_leon" (Nocplan_itc02.Data_p22810.soc ()))
    ~width:5 ~height:6 ~processors:(leons 8)

let p93791_leon () =
  build
    ~soc:(rename "_leon" (Nocplan_itc02.Data_p93791.soc ()))
    ~width:5 ~height:5 ~processors:(leons 8)

let d695_mixed () =
  build
    ~soc:(rename "_mixed" (Nocplan_itc02.Data_d695.soc ()))
    ~width:4 ~height:4 ~processors:(mixed 6)

let p22810_mixed () =
  build
    ~soc:(rename "_mixed" (Nocplan_itc02.Data_p22810.soc ()))
    ~width:5 ~height:6 ~processors:(mixed 8)

let p93791_mixed () =
  build
    ~soc:(rename "_mixed" (Nocplan_itc02.Data_p93791.soc ()))
    ~width:5 ~height:5 ~processors:(mixed 8)

let d695_leon_with_io ~ports =
  let topology = Topology.make ~width:4 ~height:4 in
  if ports < 1 || ports > topology.Topology.width then
    invalid_arg "Experiments.d695_leon_with_io: ports out of range";
  (* Spread the interfaces along opposite edges. *)
  let edge y =
    List.init ports (fun i ->
        let x = i * (topology.Topology.width - 1) / max 1 (ports - 1) in
        Coord.make ~x:(if ports = 1 then 0 else x) ~y)
  in
  System.build
    ~soc:(rename "_leon" (Nocplan_itc02.Data_d695.soc ()))
    ~topology ~processors:(leons 6)
    ~io_inputs:(edge 0)
    ~io_outputs:(edge (topology.Topology.height - 1))
    ()

type arrangement = Spread | Corners | Center

let arrangement_name = function
  | Spread -> "spread"
  | Corners -> "corners"
  | Center -> "center"

let d695_leon_arranged arrangement =
  let topology = Topology.make ~width:4 ~height:4 in
  let tiles =
    match arrangement with
    | Spread -> None
    | Corners ->
        (* The six tiles hugging the four corners. *)
        Some
          [
            Coord.make ~x:0 ~y:0;
            Coord.make ~x:3 ~y:0;
            Coord.make ~x:0 ~y:3;
            Coord.make ~x:3 ~y:3;
            Coord.make ~x:1 ~y:0;
            Coord.make ~x:0 ~y:1;
          ]
    | Center ->
        Some
          [
            Coord.make ~x:1 ~y:1;
            Coord.make ~x:2 ~y:1;
            Coord.make ~x:1 ~y:2;
            Coord.make ~x:2 ~y:2;
            Coord.make ~x:2 ~y:0;
            Coord.make ~x:1 ~y:3;
          ]
  in
  let input, output = corners topology in
  System.build
    ?processor_tiles:tiles
    ~soc:(rename "_leon" (Nocplan_itc02.Data_d695.soc ()))
    ~topology ~processors:(leons 6) ~io_inputs:[ input ]
    ~io_outputs:[ output ] ()

let d695_leon_flit ~width =
  let topology = Topology.make ~width:4 ~height:4 in
  let input, output = corners topology in
  System.build ~flit_width:width
    ~soc:(rename "_leon" (Nocplan_itc02.Data_d695.soc ()))
    ~topology ~processors:(leons 6) ~io_inputs:[ input ]
    ~io_outputs:[ output ] ()

let torus_variant (system : System.t) =
  let topology =
    Topology.torus ~width:system.System.topology.Topology.width
      ~height:system.System.topology.Topology.height
  in
  System.make
    ~failed_links:(Nocplan_noc.Link.Set.elements system.System.failed_links)
    ~soc:system.System.soc ~topology ~latency:system.System.latency
    ~noc_power:system.System.noc_power ~flit_width:system.System.flit_width
    ~placement:system.System.placement ~processors:system.System.processors
    ~io_inputs:system.System.io_inputs ~io_outputs:system.System.io_outputs
    ()

(* All directed inter-router channels of a mesh, in row-major order. *)
let all_channels topology =
  List.concat_map
    (fun c ->
      List.map
        (fun n -> Nocplan_noc.Link.channel c n)
        (Topology.neighbors topology c))
    (Topology.coords topology)

let d695_leon_faulty ~failures ~seed =
  let system = d695_leon () in
  let channels = all_channels system.System.topology in
  if failures < 0 || failures > List.length channels then
    invalid_arg "Experiments.d695_leon_faulty: failures out of range";
  let rng = Nocplan_itc02.Data_gen.Rng.create seed in
  let rec draw chosen remaining n =
    if n = 0 then chosen
    else
      let arr = Array.of_list remaining in
      let i = Nocplan_itc02.Data_gen.Rng.int rng ~bound:(Array.length arr) in
      let pick = arr.(i) in
      draw (pick :: chosen)
        (List.filter (fun l -> not (Nocplan_noc.Link.equal l pick)) remaining)
        (n - 1)
  in
  System.with_failed_links system (draw [] channels failures)

let builders =
  [
    ("d695_leon", d695_leon);
    ("p22810_leon", p22810_leon);
    ("p93791_leon", p93791_leon);
    ("d695_mixed", d695_mixed);
    ("p22810_mixed", p22810_mixed);
    ("p93791_mixed", p93791_mixed);
  ]

let all () = List.map (fun (name, build) -> (name, build ())) builders
