type t = {
  makespan : int;
  total_test_time : int;
  average_concurrency : float;
  peak_concurrency : int;
  peak_power : float;
  average_power : float;
  total_energy : float;
  utilization : (Resource.endpoint * float) list;
  external_share : float;
}

let duration (e : Schedule.entry) = e.Schedule.finish - e.Schedule.start

(* Step-function maxima are attained at interval starts. *)
let peak_over entries ~value =
  List.fold_left
    (fun acc (e : Schedule.entry) ->
      let at =
        List.fold_left
          (fun acc (e' : Schedule.entry) ->
            if
              e'.Schedule.start <= e.Schedule.start
              && e.Schedule.start < e'.Schedule.finish
            then acc +. value e'
            else acc)
          0.0 entries
      in
      Float.max acc at)
    0.0 entries

let peak_power entries = peak_over entries ~value:(fun e -> e.Schedule.power)

let of_schedule system ~reuse (schedule : Schedule.t) =
  let entries = schedule.Schedule.entries in
  let makespan = schedule.Schedule.makespan in
  let total_test_time = List.fold_left (fun acc e -> acc + duration e) 0 entries in
  let span = float_of_int (max 1 makespan) in
  let energy =
    List.fold_left
      (fun acc (e : Schedule.entry) ->
        acc +. (e.Schedule.power *. float_of_int (duration e)))
      0.0 entries
  in
  let uses_external (e : Schedule.entry) =
    let ext = function
      | Resource.External_in _ | Resource.External_out _ -> true
      | Resource.Processor _ -> false
    in
    ext e.Schedule.source || ext e.Schedule.sink
  in
  let external_time =
    List.fold_left
      (fun acc e -> if uses_external e then acc + duration e else acc)
      0 entries
  in
  {
    makespan;
    total_test_time;
    average_concurrency = float_of_int total_test_time /. span;
    peak_concurrency =
      int_of_float (peak_over entries ~value:(fun _ -> 1.0));
    peak_power = peak_over entries ~value:(fun e -> e.Schedule.power);
    average_power = energy /. span;
    total_energy = energy;
    utilization =
      List.map
        (fun endpoint ->
          ( endpoint,
            float_of_int (Schedule.resource_busy_time schedule endpoint)
            /. span ))
        (Resource.all_endpoints system ~reuse);
    external_share =
      (if total_test_time = 0 then 0.0
       else float_of_int external_time /. float_of_int total_test_time);
  }

let pp ppf m =
  let pp_util ppf (endpoint, u) =
    Fmt.pf ppf "%a %.0f%%" Resource.pp endpoint (100.0 *. u)
  in
  Fmt.pf ppf
    "@[<v>makespan %d, busy test time %d@,concurrency: avg %.2f, peak %d@,power: avg %.1f, peak %.1f@,external share of test time: %.0f%%@,utilization: @[<hov>%a@]@]"
    m.makespan m.total_test_time m.average_concurrency m.peak_concurrency
    m.average_power m.peak_power
    (100.0 *. m.external_share)
    (Fmt.list ~sep:Fmt.comma pp_util)
    m.utilization
