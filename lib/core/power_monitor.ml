type entry = { start : int; finish : int; power : float }
type t = { limit : float option; mutable entries : entry list }

let create ~limit =
  (match limit with
  | Some l when l <= 0.0 -> invalid_arg "Power_monitor.create: limit <= 0"
  | Some _ | None -> ());
  { limit; entries = [] }

let limit t = t.limit

let power_at t time =
  List.fold_left
    (fun acc e ->
      if e.start <= time && time < e.finish then acc +. e.power else acc)
    0.0 t.entries

(* The instantaneous sum only changes at interval starts, so the peak
   over a window is attained at the window start or at the start of
   some overlapping entry. *)
let peak_over t ~start ~finish =
  let candidates =
    start
    :: List.filter_map
         (fun e ->
           if e.start > start && e.start < finish then Some e.start else None)
         t.entries
  in
  List.fold_left (fun acc time -> Float.max acc (power_at t time)) 0.0 candidates

let epsilon = 1e-9

let fits t ~start ~finish ~power =
  start >= finish
  ||
  match t.limit with
  | None -> true
  | Some l -> peak_over t ~start ~finish +. power <= l +. epsilon

let add t ~start ~finish ~power =
  if start < 0 || finish < start then
    invalid_arg "Power_monitor.add: malformed window";
  if power < 0.0 then invalid_arg "Power_monitor.add: negative power";
  if not (fits t ~start ~finish ~power) then
    invalid_arg "Power_monitor.add: limit exceeded (check fits first)";
  if start < finish then t.entries <- { start; finish; power } :: t.entries

(* Entries are consed in application order, so filtering preserves the
   exact list (and therefore float-summation order) a re-application of
   the kept entries would build — the scheduler's resume depends on
   that for byte-identical power decisions. *)
let copy_truncated t ~before =
  { limit = t.limit; entries = List.filter (fun e -> e.start < before) t.entries }

let peak t =
  let starts = List.map (fun e -> e.start) t.entries in
  List.fold_left (fun acc s -> Float.max acc (power_at t s)) 0.0 starts
