(** The complete system under test: benchmark + NoC + placement +
    reusable processors + external interfaces.

    This bundles the three information sets the designer feeds the
    paper's tool: the NoC characterization (topology, routing is
    implicitly XY, latency and power figures, flit width), the system
    description (position of every core, processor and IO port), and
    the processor characterizations carried by {!Nocplan_proc.Processor.t}
    values. *)

type placed_processor = {
  module_id : int;  (** id of the processor's self-test module in [soc] *)
  processor : Nocplan_proc.Processor.t;
  coord : Nocplan_noc.Coord.t;
}

type t = private {
  soc : Nocplan_itc02.Soc.t;
      (** all modules, including the processors' self-test modules *)
  topology : Nocplan_noc.Topology.t;
  latency : Nocplan_noc.Latency.t;
  noc_power : Nocplan_noc.Power.t;
  flit_width : int;
  placement : Placement.t;
  processors : placed_processor list;
      (** in reuse order: [reuse = k] makes the first [k] reusable *)
  io_inputs : Nocplan_noc.Coord.t list;  (** external stimulus ports *)
  io_outputs : Nocplan_noc.Coord.t list;  (** external response ports *)
  failed_links : Nocplan_noc.Link.Set.t;
      (** channels diagnosed faulty: with deterministic XY routing, a
          test whose path crosses one is infeasible and the planner
          must pick other resources *)
}

val make :
  ?failed_links:Nocplan_noc.Link.t list ->
  soc:Nocplan_itc02.Soc.t ->
  topology:Nocplan_noc.Topology.t ->
  latency:Nocplan_noc.Latency.t ->
  noc_power:Nocplan_noc.Power.t ->
  flit_width:int ->
  placement:Placement.t ->
  processors:placed_processor list ->
  io_inputs:Nocplan_noc.Coord.t list ->
  io_outputs:Nocplan_noc.Coord.t list ->
  unit ->
  t
(** @raise Invalid_argument if: the flit width is [< 1]; some module
    of [soc] is unplaced or some placed id is not in [soc]; a
    processor's [module_id] is missing from [soc], its placement
    disagrees with [placement], or its self-test module differs from
    [soc]'s; an IO port is out of bounds; or there is not at least one
    input and one output port. *)

val build :
  ?latency:Nocplan_noc.Latency.t ->
  ?noc_power:Nocplan_noc.Power.t ->
  ?flit_width:int ->
  ?processor_tiles:Nocplan_noc.Coord.t list ->
  soc:Nocplan_itc02.Soc.t ->
  topology:Nocplan_noc.Topology.t ->
  processors:Nocplan_proc.Processor.t list ->
  io_inputs:Nocplan_noc.Coord.t list ->
  io_outputs:Nocplan_noc.Coord.t list ->
  unit ->
  t
(** Convenience constructor used by the experiments: appends each
    processor's self-test module to [soc] under fresh ids, pins
    processors to [processor_tiles] (default: evenly spaced tiles),
    spreads the benchmark cores round-robin over the remaining tiles
    ({!Placement.spread}).  Defaults: [latency] =
    {!Nocplan_noc.Latency.hermes_like}, [noc_power] =
    {!Nocplan_noc.Power.default}, [flit_width] = 32.
    @raise Invalid_argument if [processor_tiles] is given with a
    length different from [processors]. *)

val coord_of_module : t -> int -> Nocplan_noc.Coord.t
(** @raise Not_found for unknown ids. *)

val processor_of_module : t -> int -> placed_processor option
(** The placed processor whose self-test module has this id, if any. *)

val is_processor_module : t -> int -> bool
val module_ids : t -> int list
val power_limit_of_pct : t -> pct:float -> float
(** [pct] percent of the sum of all module test powers — the paper's
    power-constraint convention. *)

val with_failed_links : t -> Nocplan_noc.Link.t list -> t
(** The same system with these channels additionally marked faulty. *)

val swap_tiles : t -> int -> int -> t
(** [swap_tiles t a b] is the same system with the tiles of modules [a]
    and [b] exchanged — the placement move of the joint annealer.
    Everything else (including the pinned processors and IO ports) is
    untouched, so an access table for [t] stays correct for every
    module other than [a] and [b] ({!Test_access.table_rebuild}).
    @raise Invalid_argument if the modules are equal, unplaced, or if
    either is a processor self-test module (processors are pinned). *)

val fingerprint : t -> string
(** Hex digest of a canonical serialization of everything that affects
    planning: the SoC (every module's terminals, scan chains, patterns,
    power, hierarchy), the NoC configuration (topology, latency, power,
    flit width), the placement, the processors (characterizations,
    memory, placement), the IO ports and the failed links.  Two systems
    built from the same description hash identically even when they are
    distinct values — the key the planning service's access-table cache
    uses ({!Test_access.table} itself demands physical equality, so the
    cache stores the system alongside its table). *)

val pp : t Fmt.t
