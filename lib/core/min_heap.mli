(** Array-backed binary min-heap of [(key, value)] integer pairs.

    The scheduler's event queue: keys are release times, values are
    slot indices.  Duplicate keys are allowed; entries with equal keys
    pop in unspecified relative order (the scheduler only cares about
    the minimum key, and validates popped entries against the current
    slot state). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap. @raise Invalid_argument if [capacity < 1]. *)

val push : t -> key:int -> value:int -> unit
(** O(log n) insertion; the backing arrays grow by doubling. *)

val pop : t -> (int * int) option
(** Remove and return a [(key, value)] pair with the minimal key, or
    [None] on an empty heap.  O(log n). *)

val peek : t -> (int * int) option
(** The pair [pop] would return, without removing it.  O(1). *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empty the heap, keeping the backing arrays' capacity — for arenas
    that reuse one heap across many runs. *)
