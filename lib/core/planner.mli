(** Experiment driver: sweeps and derived metrics.

    Regenerates the quantities the paper reports: test time as a
    function of the number of processors reused (Figure 1) and the
    relative reductions quoted in the text. *)

type point = {
  reuse : int;
  makespan : int;
  peak_power : float;
  validated : bool;  (** the schedule passed {!Schedule.validate} *)
}

type sweep = {
  system_name : string;
  policy : Scheduler.policy;
  power_limit_pct : float option;
  points : point list;  (** reuse = 0 .. processor count, in order *)
}

val reuse_sweep :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit_pct:float ->
  ?max_reuse:int ->
  ?domains:int ->
  ?access:Test_access.table ->
  System.t ->
  sweep
(** Schedule the system for every reuse count from 0 (baseline:
    external interfaces only) to [max_reuse] (default: all
    processors).  [power_limit_pct] is the paper's percentage-of-total
    convention; omitted means unconstrained.  Every schedule is
    re-checked by the validator and the result recorded in
    [validated].

    [domains] > 1 evaluates the sweep points in parallel on that many
    OCaml domains (the points are independent; the result is identical
    to the sequential sweep).  Worth it only for expensive sweeps on a
    multicore host — domain spawn overhead dominates sub-second
    sweeps.  Counts above [Domain.recommended_domain_count ()] are
    clamped to it: extra domains cannot run in parallel anyway and
    only add spawn and contention overhead, and the sweep result does
    not depend on the count.  @raise Invalid_argument if
    [domains < 1].

    [access] shares a precomputed {!Test_access.table} across several
    sweeps of the same system (e.g. an unconstrained and a
    power-limited series); a table built for a different system or
    application is ignored and a fresh one built instead, so the
    result never depends on it. *)

val power_sweep :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?access:Test_access.table ->
  reuse:int ->
  pcts:float list ->
  System.t ->
  (float * point) list
(** Makespan at a fixed reuse count under each power limit.  [access]
    as in {!reuse_sweep}. *)

val reduction_pct : baseline:int -> int -> float
(** Percentage reduction of [makespan] relative to [baseline]. *)

val best_point : sweep -> point
(** The sweep point with the smallest makespan (earliest on ties). *)

val baseline_point : sweep -> point
(** The [reuse = 0] point. @raise Invalid_argument if missing. *)

val schedule :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit_pct:float ->
  reuse:int ->
  System.t ->
  Schedule.t
(** One full schedule (convenience wrapper over {!Scheduler.run}). *)

val pp_sweep : sweep Fmt.t
