(** Branch-and-bound test scheduling for small instances.

    The paper's scheduler is greedy and it self-reports an anomaly;
    this module provides the reference point: an exhaustive search
    over schedules (branching on which core starts next, on which
    (source, sink) pair, and on whether to deliberately wait for the
    next resource release) with lower-bound pruning.  Exponential —
    intended for systems of up to roughly ten modules, where it
    certifies the optimum the heuristics are compared against.

    Feasibility is evaluated directly against the committed entries
    (link-overlap and power checks recomputed per candidate), so the
    search shares no mutable state across branches. *)

type result = {
  schedule : Schedule.t;  (** the best schedule found *)
  exact : bool;
      (** [true] when the search space was exhausted within the node
          budget, i.e. [schedule] is optimal over the searched class *)
  nodes : int;  (** search nodes expanded *)
}

val schedule :
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?max_nodes:int ->
  reuse:int ->
  System.t ->
  result
(** Search for a minimal-makespan schedule.  [max_nodes] (default
    [300_000]) bounds the search; when exceeded the best incumbent is
    returned with [exact = false].  The greedy solution seeds the
    incumbent, so the result is never worse than {!Scheduler.run} with
    {!Scheduler.Greedy}.

    @raise Scheduler.Unschedulable when no complete schedule exists
    (e.g. the power limit is below a single test's power). *)

type order_result = {
  schedule : Schedule.t;  (** the best schedule found *)
  exact : bool;
      (** [true] when every permutation was evaluated or provably
          pruned within the evaluation budget *)
  evaluations : int;  (** engine evaluations performed (most resumed) *)
  pruned : int;  (** subtrees cut by the shared-prefix lower bound *)
}

val order_search :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?max_evals:int ->
  reuse:int ->
  System.t ->
  order_result
(** Exhaustive search over {e orders} rather than schedules: find the
    module visiting order minimizing the engine's makespan under the
    given policy — the certified optimum of the space {!Annealing}
    samples.  Permutations are enumerated in lexicographic order from
    the priority heuristic, evaluated through a shared {!Eval_cache}
    (consecutive leaves resume from long common prefixes), and pruned
    with {!Scheduler.prefix_bound}.  [max_evals] (default [20_000])
    bounds the engine evaluations; when exceeded the best incumbent is
    returned with [exact = false].  The first leaf is the priority
    order itself, so the result is never worse than {!Scheduler.run}.

    @raise Scheduler.Unschedulable when no order admits a complete
    schedule.
    @raise Invalid_argument if [max_evals < 1]. *)
