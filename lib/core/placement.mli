(** Mapping of benchmark modules to mesh tiles.

    Several modules may share a tile (the paper's larger systems have
    more cores than routers: p93791's 40 cores sit on a 5x5 grid);
    sharing is physical — concurrent tests of co-located cores contend
    for the tile's local inject/eject ports and the reservation
    calendar serializes them. *)

type t

val of_assoc : Nocplan_noc.Topology.t -> (int * Nocplan_noc.Coord.t) list -> t
(** [of_assoc topology assignments] builds a placement.
    @raise Invalid_argument if a coordinate is out of bounds, a module
    id appears twice, or the list is empty. *)

val spread :
  Nocplan_noc.Topology.t ->
  pinned:(int * Nocplan_noc.Coord.t) list ->
  int list ->
  t
(** [spread topology ~pinned ids] places the [pinned] modules at their
    given tiles and distributes [ids] round-robin over the remaining
    tiles (over all tiles when every tile is pinned), in row-major
    order.  Used by the experiment builders: processors are pinned to
    evenly spaced tiles, CUTs fill the rest.
    @raise Invalid_argument on out-of-bounds pins or duplicate ids. *)

val coord : t -> int -> Nocplan_noc.Coord.t
(** @raise Not_found if the module is not placed. *)

val swap : t -> int -> int -> t
(** [swap t a b] exchanges the tiles of modules [a] and [b]; every
    other assignment is untouched.  The move class of the joint
    order+placement annealer ({!Annealing}).
    @raise Invalid_argument if either module is not placed. *)

val mem : t -> int -> bool
val modules_at : t -> Nocplan_noc.Coord.t -> int list
val module_ids : t -> int list
val pp : t Fmt.t
