(** Differential backend sweeps — the corpus-facing runner.

    One {!row} per planning instance: every backend in the registry is
    raced through {!Backend.race} (one domain per backend, independent
    {!Schedule.validate} on every produced schedule), and the row keeps
    the full per-backend attempt list so callers can assert the two
    registry-wide identities the bench gates pin:

    - {e race never worse}: the race winner's makespan is no larger
      than greedy's whenever greedy produced a schedule (greedy is the
      tie-break head of the backend list);
    - {e every backend validator-clean}: each backend either raised
      [Unschedulable] or produced a schedule that passes the
      independent validator.

    {!sweep} runs many labelled instances, fanned out over Domains via
    {!Domains.map}; each instance's race spawns its own per-backend
    domains, which is fine — domains nest. *)

type row = {
  label : string;  (** caller-chosen instance name *)
  outcome : (Backend.outcome, string) result;
      (** the race outcome, or the aggregated failure message when no
          backend produced a valid schedule ([Scheduler.Unschedulable]
          and [Invalid_argument] are caught; anything else propagates) *)
}

val race_row :
  ?clock:(unit -> float) ->
  ?backends:Backend.t list ->
  ?access:Test_access.table ->
  label:string ->
  System.t ->
  Scheduler.config ->
  row
(** Race every backend on one instance.  Arguments as {!Backend.race}
    ([clock] defaults to [Sys.time] — this library does not link
    unix). *)

val sweep :
  ?domains:int ->
  ?clock:(unit -> float) ->
  ?backends:Backend.t list ->
  (string * System.t * Scheduler.config) list ->
  row list
(** [sweep instances] is one {!race_row} per [(label, system, config)],
    in input order, evaluated on up to [Domains.clamp domains] domains
    (default 1). *)

val race_never_worse : row -> bool
(** The race winner's makespan is [<=] the greedy attempt's makespan.
    Vacuously true when greedy raised, or when the whole race failed
    (there is no winner to compare). *)

val all_backends_valid : row -> bool
(** Every attempt either failed ([Error]) or produced a schedule that
    passed the independent validator — i.e. no backend emitted an
    invalid schedule.  [false] when the race itself failed: a corpus
    instance is constructed to be schedulable, so a registry-wide
    failure is a defect, not a skip. *)

val greedy_makespan : row -> int option
(** The greedy attempt's makespan, when greedy produced a schedule. *)
