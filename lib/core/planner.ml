module Processor = Nocplan_proc.Processor
module Trace = Nocplan_obs.Trace

type point = {
  reuse : int;
  makespan : int;
  peak_power : float;
  validated : bool;
}

type sweep = {
  system_name : string;
  policy : Scheduler.policy;
  power_limit_pct : float option;
  points : point list;
}

let absolute_limit system = function
  | None -> None
  | Some pct -> Some (System.power_limit_of_pct system ~pct)

let run_point ?access system ~policy ~application ~power_limit ~reuse =
  let config = Scheduler.config ~policy ~application ~power_limit ~reuse () in
  let sched = Scheduler.run ?access system config in
  let validated =
    match
      Schedule.validate ?access system ~application ~power_limit ~reuse sched
    with
    | Ok () -> true
    | Error _ -> false
  in
  let peak_power = Metrics.peak_power sched.Schedule.entries in
  ({ reuse; makespan = sched.Schedule.makespan; peak_power; validated }, sched)

let schedule ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?power_limit_pct ~reuse system =
  let power_limit = absolute_limit system power_limit_pct in
  snd (run_point system ~policy ~application ~power_limit ~reuse)

let reuse_sweep ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?power_limit_pct ?max_reuse ?(domains = 1) ?access system =
  if domains < 1 then invalid_arg "Planner.reuse_sweep: domains must be >= 1";
  let domains = Domains.clamp domains in
  let max_reuse =
    match max_reuse with
    | Some n -> n
    | None -> List.length system.System.processors
  in
  let power_limit = absolute_limit system power_limit_pct in
  (* One access table serves every point of the sweep: the cost model
     is reuse- and power-invariant.  The table is immutable, so the
     Domain fan-out below can share it.  A caller running several
     sweeps over the same system can pass its own table to share it
     across them too. *)
  let access =
    match access with
    | Some tbl when Test_access.table_for tbl ~system ~application -> tbl
    | Some _ | None -> Test_access.table ~application system
  in
  let evaluate reuse =
    if not (Trace.enabled ()) then
      fst (run_point ~access system ~policy ~application ~power_limit ~reuse)
    else begin
      Trace.begin_span "planner.point" ~attrs:[ ("reuse", Trace.Int reuse) ];
      match
        fst (run_point ~access system ~policy ~application ~power_limit ~reuse)
      with
      | p ->
          Trace.end_span "planner.point"
            ~attrs:[ ("makespan", Trace.Int p.makespan) ];
          p
      | exception exn ->
          Trace.end_span "planner.point" ~attrs:[ ("raised", Trace.Bool true) ];
          raise exn
    end
  in
  Trace.span "planner.sweep"
    ~attrs:
      [
        ( "system",
          Trace.String system.System.soc.Nocplan_itc02.Soc.name );
        ("policy", Trace.String (Fmt.str "%a" Scheduler.pp_policy policy));
        ("points", Trace.Int (max_reuse + 1));
        ("domains", Trace.Int domains);
      ]
  @@ fun () ->
  (* The points are independent: {!Domains.map} fans them out
     round-robin over the worker domains and reassembles in order. *)
  let points =
    Domains.map ~domains evaluate (List.init (max_reuse + 1) Fun.id)
  in
  {
    system_name = system.System.soc.Nocplan_itc02.Soc.name;
    policy;
    power_limit_pct;
    points;
  }

let power_sweep ?(policy = Scheduler.Greedy) ?(application = Processor.Bist)
    ?access ~reuse ~pcts system =
  let access =
    match access with
    | Some tbl when Test_access.table_for tbl ~system ~application -> tbl
    | Some _ | None -> Test_access.table ~application system
  in
  List.map
    (fun pct ->
      Trace.span "planner.power_point" ~attrs:[ ("pct", Trace.Float pct) ]
      @@ fun () ->
      let power_limit = absolute_limit system (Some pct) in
      ( pct,
        fst (run_point ~access system ~policy ~application ~power_limit ~reuse)
      ))
    pcts

let reduction_pct ~baseline makespan =
  if baseline <= 0 then invalid_arg "Planner.reduction_pct: bad baseline";
  100.0 *. (1.0 -. (float_of_int makespan /. float_of_int baseline))

let best_point sweep =
  match sweep.points with
  | [] -> invalid_arg "Planner.best_point: empty sweep"
  | p :: rest ->
      List.fold_left
        (fun best q -> if q.makespan < best.makespan then q else best)
        p rest

let baseline_point sweep =
  match List.find_opt (fun p -> p.reuse = 0) sweep.points with
  | Some p -> p
  | None -> invalid_arg "Planner.baseline_point: sweep has no reuse=0 point"

let pp_sweep ppf sweep =
  let baseline = (baseline_point sweep).makespan in
  let pp_point ppf p =
    Fmt.pf ppf "@[<h>reuse %2d: makespan %9d  (%+.1f%%)  peak %8.1f  %s@]"
      p.reuse p.makespan
      (-.reduction_pct ~baseline p.makespan)
      p.peak_power
      (if p.validated then "ok" else "INVALID")
  in
  Fmt.pf ppf "@[<v>%s [%a%a]@,%a@]" sweep.system_name Scheduler.pp_policy
    sweep.policy
    (Fmt.option (fun ppf pct -> Fmt.pf ppf ", power %.0f%%" pct))
    sweep.power_limit_pct
    (Fmt.list ~sep:Fmt.cut pp_point)
    sweep.points
