(** First-class planning backends.

    A backend is a named strategy producing a complete {!Schedule.t}
    from a {!System.t} and a {!Scheduler.config}.  Two ship built in:

    - ["greedy"] — the paper's event-driven list scheduler
      ({!Scheduler.run}), honoring every configuration field including
      [policy] and [order];
    - ["binpack"] — the rectangle bin-packing formulation
      ({!Binpack.schedule}), which ignores [policy] and [order]
      (its {!capabilities} record says so).

    Each backend's declared {!capabilities} let callers (the CLI, the
    planning service) warn when a requested knob will be ignored
    instead of silently dropping it.  {!solve} wraps every invocation
    in a [backend.solve] trace span tagged with the backend name, so
    traces attribute planning time per strategy.

    {!race} runs several backends on the same instance concurrently
    (one OCaml domain each), validates every produced schedule through
    the independent {!Schedule.validate}, and returns the best valid
    result — ties broken by backend list order, so with the default
    list a race never returns a worse test time than greedy alone. *)

type capabilities = {
  honors_order : bool;
      (** the backend visits cores in [config.order] when given *)
  honors_policy : bool;  (** the backend distinguishes [config.policy] *)
}

type t = {
  name : string;
  capabilities : capabilities;
  solve :
    ?access:Test_access.table -> System.t -> Scheduler.config -> Schedule.t;
      (** Raises {!Scheduler.Unschedulable} / [Invalid_argument] under
          the same contract as {!Scheduler.run}.  Call through
          {!val-solve} to get the trace span. *)
}

val greedy : t
(** The event-driven list scheduler; honors order and policy. *)

val binpack : t
(** The shelf-packing backend; ignores order and policy. *)

val builtins : t list
(** [[greedy; binpack]] — greedy first, which is also the {!race}
    tie-break order. *)

val names : unit -> string list
(** Registered backend names, registration order. *)

val find : string -> t option
(** Look a backend up by name. *)

val register : t -> unit
(** Add a backend to the registry (future formulations: preemptive
    splitting, precomputed-pattern delivery).
    @raise Invalid_argument if the name is already taken. *)

val solve :
  t -> ?access:Test_access.table -> System.t -> Scheduler.config -> Schedule.t
(** Run the backend inside a [backend.solve] span carrying
    [("backend", String name)].  Raises as the backend does. *)

(** {1 Racing} *)

type attempt = {
  backend : string;
  outcome : (Schedule.t, string) result;
      (** the schedule, or the message of the exception the backend
          raised ({!Scheduler.Unschedulable} and [Invalid_argument]
          are caught; anything else propagates) *)
  valid : bool;
      (** [outcome] is [Ok] and passed the independent
          {!Schedule.validate} (always [false] for [Error]) *)
  latency_s : float;  (** wall-clock seconds this backend spent *)
}

type outcome = {
  winner : string;  (** name of the backend whose schedule was kept *)
  schedule : Schedule.t;
  attempts : attempt list;  (** in backend list order *)
}

val race :
  ?clock:(unit -> float) ->
  ?backends:t list ->
  ?access:Test_access.table ->
  System.t ->
  Scheduler.config ->
  outcome
(** Run every backend on its own domain, keep the valid schedule with
    the smallest makespan (ties: earliest backend in the list).
    Schedules are re-checked with {!Schedule.validate} when the
    configuration plans the full module set from time zero; for
    partial replans (a [modules] subset, [pretested] processors or a
    nonzero [start_time]) the independent validator's coverage rules
    do not apply and a returned schedule counts as valid.

    [clock] times each attempt ([Sys.time] by default — callers with
    access to [Unix.gettimeofday] should pass it; this library does
    not link unix).  [backends] defaults to {!builtins}.

    @raise Scheduler.Unschedulable when no backend produced a valid
    schedule (the message aggregates the per-backend failures).
    @raise Invalid_argument if [backends] is empty. *)
