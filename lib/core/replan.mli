(** Adaptive re-planning after a mid-session event.

    A channel diagnosed faulty while the test session is running voids
    every test in flight across it; the already-completed tests stand.
    This module salvages a running schedule: keep what finished before
    the event, void what was in flight, and re-plan the remainder on
    the degraded NoC — reusing processors whose own tests had already
    completed without re-testing them. *)

type result = {
  kept : Schedule.entry list;  (** tests completed before the event *)
  voided : Schedule.entry list;
      (** tests in flight at the event: their runs are void and their
          modules appear again in [replanned] *)
  replanned : Schedule.entry list;  (** the new plan, starting at [at] *)
  makespan : int;  (** overall completion: kept + replanned *)
}

val after_fault :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  reuse:int ->
  at:int ->
  failed:Nocplan_noc.Link.t list ->
  System.t ->
  Schedule.t ->
  result
(** [after_fault ~reuse ~at ~failed system schedule] re-plans
    [schedule] assuming the [failed] channels died at time [at].

    The kept/voided split is by {e time only}: an entry is kept iff it
    finished at or before [at] ([finish <= at]), voided otherwise —
    whether or not its paths touch a failed channel.  Two pinned
    consequences:
    - a [failed] link {e no stream occupies} still voids every test in
      flight at [at] and re-plans its modules on the degraded NoC (the
      diagnosis interrupts the session; it does not selectively kill
      streams), and with [failed = []] the voided tests are re-planned
      on the intact NoC;
    - an [at] at or past the schedule's makespan keeps everything:
      [voided] and [replanned] are empty and [makespan] equals the
      original (nothing was in flight, so nothing is re-planned —
      faults after the session only matter to the next one).

    Re-planning prices the remainder under the same deterministic XY
    routing on the degraded system; for fault-{e aware} detour routing
    and graceful abandonment of unreachable modules, see
    [Nocplan_fault.Recover].

    @raise Scheduler.Unschedulable if the degraded NoC cannot reach
    some remaining core.
    @raise Invalid_argument if [at < 0]. *)

type violation =
  | Coverage of int  (** module not tested exactly once over kept+new *)
  | Replanned_too_early of Schedule.entry
  | Replanned_entry_invalid of Schedule.entry
      (** fails feasibility (route/memory/pair) on the degraded system
          or disagrees with the cost model *)
  | Resource_conflict of Resource.endpoint
  | Link_conflict of Nocplan_noc.Link.t
  | Processor_not_ready of { user : Schedule.entry; processor_id : int }

val validate :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  reuse:int ->
  at:int ->
  failed:Nocplan_noc.Link.t list ->
  result ->
  (unit, violation list) Stdlib.result
(** Independent re-check of a re-planning result. *)

val pp_result : result Fmt.t
val pp_violation : violation Fmt.t
