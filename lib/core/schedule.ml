module Link = Nocplan_noc.Link
module Soc = Nocplan_itc02.Soc

type entry = {
  module_id : int;
  source : Resource.endpoint;
  sink : Resource.endpoint;
  start : int;
  finish : int;
  power : float;
  links : Link.t list;
}

type t = { entries : entry list; makespan : int }

let of_entries entries =
  List.iter
    (fun e ->
      if e.start < 0 || e.finish < e.start then
        invalid_arg
          (Printf.sprintf "Schedule.of_entries: malformed interval on module %d"
             e.module_id))
    entries;
  let entries =
    List.sort
      (fun a b ->
        let c = Int.compare a.start b.start in
        if c <> 0 then c else Int.compare a.module_id b.module_id)
      entries
  in
  let makespan = List.fold_left (fun acc e -> max acc e.finish) 0 entries in
  { entries; makespan }

let entries_for t id = List.filter (fun e -> e.module_id = id) t.entries

type violation =
  | Unknown_module of int
  | Module_not_tested of int
  | Module_tested_twice of int
  | Invalid_pair of entry
  | Endpoint_overlap of Resource.endpoint * entry * entry
  | Link_overlap of Link.t * entry * entry
  | Power_exceeded of { time : int; total : float; limit : float }
  | Processor_not_reusable of entry
  | Processor_used_before_tested of { user : entry; processor_id : int }
  | Wrong_cost of { entry : entry; expected_duration : int }
  | Insufficient_memory of entry
  | Uses_failed_link of entry

let overlapping a b = a.start < b.finish && b.start < a.finish

(* All ordered pairs of distinct entries with overlapping windows. *)
let overlapping_pairs entries =
  let rec go acc = function
    | [] -> acc
    | e :: rest ->
        let acc =
          List.fold_left
            (fun acc e' ->
              if overlapping e e' then (e, e') :: acc else acc)
            acc rest
        in
        go acc rest
  in
  go [] entries

let check_coverage system t =
  let ids = System.module_ids system in
  let missing =
    List.filter_map
      (fun id ->
        match entries_for t id with
        | [] -> Some (Module_not_tested id)
        | [ _ ] -> None
        | _ :: _ :: _ -> Some (Module_tested_twice id))
      ids
  in
  let unknown =
    List.filter_map
      (fun e ->
        if List.mem e.module_id ids then None
        else Some (Unknown_module e.module_id))
      t.entries
  in
  missing @ unknown

let check_pairs system ~reuse t =
  let reusable =
    List.filteri (fun i _ -> i < reuse) system.System.processors
    |> List.map (fun p -> p.System.module_id)
  in
  List.concat_map
    (fun e ->
      let invalid =
        if Resource.valid_pair ~source:e.source ~sink:e.sink then []
        else [ Invalid_pair e ]
      in
      let proc_checks endpoint =
        match endpoint with
        | Resource.Processor id ->
            let not_reusable =
              if List.mem id reusable then [] else [ Processor_not_reusable e ]
            in
            let before_tested =
              match entries_for t id with
              | [ pe ] when pe.finish <= e.start -> []
              | [ _ ] | [] ->
                  [ Processor_used_before_tested { user = e; processor_id = id } ]
              | _ :: _ :: _ -> []
              (* duplicate testing reported by coverage *)
            in
            not_reusable @ before_tested
        | Resource.External_in _ | Resource.External_out _ -> []
      in
      invalid @ proc_checks e.source @ proc_checks e.sink)
    t.entries

let check_exclusivity t =
  List.concat_map
    (fun (a, b) ->
      let endpoint_clashes =
        List.filter_map
          (fun (ea, eb) ->
            if Resource.equal ea eb then Some (Endpoint_overlap (ea, a, b))
            else None)
          [
            (a.source, b.source);
            (a.source, b.sink);
            (a.sink, b.source);
            (a.sink, b.sink);
          ]
      in
      let links_b = Link.Set.of_list b.links in
      let link_clashes =
        List.filter_map
          (fun l ->
            if Link.Set.mem l links_b then Some (Link_overlap (l, a, b))
            else None)
          a.links
      in
      endpoint_clashes @ link_clashes)
    (overlapping_pairs t.entries)

let check_power ~power_limit t =
  match power_limit with
  | None -> []
  | Some limit ->
      let at time =
        List.fold_left
          (fun acc e ->
            if e.start <= time && time < e.finish then acc +. e.power else acc)
          0.0 t.entries
      in
      List.filter_map
        (fun e ->
          let total = at e.start in
          if total > limit +. 1e-9 then
            Some (Power_exceeded { time = e.start; total; limit })
          else None)
        t.entries

(* Each check below consults the access-cost model through an optional
   precomputed {!Test_access.table}.  A table lookup that fails (module
   or endpoint outside the table) falls back to the direct computation,
   so the reported violations are identical with and without a table —
   the table is a cache, never an oracle of its own. *)

let check_costs ?access system ~application t =
  let cost_of e =
    let direct () =
      Test_access.cost system ~application ~module_id:e.module_id
        ~source:e.source ~sink:e.sink
    in
    match access with
    | None -> direct ()
    | Some tbl -> (
        match
          Test_access.table_cost tbl ~module_id:e.module_id ~source:e.source
            ~sink:e.sink
        with
        | c -> c
        | exception Invalid_argument _ -> direct ())
  in
  List.filter_map
    (fun e ->
      match cost_of e with
      | cost ->
          if
            e.finish - e.start <> cost.Test_access.duration
            || not (Float.equal e.power cost.Test_access.power)
          then
            Some (Wrong_cost { entry = e; expected_duration = cost.Test_access.duration })
          else None
      | exception Invalid_argument _ -> Some (Invalid_pair e))
    t.entries

let check_memory ?access system ~application t =
  let feasible e =
    let direct () =
      Test_access.memory_feasible system ~application ~module_id:e.module_id
        ~source:e.source
    in
    match access with
    | None -> direct ()
    | Some tbl -> (
        match
          Test_access.table_memory_feasible tbl ~module_id:e.module_id
            ~source:e.source
        with
        | ok -> ok
        | exception Invalid_argument _ -> direct ())
  in
  List.filter_map
    (fun e ->
      match feasible e with
      | true -> None
      | false -> Some (Insufficient_memory e)
      | exception Invalid_argument _ -> Some (Unknown_module e.module_id))
    t.entries

let check_routes ?access system t =
  let feasible e =
    let direct () =
      Test_access.route_feasible system ~module_id:e.module_id
        ~source:e.source ~sink:e.sink
    in
    match access with
    | None -> direct ()
    | Some tbl -> (
        match
          Test_access.table_route_feasible tbl ~module_id:e.module_id
            ~source:e.source ~sink:e.sink
        with
        | ok -> ok
        | exception Invalid_argument _ -> direct ())
  in
  List.filter_map
    (fun e ->
      match feasible e with
      | true -> None
      | false -> Some (Uses_failed_link e)
      | exception Invalid_argument _ -> Some (Unknown_module e.module_id))
    t.entries

let validate ?access system ~application ~power_limit ~reuse t =
  let access =
    match access with
    | Some tbl when Test_access.table_for tbl ~system ~application -> Some tbl
    | Some _ | None -> None
  in
  let violations =
    check_coverage system t
    @ check_pairs system ~reuse t
    @ check_exclusivity t
    @ check_power ~power_limit t
    @ check_costs ?access system ~application t
    @ check_memory ?access system ~application t
    @ check_routes ?access system t
  in
  match violations with [] -> Ok () | vs -> Error vs

let pp_entry ppf e =
  Fmt.pf ppf "@[<h>[%d,%d) module %d: %a -> %a, power %.1f@]" e.start e.finish
    e.module_id Resource.pp e.source Resource.pp e.sink e.power

let pp_violation ppf = function
  | Unknown_module id -> Fmt.pf ppf "unknown module %d" id
  | Module_not_tested id -> Fmt.pf ppf "module %d never tested" id
  | Module_tested_twice id -> Fmt.pf ppf "module %d tested more than once" id
  | Invalid_pair e -> Fmt.pf ppf "invalid source/sink pair: %a" pp_entry e
  | Endpoint_overlap (r, a, b) ->
      Fmt.pf ppf "endpoint %a double-booked:@ %a@ vs %a" Resource.pp r pp_entry
        a pp_entry b
  | Link_overlap (l, a, b) ->
      Fmt.pf ppf "link %a double-booked:@ %a@ vs %a" Link.pp l pp_entry a
        pp_entry b
  | Power_exceeded { time; total; limit } ->
      Fmt.pf ppf "power %.1f over limit %.1f at t=%d" total limit time
  | Processor_not_reusable e ->
      Fmt.pf ppf "non-reusable processor used: %a" pp_entry e
  | Processor_used_before_tested { user; processor_id } ->
      Fmt.pf ppf "processor %d used before tested: %a" processor_id pp_entry
        user
  | Wrong_cost { entry; expected_duration } ->
      Fmt.pf ppf "entry duration %d != cost model %d: %a"
        (entry.finish - entry.start)
        expected_duration pp_entry entry
  | Insufficient_memory e ->
      Fmt.pf ppf "source memory too small for the test data: %a" pp_entry e
  | Uses_failed_link e ->
      Fmt.pf ppf "test path crosses a failed link: %a" pp_entry e

let pp ppf t =
  Fmt.pf ppf "@[<v>schedule (makespan %d):@,%a@]" t.makespan
    (Fmt.list ~sep:Fmt.cut pp_entry)
    t.entries

let resource_busy_time t endpoint =
  List.fold_left
    (fun acc e ->
      if Resource.equal e.source endpoint || Resource.equal e.sink endpoint
      then acc + (e.finish - e.start)
      else acc)
    0 t.entries
