type t = {
  mutable keys : int array;
  mutable values : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Min_heap.create: capacity < 1";
  { keys = Array.make capacity 0; values = Array.make capacity 0; len = 0 }

let length h = h.len
let is_empty h = h.len = 0
let clear h = h.len <- 0

let grow h =
  let cap = 2 * Array.length h.keys in
  let keys = Array.make cap 0 and values = Array.make cap 0 in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.values 0 values 0 h.len;
  h.keys <- keys;
  h.values <- values

let swap h i j =
  let k = h.keys.(i) and v = h.values.(i) in
  h.keys.(i) <- h.keys.(j);
  h.values.(i) <- h.values.(j);
  h.keys.(j) <- k;
  h.values.(j) <- v

let push h ~key ~value =
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.values.(h.len) <- value;
  let i = ref h.len in
  h.len <- h.len + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and value = h.values.(0) in
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.values.(0) <- h.values.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    Some (key, value)
  end

let peek h = if h.len = 0 then None else Some (h.keys.(0), h.values.(0))
