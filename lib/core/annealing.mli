(** Simulated annealing over test orderings, with parallel tempering.

    The greedy engine commits cores in a fixed visiting order; the
    paper derives that order from distances to the resources.  This
    optimizer searches the order space instead: neighbours swap two
    positions, each candidate order is evaluated by running the
    (deterministic) engine, and worse moves are accepted with the usual
    Metropolis probability under a geometric cooling schedule.
    Candidate evaluation goes through {!Eval_cache}: a swap at position
    [p] re-schedules only the suffix from the divergence event, and a
    revert is a cache hit instead of a re-run.

    With [chains > 1] the search becomes parallel tempering: K
    independent chains, deterministically seeded from the base seed
    and started on a ×2-per-chain temperature ladder, run on OCaml
    domains and exchange their best order every [exchange_period]
    iterations (a chain strictly worse than the global best restarts
    its walk there, keeping its own temperature).  The outcome is a
    function of the parameters only — never of the machine's domain
    count.

    Sits between the O(ms) greedy heuristic and the exponential
    {!Exhaustive} search: a few hundred engine evaluations buy most of
    the available improvement on mid-size systems. *)

type result = {
  schedule : Schedule.t;  (** best schedule found across all chains *)
  initial_makespan : int;  (** the heuristic-order (greedy) makespan *)
  evaluations : int;  (** engine runs performed, summed over chains *)
  accepted : int;  (** moves accepted (including uphill ones) *)
  chains : int;  (** tempering chains run *)
  exchanges : int;  (** best-exchange adoptions between chains *)
}

val improvement_pct : result -> float
(** Reduction of the best makespan relative to the initial one. *)

val schedule :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?seed:int64 ->
  ?chains:int ->
  ?exchange_period:int ->
  ?access:Test_access.table ->
  reuse:int ->
  System.t ->
  result
(** Run the search.  Defaults: [Greedy] inner policy, BIST, no power
    limit, [iterations = 400] (per chain), [initial_temperature] = 2%
    of the initial makespan, [cooling = 0.99] per iteration,
    [seed = 0x5AL], [chains = 1], [exchange_period = 50].  Fully
    deterministic for fixed arguments; [chains = 1] reproduces the
    historical sequential annealer move for move.  The result is never
    worse than the plain heuristic order.  [access] shares a
    precomputed table as in {!Planner.reuse_sweep}; a mismatched table
    is ignored.

    @raise Scheduler.Unschedulable if even the initial order cannot be
    scheduled.
    @raise Invalid_argument for non-positive [iterations], [chains] or
    [exchange_period], [cooling] outside (0, 1], or negative
    temperature. *)
