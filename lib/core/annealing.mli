(** Simulated annealing over test orderings — and, optionally, over
    the placement itself — with parallel tempering.

    The greedy engine commits cores in a fixed visiting order; the
    paper derives that order from distances to the resources.  This
    optimizer searches the order space instead: neighbours swap two
    positions, each candidate order is evaluated by running the
    (deterministic) engine, and worse moves are accepted with the usual
    Metropolis probability under a geometric cooling schedule.
    Candidate evaluation goes through {!Eval_cache}: a swap at position
    [p] re-schedules only the suffix from the divergence event, and a
    revert is a cache hit instead of a re-run.

    With [placement_moves > 0] the walk becomes {e joint}: each
    iteration is, with that probability, a {b placement swap} — the
    tiles of two random non-pinned modules are exchanged
    ({!System.swap_tiles}; processors and IO ports stay where they
    are) — and otherwise the usual order swap.  A placement swap
    invalidates only the two modules' rows of the access table, which
    {!Test_access.table_rebuild} recomputes incrementally, and the
    candidate is evaluated by {!Scheduler.resume_onto}: the schedule
    prefix predating the first affected commit is replayed, the rest
    re-run.  On torus topologies, where wraparound halves worst-case
    hop counts, the placement dimension is where the remaining test
    time lives — an order-only anneal of a torus system mostly
    rearranges equal path lengths.

    With [chains > 1] the search becomes parallel tempering: K
    independent chains, deterministically seeded from the base seed
    and started on a ×2-per-chain temperature ladder, run on OCaml
    domains and exchange their best (order, placement) pair every
    [exchange_period] iterations (a chain strictly worse than the
    global best restarts its walk there — adopting order, system and
    table — keeping its own temperature).  Chain 0 of a multi-chain
    run anneals the order only, so the coldest rung reproduces the
    order-only trajectory exactly and the joint result is never worse
    than order-only annealing under the same seed.  The outcome is a
    function of the parameters only — never of the machine's domain
    count.

    Sits between the O(ms) greedy heuristic and the exponential
    {!Exhaustive} search: a few hundred engine evaluations buy most of
    the available improvement on mid-size systems. *)

type result = {
  schedule : Schedule.t;  (** best schedule found across all chains *)
  system : System.t;
      (** the system the best schedule belongs to: the input system
          under placement-less annealing, a placement-mutated copy of
          it when a placement move won *)
  best_trace : Scheduler.trace;
      (** the winning evaluation itself — hand it back as [warm_start]
          to a later search of the same system and configuration to
          resume from this result *)
  initial_makespan : int;
      (** the makespan the walk started from: the heuristic-order
          (greedy) makespan, or the [warm_start] trace's *)
  warm_started : bool;  (** a [warm_start] trace was accepted *)
  evaluations : int;  (** engine runs performed, summed over chains *)
  accepted : int;  (** moves accepted (including uphill ones) *)
  placement_evals : int;  (** placement-swap candidates evaluated *)
  placement_accepted : int;  (** placement swaps accepted *)
  chains : int;  (** tempering chains run *)
  exchanges : int;  (** best-exchange adoptions between chains *)
}

val improvement_pct : result -> float
(** Reduction of the best makespan relative to the initial one; 0 when
    the initial makespan is 0 (a degenerate empty system). *)

val schedule :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?seed:int64 ->
  ?chains:int ->
  ?exchange_period:int ->
  ?placement_moves:float ->
  ?access:Test_access.table ->
  ?warm_start:Scheduler.trace ->
  ?eval_cache:Eval_cache.t ->
  reuse:int ->
  System.t ->
  result
(** Run the search.  Defaults: [Greedy] inner policy, BIST, no power
    limit, [iterations = 400] (per chain), [initial_temperature] = 2%
    of the initial makespan, [cooling = 0.99] per iteration,
    [seed = 0x5AL], [chains = 1], [exchange_period = 50],
    [placement_moves = 0.0] (order-only — byte-identical to the
    historical annealer, consuming the same generator stream).  Fully
    deterministic for fixed arguments; [chains = 1] reproduces the
    historical sequential annealer move for move.  The result is never
    worse than the plain heuristic order.  [access] shares a
    precomputed table as in {!Planner.reuse_sweep}; a mismatched table
    is ignored.

    [placement_moves] is the probability that an iteration swaps two
    module tiles instead of two order positions; with [chains > 1],
    chain 0 keeps annealing the order only (see above).

    [warm_start] resumes from an earlier search: a [best_trace]
    produced for the {e same} system (physically) and configuration is
    adopted as the shared initial evaluation — every chain starts at
    the warmed order, its evaluation cache pre-seeded with the trace's
    prefixes, and the initial engine run is skipped — so the result is
    never worse than the warm trace's makespan.  A trace for another
    system or configuration is silently ignored (like a mismatched
    [access]); [warm_started] in the result says which happened.
    Note that a warm start changes the search trajectory (the walk
    explores around the warmed order), trading bit-for-bit
    reproducibility of the cold run for convergence.

    [eval_cache] lends a caller-owned {!Eval_cache} (for the same
    physical system and configuration modulo order) to chain 0 for
    the duration of the search: its retained prefix traces serve this
    search's evaluations, and the traces this search produces are left
    in it for the next caller.  The search result is unaffected —
    cached evaluation is byte-identical to from-scratch evaluation —
    except in speed.  A mismatched cache is silently ignored.  The
    caller must not touch the cache until [schedule] returns, and
    should note that accepted placement moves {!Eval_cache.rebase} it
    onto the mutated system (check {!Eval_cache.system} before reusing
    it for the original one).

    @raise Scheduler.Unschedulable if even the initial order cannot be
    scheduled.
    @raise Invalid_argument for non-positive [iterations], [chains] or
    [exchange_period], [cooling] outside (0, 1], negative
    temperature, or [placement_moves] outside [0, 1]. *)
