module Coord = Nocplan_noc.Coord
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def

let resource_tiles system ~reuse =
  List.map (Resource.coord system) (Resource.all_endpoints system ~reuse)

let distance_to_nearest_resource system ~reuse id =
  let tile = System.coord_of_module system id in
  let tiles = resource_tiles system ~reuse in
  let topology = system.System.topology in
  List.fold_left
    (fun acc c -> min acc (Nocplan_noc.Topology.distance topology tile c))
    max_int tiles

let order system ~reuse =
  let key id =
    let m = Soc.find system.System.soc id in
    ( distance_to_nearest_resource system ~reuse id,
      -Module_def.test_bits m,
      id )
  in
  System.module_ids system
  |> List.map (fun id -> (key id, id))
  |> List.sort (fun ((da, ba, ia), _) ((db, bb, ib), _) ->
         let c = Int.compare da db in
         if c <> 0 then c
         else
           let c = Int.compare ba bb in
           if c <> 0 then c else Int.compare ia ib)
  |> List.map snd
