module Link = Nocplan_noc.Link
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Processor = Nocplan_proc.Processor
module Reservation = Nocplan_noc.Reservation

type session = {
  module_id : int;
  source : Resource.endpoint;
  sink : Resource.endpoint;
  start : int;
  finish : int;
  patterns : int;
  power : float;
  links : Link.t list;
}

type plan = { sessions : session list; makespan : int }

let plan_of_sessions sessions =
  List.iter
    (fun s ->
      if s.start < 0 || s.finish < s.start then
        invalid_arg "Preemptive.plan_of_sessions: malformed interval";
      if s.patterns < 1 then
        invalid_arg "Preemptive.plan_of_sessions: patterns must be >= 1")
    sessions;
  let sessions =
    List.sort
      (fun a b ->
        let c = Int.compare a.start b.start in
        if c <> 0 then c else Int.compare a.module_id b.module_id)
      sessions
  in
  let makespan = List.fold_left (fun acc s -> max acc s.finish) 0 sessions in
  { sessions; makespan }

type config = {
  application : Processor.application;
  reuse : int;
  power_limit : float option;
  max_sessions : int;
}

let config ?(application = Processor.Bist) ?(power_limit = None)
    ?(max_sessions = 3) ~reuse () =
  if max_sessions < 1 then
    invalid_arg "Preemptive.config: max_sessions must be >= 1";
  { application; reuse; power_limit; max_sessions }

(* Near-equal chunk sizes: [patterns] split into at most [n] chunks of
   at least one pattern each. *)
let chunk_sizes ~patterns ~n =
  let n = min n patterns in
  let base = patterns / n and extra = patterns mod n in
  List.init n (fun i -> base + if i < extra then 1 else 0)

(* A pending chunk job. *)
type job = {
  job_module : int;
  chunk_index : int;
  chunk_patterns : int;
  total_chunks : int;
}

type slot = { endpoint : Resource.endpoint; mutable avail : int option }

let schedule system config =
  let endpoints = Resource.all_endpoints system ~reuse:config.reuse in
  let slots =
    List.map
      (fun endpoint ->
        match endpoint with
        | Resource.External_in _ | Resource.External_out _ ->
            { endpoint; avail = Some 0 }
        | Resource.Processor _ -> { endpoint; avail = None })
      endpoints
  in
  let calendar = Reservation.create () in
  let monitor = Power_monitor.create ~limit:config.power_limit in
  let committed = ref [] in
  (* chunk availability: chunk k+1 of a module unlocks when chunk k
     finishes. [unlocked.(module) = (next chunk index, available from)] *)
  let next_chunk : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
  let jobs =
    List.concat_map
      (fun id ->
        let m = Soc.find system.System.soc id in
        let sizes =
          chunk_sizes ~patterns:m.Module_def.patterns ~n:config.max_sessions
        in
        Hashtbl.replace next_chunk id (0, 0);
        List.mapi
          (fun i patterns ->
            {
              job_module = id;
              chunk_index = i;
              chunk_patterns = patterns;
              total_chunks = List.length sizes;
            })
          sizes)
      (Priority.order system ~reuse:config.reuse)
  in
  let pending = ref jobs in
  let cost_cache = Hashtbl.create 128 in
  (* The chunked costs are computed on the fly rather than read from
     an access table, so the calendar's channel ids are interned
     here. *)
  let channel_ids : (Link.t, int) Hashtbl.t = Hashtbl.create 64 in
  let channels_of links =
    Array.of_list
      (List.map
         (fun l ->
           match Hashtbl.find_opt channel_ids l with
           | Some c -> c
           | None ->
               let c = Hashtbl.length channel_ids in
               Hashtbl.add channel_ids l c;
               c)
         links)
  in
  let cost ~patterns module_id source sink =
    let key = (patterns, module_id, source, sink) in
    match Hashtbl.find_opt cost_cache key with
    | Some c -> c
    | None ->
        let c =
          Test_access.cost ~patterns system ~application:config.application
            ~module_id ~source ~sink
        in
        let c = (c, channels_of c.Test_access.links) in
        Hashtbl.add cost_cache key c;
        c
  in
  let job_ready now job =
    match Hashtbl.find_opt next_chunk job.job_module with
    | Some (next_index, from) -> job.chunk_index = next_index && from <= now
    | None -> false
  in
  let try_job now job =
    if not (job_ready now job) then false
    else begin
      let idle =
        List.filter
          (fun s -> match s.avail with Some a -> a <= now | None -> false)
          slots
      in
      let candidates =
        List.concat_map
          (fun src ->
            List.filter_map
              (fun snk ->
                if
                  Test_access.feasible system
                    ~application:config.application
                    ~module_id:job.job_module ~source:src.endpoint
                    ~sink:snk.endpoint
                then
                  match (src.avail, snk.avail) with
                  | Some a, Some b -> Some (src, snk, max a b)
                  | (None | Some _), _ -> None
                else None)
              idle)
          idle
        |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare a b)
      in
      let commit (src, snk, _) =
        let c, channels =
          cost ~patterns:job.chunk_patterns job.job_module src.endpoint
            snk.endpoint
        in
        let finish = now + c.Test_access.duration in
        if
          Reservation.is_free calendar channels ~start:now ~finish
          && Power_monitor.fits monitor ~start:now ~finish
               ~power:c.Test_access.power
        then begin
          Reservation.reserve calendar ~owner:job.job_module channels
            ~start:now ~finish;
          Power_monitor.add monitor ~start:now ~finish
            ~power:c.Test_access.power;
          src.avail <- Some finish;
          snk.avail <- Some finish;
          committed :=
            {
              module_id = job.job_module;
              source = src.endpoint;
              sink = snk.endpoint;
              start = now;
              finish;
              patterns = job.chunk_patterns;
              power = c.Test_access.power;
              links = c.Test_access.links;
            }
            :: !committed;
          Hashtbl.replace next_chunk job.job_module
            (job.chunk_index + 1, finish);
          (* The whole processor becomes reusable only when its LAST
             chunk completes. *)
          if
            job.chunk_index = job.total_chunks - 1
            && System.is_processor_module system job.job_module
          then
            List.iter
              (fun s ->
                if
                  Resource.equal s.endpoint
                    (Resource.Processor job.job_module)
                then s.avail <- Some finish)
              slots;
          true
        end
        else false
      in
      List.exists commit candidates
    end
  in
  let now = ref 0 in
  let guard = ref 0 in
  while !pending <> [] do
    incr guard;
    if !guard > 10_000_000 then
      raise (Scheduler.Unschedulable "preemptive scheduler did not converge");
    let scheduled, still =
      List.partition (fun job -> try_job !now job) !pending
    in
    ignore scheduled;
    pending := still;
    if !pending <> [] then begin
      let next =
        List.fold_left
          (fun acc s ->
            match s.avail with
            | Some a when a > !now -> (
                match acc with Some m -> Some (min m a) | None -> Some a)
            | Some _ | None -> acc)
          None slots
      in
      let next =
        Hashtbl.fold
          (fun _ (_, from) acc ->
            if from > !now then
              match acc with Some m -> Some (min m from) | None -> Some from
            else acc)
          next_chunk next
      in
      match next with
      | Some t -> now := t
      | None ->
          raise
            (Scheduler.Unschedulable
               (Printf.sprintf
                  "preemptive: no progress at t=%d with %d chunks pending"
                  !now (List.length !pending)))
    end
  done;
  plan_of_sessions !committed

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)

type violation =
  | Patterns_not_covered of { module_id : int; applied : int; required : int }
  | Sessions_overlap of int
  | Resource_overlap of Resource.endpoint
  | Link_overlap of Link.t
  | Power_exceeded of { time : int; total : float; limit : float }
  | Invalid_session of session

let validate system ~application ~power_limit ~reuse plan =
  ignore reuse;
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* coverage *)
  List.iter
    (fun id ->
      let m = Soc.find system.System.soc id in
      let applied =
        List.fold_left
          (fun acc s -> if s.module_id = id then acc + s.patterns else acc)
          0 plan.sessions
      in
      if applied <> m.Module_def.patterns then
        add
          (Patterns_not_covered
             { module_id = id; applied; required = m.Module_def.patterns }))
    (System.module_ids system);
  (* pairwise checks *)
  let overlapping a b = a.start < b.finish && b.start < a.finish in
  let rec pairs = function
    | [] -> ()
    | s :: rest ->
        List.iter
          (fun s' ->
            if overlapping s s' then begin
              if s.module_id = s'.module_id then
                add (Sessions_overlap s.module_id);
              List.iter
                (fun (ea, eb) ->
                  if Resource.equal ea eb then add (Resource_overlap ea))
                [
                  (s.source, s'.source);
                  (s.source, s'.sink);
                  (s.sink, s'.source);
                  (s.sink, s'.sink);
                ];
              let links' = Link.Set.of_list s'.links in
              List.iter
                (fun l -> if Link.Set.mem l links' then add (Link_overlap l))
                s.links
            end)
          rest;
        pairs rest
  in
  pairs plan.sessions;
  (* power *)
  (match power_limit with
  | None -> ()
  | Some limit ->
      let at time =
        List.fold_left
          (fun acc s ->
            if s.start <= time && time < s.finish then acc +. s.power else acc)
          0.0 plan.sessions
      in
      List.iter
        (fun s ->
          let total = at s.start in
          if total > limit +. 1e-9 then
            add (Power_exceeded { time = s.start; total; limit }))
        plan.sessions);
  (* per-session cost agreement and pair validity *)
  List.iter
    (fun s ->
      match
        Test_access.cost ~patterns:s.patterns system ~application
          ~module_id:s.module_id ~source:s.source ~sink:s.sink
      with
      | c ->
          if
            s.finish - s.start <> c.Test_access.duration
            || not
                 (Test_access.feasible system ~application
                    ~module_id:s.module_id ~source:s.source ~sink:s.sink)
          then add (Invalid_session s)
      | exception Invalid_argument _ -> add (Invalid_session s))
    plan.sessions;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let pp_session ppf s =
  Fmt.pf ppf "@[<h>[%d,%d) module %d (%d patterns): %a -> %a@]" s.start
    s.finish s.module_id s.patterns Resource.pp s.source Resource.pp s.sink

let pp_plan ppf plan =
  Fmt.pf ppf "@[<v>preemptive plan (makespan %d):@,%a@]" plan.makespan
    (Fmt.list ~sep:Fmt.cut pp_session)
    plan.sessions

let pp_violation ppf = function
  | Patterns_not_covered { module_id; applied; required } ->
      Fmt.pf ppf "module %d: %d of %d patterns applied" module_id applied
        required
  | Sessions_overlap id -> Fmt.pf ppf "sessions of module %d overlap" id
  | Resource_overlap e -> Fmt.pf ppf "endpoint %a double-booked" Resource.pp e
  | Link_overlap l -> Fmt.pf ppf "link %a double-booked" Link.pp l
  | Power_exceeded { time; total; limit } ->
      Fmt.pf ppf "power %.1f over limit %.1f at t=%d" total limit time
  | Invalid_session s -> Fmt.pf ppf "invalid session: %a" pp_session s
