module Trace = Nocplan_obs.Trace

type capabilities = { honors_order : bool; honors_policy : bool }

type t = {
  name : string;
  capabilities : capabilities;
  solve :
    ?access:Test_access.table -> System.t -> Scheduler.config -> Schedule.t;
}

let greedy =
  {
    name = "greedy";
    capabilities = { honors_order = true; honors_policy = true };
    solve = Scheduler.run;
  }

let binpack =
  {
    name = "binpack";
    capabilities = { honors_order = false; honors_policy = false };
    solve = Binpack.schedule;
  }

let builtins = [ greedy; binpack ]

(* Registration is process-global, like the trace collector; the
   mutex only matters for exotic registrars, lookups copy the list. *)
let registry_mutex = Mutex.create ()
let registry = ref builtins

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) (fun () ->
      f registry)

let names () = with_registry (fun r -> List.map (fun b -> b.name) !r)

let find name =
  with_registry (fun r -> List.find_opt (fun b -> b.name = name) !r)

let register b =
  with_registry (fun r ->
      if List.exists (fun b' -> b'.name = b.name) !r then
        invalid_arg (Fmt.str "Backend.register: %S already registered" b.name);
      r := !r @ [ b ])

let solve b ?access system config =
  Trace.span "backend.solve"
    ~attrs:[ ("backend", Trace.String b.name) ]
    (fun () -> b.solve ?access system config)

type attempt = {
  backend : string;
  outcome : (Schedule.t, string) result;
  valid : bool;
  latency_s : float;
}

type outcome = { winner : string; schedule : Schedule.t; attempts : attempt list }

(* The independent validator checks full-coverage, from-scratch
   schedules; a partial replan legitimately leaves modules untested
   and uses pretested processors it never scheduled. *)
let independently_checkable (config : Scheduler.config) =
  config.modules = None && config.pretested = [] && config.start_time = 0

let race ?(clock = Sys.time) ?(backends = builtins) ?access system
    (config : Scheduler.config) =
  if backends = [] then invalid_arg "Backend.race: no backends";
  let checkable = independently_checkable config in
  let attempt b =
    let t0 = clock () in
    let outcome =
      match solve b ?access system config with
      | s -> Ok s
      | exception Scheduler.Unschedulable msg -> Error msg
      | exception Invalid_argument msg -> Error msg
    in
    let latency_s = clock () -. t0 in
    let valid =
      match outcome with
      | Error _ -> false
      | Ok s ->
          (not checkable)
          || Schedule.validate ?access system ~application:config.application
               ~power_limit:config.power_limit ~reuse:config.reuse s
             = Ok ()
    in
    { backend = b.name; outcome; valid; latency_s }
  in
  let attempts =
    match backends with
    | [ b ] -> [ attempt b ]
    | first :: rest ->
        (* One spawned domain per extra backend; the first runs here,
           so a single-backend race costs no spawn at all. *)
        let domains = List.map (fun b -> Domain.spawn (fun () -> attempt b)) rest in
        let a0 = attempt first in
        a0 :: List.map Domain.join domains
    | [] -> assert false
  in
  let best =
    List.fold_left
      (fun acc a ->
        match (acc, a.valid, a.outcome) with
        | None, true, Ok s -> Some (a, s)
        | Some (_, s'), true, Ok s
          when s.Schedule.makespan < s'.Schedule.makespan ->
            Some (a, s)
        | _ -> acc)
      None attempts
  in
  match best with
  | Some (a, s) -> { winner = a.backend; schedule = s; attempts }
  | None ->
      let summarize a =
        Fmt.str "%s: %s" a.backend
          (match a.outcome with
          | Error msg -> msg
          | Ok _ -> "schedule failed independent validation")
      in
      raise
        (Scheduler.Unschedulable
           (Fmt.str "race: no backend produced a valid schedule (%s)"
              (String.concat "; " (List.map summarize attempts))))
