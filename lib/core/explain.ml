module Trace = Nocplan_obs.Trace

type candidate = {
  source : string;
  sink : string;
  source_is_processor : bool;
  sink_is_processor : bool;
  ready : int;
  duration : int;
  est_finish : int;
  eligible : bool;
  chosen : bool;
}

type decision = {
  module_id : int;
  time : int;
  policy : string;
  candidates : candidate list;
}

let req_int ev key = Option.value (Trace.attr_int ev key) ~default:0
let req_bool ev key = Option.value (Trace.attr_bool ev key) ~default:false
let req_str ev key = Option.value (Trace.attr_string ev key) ~default:""

let candidate_of_event ev =
  {
    source = req_str ev "source";
    sink = req_str ev "sink";
    source_is_processor = req_bool ev "source_processor";
    sink_is_processor = req_bool ev "sink_processor";
    ready = req_int ev "ready";
    duration = req_int ev "duration";
    est_finish = req_int ev "est_finish";
    eligible = req_bool ev "eligible";
    chosen = req_bool ev "chosen";
  }

(* The scheduler emits, per commit, one [scheduler.decision] instant
   followed by its [scheduler.candidate] instants — contiguous because
   a single engine runs single-threaded.  Anything else in the stream
   (spans, commits, conflicts) is skipped. *)
let decisions_of_events events =
  let rec take_candidates acc n = function
    | ev :: rest
      when n > 0 && ev.Trace.name = "scheduler.candidate" ->
        take_candidates (candidate_of_event ev :: acc) (n - 1) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | ev :: rest when ev.Trace.name = "scheduler.decision" ->
        let n = req_int ev "candidates" in
        let candidates, rest = take_candidates [] n rest in
        let d =
          {
            module_id = req_int ev "module";
            time = req_int ev "t";
            policy = req_str ev "policy";
            candidates;
          }
        in
        go (d :: acc) rest
    | _ :: rest -> go acc rest
  in
  go [] events

let chosen d = List.find_opt (fun c -> c.chosen) d.candidates

let anomaly d =
  match chosen d with
  | None -> None
  | Some w ->
      if not (w.source_is_processor || w.sink_is_processor) then None
      else
        List.fold_left
          (fun best c ->
            if
              (not c.chosen)
              && (not c.source_is_processor)
              && (not c.sink_is_processor)
              && c.ready > d.time
              && c.est_finish < w.est_finish
            then
              match best with
              | Some (_, b) when b.est_finish <= c.est_finish -> best
              | _ -> Some (w, c)
            else best)
          None d.candidates

let plan ?policy ?application ?(power_limit = None) ~reuse system =
  let config = Scheduler.config ?policy ?application ~power_limit ~reuse () in
  let sched, events =
    Trace.with_collector ~level:Trace.Decisions (fun () ->
        Scheduler.run system config)
  in
  (sched, decisions_of_events events)

let pp_candidate ppf c =
  Fmt.pf ppf "%s -> %s (ready %d, duration %d, finish %d)" c.source c.sink
    c.ready c.duration c.est_finish

let pp_decision ppf d =
  (match chosen d with
  | Some w ->
      Fmt.pf ppf "@[<h>t=%-9d module %-3d [%s] chose %a of %d candidates@]"
        d.time d.module_id d.policy pp_candidate w
        (List.length d.candidates)
  | None ->
      Fmt.pf ppf "@[<h>t=%-9d module %-3d [%s] (no winner recorded)@]" d.time
        d.module_id d.policy);
  match anomaly d with
  | None -> ()
  | Some (w, better) ->
      Fmt.pf ppf
        "@,@[<h>  ANOMALY: external pair %a was busy at t=%d but would have \
         finished %d earlier@]"
        pp_candidate better d.time
        (w.est_finish - better.est_finish)

let pp_report ppf decisions =
  let anomalies = List.filter (fun d -> anomaly d <> None) decisions in
  Fmt.pf ppf "@[<v>%a@,%d decisions, %d greedy-anomaly commit%s@]"
    (Fmt.list ~sep:Fmt.cut pp_decision)
    decisions (List.length decisions)
    (List.length anomalies)
    (if List.length anomalies = 1 then "" else "s")
