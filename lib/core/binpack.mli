(** Rectangle bin-packing scheduler (Wrapper/TAM-style formulation).

    The alternative formulation from the Wrapper/TAM co-optimization
    literature: each core test is a rectangle whose {e height} is its
    test time and whose {e width} is the access bandwidth it occupies —
    here, one (source, sink) endpoint pair plus the XY channel
    footprint between them, the NoC's analogue of a TAM wire group.
    The bin is the system's whole access fabric over time.

    The packer is a level (shelf) heuristic with best-fit decreasing:
    modules are sorted by their cheapest achievable test time
    (tallest rectangle first) and greedily packed into horizontal
    shelves.  Within a shelf every test starts at the same instant on
    pairwise-disjoint endpoints and channels, and the running power
    sum is pruned against the limit before a rectangle is admitted;
    the shelf's height is the tallest rectangle packed into it, and
    the next shelf opens when the previous one ends.  A processor
    endpoint becomes usable from the first shelf that opens at or
    after its own test finished (the paper's reuse precedence), and a
    {!Scheduler.config.link_ready} gate keeps a channel out of every
    shelf that opens before its self-test passed.

    Shelves never overlap in time, so the schedules this backend emits
    are valid by construction — and are still re-checked by the
    independent {!Schedule.validate}, which shares no state with it.
    Compared with the event-driven {!Scheduler}, shelf packing trades
    resource-holes (a shelf waits for its tallest rectangle) for a
    search space that level-packing theory understands; it is the
    second planning backend behind {!Backend} and the template for
    every further formulation.

    The [order] and [policy] fields of the configuration do not apply
    to this formulation and are ignored — {!Backend.capabilities}
    records that. *)

val schedule :
  ?access:Test_access.table -> System.t -> Scheduler.config -> Schedule.t
(** Pack every configured module.  Honors [application], [reuse],
    [power_limit], [start_time], [modules], [pretested] and
    [link_ready]; ignores [order] and [policy].

    @raise Scheduler.Unschedulable when some module has no feasible
    (source, sink) pair at all, or can never be packed under the power
    limit.
    @raise Invalid_argument if [reuse] is out of range or [access] was
    built for a different system or application (same contract as
    {!Scheduler.run}). *)

val shelf_count : System.t -> Scheduler.config -> int
(** Number of shelves (levels) the packing of this instance uses —
    the quantity level-packing bounds speak about; exposed for the
    bench harness and tests. *)
