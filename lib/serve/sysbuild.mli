(** Resolving a request's system specification to a {!Nocplan_core.System.t}.

    Both the CLI and the planning service accept the same description
    of a system under test: a builtin experiment name ([d695_leon],
    [p22810_mixed], ...), a bare ITC'02 corpus benchmark name plus
    processors to embed, or an inline benchmark description in the
    {!Nocplan_itc02.Parser} format.  This module is the single
    implementation of that resolution, so a request served over the
    socket builds exactly the system the [nocplan] CLI would. *)

type spec = {
  system : string;
      (** builtin system name, corpus benchmark name, or [""] when
          [soc_text] carries an inline description *)
  soc_text : string option;
      (** inline benchmark description; takes precedence over
          [system] *)
  width : int option;  (** mesh width; default: smallest near-square *)
  height : int option;
  leons : int;  (** Leon processors to embed (non-builtin systems) *)
  plasmas : int;
}

val spec :
  ?soc_text:string ->
  ?width:int ->
  ?height:int ->
  ?leons:int ->
  ?plasmas:int ->
  string ->
  spec
(** [spec name] with [leons] and [plasmas] defaulting to 0. *)

val builtin_system : string -> Nocplan_core.System.t option
(** The named builtin experiment system ({!Nocplan_core.Experiments.all}),
    freshly built. *)

val assemble :
  soc:Nocplan_itc02.Soc.t ->
  width:int option ->
  height:int option ->
  leons:int ->
  plasmas:int ->
  Nocplan_core.System.t
(** Embed [leons] + [plasmas] processors into [soc] on a mesh sized
    [width] x [height] (default: the smallest near-square mesh with at
    least one tile per module), with one input port at the north-west
    corner and one output port at the south-east corner — the CLI's
    assembly convention.  @raise Invalid_argument on bad dimensions or
    negative processor counts. *)

val build : spec -> (Nocplan_core.System.t, string) result
(** Resolve a spec: inline description if present, else builtin
    system, else corpus benchmark.  All constructor errors are
    reported as [Error]. *)
