module Core = Nocplan_core
module Proc = Nocplan_proc

type entry = {
  key : string;
  system : Core.System.t;
  table : Core.Test_access.table;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable entries : entry list;  (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Table_cache.create: capacity must be >= 1";
  { capacity; mutex = Mutex.create (); entries = []; hits = 0; misses = 0 }

let app_tag = function
  | Proc.Processor.Bist -> "bist"
  | Proc.Processor.Decompression -> "decompress"

let key system ~application =
  Core.System.fingerprint system ^ "/" ^ app_tag application

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_build t system ~application =
  let key = key system ~application in
  locked t (fun () ->
      match List.find_opt (fun e -> e.key = key) t.entries with
      | Some e ->
          t.hits <- t.hits + 1;
          (* Move to front. *)
          t.entries <- e :: List.filter (fun x -> x.key <> key) t.entries;
          (e.system, e.table, true)
      | None ->
          t.misses <- t.misses + 1;
          let table = Core.Test_access.table ~application system in
          let e = { key; system; table } in
          let kept =
            if List.length t.entries >= t.capacity then
              List.filteri (fun i _ -> i < t.capacity - 1) t.entries
            else t.entries
          in
          t.entries <- e :: kept;
          (system, table, false))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> List.length t.entries)
