module Log = (val Logs.src_log Service.log_src)

(* ------------------------------------------------------------------ *)
(* Stdio transport                                                    *)

let serve_stdio service =
  let out_mutex = Mutex.create () in
  let respond chunks =
    Mutex.lock out_mutex;
    List.iter print_string chunks;
    print_newline ();
    flush stdout;
    Mutex.unlock out_mutex
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then Service.handle_line service line respond
     done
   with End_of_file -> ());
  Service.drain service

(* ------------------------------------------------------------------ *)
(* Socket transports: Unix-domain and TCP                             *)

type listener = {
  fd : Unix.file_descr;
  kind : [ `Unix of string | `Tcp of Unix.sockaddr ];
  read_only : bool;
  accept_thread : Thread.t;
  stopping : bool Atomic.t;
  closed : bool Atomic.t;
}

let handle_connection service ~read_only fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let out_mutex = Mutex.create () in
  let closed = Atomic.make false in
  let respond chunks =
    Mutex.lock out_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_mutex)
      (fun () ->
        if not (Atomic.get closed) then begin
          try
            List.iter (output_string oc) chunks;
            output_char oc '\n';
            flush oc
          with Sys_error _ | Unix.Unix_error _ ->
            (* Client went away; drop this and subsequent responses. *)
            Atomic.set closed true
        end)
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         Service.handle_line ~read_only service line respond
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  (* Give in-flight jobs their chance to respond before the channel
     dies; the respond closure swallows write failures either way. *)
  Service.drain service;
  Atomic.set closed true;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop service ~read_only ~fd:listen_fd ~stopping () =
  let rec loop () =
    match Unix.accept listen_fd with
    | fd, _ ->
        if Atomic.get stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
        else begin
          Log.debug (fun m -> m "accepted connection");
          ignore (Thread.create (handle_connection service ~read_only) fd);
          loop ()
        end
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (e, _, _) ->
        if not (Atomic.get stopping) then
          Log.err (fun m -> m "accept failed: %s" (Unix.error_message e))
  in
  loop ()

let ignore_sigpipe () =
  try Sys.signal Sys.sigpipe Sys.Signal_ignore |> ignore
  with Invalid_argument _ -> ()

let spawn_listener service ~read_only ~fd ~kind =
  let stopping = Atomic.make false in
  let accept_thread =
    Thread.create (accept_loop service ~read_only ~fd ~stopping) ()
  in
  { fd; kind; read_only; accept_thread; stopping; closed = Atomic.make false }

let listen ?(read_only = false) service ~path =
  ignore_sigpipe ();
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind fd (ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Log.info (fun m ->
      m "listening on %s%s" path (if read_only then " (read-only)" else ""));
  spawn_listener service ~read_only ~fd ~kind:(`Unix path)

let listen_tcp ?(read_only = false) service ~host ~port =
  ignore_sigpipe ();
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      invalid_arg (Printf.sprintf "Server.listen_tcp: bad address %S" host)
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (* Re-read the bound address: port 0 asks the kernel to pick one. *)
  let bound = Unix.getsockname fd in
  (match bound with
  | Unix.ADDR_INET (a, p) ->
      Log.info (fun m ->
          m "listening on %s:%d%s"
            (Unix.string_of_inet_addr a)
            p
            (if read_only then " (read-only)" else ""))
  | _ -> ());
  spawn_listener service ~read_only ~fd ~kind:(`Tcp bound)

let port listener =
  match listener.kind with
  | `Tcp (Unix.ADDR_INET (_, p)) -> Some p
  | _ -> None

let read_only listener = listener.read_only

let stop listener =
  if not (Atomic.exchange listener.stopping true) then begin
    (* Wake the blocked accept with [shutdown] on the listening
       socket: the sleeping accept fails immediately (EINVAL on
       Linux), which the loop treats as exit.  Closing the fd here
       instead would be a race — [close] does not wake a thread
       already parked in accept, and the freed fd number could be
       reused by a concurrent thread before the loop's next accept
       call.  The fd is closed in [wait], after the loop has exited.
       A throwaway connection doubles as the waker on platforms where
       shutting down a listening socket does not fail its accept. *)
    (try Unix.shutdown listener.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match listener.kind with
    | `Unix path ->
        (try
           let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
           (try Unix.connect fd (ADDR_UNIX path)
            with Unix.Unix_error _ -> ());
           Unix.close fd
         with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
        Log.info (fun m -> m "listener on %s stopped" path)
    | `Tcp bound ->
        (try
           let fd = Unix.socket PF_INET SOCK_STREAM 0 in
           let target =
             (* A wildcard bind is reachable through loopback. *)
             match bound with
             | Unix.ADDR_INET (a, p) when a = Unix.inet_addr_any ->
                 Unix.ADDR_INET (Unix.inet_addr_loopback, p)
             | other -> other
           in
           (try Unix.connect fd target with Unix.Unix_error _ -> ());
           Unix.close fd
         with Unix.Unix_error _ -> ());
        Log.info (fun m -> m "tcp listener stopped"))
  end

let wait listener =
  Thread.join listener.accept_thread;
  if not (Atomic.exchange listener.closed true) then
    try Unix.close listener.fd with Unix.Unix_error _ -> ()
