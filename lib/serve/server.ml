module Log = (val Logs.src_log Service.log_src)

(* ------------------------------------------------------------------ *)
(* Stdio transport                                                    *)

let serve_stdio service =
  let out_mutex = Mutex.create () in
  let respond line =
    Mutex.lock out_mutex;
    print_string line;
    print_newline ();
    flush stdout;
    Mutex.unlock out_mutex
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then Service.handle_line service line respond
     done
   with End_of_file -> ());
  Service.drain service

(* ------------------------------------------------------------------ *)
(* Unix-domain socket transport                                       *)

type listener = {
  fd : Unix.file_descr;
  path : string;
  accept_thread : Thread.t;
  stopping : bool Atomic.t;
  closed : bool Atomic.t;
}

let handle_connection service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let out_mutex = Mutex.create () in
  let closed = Atomic.make false in
  let respond line =
    Mutex.lock out_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_mutex)
      (fun () ->
        if not (Atomic.get closed) then begin
          try
            output_string oc line;
            output_char oc '\n';
            flush oc
          with Sys_error _ | Unix.Unix_error _ ->
            (* Client went away; drop this and subsequent responses. *)
            Atomic.set closed true
        end)
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then Service.handle_line service line respond
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  (* Give in-flight jobs their chance to respond before the channel
     dies; the respond closure swallows write failures either way. *)
  Service.drain service;
  Atomic.set closed true;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop service ~fd:listen_fd ~stopping () =
  let rec loop () =
    match Unix.accept listen_fd with
    | fd, _ ->
        if Atomic.get stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
        else begin
          Log.debug (fun m -> m "accepted connection");
          ignore (Thread.create (handle_connection service) fd);
          loop ()
        end
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (e, _, _) ->
        if not (Atomic.get stopping) then
          Log.err (fun m -> m "accept failed: %s" (Unix.error_message e))
  in
  loop ()

let listen service ~path =
  (try Sys.signal Sys.sigpipe Sys.Signal_ignore |> ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind fd (ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Log.info (fun m -> m "listening on %s" path);
  let stopping = Atomic.make false in
  let accept_thread = Thread.create (accept_loop service ~fd ~stopping) () in
  { fd; path; accept_thread; stopping; closed = Atomic.make false }

let stop listener =
  if not (Atomic.exchange listener.stopping true) then begin
    (* Wake the blocked accept with [shutdown] on the listening
       socket: the sleeping accept fails immediately (EINVAL on
       Linux), which the loop treats as exit.  Closing the fd here
       instead would be a race — [close] does not wake a thread
       already parked in accept, and the freed fd number could be
       reused by a concurrent thread before the loop's next accept
       call.  The fd is closed in [wait], after the loop has exited.
       A throwaway connection doubles as the waker on platforms where
       shutting down a listening socket does not fail its accept. *)
    (try Unix.shutdown listener.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
       (try Unix.connect fd (ADDR_UNIX listener.path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.unlink listener.path with Unix.Unix_error _ | Sys_error _ -> ());
    Log.info (fun m -> m "listener on %s stopped" listener.path)
  end

let wait listener =
  Thread.join listener.accept_thread;
  if not (Atomic.exchange listener.closed true) then
    try Unix.close listener.fd with Unix.Unix_error _ -> ()
