module Core = Nocplan_core
module Proc = Nocplan_proc

(* Compatibility is "these requests solve on the same (system,
   configuration-modulo-order) key": the spec, the scheduling
   configuration fields, and nothing request-private.  Search
   parameters (iterations, seed, chains, placement_moves, warm) stay
   out — two anneals with different seeds still share the system's
   access table and evaluation cache, which is exactly what one pass
   amortizes.  Grouping never merges results (each request is executed
   and answered individually), so the key is a performance hint, not a
   correctness boundary. *)
let key (req : Protocol.request) =
  match req.op with
  | Protocol.Sweep | Protocol.Replan | Protocol.Preempt | Protocol.Metrics
  | Protocol.Prometheus ->
      None
  | Protocol.Plan | Protocol.Validate | Protocol.Anneal -> (
      match req.deadline_ms with
      | Some _ ->
          (* A deadline request never waits on a batch it did not ask
             to join: batching reorders the queue, and pulling other
             work ahead of a deadline-carrying request could expire
             it.  Mirrors the coalescing exemption. *)
          None
      | None ->
          let b = Buffer.create 128 in
          let add s =
            Buffer.add_string b s;
            Buffer.add_char b '\x00'
          in
          (match req.spec with
          | None -> add "-"
          | Some s ->
              add s.Sysbuild.system;
              add (Option.value s.Sysbuild.soc_text ~default:"");
              add
                (match s.Sysbuild.width with
                | None -> "-"
                | Some i -> string_of_int i);
              add
                (match s.Sysbuild.height with
                | None -> "-"
                | Some i -> string_of_int i);
              add (string_of_int s.Sysbuild.leons);
              add (string_of_int s.Sysbuild.plasmas));
          add
            (match req.policy with
            | Core.Scheduler.Greedy -> "greedy"
            | Core.Scheduler.Lookahead -> "lookahead");
          add
            (match req.application with
            | Proc.Processor.Bist -> "bist"
            | Proc.Processor.Decompression -> "decompress");
          (* Different backends produce different plans; a batch pass
             must never hand one member another backend's result
             context (and the response's "backend" field is shaped by
             it). *)
          add (Option.value req.backend ~default:"-");
          add
            (match req.power_pct with
            | None -> "-"
            | Some f -> Printf.sprintf "%h" f);
          add
            (match req.reuse with
            | None -> "-"
            | Some i -> string_of_int i);
          Some (Digest.to_hex (Digest.string (Buffer.contents b))))

let compatible a b =
  match (key a, key b) with
  | Some ka, Some kb -> String.equal ka kb
  | _ -> false
