(** Shared LRU cache of precomputed {!Nocplan_core.Test_access.table}s.

    Building an access table — per-module wrapper design against every
    endpoint pair — dominates the cost of a single plan request, and
    the table is immutable once built.  The service therefore caches
    tables across requests, keyed by {!Nocplan_core.System.fingerprint}
    plus the test application.

    The table API demands {e physical} equality between the table's
    system and the one being planned ({!Nocplan_core.Test_access.table_for}),
    while two requests for the same benchmark build two structurally
    equal systems.  The cache squares this by storing the system
    {e alongside} its table: a hit hands back the cached system, and
    the caller plans against that instance.  Schedules are a function
    of the system's structure only, so the swap is unobservable (a
    test pins cached and uncached responses byte-identical).

    All operations are serialized by an internal mutex; the cache is
    shared by every worker domain. *)

type t

val create : capacity:int -> t
(** Keep at most [capacity] tables, evicting the least recently used.
    @raise Invalid_argument if [capacity < 1]. *)

val find_or_build :
  t ->
  Nocplan_core.System.t ->
  application:Nocplan_proc.Processor.application ->
  Nocplan_core.System.t * Nocplan_core.Test_access.table * bool
(** [(system, table, hit)]: on a hit, the cached system (structurally
    equal to the argument) and its table; on a miss, the argument
    itself with a freshly built (and now cached) table.  The build
    happens while holding the cache lock, so concurrent requests for
    the same system build the table exactly once. *)

val key :
  Nocplan_core.System.t ->
  application:Nocplan_proc.Processor.application ->
  string
(** The cache key for a system/application pair — the system
    fingerprint plus an application tag.  Exposed so sibling caches
    (the service's warm-start cache) key their entries consistently
    with this one: two requests that share a table entry share the
    prefix of their warm-start key too. *)

val hits : t -> int
val misses : t -> int
val length : t -> int
