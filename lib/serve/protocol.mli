(** The planning service's versioned JSON-lines protocol.

    One request per line, one response per line.  Responses carry the
    request's [id] and may arrive out of order (requests are pipelined
    through the worker pool), so clients correlate by [id].

    Request fields (protocol version 1):
    {v
    { "v": 1,                  // optional, defaults to 1
      "id": "r1",              // echoed verbatim (any JSON value)
      "op": "plan",            // plan | sweep | validate | anneal
                               //   | replan | preempt
                               //   | metrics | prometheus
      "system": "d695_leon",   // builtin system or corpus benchmark
      "soc": "Soc x\n...",     // inline description, instead of system
      "width": 4, "height": 4, // mesh dims (non-builtin systems)
      "leons": 2, "plasmas": 0,// processors to embed (default 0)
      "policy": "greedy",      // or "lookahead"
      "application": "bist",   // or "decompress"
      "backend": "race",       // plan/validate: greedy | binpack | race

      "power_pct": 25.0,       // power limit, % of total core power
      "reuse": 3,              // plan/validate/anneal (default: all)
      "max_reuse": 6,          // sweep (default: all)
      "iterations": 250,       // anneal (default 400)
      "seed": 90,              // anneal RNG seed (default 0x5A)
      "chains": 4,             // anneal tempering chains (default 1)
      "placement_moves": 0.3,  // anneal tile-swap move ratio (default 0)
      "warm": false,           // anneal: opt out of warm starts
      "max_sessions": 3,       // preempt: session split bound (>= 1)
      "at": 5000,              // replan: fault event instant (>= 0)
      "failed_routers": ["1,1"],          // replan: dead routers
      "failed_links": ["0,0>0,1",         // replan: dead channels and
                       "inject:2,0"],     //   local ports
      "deadline_ms": 5000 }    // per-request deadline
    v}

    Success response:
    {v
    { "v": 1, "id": "r1", "ok": true, "op": "plan",
      "cache": "hit",          // access-table cache: hit | miss
      "backend": "greedy",     // plan/validate: solver that produced
                               //   the plan (race: the winner)
      "elapsed_ms": 12.5, "result": { ... } }
    v}

    A response served from a shared batch pass additionally carries
    ["batched": true, "batch_size": n] (the number of requests the
    pass grouped); a coalesced follower carries ["coalesced": true].
    These markers describe scheduling, not the verdict — the [result]
    payload is byte-identical to sequential, unbatched service.

    {b Backends.}  [plan] and [validate] accept a ["backend"] field
    naming a planning backend ([greedy] — the default, [binpack] — the
    rectangle bin-packing formulation, or [race] — every registered
    backend runs concurrently on its own domain and the best valid
    plan wins, never worse than greedy alone).  Every plan/validate
    response — batched ones included — names the solver that produced
    its plan in ["backend"]; per-backend solve counts, win counts and
    total latency appear in the [metrics] snapshot ([backend_solves],
    [backend_wins], [backend_latency_ms]) and as
    [nocplan_backend_*] Prometheus series.  Naming [backend] on any
    other op is refused as [invalid].

    Error response:
    {v
    { "v": 1, "id": "r1", "ok": false,
      "error": { "kind": "timeout", "message": "..." } }
    v}

    Error kinds: [parse] (malformed request or system description),
    [invalid] (a well-formed request carrying an out-of-domain value:
    [max_sessions < 1], a negative [at], a malformed or out-of-mesh
    fault target), [unschedulable] (the planner proved the instance
    infeasible), [timeout] (deadline exceeded), [overload] (queue full
    — retry later), [read_only] (a planning op sent to a read-only
    listener), [internal].

    {b Fault ops.}  [replan] schedules the spec fault-free, then
    replays the given fault event against it at instant [at]: routers
    in [failed_routers] ("x,y") and channels in [failed_links]
    ("x1,y1>x2,y2" directed, "inject:x,y" / "eject:x,y" local ports)
    die; finished tests are kept, in-flight ones voided, the remainder
    re-planned over fault-aware detour routes, and modules left
    without any healthy test path are abandoned.  The result reports
    the kept/voided/replanned/abandoned split, the availability (the
    fraction of modules still testable) and an independent validation
    verdict.  [preempt] plans with the preemptive scheduler, splitting
    each core's pattern set into at most [max_sessions] sessions.

    {b Coalescing.}  Identical planning requests in flight at the same
    time are solved once: later arrivals attach to the running job and
    receive its verdict under their own [id] and [elapsed_ms], marked
    with ["coalesced": true].  Identity is the {!coalesce_key} digest —
    every result-shaping field, not the [id] — and requests carrying a
    [deadline_ms] are exempt (they always get their own job).

    {b Observability ops.}  [metrics] and [prometheus] are answered
    inline by the admission thread (never queued), so they cannot be
    starved by planning traffic.  [metrics] returns the stats
    snapshot as JSON; inline-served requests feed the same latency
    reservoir as queued ones, so [latency_ms] reflects everything the
    server answered (quantiles of zero samples are still never
    fabricated — the field is [null] until the first response).
    [prometheus] returns the same data (plus per-worker utilization)
    as a Prometheus text-exposition document in the [result] string,
    ready for a scrape pipeline. *)

val version : int

type op =
  | Plan
  | Sweep
  | Validate
  | Anneal
  | Replan
  | Preempt
  | Metrics
  | Prometheus

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  op : op;
  spec : Sysbuild.spec option;
      (** [None] only for [Metrics] and [Prometheus] *)
  policy : Nocplan_core.Scheduler.policy;
  application : Nocplan_proc.Processor.application;
  backend : string option;
      (** [Plan]/[Validate] planning backend: a registered
          {!Nocplan_core.Backend} name or ["race"]; [None] means the
          default greedy path *)
  power_pct : float option;
  reuse : int option;
  max_reuse : int option;
  iterations : int option;  (** [Anneal] per-chain iteration budget *)
  seed : int option;  (** [Anneal] RNG seed *)
  chains : int option;  (** [Anneal] tempering chains *)
  placement_moves : float option;
      (** [Anneal] probability in [0, 1] that a move swaps two module
          tiles instead of two order positions (default 0: order-only) *)
  warm : bool option;
      (** [Anneal] warm-start opt-out: [Some false] searches cold,
          ignoring the server's cross-request warm-start LRU (the
          result is still noted for later requests).  Default: warm. *)
  max_sessions : int option;
      (** [Preempt] per-core session bound, [>= 1] (default 3) *)
  at : int option;  (** [Replan] fault event instant (default 0) *)
  fault_routers : Nocplan_noc.Coord.t list;
      (** [Replan] dead routers — parsed, sorted, deduplicated *)
  fault_links : Nocplan_noc.Link.t list;  (** [Replan] dead channels *)
  deadline_ms : float option;
}

type error_kind =
  | Parse
  | Invalid
      (** well-formed request, out-of-domain value ([max_sessions < 1],
          negative [at], malformed or out-of-mesh fault target) *)
  | Unschedulable
  | Timeout
  | Overload
  | Readonly
  | Internal

val parse_request : string -> (request, error_kind * string) result
(** Parse and validate one request line.  Unknown fields are ignored
    (minor protocol evolutions stay compatible); an unsupported ["v"]
    is an error.  Structural problems are [Parse] errors;
    out-of-domain values ([max_sessions < 1], a negative [at], a
    malformed fault target string) are [Invalid]. *)

val coalesce_key : request -> string option
(** The request's coalescing signature: a digest of the op, system
    spec and every solver parameter (not the [id]).  Two requests with
    equal keys are guaranteed the same verdict, so one solve can serve
    both.  [None] for observability ops and for requests carrying a
    [deadline_ms]. *)

val ok_response :
  id:Json.t ->
  op:op ->
  cache:[ `Hit | `Miss | `None ] ->
  ?coalesced:bool ->
  ?backend:string ->
  ?batch_size:int ->
  elapsed_ms:float ->
  Json.t ->
  string list
(** Render a success response line (no trailing newline) as chunks
    whose concatenation is the line.  A [Json.Raw] result is passed
    through as its own chunk, so a multi-megabyte payload is never
    copied into an envelope-sized buffer; transports write the chunks
    back-to-back.  [batch_size >= 2] marks the response as served from
    a shared batch pass of that size; [backend] names the solver whose
    plan the response carries (set for every plan/validate response,
    batched and coalesced ones included). *)

val error_response : id:Json.t -> error_kind -> string -> string
val op_label : op -> string
val error_kind_label : error_kind -> string
