(** Cross-request batching: the compatibility key.

    Coalescing (see {!Protocol.coalesce_key}) merges {e identical}
    simultaneous requests into one solve.  Batching is the next rung:
    {e distinct but compatible} requests — same system and scheduler
    configuration modulo order, any op among plan/validate/anneal, any
    search parameters — are drained from the queue onto one worker
    pass.  Run back to back on one worker they hit the same access
    table, the same shared evaluation cache and the same warm-start
    entries without ever bouncing that state between workers, which is
    where the throughput comes from; each request is still executed
    and answered individually, so responses are byte-identical to
    sequential service. *)

val key : Protocol.request -> string option
(** The request's compatibility signature: a digest of the system spec
    and the configuration-modulo-order fields (policy, application,
    power_pct, reuse) — {e not} the op or the search parameters.
    [None] for requests that never batch: sweep/replan/preempt (their
    solves don't share per-(system, config) state), observability ops,
    and any request carrying a [deadline_ms] (batching reorders the
    queue; a deadline request keeps its place). *)

val compatible : Protocol.request -> Protocol.request -> bool
(** Both requests have keys and the keys are equal. *)
