(** Transports for the planning service: stdio, Unix-domain socket and
    TCP.

    All speak the JSON-lines protocol of {!Protocol}: one request per
    line in, one response per line out.  Responses from the worker pool
    are interleaved as they complete, so they may arrive out of request
    order — clients correlate by [id].  A service can be behind any
    number of listeners at once (the CLI runs a Unix socket and an
    optional TCP port against the same worker pool), each with its own
    access mode.

    {b Read-only listeners.}  A listener created with [~read_only:true]
    answers [metrics] and [prometheus] but refuses planning ops with a
    [read_only] error — the shape of a scrape endpoint that can be
    exposed beyond the blast radius of the read-write socket. *)

val serve_stdio : Service.t -> unit
(** Read request lines from [stdin] until EOF, writing responses to
    [stdout] (each followed by a newline, flushed).  Drains the
    service before returning so no admitted request is dropped. *)

type listener

val listen : ?read_only:bool -> Service.t -> path:string -> listener
(** Bind and listen on a Unix-domain socket at [path] (any stale
    socket file there is removed first), accepting connections on a
    background thread.  Each connection is handled by its own thread
    speaking the same line protocol; a client disconnecting mid-burst
    only loses its own responses.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val listen_tcp :
  ?read_only:bool -> Service.t -> host:string -> port:int -> listener
(** Bind and listen on [host:port] ([host] a dotted/IPv6 address
    literal; [port = 0] lets the kernel pick — read it back with
    {!port}).  Same per-connection handling as {!listen}.
    @raise Invalid_argument if [host] is not an address literal.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val port : listener -> int option
(** The TCP listener's bound port; [None] for a Unix-domain
    listener. *)

val read_only : listener -> bool

val stop : listener -> unit
(** Stop accepting: shut down the listening socket (waking the accept
    loop) and, for a Unix-domain listener, remove the socket file.
    Established connections are left to finish their in-flight lines.
    The socket descriptor itself is closed by {!wait}, once the accept
    loop has exited.  Idempotent. *)

val wait : listener -> unit
(** Block until the accept loop has exited (after {!stop}, or a fatal
    accept error), then close the listening descriptor. *)
