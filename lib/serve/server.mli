(** Transports for the planning service: stdio and Unix-domain socket.

    Both speak the JSON-lines protocol of {!Protocol}: one request per
    line in, one response per line out.  Responses from the worker pool
    are interleaved as they complete, so they may arrive out of request
    order — clients correlate by [id]. *)

val serve_stdio : Service.t -> unit
(** Read request lines from [stdin] until EOF, writing responses to
    [stdout] (each followed by a newline, flushed).  Drains the
    service before returning so no admitted request is dropped. *)

type listener

val listen : Service.t -> path:string -> listener
(** Bind and listen on a Unix-domain socket at [path] (any stale
    socket file there is removed first), accepting connections on a
    background thread.  Each connection is handled by its own thread
    speaking the same line protocol; a client disconnecting mid-burst
    only loses its own responses.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : listener -> unit
(** Stop accepting: shut down the listening socket (waking the accept
    loop) and remove the socket file.  Established connections are
    left to finish their in-flight lines.  The socket descriptor
    itself is closed by {!wait}, once the accept loop has exited.
    Idempotent. *)

val wait : listener -> unit
(** Block until the accept loop has exited (after {!stop}, or a fatal
    accept error), then close the listening descriptor. *)
