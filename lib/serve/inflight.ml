type 'a entry = {
  key : string;
  mutable waiters : 'a list;  (* reversed arrival order *)
}

type 'a t = {
  mutex : Mutex.t;
  mutable entries : 'a entry list;
}

let create () = { mutex = Mutex.create (); entries = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let claim t ~key waiter =
  locked t (fun () ->
      match List.find_opt (fun e -> e.key = key) t.entries with
      | Some e ->
          e.waiters <- waiter :: e.waiters;
          `Attached
      | None ->
          t.entries <- { key; waiters = [] } :: t.entries;
          `Leader)

let release t ~key =
  locked t (fun () ->
      match List.find_opt (fun e -> e.key = key) t.entries with
      | None -> []
      | Some e ->
          t.entries <- List.filter (fun x -> x.key <> key) t.entries;
          List.rev e.waiters)

let keys t = locked t (fun () -> List.length t.entries)

let waiting t =
  locked t (fun () ->
      List.fold_left (fun acc e -> acc + List.length e.waiters) 0 t.entries)
