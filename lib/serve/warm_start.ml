module Core = Nocplan_core

type entry = {
  key : string;
  trace : Core.Scheduler.trace;
  makespan : int;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable entries : entry list;  (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then
    invalid_arg "Warm_start.create: capacity must be >= 0";
  { capacity; mutex = Mutex.create (); entries = []; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t ~key =
  locked t (fun () ->
      match List.find_opt (fun e -> e.key = key) t.entries with
      | Some e ->
          t.hits <- t.hits + 1;
          t.entries <- e :: List.filter (fun x -> x.key <> key) t.entries;
          Some e.trace
      | None ->
          t.misses <- t.misses + 1;
          None)

let note t ~key trace =
  let makespan =
    (Core.Scheduler.trace_schedule trace).Core.Schedule.makespan
  in
  locked t (fun () ->
      if t.capacity > 0 then
        match List.find_opt (fun e -> e.key = key) t.entries with
        | Some e when e.makespan <= makespan ->
            (* The cached order is at least as good — keep it, but
               refresh its recency so live keys outlast idle ones. *)
            t.entries <- e :: List.filter (fun x -> x.key <> key) t.entries
        | Some _ | None ->
            let e = { key; trace; makespan } in
            let rest = List.filter (fun x -> x.key <> key) t.entries in
            let kept =
              if List.length rest >= t.capacity then
                List.filteri (fun i _ -> i < t.capacity - 1) rest
              else rest
            in
            t.entries <- e :: kept)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> List.length t.entries)
