module Core = Nocplan_core
module Proc = Nocplan_proc

let version = 1

type op = Plan | Sweep | Validate | Anneal | Metrics | Prometheus

type request = {
  id : Json.t;
  op : op;
  spec : Sysbuild.spec option;
  policy : Core.Scheduler.policy;
  application : Proc.Processor.application;
  power_pct : float option;
  reuse : int option;
  max_reuse : int option;
  iterations : int option;
  seed : int option;
  chains : int option;
  placement_moves : float option;
  deadline_ms : float option;
}

type error_kind =
  | Parse
  | Unschedulable
  | Timeout
  | Overload
  | Readonly
  | Internal

let op_label = function
  | Plan -> "plan"
  | Sweep -> "sweep"
  | Validate -> "validate"
  | Anneal -> "anneal"
  | Metrics -> "metrics"
  | Prometheus -> "prometheus"

let error_kind_label = function
  | Parse -> "parse"
  | Unschedulable -> "unschedulable"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Readonly -> "read_only"
  | Internal -> "internal"

let ( let* ) = Result.bind

let parse_request line =
  let* json = Json.parse line in
  let* () =
    match json with
    | Json.Obj _ -> Ok ()
    | _ -> Error "request must be a JSON object"
  in
  let* () =
    match Json.member "v" json with
    | None | Some (Json.Int 1) -> Ok ()
    | Some v ->
        Error
          (Printf.sprintf "unsupported protocol version %s (this server: %d)"
             (Json.to_string v) version)
  in
  let id = Option.value (Json.member "id" json) ~default:Json.Null in
  let* op =
    match Json.str_field "op" json with
    | Some "plan" -> Ok Plan
    | Some "sweep" -> Ok Sweep
    | Some "validate" -> Ok Validate
    | Some "anneal" -> Ok Anneal
    | Some "metrics" -> Ok Metrics
    | Some "prometheus" -> Ok Prometheus
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
    | None -> Error "missing op field"
  in
  let* policy =
    match Json.str_field "policy" json with
    | None -> Ok Core.Scheduler.Greedy
    | Some "greedy" -> Ok Core.Scheduler.Greedy
    | Some "lookahead" -> Ok Core.Scheduler.Lookahead
    | Some other -> Error (Printf.sprintf "unknown policy %S" other)
  in
  let* application =
    match Json.str_field "application" json with
    | None -> Ok Proc.Processor.Bist
    | Some "bist" -> Ok Proc.Processor.Bist
    | Some "decompress" -> Ok Proc.Processor.Decompression
    | Some other -> Error (Printf.sprintf "unknown application %S" other)
  in
  let int_opt name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int i) -> Ok (Some i)
    | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  in
  let float_opt name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int i) -> Ok (Some (float_of_int i))
    | Some (Json.Float f) -> Ok (Some f)
    | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  in
  let* width = int_opt "width" in
  let* height = int_opt "height" in
  let* leons = int_opt "leons" in
  let* plasmas = int_opt "plasmas" in
  let* reuse = int_opt "reuse" in
  let* max_reuse = int_opt "max_reuse" in
  let* iterations = int_opt "iterations" in
  let* seed = int_opt "seed" in
  let* chains = int_opt "chains" in
  let* power_pct = float_opt "power_pct" in
  let* placement_moves = float_opt "placement_moves" in
  let* () =
    match placement_moves with
    | Some r when r < 0.0 || r > 1.0 ->
        Error "field \"placement_moves\" must be within [0, 1]"
    | _ -> Ok ()
  in
  let* deadline_ms = float_opt "deadline_ms" in
  let soc_text = Json.str_field "soc" json in
  let system = Json.str_field "system" json in
  let* spec =
    match (op, system, soc_text) with
    | (Metrics | Prometheus), _, _ -> Ok None
    | _, None, None -> Error "missing system (or inline soc) field"
    | _, system, soc_text ->
        Ok
          (Some
             {
               Sysbuild.system = Option.value system ~default:"";
               soc_text;
               width;
               height;
               leons = Option.value leons ~default:0;
               plasmas = Option.value plasmas ~default:0;
             })
  in
  Ok
    {
      id;
      op;
      spec;
      policy;
      application;
      power_pct;
      reuse;
      max_reuse;
      iterations;
      seed;
      chains;
      placement_moves;
      deadline_ms;
    }

(* Requests that may coalesce hash to a canonical signature covering
   every result-shaping field — the op, the full system spec and all
   solver parameters — but not the client-chosen [id].  Observability
   ops are answered inline (nothing to coalesce), and a request
   carrying a deadline never coalesces: attaching it to another
   request's solve would let a leader's timeout fail followers that
   asked for a different (or no) deadline. *)
let coalesce_key req =
  match req.op with
  | Metrics | Prometheus -> None
  | Plan | Sweep | Validate | Anneal -> (
      match req.deadline_ms with
      | Some _ -> None
      | None ->
          let b = Buffer.create 256 in
          let add s =
            Buffer.add_string b s;
            Buffer.add_char b '\x00'
          in
          let add_int_opt v =
            add (match v with None -> "-" | Some i -> string_of_int i)
          in
          add (op_label req.op);
          (match req.spec with
          | None -> add "-"
          | Some s ->
              add s.Sysbuild.system;
              add (Option.value s.Sysbuild.soc_text ~default:"");
              add_int_opt s.Sysbuild.width;
              add_int_opt s.Sysbuild.height;
              add (string_of_int s.Sysbuild.leons);
              add (string_of_int s.Sysbuild.plasmas));
          add
            (match req.policy with
            | Core.Scheduler.Greedy -> "greedy"
            | Core.Scheduler.Lookahead -> "lookahead");
          add
            (match req.application with
            | Proc.Processor.Bist -> "bist"
            | Proc.Processor.Decompression -> "decompress");
          add
            (match req.power_pct with
            | None -> "-"
            | Some f -> Printf.sprintf "%h" f);
          add_int_opt req.reuse;
          add_int_opt req.max_reuse;
          add_int_opt req.iterations;
          add_int_opt req.seed;
          add_int_opt req.chains;
          (match req.placement_moves with
          | None -> add "-"
          | Some f -> add (Printf.sprintf "%h" f));
          Some (Digest.to_hex (Digest.string (Buffer.contents b))))

(* The response is delivered as chunks whose concatenation is the
   line: the (small) envelope head, the result payload, and the
   closing brace.  A [Json.Raw] result — how multi-megabyte sweep and
   plan payloads arrive here — is spliced through untouched instead of
   being copied into a second envelope-sized buffer. *)
let ok_response ~id ~op ~cache ?(coalesced = false) ~elapsed_ms result =
  let head_fields =
    [
      ("v", Json.Int version);
      ("id", id);
      ("ok", Json.Bool true);
      ("op", Json.String (op_label op));
    ]
    @ (match cache with
      | `Hit -> [ ("cache", Json.String "hit") ]
      | `Miss -> [ ("cache", Json.String "miss") ]
      | `None -> [])
    @ (if coalesced then [ ("coalesced", Json.Bool true) ] else [])
    @ [ ("elapsed_ms", Json.Float (Float.round (elapsed_ms *. 1000.) /. 1000.)) ]
  in
  let head = Json.to_string (Json.Obj head_fields) in
  (* Reopen the head object and splice the result in as its last
     field, byte-identical to rendering the whole object at once. *)
  let head = String.sub head 0 (String.length head - 1) in
  let payload =
    match result with Json.Raw s -> s | v -> Json.to_string v
  in
  [ head ^ ", \"result\": "; payload; "}" ]

let error_response ~id kind message =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int version);
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("kind", Json.String (error_kind_label kind));
               ("message", Json.String message);
             ] );
       ])
