module Core = Nocplan_core
module Proc = Nocplan_proc
module Noc = Nocplan_noc

let version = 1

type op = Plan | Sweep | Validate | Anneal | Replan | Preempt | Metrics | Prometheus

type request = {
  id : Json.t;
  op : op;
  spec : Sysbuild.spec option;
  policy : Core.Scheduler.policy;
  application : Proc.Processor.application;
  backend : string option;
  power_pct : float option;
  reuse : int option;
  max_reuse : int option;
  iterations : int option;
  seed : int option;
  chains : int option;
  placement_moves : float option;
  warm : bool option;
  max_sessions : int option;
  at : int option;
  fault_routers : Noc.Coord.t list;
  fault_links : Noc.Link.t list;
  deadline_ms : float option;
}

type error_kind =
  | Parse
  | Invalid
  | Unschedulable
  | Timeout
  | Overload
  | Readonly
  | Internal

let op_label = function
  | Plan -> "plan"
  | Sweep -> "sweep"
  | Validate -> "validate"
  | Anneal -> "anneal"
  | Replan -> "replan"
  | Preempt -> "preempt"
  | Metrics -> "metrics"
  | Prometheus -> "prometheus"

let error_kind_label = function
  | Parse -> "parse"
  | Invalid -> "invalid"
  | Unschedulable -> "unschedulable"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Readonly -> "read_only"
  | Internal -> "internal"

let ( let* ) = Result.bind

(* "x,y" *)
let parse_coord s =
  let bad () =
    Error (Printf.sprintf "bad coordinate %S (expected \"x,y\")" s)
  in
  match String.split_on_char ',' (String.trim s) with
  | [ x; y ] -> (
      match
        (int_of_string_opt (String.trim x), int_of_string_opt (String.trim y))
      with
      | Some x, Some y when x >= 0 && y >= 0 -> Ok (Noc.Coord.make ~x ~y)
      | _ -> bad ())
  | _ -> bad ()

(* "x1,y1>x2,y2" (directed channel), "inject:x,y" or "eject:x,y"
   (local port) *)
let parse_fault_link s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | Some i -> (
      let kind = String.sub s 0 i in
      let* c = parse_coord (String.sub s (i + 1) (String.length s - i - 1)) in
      match kind with
      | "inject" -> Ok (Noc.Link.Inject c)
      | "eject" -> Ok (Noc.Link.Eject c)
      | _ -> Error (Printf.sprintf "bad link %S (unknown port kind %S)" s kind))
  | None -> (
      match String.index_opt s '>' with
      | Some i ->
          let* a = parse_coord (String.sub s 0 i) in
          let* b =
            parse_coord (String.sub s (i + 1) (String.length s - i - 1))
          in
          if Noc.Coord.equal a b then
            Error (Printf.sprintf "bad link %S (identical endpoints)" s)
          else Ok (Noc.Link.channel a b)
      | None ->
          Error
            (Printf.sprintf
               "bad link %S (expected \"x1,y1>x2,y2\", \"inject:x,y\" or \
                \"eject:x,y\")"
               s))

let parse_request line =
  let parse_err r = Result.map_error (fun msg -> (Parse, msg)) r in
  let invalid_err r = Result.map_error (fun msg -> (Invalid, msg)) r in
  let* json = parse_err (Json.parse line) in
  let* () =
    match json with
    | Json.Obj _ -> Ok ()
    | _ -> Error (Parse, "request must be a JSON object")
  in
  let* () =
    match Json.member "v" json with
    | None | Some (Json.Int 1) -> Ok ()
    | Some v ->
        Error
          ( Parse,
            Printf.sprintf "unsupported protocol version %s (this server: %d)"
              (Json.to_string v) version )
  in
  let id = Option.value (Json.member "id" json) ~default:Json.Null in
  let* op =
    match Json.str_field "op" json with
    | Some "plan" -> Ok Plan
    | Some "sweep" -> Ok Sweep
    | Some "validate" -> Ok Validate
    | Some "anneal" -> Ok Anneal
    | Some "replan" -> Ok Replan
    | Some "preempt" -> Ok Preempt
    | Some "metrics" -> Ok Metrics
    | Some "prometheus" -> Ok Prometheus
    | Some other -> Error (Parse, Printf.sprintf "unknown op %S" other)
    | None -> Error (Parse, "missing op field")
  in
  let* policy =
    match Json.str_field "policy" json with
    | None -> Ok Core.Scheduler.Greedy
    | Some "greedy" -> Ok Core.Scheduler.Greedy
    | Some "lookahead" -> Ok Core.Scheduler.Lookahead
    | Some other -> Error (Parse, Printf.sprintf "unknown policy %S" other)
  in
  let* application =
    match Json.str_field "application" json with
    | None -> Ok Proc.Processor.Bist
    | Some "bist" -> Ok Proc.Processor.Bist
    | Some "decompress" -> Ok Proc.Processor.Decompression
    | Some other ->
        Error (Parse, Printf.sprintf "unknown application %S" other)
  in
  let* backend =
    match Json.str_field "backend" json with
    | None -> Ok None
    | Some name -> (
        match op with
        | Plan | Validate ->
            if name = "race" || Option.is_some (Core.Backend.find name) then
              Ok (Some name)
            else
              Error
                ( Invalid,
                  Printf.sprintf
                    "unknown backend %S (known: %s, race)" name
                    (String.concat ", " (Core.Backend.names ())) )
        | _ ->
            Error
              ( Invalid,
                "field \"backend\" only applies to plan and validate requests"
              ))
  in
  let int_opt name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int i) -> Ok (Some i)
    | Some _ ->
        Error (Parse, Printf.sprintf "field %S must be an integer" name)
  in
  let float_opt name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int i) -> Ok (Some (float_of_int i))
    | Some (Json.Float f) -> Ok (Some f)
    | Some _ -> Error (Parse, Printf.sprintf "field %S must be a number" name)
  in
  let str_list name =
    match Json.member name json with
    | None | Some Json.Null -> Ok []
    | Some (Json.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Json.String s -> Ok (s :: acc)
            | _ ->
                Error
                  (Parse, Printf.sprintf "field %S must be a list of strings" name))
          items (Ok [])
    | Some _ ->
        Error (Parse, Printf.sprintf "field %S must be a list of strings" name)
  in
  let* width = int_opt "width" in
  let* height = int_opt "height" in
  let* leons = int_opt "leons" in
  let* plasmas = int_opt "plasmas" in
  let* reuse = int_opt "reuse" in
  let* max_reuse = int_opt "max_reuse" in
  let* iterations = int_opt "iterations" in
  let* seed = int_opt "seed" in
  let* chains = int_opt "chains" in
  let* power_pct = float_opt "power_pct" in
  let* placement_moves = float_opt "placement_moves" in
  let* () =
    match placement_moves with
    | Some r when r < 0.0 || r > 1.0 ->
        Error (Parse, "field \"placement_moves\" must be within [0, 1]")
    | _ -> Ok ()
  in
  let bool_opt name =
    match Json.member name json with
    | None | Some Json.Null -> Ok None
    | Some (Json.Bool v) -> Ok (Some v)
    | Some _ ->
        Error (Parse, Printf.sprintf "field %S must be a boolean" name)
  in
  let* warm = bool_opt "warm" in
  let* max_sessions = int_opt "max_sessions" in
  let* () =
    match max_sessions with
    | Some n when n < 1 -> Error (Invalid, "field \"max_sessions\" must be >= 1")
    | _ -> Ok ()
  in
  let* at = int_opt "at" in
  let* () =
    match at with
    | Some n when n < 0 -> Error (Invalid, "field \"at\" must be >= 0")
    | _ -> Ok ()
  in
  let* router_strs = str_list "failed_routers" in
  let* fault_routers =
    invalid_err
      (List.fold_right
         (fun s acc ->
           Result.bind acc (fun acc ->
               Result.map (fun c -> c :: acc) (parse_coord s)))
         router_strs (Ok []))
  in
  let* link_strs = str_list "failed_links" in
  let* fault_links =
    invalid_err
      (List.fold_right
         (fun s acc ->
           Result.bind acc (fun acc ->
               Result.map (fun l -> l :: acc) (parse_fault_link s)))
         link_strs (Ok []))
  in
  let fault_routers = List.sort_uniq Noc.Coord.compare fault_routers in
  let fault_links = List.sort_uniq Noc.Link.compare fault_links in
  let* deadline_ms = float_opt "deadline_ms" in
  let soc_text = Json.str_field "soc" json in
  let system = Json.str_field "system" json in
  let* spec =
    match (op, system, soc_text) with
    | (Metrics | Prometheus), _, _ -> Ok None
    | _, None, None -> Error (Parse, "missing system (or inline soc) field")
    | _, system, soc_text ->
        Ok
          (Some
             {
               Sysbuild.system = Option.value system ~default:"";
               soc_text;
               width;
               height;
               leons = Option.value leons ~default:0;
               plasmas = Option.value plasmas ~default:0;
             })
  in
  Ok
    {
      id;
      op;
      spec;
      policy;
      application;
      backend;
      power_pct;
      reuse;
      max_reuse;
      iterations;
      seed;
      chains;
      placement_moves;
      warm;
      max_sessions;
      at;
      fault_routers;
      fault_links;
      deadline_ms;
    }

(* Requests that may coalesce hash to a canonical signature covering
   every result-shaping field — the op, the full system spec and all
   solver parameters — but not the client-chosen [id].  Observability
   ops are answered inline (nothing to coalesce), and a request
   carrying a deadline never coalesces: attaching it to another
   request's solve would let a leader's timeout fail followers that
   asked for a different (or no) deadline. *)
let coalesce_key req =
  match req.op with
  | Metrics | Prometheus -> None
  | Plan | Sweep | Validate | Anneal | Replan | Preempt -> (
      match req.deadline_ms with
      | Some _ -> None
      | None ->
          let b = Buffer.create 256 in
          let add s =
            Buffer.add_string b s;
            Buffer.add_char b '\x00'
          in
          let add_int_opt v =
            add (match v with None -> "-" | Some i -> string_of_int i)
          in
          add (op_label req.op);
          (match req.spec with
          | None -> add "-"
          | Some s ->
              add s.Sysbuild.system;
              add (Option.value s.Sysbuild.soc_text ~default:"");
              add_int_opt s.Sysbuild.width;
              add_int_opt s.Sysbuild.height;
              add (string_of_int s.Sysbuild.leons);
              add (string_of_int s.Sysbuild.plasmas));
          add
            (match req.policy with
            | Core.Scheduler.Greedy -> "greedy"
            | Core.Scheduler.Lookahead -> "lookahead");
          add
            (match req.application with
            | Proc.Processor.Bist -> "bist"
            | Proc.Processor.Decompression -> "decompress");
          (* [backend] shapes the plan itself, so requests asking
             different backends must never share a solve. *)
          add (Option.value req.backend ~default:"-");
          add
            (match req.power_pct with
            | None -> "-"
            | Some f -> Printf.sprintf "%h" f);
          add_int_opt req.reuse;
          add_int_opt req.max_reuse;
          add_int_opt req.iterations;
          add_int_opt req.seed;
          add_int_opt req.chains;
          (match req.placement_moves with
          | None -> add "-"
          | Some f -> add (Printf.sprintf "%h" f));
          (* [warm] shapes the anneal result (a warm-started search
             follows a different trajectory), so requests differing
             only in it must never coalesce. *)
          add (match req.warm with None -> "-" | Some v -> string_of_bool v);
          add_int_opt req.max_sessions;
          add_int_opt req.at;
          List.iter (fun c -> add (Fmt.str "%a" Noc.Coord.pp c)) req.fault_routers;
          add "|";
          List.iter (fun l -> add (Fmt.str "%a" Noc.Link.pp l)) req.fault_links;
          Some (Digest.to_hex (Digest.string (Buffer.contents b))))

(* The response is delivered as chunks whose concatenation is the
   line: the (small) envelope head, the result payload, and the
   closing brace.  A [Json.Raw] result — how multi-megabyte sweep and
   plan payloads arrive here — is spliced through untouched instead of
   being copied into a second envelope-sized buffer. *)
let ok_response ~id ~op ~cache ?(coalesced = false) ?backend ?batch_size
    ~elapsed_ms result =
  let head_fields =
    [
      ("v", Json.Int version);
      ("id", id);
      ("ok", Json.Bool true);
      ("op", Json.String (op_label op));
    ]
    @ (match cache with
      | `Hit -> [ ("cache", Json.String "hit") ]
      | `Miss -> [ ("cache", Json.String "miss") ]
      | `None -> [])
    @ (match backend with
      | Some name -> [ ("backend", Json.String name) ]
      | None -> [])
    @ (if coalesced then [ ("coalesced", Json.Bool true) ] else [])
    @ (match batch_size with
      | Some n when n >= 2 ->
          [ ("batched", Json.Bool true); ("batch_size", Json.Int n) ]
      | Some _ | None -> [])
    @ [ ("elapsed_ms", Json.Float (Float.round (elapsed_ms *. 1000.) /. 1000.)) ]
  in
  let head = Json.to_string (Json.Obj head_fields) in
  (* Reopen the head object and splice the result in as its last
     field, byte-identical to rendering the whole object at once. *)
  let head = String.sub head 0 (String.length head - 1) in
  let payload =
    match result with Json.Raw s -> s | v -> Json.to_string v
  in
  [ head ^ ", \"result\": "; payload; "}" ]

let error_response ~id kind message =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int version);
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("kind", Json.String (error_kind_label kind));
               ("message", Json.String message);
             ] );
       ])
