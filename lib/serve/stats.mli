(** Service observability: request counters and latency quantiles.

    Every response the service emits is recorded under one of four
    outcomes; served requests additionally contribute their
    end-to-end latency (enqueue to response) to a bounded reservoir of
    the most recent observations, from which the snapshot computes
    quantiles.  A snapshot is what the protocol's [metrics] request
    returns, combined with the cache and queue gauges the service
    reads at snapshot time. *)

type t

val create : unit -> t

type outcome =
  | Served  (** a successful response *)
  | Failed  (** parse, unschedulable or internal error *)
  | Rejected  (** bounced by queue backpressure *)
  | Timed_out  (** deadline exceeded *)

val record : t -> outcome -> latency_ms:float -> unit
(** Thread-safe.  The latency feeds the quantile reservoir only for
    [Served]. *)

val record_inline : t -> unit
(** Count an inline-served observability request ([metrics],
    [prometheus]) as [Served] {e without} touching the latency
    reservoir: the quantiles report queued planning work only, and
    stay [None] (JSON [null]) until such a request has been served —
    they are never computed over zero samples. *)

type quantiles = {
  count : int;  (** observations currently in the reservoir *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type snapshot = {
  served : int;
  failed : int;
  rejected : int;
  timeouts : int;
  cache_hits : int;
  cache_misses : int;
  queue_depth : int;
  workers : int;
  latency : quantiles option;  (** [None] until a request is served *)
}

val snapshot :
  t -> cache_hits:int -> cache_misses:int -> queue_depth:int -> workers:int ->
  snapshot

val snapshot_json : snapshot -> Json.t
