(** Service observability: request counters and latency quantiles.

    Every response the service emits is recorded under one of four
    outcomes; served requests additionally contribute their
    end-to-end latency (enqueue to response) to a bounded reservoir of
    the most recent observations, from which the snapshot computes
    quantiles.  A snapshot is what the protocol's [metrics] request
    returns, combined with the cache and queue gauges the service
    reads at snapshot time. *)

type t

val create : unit -> t

type outcome =
  | Served  (** a successful response *)
  | Failed  (** parse, unschedulable or internal error *)
  | Rejected  (** bounced by queue backpressure *)
  | Timed_out  (** deadline exceeded *)

val record : t -> outcome -> latency_ms:float -> unit
(** Thread-safe.  The latency feeds the quantile reservoir only for
    [Served]. *)

val record_inline : t -> latency_ms:float -> unit
(** Count an inline-served observability request ([metrics],
    [prometheus]) as [Served], feeding its latency into the same
    reservoir as queued work: the quantiles describe every response
    the server produced, not just planning traffic. *)

val record_coalesced : t -> op:string -> unit
(** Count one request (by op label) that attached to another
    request's in-flight solve instead of getting its own. *)

val record_batch : t -> size:int -> unit
(** Count one shared batch pass grouping [size >= 2] compatible
    requests; all [size] members count as batched. *)

val record_backend : t -> backend:string -> latency_ms:float -> unit
(** Count one planning-backend solve attempt (by backend name) and add
    its wall-clock latency to that backend's running total.  A [race]
    request records one attempt per racing backend. *)

val record_backend_win : t -> backend:string -> unit
(** Count one plan actually returned to a client as produced by this
    backend — for a race, the winner only. *)

val record_fault : t -> events:int -> abandoned:int -> unit
(** Count one [replan] request that reached fault recovery: [events]
    fault targets were injected and [abandoned] modules were left
    without a test path. *)

type quantiles = {
  count : int;  (** observations currently in the reservoir *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type snapshot = {
  served : int;
  failed : int;
  rejected : int;
  timeouts : int;
  coalesced : (string * int) list;
      (** per-op count of requests served by another request's solve,
          sorted by op label *)
  backend_solves : (string * int) list;
      (** per-backend solve attempts, sorted by backend name *)
  backend_wins : (string * int) list;
      (** per-backend plans returned to clients (race: winners only) *)
  backend_latency_ms : (string * float) list;
      (** per-backend total solve wall-clock, milliseconds *)
  batched : int;  (** requests served through shared batch passes *)
  batches : int;  (** batch passes of size >= 2 *)
  fault_events : int;  (** fault targets handled by [replan] requests *)
  fault_replans : int;  (** [replan] requests that reached recovery *)
  fault_abandoned : int;  (** modules abandoned across them *)
  cache_hits : int;
  cache_misses : int;
  warm_hits : int;  (** anneal runs seeded from the warm-start cache *)
  warm_misses : int;
  shared_cache_hits : int;
      (** solves that resumed a resident shared evaluation cache *)
  shared_cache_misses : int;  (** solves that built a fresh one *)
  queue_depth : int;
  queue_capacity : int;
  workers : int;
  latency : quantiles option;  (** [None] until a request is served *)
}

val snapshot :
  t ->
  cache_hits:int ->
  cache_misses:int ->
  warm_hits:int ->
  warm_misses:int ->
  shared_cache_hits:int ->
  shared_cache_misses:int ->
  queue_depth:int ->
  queue_capacity:int ->
  workers:int ->
  snapshot

val snapshot_json : snapshot -> Json.t
