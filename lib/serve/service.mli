(** The concurrent planning service.

    A long-running engine that turns protocol request lines into
    response lines: requests are admitted through a bounded
    {!Job_queue} (backpressure: a full queue answers [overload]
    immediately) and executed by a pool of OCaml domains sized from
    [Domain.recommended_domain_count].  Each worker resolves the
    request's system, fetches or builds the shared access table
    through the {!Table_cache}, runs the planner and renders the
    response.

    {b Deadlines.}  A request carrying [deadline_ms] is checked
    cooperatively: when it is dequeued, after the system is built,
    after the access table is fetched, and between the per-reuse
    scheduler runs of a sweep.  An expired request answers a [timeout]
    error; the worker and the server survive.  A single scheduler run
    is the cancellation granularity — it is never interrupted
    mid-flight.

    {b Coalescing.}  Identical planning requests in flight at the same
    time ({!Protocol.coalesce_key}) are solved once: the first becomes
    the job, later arrivals park on it ({!Inflight}) and are answered
    with the shared verdict under their own envelope, marked
    [coalesced].  Requests carrying a deadline are exempt.

    {b Warm starts.}  Each completed anneal's best trace is remembered
    per (system, configuration) key ({!Warm_start}); the next anneal of
    the same instance resumes from it instead of the cold heuristic
    order, and can only improve on it.  The response says which with
    its [warm_start] field.  A request with ["warm": false] skips the
    lookup and searches cold (its result is still remembered).

    {b Batching.}  Where coalescing needs identical simultaneous
    requests, batching amortizes {e distinct but compatible} ones
    (same system and configuration modulo order — {!Batch.key}): a
    worker that pops a batchable job drains every compatible queued
    request onto the same pass and runs them back to back, each
    executed and answered individually ([batched]/[batch_size]
    response markers; payloads byte-identical to sequential service).

    {b Shared evaluation caches.}  One {!Nocplan_core.Eval_cache} per
    (system, configuration) instance lives in a mutex-guarded,
    LRU-bounded registry ({!Nocplan_core.Eval_cache.Shared}).  A solve
    checks the instance's cache out (exclusive ownership for its
    duration), so plan/validate repeats become exact trace hits that
    skip the engine run, and annealing chains from different requests
    resume each other's prefix traces.  Byte-identity of cached
    evaluation makes this invisible in the responses.

    {b Observability.}  Every response is counted ({!Stats});
    [metrics] requests are answered inline (never queued, so they
    cannot be starved by planning traffic) with the current snapshot.
    Request logging goes to the [nocplan.serve] {!Logs} source. *)

type t

val log_src : Logs.Src.t
(** The [nocplan.serve] log source, shared with the transports. *)

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?warm_capacity:int ->
  ?coalescing:bool ->
  ?batching:bool ->
  ?batch_limit:int ->
  ?shared_capacity:int ->
  unit ->
  t
(** Start the worker pool.  [workers] defaults to
    [max 1 (Domain.recommended_domain_count () - 1)] (one domain is
    left to the callers feeding the queue) and is clamped to
    [Domain.recommended_domain_count ()]; [queue_capacity] defaults to
    64 (0 is allowed and rejects everything — the backpressure test
    hook); [cache_capacity] defaults to 8; [warm_capacity] defaults to
    32 (0 disables cross-request warm starts); [coalescing] defaults
    to [true] (false gives every request its own solve — the
    uncoalesced baseline the bench compares against); [batching]
    defaults to [true] ([false] runs every job alone) with at most
    [batch_limit] (default 16) requests per batch pass;
    [shared_capacity] (default 8) bounds the shared evaluation-cache
    registry (0 disables it: every solve builds private state).
    @raise Invalid_argument on a negative capacity, [workers < 1],
    [batch_limit < 2] or [shared_capacity < 0]. *)

val handle_line : ?read_only:bool -> t -> string -> (string list -> unit) -> unit
(** Process one request line.  [respond] is called exactly once with
    the response line as chunks (concatenate; no newline):
    synchronously for [metrics], parse errors and overload rejections;
    from a worker domain otherwise.  [respond] must therefore be
    thread-safe.  With [read_only] (a listener flag, not a service
    one) planning ops are refused with a [read_only] error; [metrics]
    and [prometheus] are still served. *)

val request : ?read_only:bool -> t -> string -> string
(** Blocking convenience wrapper around {!handle_line}: submit and
    wait for the response. *)

val stats : t -> Stats.snapshot
val worker_count : t -> int

val drain : t -> unit
(** Block until every admitted request has been responded to. *)

val shutdown : t -> unit
(** Drain, stop and join the workers.  The service must not be used
    afterwards.  Idempotent. *)
