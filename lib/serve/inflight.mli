(** In-flight request registry for admission-time coalescing.

    The first request to {!claim} a key becomes its {e leader} and
    runs the solve; every identical request arriving while the leader
    is still in flight {!claim}s the same key, is told [`Attached],
    and parks itself as a waiter.  When the leader's verdict is ready
    it {!release}s the key, collecting the waiters to answer with the
    shared result.  A request arriving after the release starts a new
    claim — coalescing joins {e concurrent} work only, it is not a
    response cache.

    The registry is generic in the waiter type so it can be exercised
    directly by tests; the service stores its queued-job records.
    All operations are serialized by an internal mutex. *)

type 'a t

val create : unit -> 'a t

val claim : 'a t -> key:string -> 'a -> [ `Leader | `Attached ]
(** [`Leader]: the key was free and is now claimed; the waiter
    argument is {e not} recorded (the leader answers itself).
    [`Attached]: the key is in flight; the waiter is parked and will
    be returned by the matching {!release}. *)

val release : 'a t -> key:string -> 'a list
(** End the key's flight, returning its parked waiters in arrival
    order (empty if none attached).  Releasing an unclaimed key
    returns []. *)

val keys : 'a t -> int
(** Keys currently in flight. *)

val waiting : 'a t -> int
(** Parked waiters summed over all keys. *)
