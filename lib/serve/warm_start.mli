(** Cross-request warm-start cache: the best known annealing trace per
    (system, configuration) key.

    An anneal request that matches an earlier one restates a search
    the server has already run.  This LRU remembers each completed
    anneal's winning trace ({!Nocplan_core.Annealing.result}'s
    [best_trace]) keyed by {!Table_cache.key} plus the
    configuration-relevant parameters, and hands it back to seed the
    next search of the same instance — which then starts at (and can
    only improve on) the cached makespan instead of the cold heuristic
    order.

    Warm traces are only valid against the {e physical} system they
    were produced from; the service guarantees this by keying off the
    table cache, whose hits return the one shared system instance.
    {!note} keeps the better of the stored and offered trace, so the
    cache is monotone: a key's makespan never regresses.

    All operations are serialized by an internal mutex; the cache is
    shared by every worker domain. *)

type t

val create : capacity:int -> t
(** Keep at most [capacity] traces, evicting the least recently used.
    [capacity = 0] disables the cache ({!find} always misses, {!note}
    is a no-op).
    @raise Invalid_argument if [capacity < 0]. *)

val find : t -> key:string -> Nocplan_core.Scheduler.trace option
(** The best known trace for [key], refreshing its recency.  Counts a
    hit or miss either way. *)

val note : t -> key:string -> Nocplan_core.Scheduler.trace -> unit
(** Offer a completed search's best trace for [key].  Kept only if it
    beats (strictly) the stored makespan, or the key is new; either
    way the key becomes most recently used. *)

val hits : t -> int
val misses : t -> int
val length : t -> int
