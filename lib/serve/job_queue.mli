(** Bounded multi-producer / multi-consumer job queue.

    The service's admission point: connection threads push, worker
    domains pop.  The bound is the backpressure mechanism — a push
    against a full queue fails immediately (the caller answers the
    client with an overload error) instead of buffering unboundedly or
    blocking the connection reader. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0].  A capacity of 0 makes
    every push fail — useful for testing the rejection path. *)

val push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed; the item was not
    enqueued. *)

val pop : 'a t -> 'a option
(** Block until an item is available and dequeue it.  After {!close},
    remaining items are still drained in order; [None] means closed
    and empty — the consumer should exit. *)

val drain_matching : ?limit:int -> 'a t -> ('a -> bool) -> 'a list
(** Atomically remove and return (in queue order) up to [limit]
    (default unlimited) queued items satisfying the predicate; the
    relative order of the remaining items is preserved.  The batching
    layer uses this to pull every queued request compatible with the
    one a worker just popped onto the same pass.  Items already
    dequeued or still being admitted are unaffected. *)

val close : 'a t -> unit
(** Reject all subsequent pushes and wake blocked consumers once the
    queue drains.  Idempotent. *)

val depth : 'a t -> int
(** Current number of queued items. *)

val capacity : 'a t -> int
(** The bound the queue was created with — paired with {!depth} it
    makes queue pressure a reportable ratio. *)
