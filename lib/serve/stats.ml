(* Reservoir size: enough for stable tail quantiles over a smoke run
   without unbounded growth on a long-lived server. *)
let reservoir_size = 4096

type t = {
  mutex : Mutex.t;
  mutable served : int;
  mutable failed : int;
  mutable rejected : int;
  mutable timeouts : int;
  latencies : float array;  (* circular buffer of recent served latencies *)
  mutable filled : int;  (* entries in use, <= reservoir_size *)
  mutable next : int;  (* next write position *)
}

type outcome = Served | Failed | Rejected | Timed_out

let create () =
  {
    mutex = Mutex.create ();
    served = 0;
    failed = 0;
    rejected = 0;
    timeouts = 0;
    latencies = Array.make reservoir_size 0.0;
    filled = 0;
    next = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Inline-served observability requests ([metrics], [prometheus])
   count as served but must not feed the latency reservoir: their
   near-zero latencies would drag down the planner quantiles the
   reservoir exists to report. *)
let record_inline t =
  locked t (fun () -> t.served <- t.served + 1)

let record t outcome ~latency_ms =
  locked t (fun () ->
      match outcome with
      | Served ->
          t.served <- t.served + 1;
          t.latencies.(t.next) <- latency_ms;
          t.next <- (t.next + 1) mod reservoir_size;
          t.filled <- min (t.filled + 1) reservoir_size
      | Failed -> t.failed <- t.failed + 1
      | Rejected -> t.rejected <- t.rejected + 1
      | Timed_out -> t.timeouts <- t.timeouts + 1)

type quantiles = {
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type snapshot = {
  served : int;
  failed : int;
  rejected : int;
  timeouts : int;
  cache_hits : int;
  cache_misses : int;
  queue_depth : int;
  workers : int;
  latency : quantiles option;
}

let quantiles_of sorted =
  let n = Array.length sorted in
  let at q =
    (* Nearest-rank quantile on the sorted sample. *)
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))
  in
  {
    count = n;
    p50_ms = at 0.50;
    p90_ms = at 0.90;
    p99_ms = at 0.99;
    max_ms = sorted.(n - 1);
  }

let snapshot t ~cache_hits ~cache_misses ~queue_depth ~workers =
  locked t (fun () ->
      let latency =
        if t.filled = 0 then None
        else begin
          let sample = Array.sub t.latencies 0 t.filled in
          Array.sort compare sample;
          Some (quantiles_of sample)
        end
      in
      {
        served = t.served;
        failed = t.failed;
        rejected = t.rejected;
        timeouts = t.timeouts;
        cache_hits;
        cache_misses;
        queue_depth;
        workers;
        latency;
      })

let snapshot_json s =
  let base =
    [
      ("served", Json.Int s.served);
      ("failed", Json.Int s.failed);
      ("rejected", Json.Int s.rejected);
      ("timeouts", Json.Int s.timeouts);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("queue_depth", Json.Int s.queue_depth);
      ("workers", Json.Int s.workers);
    ]
  in
  let latency =
    match s.latency with
    | None -> [ ("latency_ms", Json.Null) ]
    | Some q ->
        [
          ( "latency_ms",
            Json.Obj
              [
                ("count", Json.Int q.count);
                ("p50", Json.Float q.p50_ms);
                ("p90", Json.Float q.p90_ms);
                ("p99", Json.Float q.p99_ms);
                ("max", Json.Float q.max_ms);
              ] );
        ]
  in
  Json.Obj (base @ latency)
