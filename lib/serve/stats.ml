(* Reservoir size: enough for stable tail quantiles over a smoke run
   without unbounded growth on a long-lived server. *)
let reservoir_size = 4096

type t = {
  mutex : Mutex.t;
  mutable served : int;
  mutable failed : int;
  mutable rejected : int;
  mutable timeouts : int;
  coalesced : (string, int) Hashtbl.t;  (* op label -> attached requests *)
  backend_solves : (string, int) Hashtbl.t;  (* backend -> solve attempts *)
  backend_wins : (string, int) Hashtbl.t;  (* backend -> plans returned *)
  backend_latency : (string, float) Hashtbl.t;  (* backend -> total ms *)
  mutable batched : int;  (* requests served through shared batch passes *)
  mutable batches : int;  (* batch passes of size >= 2 *)
  mutable fault_events : int;  (* fault targets handled by replan ops *)
  mutable fault_replans : int;  (* replan ops that reached recovery *)
  mutable fault_abandoned : int;  (* modules given up across them *)
  latencies : float array;  (* circular buffer of recent served latencies *)
  mutable filled : int;  (* entries in use, <= reservoir_size *)
  mutable next : int;  (* next write position *)
}

type outcome = Served | Failed | Rejected | Timed_out

let create () =
  {
    mutex = Mutex.create ();
    served = 0;
    failed = 0;
    rejected = 0;
    timeouts = 0;
    coalesced = Hashtbl.create 7;
    backend_solves = Hashtbl.create 7;
    backend_wins = Hashtbl.create 7;
    backend_latency = Hashtbl.create 7;
    batched = 0;
    batches = 0;
    fault_events = 0;
    fault_replans = 0;
    fault_abandoned = 0;
    latencies = Array.make reservoir_size 0.0;
    filled = 0;
    next = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push_latency t latency_ms =
  t.latencies.(t.next) <- latency_ms;
  t.next <- (t.next + 1) mod reservoir_size;
  t.filled <- min (t.filled + 1) reservoir_size

(* Inline-served observability requests ([metrics], [prometheus])
   feed the same reservoir as queued work: the quantiles describe
   everything the server answered, so a scrape-heavy deployment sees
   its real (bimodal) latency profile instead of a planner-only
   one. *)
let record_inline t ~latency_ms =
  locked t (fun () ->
      t.served <- t.served + 1;
      push_latency t latency_ms)

let record t outcome ~latency_ms =
  locked t (fun () ->
      match outcome with
      | Served ->
          t.served <- t.served + 1;
          push_latency t latency_ms
      | Failed -> t.failed <- t.failed + 1
      | Rejected -> t.rejected <- t.rejected + 1
      | Timed_out -> t.timeouts <- t.timeouts + 1)

let record_coalesced t ~op =
  locked t (fun () ->
      let n = Option.value (Hashtbl.find_opt t.coalesced op) ~default:0 in
      Hashtbl.replace t.coalesced op (n + 1))

let bump tbl key n =
  Hashtbl.replace tbl key (Option.value (Hashtbl.find_opt tbl key) ~default:0 + n)

let record_backend t ~backend ~latency_ms =
  locked t (fun () ->
      bump t.backend_solves backend 1;
      let total =
        Option.value (Hashtbl.find_opt t.backend_latency backend) ~default:0.0
      in
      Hashtbl.replace t.backend_latency backend (total +. latency_ms))

let record_backend_win t ~backend =
  locked t (fun () -> bump t.backend_wins backend 1)

let record_batch t ~size =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batched <- t.batched + size)

let record_fault t ~events ~abandoned =
  locked t (fun () ->
      t.fault_events <- t.fault_events + events;
      t.fault_replans <- t.fault_replans + 1;
      t.fault_abandoned <- t.fault_abandoned + abandoned)

type quantiles = {
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type snapshot = {
  served : int;
  failed : int;
  rejected : int;
  timeouts : int;
  coalesced : (string * int) list;
  backend_solves : (string * int) list;
  backend_wins : (string * int) list;
  backend_latency_ms : (string * float) list;
  batched : int;
  batches : int;
  fault_events : int;
  fault_replans : int;
  fault_abandoned : int;
  cache_hits : int;
  cache_misses : int;
  warm_hits : int;
  warm_misses : int;
  shared_cache_hits : int;
  shared_cache_misses : int;
  queue_depth : int;
  queue_capacity : int;
  workers : int;
  latency : quantiles option;
}

let quantiles_of sorted =
  let n = Array.length sorted in
  let at q =
    (* Nearest-rank quantile on the sorted sample. *)
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))
  in
  {
    count = n;
    p50_ms = at 0.50;
    p90_ms = at 0.90;
    p99_ms = at 0.99;
    max_ms = sorted.(n - 1);
  }

let snapshot t ~cache_hits ~cache_misses ~warm_hits ~warm_misses
    ~shared_cache_hits ~shared_cache_misses ~queue_depth ~queue_capacity
    ~workers =
  locked t (fun () ->
      let latency =
        if t.filled = 0 then None
        else begin
          let sample = Array.sub t.latencies 0 t.filled in
          Array.sort compare sample;
          Some (quantiles_of sample)
        end
      in
      let sorted_bindings tbl =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort compare
      in
      let coalesced = sorted_bindings t.coalesced in
      {
        served = t.served;
        failed = t.failed;
        rejected = t.rejected;
        timeouts = t.timeouts;
        coalesced;
        backend_solves = sorted_bindings t.backend_solves;
        backend_wins = sorted_bindings t.backend_wins;
        backend_latency_ms = sorted_bindings t.backend_latency;
        batched = t.batched;
        batches = t.batches;
        fault_events = t.fault_events;
        fault_replans = t.fault_replans;
        fault_abandoned = t.fault_abandoned;
        cache_hits;
        cache_misses;
        warm_hits;
        warm_misses;
        shared_cache_hits;
        shared_cache_misses;
        queue_depth;
        queue_capacity;
        workers;
        latency;
      })

let snapshot_json s =
  let base =
    [
      ("served", Json.Int s.served);
      ("failed", Json.Int s.failed);
      ("rejected", Json.Int s.rejected);
      ("timeouts", Json.Int s.timeouts);
      ( "coalesced",
        Json.Obj (List.map (fun (op, n) -> (op, Json.Int n)) s.coalesced) );
      ( "backend_solves",
        Json.Obj (List.map (fun (b, n) -> (b, Json.Int n)) s.backend_solves) );
      ( "backend_wins",
        Json.Obj (List.map (fun (b, n) -> (b, Json.Int n)) s.backend_wins) );
      ( "backend_latency_ms",
        Json.Obj
          (List.map
             (fun (b, ms) ->
               (b, Json.Float (Float.round (ms *. 1000.) /. 1000.)))
             s.backend_latency_ms) );
      ("batched", Json.Int s.batched);
      ("batches", Json.Int s.batches);
      ("fault_events", Json.Int s.fault_events);
      ("fault_replans", Json.Int s.fault_replans);
      ("fault_abandoned", Json.Int s.fault_abandoned);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("warm_hits", Json.Int s.warm_hits);
      ("warm_misses", Json.Int s.warm_misses);
      ("shared_cache_hits", Json.Int s.shared_cache_hits);
      ("shared_cache_misses", Json.Int s.shared_cache_misses);
      ("queue_depth", Json.Int s.queue_depth);
      ("queue_capacity", Json.Int s.queue_capacity);
      ("workers", Json.Int s.workers);
    ]
  in
  let latency =
    match s.latency with
    | None -> [ ("latency_ms", Json.Null) ]
    | Some q ->
        [
          ( "latency_ms",
            Json.Obj
              [
                ("count", Json.Int q.count);
                ("p50", Json.Float q.p50_ms);
                ("p90", Json.Float q.p90_ms);
                ("p99", Json.Float q.p99_ms);
                ("max", Json.Float q.max_ms);
              ] );
        ]
  in
  Json.Obj (base @ latency)
