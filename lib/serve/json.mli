(** Minimal JSON for the planning-service protocol.

    The repository deliberately depends only on the OCaml platform
    basics (see DESIGN.md, Dependencies), so the service speaks JSON
    through this ~200-line RFC 8259 subset instead of pulling in a
    parser dependency: objects, arrays, strings (with escapes and
    basic-multilingual-plane [\uXXXX] sequences), numbers, booleans
    and null.  Output is compact (single line, no trailing spaces) and
    deterministic — object fields print in construction order — so
    responses can be compared byte-for-byte in tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** pre-rendered JSON spliced verbatim into the output — used to
          embed {!Nocplan_core.Export} documents without re-parsing.
          Never produced by {!parse}. *)

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing non-whitespace is an error.
    Numbers without [.], [e] or [E] parse as [Int]; everything else as
    [Float]. *)

val to_string : t -> string
(** Compact, deterministic rendering.  [Raw] fragments are emitted
    verbatim; strings are escaped per RFC 8259. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)

(** {2 Typed field accessors} — [None] when the field is missing or of
    the wrong type. *)

val str_field : string -> t -> string option
val int_field : string -> t -> int option
val float_field : string -> t -> float option
(** Accepts both [Int] and [Float] fields. *)

val escape : string -> string
(** The body of a JSON string literal for [s] (no surrounding
    quotes). *)
