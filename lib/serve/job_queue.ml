type 'a t = {
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Job_queue.create: negative capacity";
  {
    capacity;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.mutex;
              wait ()
            end
      in
      wait ())

let drain_matching ?(limit = max_int) t pred =
  locked t (fun () ->
      if limit <= 0 || Queue.is_empty t.items then []
      else begin
        let kept = Queue.create () in
        let taken = ref [] in
        let n = ref 0 in
        Queue.iter
          (fun x ->
            if !n < limit && pred x then begin
              incr n;
              taken := x :: !taken
            end
            else Queue.push x kept)
          t.items;
        Queue.clear t.items;
        Queue.transfer kept t.items;
        List.rev !taken
      end)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)
let capacity t = t.capacity
