module Core = Nocplan_core

let log_src =
  Logs.Src.create "nocplan.serve" ~doc:"Planning service requests"

module Log = (val Logs.src_log log_src)

exception Expired
(* Raised by the cooperative deadline checks below; never escapes
   [run_job]. *)

type job = {
  req : Protocol.request;
  respond : string -> unit;
  enqueued_at : float;
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
}

type t = {
  queue : job Job_queue.t;
  cache : Table_cache.t;
  stats : Stats.t;
  mutable workers : unit Domain.t list;
  (* Requests admitted but not yet responded to, for [drain]. *)
  pending_mutex : Mutex.t;
  pending_cond : Condition.t;
  mutable pending : int;
  mutable stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Request execution                                                  *)

let snapshot t =
  Stats.snapshot t.stats ~cache_hits:(Table_cache.hits t.cache)
    ~cache_misses:(Table_cache.misses t.cache)
    ~queue_depth:(Job_queue.depth t.queue)
    ~workers:(List.length t.workers)

(* One sweep point, mirroring Planner.run_point: schedule, re-validate
   independently, record the peak power. *)
let point ~access system ~policy ~application ~power_limit ~reuse =
  let config =
    Core.Scheduler.config ~policy ~application ~power_limit ~reuse ()
  in
  let sched = Core.Scheduler.run ~access system config in
  let validated =
    match
      Core.Schedule.validate ~access system ~application ~power_limit ~reuse
        sched
    with
    | Ok () -> true
    | Error _ -> false
  in
  {
    Core.Planner.reuse;
    makespan = sched.Core.Schedule.makespan;
    peak_power = Core.Metrics.peak_power sched.Core.Schedule.entries;
    validated;
  }

let execute t (req : Protocol.request) ~check =
  match req.op with
  | Protocol.Metrics -> Ok (Stats.snapshot_json (snapshot t), `None)
  | Protocol.Plan | Protocol.Validate | Protocol.Sweep | Protocol.Anneal -> (
      let spec =
        match req.spec with
        | Some s -> s
        | None -> invalid_arg "Service.execute: planning request without spec"
      in
      check ();
      match Sysbuild.build spec with
      | Error msg -> Error (Protocol.Parse, msg)
      | Ok system -> (
          check ();
          let system, access, hit =
            Table_cache.find_or_build t.cache system
              ~application:req.application
          in
          let cache = if hit then `Hit else `Miss in
          check ();
          let power_limit =
            Option.map
              (fun pct -> Core.System.power_limit_of_pct system ~pct)
              req.power_pct
          in
          let all = List.length system.Core.System.processors in
          let policy = req.policy and application = req.application in
          match req.op with
          | Protocol.Metrics -> assert false
          | Protocol.Plan ->
              let reuse = Option.value req.reuse ~default:all in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let sched = Core.Scheduler.run ~access system config in
              (* Export documents end in a newline; the protocol is
                 one line per response, so splice them trimmed. *)
              Ok
                ( Json.Raw (String.trim (Core.Export.schedule_json system sched)),
                  cache )
          | Protocol.Validate ->
              let reuse = Option.value req.reuse ~default:all in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let sched = Core.Scheduler.run ~access system config in
              check ();
              let valid, violations =
                match
                  Core.Schedule.validate ~access system ~application
                    ~power_limit ~reuse sched
                with
                | Ok () -> (true, [])
                | Error vs ->
                    ( false,
                      List.map
                        (fun v ->
                          Json.String
                            (Fmt.str "%a" Core.Schedule.pp_violation v))
                        vs )
              in
              Ok
                ( Json.Obj
                    [
                      ("valid", Json.Bool valid);
                      ("makespan", Json.Int sched.Core.Schedule.makespan);
                      ("violations", Json.List violations);
                    ],
                  cache )
          | Protocol.Anneal ->
              let reuse = Option.value req.reuse ~default:all in
              let iterations = Option.value req.iterations ~default:400 in
              let seed =
                Int64.of_int (Option.value req.seed ~default:0x5A)
              in
              let chains = Option.value req.chains ~default:1 in
              let r =
                Core.Annealing.schedule ~policy ~application ~power_limit
                  ~iterations ~seed ~chains ~access ~reuse system
              in
              Ok
                ( Json.Obj
                    [
                      ( "makespan",
                        Json.Int
                          r.Core.Annealing.schedule.Core.Schedule.makespan );
                      ( "initial_makespan",
                        Json.Int r.Core.Annealing.initial_makespan );
                      ( "improvement_pct",
                        Json.Float
                          (Float.round
                             (Core.Annealing.improvement_pct r *. 100.)
                          /. 100.) );
                      ("evaluations", Json.Int r.Core.Annealing.evaluations);
                      ("accepted", Json.Int r.Core.Annealing.accepted);
                      ("chains", Json.Int r.Core.Annealing.chains);
                      ("exchanges", Json.Int r.Core.Annealing.exchanges);
                    ],
                  cache )
          | Protocol.Sweep ->
              let max_reuse =
                min all (Option.value req.max_reuse ~default:all)
              in
              let points =
                List.init (max_reuse + 1) (fun reuse ->
                    check ();
                    point ~access system ~policy ~application ~power_limit
                      ~reuse)
              in
              let sweep =
                {
                  Core.Planner.system_name =
                    system.Core.System.soc.Nocplan_itc02.Soc.name;
                  policy;
                  power_limit_pct = req.power_pct;
                  points;
                }
              in
              Ok (Json.Raw (String.trim (Core.Export.sweep_json sweep)), cache)))

(* ------------------------------------------------------------------ *)
(* Workers                                                            *)

let finish_pending t =
  Mutex.lock t.pending_mutex;
  t.pending <- t.pending - 1;
  Condition.broadcast t.pending_cond;
  Mutex.unlock t.pending_mutex

let run_job t job =
  let req = job.req in
  let check () =
    match job.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Expired
    | _ -> ()
  in
  let outcome, response =
    match execute t req ~check with
    | Ok (result, cache) ->
        let elapsed_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1e3 in
        ( Stats.Served,
          Protocol.ok_response ~id:req.id ~op:req.op ~cache ~elapsed_ms result
        )
    | Error (kind, msg) ->
        (Stats.Failed, Protocol.error_response ~id:req.id kind msg)
    | exception Expired ->
        ( Stats.Timed_out,
          Protocol.error_response ~id:req.id Protocol.Timeout
            "deadline exceeded" )
    | exception Core.Scheduler.Unschedulable msg ->
        ( Stats.Failed,
          Protocol.error_response ~id:req.id Protocol.Unschedulable msg )
    | exception Invalid_argument msg ->
        (Stats.Failed, Protocol.error_response ~id:req.id Protocol.Parse msg)
    | exception exn ->
        ( Stats.Failed,
          Protocol.error_response ~id:req.id Protocol.Internal
            (Printexc.to_string exn) )
  in
  let latency_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1e3 in
  Stats.record t.stats outcome ~latency_ms;
  Log.info (fun m ->
      m "%s %s in %.1f ms" (Protocol.op_label req.op)
        (match outcome with
        | Stats.Served -> "served"
        | Stats.Failed -> "failed"
        | Stats.Rejected -> "rejected"
        | Stats.Timed_out -> "timed out")
        latency_ms);
  (try job.respond response
   with exn ->
     Log.warn (fun m ->
         m "dropping response (client gone?): %s" (Printexc.to_string exn)));
  finish_pending t

let worker_loop t () =
  let rec loop () =
    match Job_queue.pop t.queue with
    | None -> ()
    | Some job ->
        run_job t job;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)

let create ?workers ?(queue_capacity = 64) ?(cache_capacity = 8) () =
  let recommended = Domain.recommended_domain_count () in
  let workers =
    match workers with
    | None -> max 1 (recommended - 1)
    | Some w ->
        if w < 1 then invalid_arg "Service.create: workers must be >= 1";
        (* Same rationale as Planner's domain clamp: oversubscribing
           domains only adds contention. *)
        max 1 (min w recommended)
  in
  let t =
    {
      queue = Job_queue.create ~capacity:queue_capacity;
      cache = Table_cache.create ~capacity:cache_capacity;
      stats = Stats.create ();
      workers = [];
      pending_mutex = Mutex.create ();
      pending_cond = Condition.create ();
      pending = 0;
      stopped = false;
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  Log.info (fun m ->
      m "service up: %d workers, queue %d, cache %d" workers queue_capacity
        cache_capacity);
  t

let handle_line t line respond =
  let now = Unix.gettimeofday () in
  match Protocol.parse_request line with
  | Error msg ->
      Stats.record t.stats Stats.Failed ~latency_ms:0.0;
      Log.warn (fun m -> m "bad request: %s" msg);
      respond (Protocol.error_response ~id:Json.Null Protocol.Parse msg)
  | Ok req -> (
      match req.Protocol.op with
      | Protocol.Metrics ->
          (* Served inline so observability survives planner overload. *)
          let elapsed_ms = (Unix.gettimeofday () -. now) *. 1e3 in
          Stats.record t.stats Stats.Served ~latency_ms:elapsed_ms;
          respond
            (Protocol.ok_response ~id:req.Protocol.id ~op:req.Protocol.op
               ~cache:`None ~elapsed_ms
               (Stats.snapshot_json (snapshot t)))
      | _ ->
          let deadline =
            Option.map (fun ms -> now +. (ms /. 1e3)) req.Protocol.deadline_ms
          in
          let job = { req; respond; enqueued_at = now; deadline } in
          Mutex.lock t.pending_mutex;
          t.pending <- t.pending + 1;
          Mutex.unlock t.pending_mutex;
          if not (Job_queue.push t.queue job) then begin
            finish_pending t;
            Stats.record t.stats Stats.Rejected ~latency_ms:0.0;
            Log.warn (fun m ->
                m "rejecting %s: queue full (depth %d)"
                  (Protocol.op_label req.Protocol.op)
                  (Job_queue.depth t.queue));
            respond
              (Protocol.error_response ~id:req.Protocol.id Protocol.Overload
                 "queue full, retry later")
          end)

let request t line =
  let result = ref None in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  handle_line t line (fun response ->
      Mutex.lock mutex;
      result := Some response;
      Condition.signal cond;
      Mutex.unlock mutex);
  Mutex.lock mutex;
  while !result = None do
    Condition.wait cond mutex
  done;
  let response = Option.get !result in
  Mutex.unlock mutex;
  response

let stats t = snapshot t
let worker_count t = List.length t.workers

let drain t =
  Mutex.lock t.pending_mutex;
  while t.pending > 0 do
    Condition.wait t.pending_cond t.pending_mutex
  done;
  Mutex.unlock t.pending_mutex

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    drain t;
    Job_queue.close t.queue;
    List.iter Domain.join t.workers;
    Log.info (fun m -> m "service stopped")
  end
