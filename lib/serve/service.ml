module Core = Nocplan_core
module Noc = Nocplan_noc
module Fault = Nocplan_fault
module Trace = Nocplan_obs.Trace
module Prom = Nocplan_obs.Prometheus

let log_src =
  Logs.Src.create "nocplan.serve" ~doc:"Planning service requests"

module Log = (val Logs.src_log log_src)

exception Expired
(* Raised by the cooperative deadline checks below; never escapes
   [run_job]. *)

type job = {
  req : Protocol.request;
  respond : string list -> unit;
  enqueued_at : float;
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  coalesce_key : string option;  (* None: this job never coalesces *)
  batch_key : string option;  (* None: this job never batches *)
}

type t = {
  queue : job Job_queue.t;
  cache : Table_cache.t;
  warm : Warm_start.t;
  inflight : job Inflight.t;
  coalescing : bool;
  batch_limit : int;  (* max jobs per batch pass; 1 disables batching *)
  shared : Core.Eval_cache.Shared.registry option;
  stats : Stats.t;
  created_at : float;
  (* Per-worker utilization, indexed by worker; written lock-free from
     the worker domains, read by the prometheus exposition. *)
  worker_busy_us : int Atomic.t array;
  worker_jobs : int Atomic.t array;
  mutable workers : unit Domain.t list;
  (* Requests admitted but not yet responded to, for [drain]. *)
  pending_mutex : Mutex.t;
  pending_cond : Condition.t;
  mutable pending : int;
  mutable stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Request execution                                                  *)

let snapshot t =
  let shared_cache_hits, shared_cache_misses =
    match t.shared with
    | None -> (0, 0)
    | Some r -> (Core.Eval_cache.Shared.hits r, Core.Eval_cache.Shared.misses r)
  in
  Stats.snapshot t.stats ~cache_hits:(Table_cache.hits t.cache)
    ~cache_misses:(Table_cache.misses t.cache)
    ~warm_hits:(Warm_start.hits t.warm)
    ~warm_misses:(Warm_start.misses t.warm) ~shared_cache_hits
    ~shared_cache_misses
    ~queue_depth:(Job_queue.depth t.queue)
    ~queue_capacity:(Job_queue.capacity t.queue)
    ~workers:(List.length t.workers)

(* Prometheus text exposition (format 0.0.4) over the same snapshot
   the [metrics] op serves.  When the latency reservoir is empty the
   summary carries no quantile samples — only [_count] — instead of
   fabricating zeros (see {!Stats.record_inline}). *)
let prometheus_text t =
  let s = snapshot t in
  let outcome label v = Prom.sample ~labels:[ ("outcome", label) ] v in
  let per_worker arr =
    Array.to_list
      (Array.mapi
         (fun i (a : int Atomic.t) ->
           ( i,
             Prom.sample
               ~labels:[ ("worker", string_of_int i) ]
               (float_of_int (Atomic.get a)) ))
         arr)
    |> List.map snd
  in
  let latency =
    let count =
      match s.Stats.latency with None -> 0 | Some q -> q.Stats.count
    in
    (match s.Stats.latency with
    | None -> []
    | Some q ->
        [
          Prom.sample ~labels:[ ("quantile", "0.5") ] q.Stats.p50_ms;
          Prom.sample ~labels:[ ("quantile", "0.9") ] q.Stats.p90_ms;
          Prom.sample ~labels:[ ("quantile", "0.99") ] q.Stats.p99_ms;
          Prom.sample ~labels:[ ("quantile", "1") ] q.Stats.max_ms;
        ])
    @ [ Prom.sample ~suffix:"_count" (float_of_int count) ]
  in
  Prom.render
    [
      Prom.metric ~help:"Requests by outcome." Prom.Counter
        ~name:"nocplan_requests_total"
        [
          outcome "served" (float_of_int s.Stats.served);
          outcome "failed" (float_of_int s.Stats.failed);
          outcome "rejected" (float_of_int s.Stats.rejected);
          outcome "timeout" (float_of_int s.Stats.timeouts);
        ];
      Prom.metric ~help:"Access-table cache hits." Prom.Counter
        ~name:"nocplan_cache_hits_total"
        [ Prom.sample (float_of_int s.Stats.cache_hits) ];
      Prom.metric ~help:"Access-table cache misses." Prom.Counter
        ~name:"nocplan_cache_misses_total"
        [ Prom.sample (float_of_int s.Stats.cache_misses) ];
      Prom.metric
        ~help:"Requests served by another request's in-flight solve."
        Prom.Counter ~name:"nocplan_coalesced_total"
        (List.map
           (fun (op, n) ->
             Prom.sample ~labels:[ ("op", op) ] (float_of_int n))
           s.Stats.coalesced);
      Prom.metric ~help:"Fault targets handled by replan requests."
        Prom.Counter ~name:"nocplan_fault_events_total"
        [ Prom.sample (float_of_int s.Stats.fault_events) ];
      Prom.metric ~help:"Replan requests that reached fault recovery."
        Prom.Counter ~name:"nocplan_fault_replans_total"
        [ Prom.sample (float_of_int s.Stats.fault_replans) ];
      Prom.metric
        ~help:"Modules left without a test path by replan requests."
        Prom.Counter ~name:"nocplan_fault_abandoned_total"
        [ Prom.sample (float_of_int s.Stats.fault_abandoned) ];
      Prom.metric ~help:"Planning-backend solve attempts (race: one per racer)."
        Prom.Counter ~name:"nocplan_backend_solves_total"
        (List.map
           (fun (b, n) ->
             Prom.sample ~labels:[ ("backend", b) ] (float_of_int n))
           s.Stats.backend_solves);
      Prom.metric
        ~help:"Plans returned to clients, by producing backend (race: winner)."
        Prom.Counter ~name:"nocplan_backend_wins_total"
        (List.map
           (fun (b, n) ->
             Prom.sample ~labels:[ ("backend", b) ] (float_of_int n))
           s.Stats.backend_wins);
      Prom.metric
        ~help:"Total planning-backend solve wall-clock, milliseconds."
        Prom.Counter ~name:"nocplan_backend_latency_ms_total"
        (List.map
           (fun (b, ms) -> Prom.sample ~labels:[ ("backend", b) ] ms)
           s.Stats.backend_latency_ms);
      Prom.metric ~help:"Anneal searches seeded from the warm-start cache."
        Prom.Counter ~name:"nocplan_warm_hits_total"
        [ Prom.sample (float_of_int s.Stats.warm_hits) ];
      Prom.metric ~help:"Anneal searches started cold." Prom.Counter
        ~name:"nocplan_warm_misses_total"
        [ Prom.sample (float_of_int s.Stats.warm_misses) ];
      Prom.metric ~help:"Requests served through shared batch passes."
        Prom.Counter ~name:"nocplan_batched_total"
        [ Prom.sample (float_of_int s.Stats.batched) ];
      Prom.metric
        ~help:"Solves that resumed a resident shared evaluation cache."
        Prom.Counter ~name:"nocplan_shared_cache_hits_total"
        [ Prom.sample (float_of_int s.Stats.shared_cache_hits) ];
      Prom.metric ~help:"Jobs waiting in the admission queue." Prom.Gauge
        ~name:"nocplan_queue_depth"
        [ Prom.sample (float_of_int s.Stats.queue_depth) ];
      Prom.metric
        ~help:"Admission queue bound; depth/capacity is queue pressure."
        Prom.Gauge ~name:"nocplan_queue_capacity"
        [ Prom.sample (float_of_int s.Stats.queue_capacity) ];
      Prom.metric ~help:"Planning worker domains." Prom.Gauge
        ~name:"nocplan_workers"
        [ Prom.sample (float_of_int s.Stats.workers) ];
      Prom.metric ~help:"Seconds since the service started." Prom.Gauge
        ~name:"nocplan_uptime_seconds"
        [ Prom.sample (Unix.gettimeofday () -. t.created_at) ];
      Prom.metric ~help:"Jobs completed, per worker." Prom.Counter
        ~name:"nocplan_worker_jobs_total" (per_worker t.worker_jobs);
      Prom.metric
        ~help:"Microseconds spent executing jobs, per worker." Prom.Counter
        ~name:"nocplan_worker_busy_microseconds_total"
        (per_worker t.worker_busy_us);
      Prom.metric
        ~help:
          "End-to-end latency of queued planning requests (enqueue to \
           response)." Prom.Summary ~name:"nocplan_request_latency_ms" latency;
    ]

(* One sweep point, mirroring Planner.run_point: schedule, re-validate
   independently, record the peak power. *)
let point ~access system ~policy ~application ~power_limit ~reuse =
  let config =
    Core.Scheduler.config ~policy ~application ~power_limit ~reuse ()
  in
  let sched = Core.Scheduler.run ~access system config in
  let validated =
    match
      Core.Schedule.validate ~access system ~application ~power_limit ~reuse
        sched
    with
    | Ok () -> true
    | Error _ -> false
  in
  {
    Core.Planner.reuse;
    makespan = sched.Core.Schedule.makespan;
    peak_power = Core.Metrics.peak_power sched.Core.Schedule.entries;
    validated;
  }

(* The per-instance key covers exactly what cross-request solver state
   (warm-start traces, shared evaluation caches) depends on: the
   physical system (via the table-cache key — a cache hit hands back
   the one shared instance) and the configuration fields
   [Scheduler.trace_matches] compares.  Search-shape parameters
   (iterations, seed, chains) are deliberately absent: any search of
   the same instance can resume from any other's work. *)
let instance_key system ~application ~policy ~power_pct ~reuse =
  Printf.sprintf "%s|%s|%s|%d"
    (Table_cache.key system ~application)
    (match policy with
    | Core.Scheduler.Greedy -> "greedy"
    | Core.Scheduler.Lookahead -> "lookahead")
    (match power_pct with
    | None -> "-"
    | Some pct -> Printf.sprintf "%h" pct)
    reuse

(* Run one solve with exclusive ownership of the shared evaluation
   cache registered under [key] (a fresh one on a miss), returning the
   cache to the registry afterwards — also on Unschedulable/Expired,
   which leave the cache valid.  A cache rebased onto a
   placement-mutated system (an accepted anneal placement move) is
   dropped instead: no later request resolves to that instance. *)
let with_shared_cache t ~key ~access system config f =
  match t.shared with
  | None -> f None
  | Some registry ->
      let cache, hit =
        Core.Eval_cache.Shared.checkout registry ~key ~access system config
      in
      if hit && Trace.enabled () then Trace.instant "cache.shared_hit";
      Fun.protect
        ~finally:(fun () ->
          if Core.Eval_cache.system cache == system then
            Core.Eval_cache.Shared.checkin registry ~key cache)
        (fun () -> f (Some cache))

(* One engine run on the configured (heuristic) order, through the
   shared cache when the registry is on.  [Eval_cache.evaluate] is
   byte-identical to [Scheduler.run] — with no explicit order the
   scheduler visits [Priority.order] — so repeats of a configuration
   across requests become exact cache hits that skip the run
   entirely, at no observable difference in the response. *)
let heuristic_schedule t ~key ~access system config ~reuse =
  with_shared_cache t ~key ~access system config (function
    | None -> Core.Scheduler.run ~access system config
    | Some cache ->
        let order = Array.of_list (Core.Priority.order system ~reuse) in
        Core.Eval_cache.schedule cache order)

(* Dispatch one plan/validate solve to the requested backend and name
   the solver that produced the plan.  The default (greedy) path keeps
   going through the shared evaluation cache — exact repeats skip the
   engine — while "binpack" solves directly and "race" runs every
   registered backend on its own domain and keeps the best valid plan.
   Every attempt is recorded per backend (a race records one per
   racer); the win counter tracks whose plan clients actually get. *)
let backend_schedule t ~key ~access system config ~reuse backend =
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let sched = f () in
    Stats.record_backend t.stats ~backend:name
      ~latency_ms:((Unix.gettimeofday () -. t0) *. 1e3);
    sched
  in
  match backend with
  | None | Some "greedy" ->
      let sched =
        timed "greedy" (fun () ->
            heuristic_schedule t ~key ~access system config ~reuse)
      in
      Stats.record_backend_win t.stats ~backend:"greedy";
      (sched, "greedy")
  | Some "race" ->
      let outcome =
        Core.Backend.race ~clock:Unix.gettimeofday ~access system config
      in
      List.iter
        (fun (a : Core.Backend.attempt) ->
          Stats.record_backend t.stats ~backend:a.Core.Backend.backend
            ~latency_ms:(a.Core.Backend.latency_s *. 1e3))
        outcome.Core.Backend.attempts;
      Stats.record_backend_win t.stats
        ~backend:outcome.Core.Backend.winner;
      (outcome.Core.Backend.schedule, outcome.Core.Backend.winner)
  | Some name -> (
      (* Parse already refused unknown names; a registry change
         between parse and execution surfaces as a parse error. *)
      match Core.Backend.find name with
      | None -> invalid_arg (Printf.sprintf "unknown backend %S" name)
      | Some b ->
          let sched =
            timed name (fun () -> Core.Backend.solve b ~access system config)
          in
          Stats.record_backend_win t.stats ~backend:name;
          (sched, name))

(* [execute] answers [Ok (result, cache, backend)]: the payload, the
   access-table cache verdict, and — for plan/validate — the name of
   the planning backend that produced the plan, threaded all the way
   into the response envelope (batched and coalesced deliveries
   included). *)
let execute t (req : Protocol.request) ~check =
  match req.op with
  | Protocol.Metrics -> Ok (Stats.snapshot_json (snapshot t), `None, None)
  | Protocol.Prometheus -> Ok (Json.String (prometheus_text t), `None, None)
  | Protocol.Plan | Protocol.Validate | Protocol.Sweep | Protocol.Anneal
  | Protocol.Replan | Protocol.Preempt -> (
      let spec =
        match req.spec with
        | Some s -> s
        | None -> invalid_arg "Service.execute: planning request without spec"
      in
      check ();
      match Trace.span "serve.build" (fun () -> Sysbuild.build spec) with
      | Error msg -> Error (Protocol.Parse, msg)
      | Ok system -> (
          check ();
          let system, access, hit =
            Trace.span "serve.table" (fun () ->
                Table_cache.find_or_build t.cache system
                  ~application:req.application)
          in
          let cache = if hit then `Hit else `Miss in
          if Trace.enabled () then
            Trace.instant "serve.cache"
              ~attrs:[ ("hit", Trace.Bool hit) ];
          check ();
          let power_limit =
            Option.map
              (fun pct -> Core.System.power_limit_of_pct system ~pct)
              req.power_pct
          in
          let all = List.length system.Core.System.processors in
          let policy = req.policy and application = req.application in
          Trace.span "serve.solve"
            ~attrs:[ ("op", Trace.String (Protocol.op_label req.op)) ]
          @@ fun () ->
          match req.op with
          | Protocol.Metrics | Protocol.Prometheus -> assert false
          | Protocol.Plan ->
              let reuse = Option.value req.reuse ~default:all in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let key =
                instance_key system ~application ~policy
                  ~power_pct:req.power_pct ~reuse
              in
              let sched, backend =
                backend_schedule t ~key ~access system config ~reuse
                  req.backend
              in
              (* Export documents end in a newline; the protocol is
                 one line per response, so splice them trimmed. *)
              Ok
                ( Json.Raw (String.trim (Core.Export.schedule_json system sched)),
                  cache,
                  Some backend )
          | Protocol.Validate ->
              let reuse = Option.value req.reuse ~default:all in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let key =
                instance_key system ~application ~policy
                  ~power_pct:req.power_pct ~reuse
              in
              let sched, backend =
                backend_schedule t ~key ~access system config ~reuse
                  req.backend
              in
              check ();
              let valid, violations =
                match
                  Core.Schedule.validate ~access system ~application
                    ~power_limit ~reuse sched
                with
                | Ok () -> (true, [])
                | Error vs ->
                    ( false,
                      List.map
                        (fun v ->
                          Json.String
                            (Fmt.str "%a" Core.Schedule.pp_violation v))
                        vs )
              in
              Ok
                ( Json.Obj
                    [
                      ("valid", Json.Bool valid);
                      ("makespan", Json.Int sched.Core.Schedule.makespan);
                      ("violations", Json.List violations);
                    ],
                  cache,
                  Some backend )
          | Protocol.Anneal ->
              let reuse = Option.value req.reuse ~default:all in
              let iterations = Option.value req.iterations ~default:400 in
              let seed =
                Int64.of_int (Option.value req.seed ~default:0x5A)
              in
              let chains = Option.value req.chains ~default:1 in
              let placement_moves =
                Option.value req.placement_moves ~default:0.0
              in
              let warm_key =
                instance_key system ~application ~policy
                  ~power_pct:req.power_pct ~reuse
              in
              (* "warm": false searches cold on request — the server's
                 warm-start LRU is skipped (the result is still noted
                 below, so later warm requests benefit). *)
              let warm_start =
                if Option.value req.warm ~default:true then
                  Warm_start.find t.warm ~key:warm_key
                else None
              in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let r =
                (* Chain 0 borrows the shared cache for the search:
                   prefix traces left by earlier requests on this
                   instance serve its evaluations, and this search's
                   traces stay behind for the next one.  Results are
                   unaffected (cached evaluation is byte-identical). *)
                with_shared_cache t ~key:warm_key ~access system config
                  (fun eval_cache ->
                    Core.Annealing.schedule ~policy ~application ~power_limit
                      ~iterations ~seed ~chains ~placement_moves ~access
                      ?warm_start ?eval_cache ~reuse system)
              in
              (* A placement-mutated winner belongs to a system no
                 later request will hold physically — only traces of
                 the cached instance are worth remembering. *)
              if r.Core.Annealing.system == system then
                Warm_start.note t.warm ~key:warm_key
                  r.Core.Annealing.best_trace;
              Ok
                ( Json.Obj
                    [
                      ( "makespan",
                        Json.Int
                          r.Core.Annealing.schedule.Core.Schedule.makespan );
                      ( "initial_makespan",
                        Json.Int r.Core.Annealing.initial_makespan );
                      ( "improvement_pct",
                        Json.Float
                          (Float.round
                             (Core.Annealing.improvement_pct r *. 100.)
                          /. 100.) );
                      ( "warm_start",
                        Json.Bool r.Core.Annealing.warm_started );
                      ("evaluations", Json.Int r.Core.Annealing.evaluations);
                      ("accepted", Json.Int r.Core.Annealing.accepted);
                      ( "placement_evals",
                        Json.Int r.Core.Annealing.placement_evals );
                      ( "placement_accepted",
                        Json.Int r.Core.Annealing.placement_accepted );
                      ("chains", Json.Int r.Core.Annealing.chains);
                      ("exchanges", Json.Int r.Core.Annealing.exchanges);
                    ],
                  cache,
                  None )
          | Protocol.Preempt -> (
              let reuse = Option.value req.reuse ~default:all in
              let max_sessions = Option.value req.max_sessions ~default:3 in
              let pconfig =
                Core.Preemptive.config ~application ~power_limit ~max_sessions
                  ~reuse ()
              in
              match Core.Preemptive.schedule system pconfig with
              | plan ->
                  check ();
                  let valid =
                    match
                      Core.Preemptive.validate system ~application ~power_limit
                        ~reuse plan
                    with
                    | Ok () -> true
                    | Error _ -> false
                  in
                  Ok
                    ( Json.Obj
                        [
                          ( "makespan",
                            Json.Int plan.Core.Preemptive.makespan );
                          ( "sessions",
                            Json.Int
                              (List.length plan.Core.Preemptive.sessions) );
                          ( "modules",
                            Json.Int
                              (List.length (Core.System.module_ids system)) );
                          ("max_sessions", Json.Int max_sessions);
                          ("valid", Json.Bool valid);
                        ],
                      cache,
                      None )
              | exception Invalid_argument msg ->
                  Error (Protocol.Invalid, msg))
          | Protocol.Replan -> (
              let reuse = Option.value req.reuse ~default:all in
              let at = Option.value req.at ~default:0 in
              let topology = system.Core.System.topology in
              let router_ob =
                List.find_opt
                  (fun c -> not (Noc.Topology.in_bounds topology c))
                  req.fault_routers
              in
              let link_ob =
                List.find_opt
                  (fun l ->
                    List.exists
                      (fun c -> not (Noc.Topology.in_bounds topology c))
                      (Noc.Link.routers l))
                  req.fault_links
              in
              match (router_ob, link_ob) with
              | Some c, _ ->
                  Error
                    ( Protocol.Invalid,
                      Fmt.str "failed router %a is outside the mesh"
                        Noc.Coord.pp c )
              | None, Some l ->
                  Error
                    ( Protocol.Invalid,
                      Fmt.str "failed link %a is outside the mesh" Noc.Link.pp
                        l )
              | None, None ->
                  let config =
                    Core.Scheduler.config ~policy ~application ~power_limit
                      ~reuse ()
                  in
                  let baseline = Core.Scheduler.run ~access system config in
                  check ();
                  let faults =
                    Fault.Detour.fault_set ~routers:req.fault_routers
                      ~links:req.fault_links ()
                  in
                  let outcome =
                    Fault.Recover.after ~policy ~application ~power_limit
                      ~reuse ~at ~faults system baseline
                  in
                  Stats.record_fault t.stats
                    ~events:(Fault.Detour.fault_count faults)
                    ~abandoned:(List.length outcome.Fault.Recover.abandoned);
                  check ();
                  let valid =
                    match
                      Fault.Recover.validate ~application ~reuse ~at ~faults
                        system outcome
                    with
                    | Ok () -> true
                    | Error _ -> false
                  in
                  Ok
                    ( Json.Obj
                        [
                          ( "baseline_makespan",
                            Json.Int baseline.Core.Schedule.makespan );
                          ("makespan", Json.Int outcome.Fault.Recover.makespan);
                          ( "kept",
                            Json.Int (List.length outcome.Fault.Recover.kept)
                          );
                          ( "voided",
                            Json.Int
                              (List.length outcome.Fault.Recover.voided) );
                          ( "replanned",
                            Json.Int
                              (List.length outcome.Fault.Recover.replanned) );
                          ( "abandoned",
                            Json.List
                              (List.map
                                 (fun id -> Json.Int id)
                                 outcome.Fault.Recover.abandoned) );
                          ( "availability",
                            Json.Float outcome.Fault.Recover.availability );
                          ("valid", Json.Bool valid);
                        ],
                      cache,
                      None ))
          | Protocol.Sweep ->
              let max_reuse =
                min all (Option.value req.max_reuse ~default:all)
              in
              let points =
                List.init (max_reuse + 1) (fun reuse ->
                    check ();
                    point ~access system ~policy ~application ~power_limit
                      ~reuse)
              in
              let sweep =
                {
                  Core.Planner.system_name =
                    system.Core.System.soc.Nocplan_itc02.Soc.name;
                  policy;
                  power_limit_pct = req.power_pct;
                  points;
                }
              in
              Ok
                ( Json.Raw (String.trim (Core.Export.sweep_json sweep)),
                  cache,
                  None )))

(* ------------------------------------------------------------------ *)
(* Workers                                                            *)

let finish_pending t =
  Mutex.lock t.pending_mutex;
  t.pending <- t.pending - 1;
  Condition.broadcast t.pending_cond;
  Mutex.unlock t.pending_mutex

(* Render the shared verdict into one job's own envelope (its [id],
   its [elapsed_ms], its [coalesced] marker), record its outcome and
   answer it.  Called once for the job that ran the solve and once per
   request that coalesced onto it. *)
let deliver t ~coalesced ?batch_size job verdict =
  let req = job.req in
  let outcome, response =
    match verdict with
    | `Good (result, cache, backend) ->
        let elapsed_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1e3 in
        ( Stats.Served,
          Protocol.ok_response ~id:req.id ~op:req.op ~cache ~coalesced
            ?backend ?batch_size ~elapsed_ms result )
    | `Bad (kind, msg) ->
        let outcome =
          match kind with
          | Protocol.Timeout -> Stats.Timed_out
          | _ -> Stats.Failed
        in
        (outcome, [ Protocol.error_response ~id:req.id kind msg ])
  in
  let latency_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1e3 in
  Stats.record t.stats outcome ~latency_ms;
  if coalesced then
    Stats.record_coalesced t.stats ~op:(Protocol.op_label req.op);
  Log.info (fun m ->
      m "%s %s%s in %.1f ms" (Protocol.op_label req.op)
        (match outcome with
        | Stats.Served -> "served"
        | Stats.Failed -> "failed"
        | Stats.Rejected -> "rejected"
        | Stats.Timed_out -> "timed out")
        (if coalesced then " (coalesced)" else "")
        latency_ms);
  (try job.respond response
   with exn ->
     Log.warn (fun m ->
         m "dropping response (client gone?): %s" (Printexc.to_string exn)));
  finish_pending t

let run_job t ~worker ?batch_size job =
  let req = job.req in
  let started_at = Unix.gettimeofday () in
  let check () =
    match job.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Expired
    | _ -> ()
  in
  if Trace.enabled () then
    Trace.begin_span "serve.request"
      ~attrs:
        [
          ("op", Trace.String (Protocol.op_label req.op));
          ("worker", Trace.Int worker);
          ("queue_wait_ms", Trace.Float ((started_at -. job.enqueued_at) *. 1e3));
        ];
  let verdict =
    match execute t req ~check with
    | Ok (result, cache, backend) -> `Good (result, cache, backend)
    | Error (kind, msg) -> `Bad (kind, msg)
    | exception Expired -> `Bad (Protocol.Timeout, "deadline exceeded")
    | exception Core.Scheduler.Unschedulable msg ->
        `Bad (Protocol.Unschedulable, msg)
    | exception Invalid_argument msg -> `Bad (Protocol.Parse, msg)
    | exception exn -> `Bad (Protocol.Internal, Printexc.to_string exn)
  in
  let now = Unix.gettimeofday () in
  Atomic.fetch_and_add t.worker_busy_us.(worker)
    (int_of_float ((now -. started_at) *. 1e6))
  |> ignore;
  Atomic.incr t.worker_jobs.(worker);
  if Trace.enabled () then
    Trace.end_span "serve.request"
      ~attrs:
        [
          ( "outcome",
            Trace.String
              (match verdict with
              | `Good _ -> "served"
              | `Bad (Protocol.Timeout, _) -> "timeout"
              | `Bad _ -> "failed") );
        ];
  (* Release the key BEFORE answering anyone: once a client has seen
     this verdict it may immediately send the same request again, and
     that request must become a fresh solve (with a now-warm cache),
     not attach to a flight that already finished. *)
  let waiters =
    match job.coalesce_key with
    | None -> []
    | Some key -> Inflight.release t.inflight ~key
  in
  deliver t ~coalesced:false ?batch_size job verdict;
  List.iter (fun waiter -> deliver t ~coalesced:true waiter verdict) waiters

(* After popping a job, pull every queued request compatible with it
   (same {!Batch.key}) onto this worker's pass and run them back to
   back, each answered under its own envelope.  Consecutive execution
   on one worker keeps the instance's shared state — access table,
   shared evaluation cache, warm-start entries — checked out once per
   pass in the common case instead of bouncing between workers. *)
let worker_loop t worker () =
  let rec loop () =
    match Job_queue.pop t.queue with
    | None -> ()
    | Some job ->
        (match job.batch_key with
        | Some key when t.batch_limit > 1 -> (
            let followers =
              Job_queue.drain_matching ~limit:(t.batch_limit - 1) t.queue
                (fun j ->
                  match j.batch_key with
                  | Some k -> String.equal k key
                  | None -> false)
            in
            match followers with
            | [] -> run_job t ~worker job
            | _ :: _ ->
                let group = job :: followers in
                let size = List.length group in
                Stats.record_batch t.stats ~size;
                Trace.span "serve.batch"
                  ~attrs:
                    [ ("size", Trace.Int size); ("worker", Trace.Int worker) ]
                  (fun () ->
                    List.iter
                      (fun j -> run_job t ~worker ~batch_size:size j)
                      group))
        | _ -> run_job t ~worker job);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)

let create ?workers ?(queue_capacity = 64) ?(cache_capacity = 8)
    ?(warm_capacity = 32) ?(coalescing = true) ?(batching = true)
    ?(batch_limit = 16) ?(shared_capacity = 8) () =
  if batch_limit < 2 then
    invalid_arg "Service.create: batch_limit must be >= 2";
  if shared_capacity < 0 then
    invalid_arg "Service.create: shared_capacity must be >= 0";
  let batch_limit = if batching then batch_limit else 1 in
  let recommended = Domain.recommended_domain_count () in
  let workers =
    match workers with
    | None -> max 1 (recommended - 1)
    | Some w ->
        if w < 1 then invalid_arg "Service.create: workers must be >= 1";
        (* Same rationale as Planner's domain clamp: oversubscribing
           domains only adds contention. *)
        max 1 (min w recommended)
  in
  let t =
    {
      queue = Job_queue.create ~capacity:queue_capacity;
      cache = Table_cache.create ~capacity:cache_capacity;
      warm = Warm_start.create ~capacity:warm_capacity;
      inflight = Inflight.create ();
      coalescing;
      batch_limit;
      shared =
        (if shared_capacity = 0 then None
         else Some (Core.Eval_cache.Shared.registry ~capacity:shared_capacity ()));
      stats = Stats.create ();
      created_at = Unix.gettimeofday ();
      worker_busy_us = Array.init workers (fun _ -> Atomic.make 0);
      worker_jobs = Array.init workers (fun _ -> Atomic.make 0);
      workers = [];
      pending_mutex = Mutex.create ();
      pending_cond = Condition.create ();
      pending = 0;
      stopped = false;
    }
  in
  t.workers <- List.init workers (fun i -> Domain.spawn (worker_loop t i));
  Log.info (fun m ->
      m "service up: %d workers, queue %d, cache %d" workers queue_capacity
        cache_capacity);
  t

let handle_line ?(read_only = false) t line respond =
  let now = Unix.gettimeofday () in
  match Protocol.parse_request line with
  | Error (kind, msg) ->
      Stats.record t.stats Stats.Failed ~latency_ms:0.0;
      Log.warn (fun m -> m "bad request: %s" msg);
      respond [ Protocol.error_response ~id:Json.Null kind msg ]
  | Ok req -> (
      if Trace.enabled () then
        Trace.instant "serve.admit"
          ~attrs:
            [
              ("op", Trace.String (Protocol.op_label req.Protocol.op));
              ("queue_depth", Trace.Int (Job_queue.depth t.queue));
            ];
      match req.Protocol.op with
      | (Protocol.Metrics | Protocol.Prometheus) as op ->
          (* Served inline so observability survives planner overload
             — and read-only listeners: scraping never needs write
             access.  Recorded first so the snapshot being rendered
             already counts this request. *)
          Stats.record_inline t.stats
            ~latency_ms:((Unix.gettimeofday () -. now) *. 1e3);
          let result =
            match op with
            | Protocol.Metrics -> Stats.snapshot_json (snapshot t)
            | _ -> Json.String (prometheus_text t)
          in
          let elapsed_ms = (Unix.gettimeofday () -. now) *. 1e3 in
          respond
            (Protocol.ok_response ~id:req.Protocol.id ~op ~cache:`None
               ~elapsed_ms result)
      | _ when read_only ->
          Stats.record t.stats Stats.Rejected ~latency_ms:0.0;
          Log.warn (fun m ->
              m "rejecting %s: read-only listener"
                (Protocol.op_label req.Protocol.op));
          respond
            [
              Protocol.error_response ~id:req.Protocol.id Protocol.Readonly
                "read-only listener: planning ops are not accepted here";
            ]
      | _ -> (
          let deadline =
            Option.map (fun ms -> now +. (ms /. 1e3)) req.Protocol.deadline_ms
          in
          let coalesce_key =
            if t.coalescing then Protocol.coalesce_key req else None
          in
          let batch_key = if t.batch_limit > 1 then Batch.key req else None in
          let job =
            { req; respond; enqueued_at = now; deadline; coalesce_key; batch_key }
          in
          Mutex.lock t.pending_mutex;
          t.pending <- t.pending + 1;
          Mutex.unlock t.pending_mutex;
          let admit_leader () =
            if not (Job_queue.push t.queue job) then begin
              (* The key (if any) dies with its rejected leader:
                 whoever attached in the meantime is bounced too,
                 each under its own envelope. *)
              let bounced =
                match coalesce_key with
                | None -> [ job ]
                | Some key -> job :: Inflight.release t.inflight ~key
              in
              Log.warn (fun m ->
                  m "rejecting %s: queue full (depth %d, %d bounced)"
                    (Protocol.op_label req.Protocol.op)
                    (Job_queue.depth t.queue)
                    (List.length bounced));
              List.iter
                (fun j ->
                  Stats.record t.stats Stats.Rejected ~latency_ms:0.0;
                  (try
                     j.respond
                       [
                         Protocol.error_response ~id:j.req.Protocol.id
                           Protocol.Overload "queue full, retry later";
                       ]
                   with exn ->
                     Log.warn (fun m ->
                         m "dropping rejection (client gone?): %s"
                           (Printexc.to_string exn)));
                  finish_pending t)
                bounced
            end
          in
          match coalesce_key with
          | None -> admit_leader ()
          | Some key -> (
              match Inflight.claim t.inflight ~key job with
              | `Leader -> admit_leader ()
              | `Attached ->
                  (* Parked on the identical in-flight request; the
                     leader's worker will answer us. *)
                  if Trace.enabled () then
                    Trace.instant "serve.coalesce"
                      ~attrs:
                        [
                          ( "op",
                            Trace.String (Protocol.op_label req.Protocol.op) );
                        ])))

let request ?read_only t line =
  let result = ref None in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  handle_line ?read_only t line (fun chunks ->
      Mutex.lock mutex;
      result := Some (String.concat "" chunks);
      Condition.signal cond;
      Mutex.unlock mutex);
  Mutex.lock mutex;
  while !result = None do
    Condition.wait cond mutex
  done;
  let response = Option.get !result in
  Mutex.unlock mutex;
  response

let stats t = snapshot t
let worker_count t = List.length t.workers

let drain t =
  Mutex.lock t.pending_mutex;
  while t.pending > 0 do
    Condition.wait t.pending_cond t.pending_mutex
  done;
  Mutex.unlock t.pending_mutex

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    drain t;
    Job_queue.close t.queue;
    List.iter Domain.join t.workers;
    Log.info (fun m -> m "service stopped")
  end
