module Itc02 = Nocplan_itc02
module Noc = Nocplan_noc
module Proc = Nocplan_proc
module Core = Nocplan_core

type spec = {
  system : string;
  soc_text : string option;
  width : int option;
  height : int option;
  leons : int;
  plasmas : int;
}

let spec ?soc_text ?width ?height ?(leons = 0) ?(plasmas = 0) system =
  { system; soc_text; width; height; leons; plasmas }

(* Builtin systems are immutable once built (the serve path already
   hands one shared instance per fingerprint to every request through
   [Table_cache]), so build each at most once per process: repeated
   construction cost more than a hot-table solve.  The mutex guards
   first-build races between worker domains. *)
let builtin_mutex = Mutex.create ()
let builtin_built : (string, Core.System.t) Hashtbl.t = Hashtbl.create 8

let builtin_system name =
  match List.assoc_opt name Core.Experiments.builders with
  | None -> None
  | Some build ->
      Mutex.lock builtin_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock builtin_mutex)
        (fun () ->
          match Hashtbl.find_opt builtin_built name with
          | Some system -> Some system
          | None ->
              let system = build () in
              Hashtbl.add builtin_built name system;
              Some system)

let assemble ~soc ~width ~height ~leons ~plasmas =
  if leons < 0 || plasmas < 0 then
    invalid_arg "Sysbuild.assemble: negative processor count";
  let processors =
    List.init leons (fun _ -> Proc.Processor.leon ~id:1)
    @ List.init plasmas (fun _ -> Proc.Processor.plasma ~id:1)
  in
  let modules = Itc02.Soc.module_count soc + leons + plasmas in
  let width, height =
    match (width, height) with
    | Some w, Some h -> (w, h)
    | _ ->
        (* Smallest near-square mesh covering one module per tile when
           possible. *)
        let side = int_of_float (ceil (sqrt (float_of_int modules))) in
        (side, side)
  in
  let topology = Noc.Topology.make ~width ~height in
  let input = Noc.Coord.make ~x:0 ~y:0 in
  let output = Noc.Coord.make ~x:(width - 1) ~y:(height - 1) in
  Core.System.build ~soc ~topology ~processors ~io_inputs:[ input ]
    ~io_outputs:[ output ] ()

let build s =
  let assemble_soc soc =
    match
      assemble ~soc ~width:s.width ~height:s.height ~leons:s.leons
        ~plasmas:s.plasmas
    with
    | system -> Ok system
    | exception Invalid_argument msg -> Error msg
  in
  match s.soc_text with
  | Some text -> (
      match Itc02.Parser.parse text with
      | Ok soc -> assemble_soc soc
      | Error e -> Error (Fmt.str "inline description: %a" Itc02.Parser.pp_error e))
  | None -> (
      match builtin_system s.system with
      | Some system -> Ok system
      | None -> (
          match Itc02.Benchmarks.find s.system with
          | Some soc -> assemble_soc soc
          | None ->
              Error
                (Fmt.str
                   "%s is neither a builtin system (%s) nor a corpus \
                    benchmark (%s)"
                   s.system
                   (String.concat ", " (List.map fst Core.Experiments.builders))
                   (String.concat ", " Itc02.Benchmarks.names))))
