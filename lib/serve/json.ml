type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_literal f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'
  | Raw s -> Buffer.add_string b s

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string                   *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 b code =
    (* Encode one Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let hi = hex4 () in
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* Surrogate pair: expect \uDC00-\uDFFF next. *)
                if
                  !pos + 2 <= n
                  && text.[!pos] = '\\'
                  && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
                  add_utf8 b
                    (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else fail "unpaired surrogate"
              end
              else add_utf8 b hi
          | _ -> fail "bad escape character");
          go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match text.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let s = String.sub text start (!pos - start) in
    if !is_float then Float (float_of_string s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> Float (float_of_string s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str_field key v =
  match member key v with Some (String s) -> Some s | _ -> None

let int_field key v =
  match member key v with Some (Int i) -> Some i | _ -> None

let float_field key v =
  match member key v with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None
