module Noc = Nocplan_noc
module Core = Nocplan_core

let overlap (a : Core.Schedule.entry) (b : Core.Schedule.entry) =
  (* Half-open windows [start, finish): back-to-back tests may share
     resources. *)
  a.Core.Schedule.start < b.Core.Schedule.finish
  && b.Core.Schedule.start < a.Core.Schedule.finish

let schedule_invariant_errors ?(power_limit = None) ?modules system
    (s : Core.Schedule.t) =
  let errors = ref [] in
  let fail fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let entries = Array.of_list s.Core.Schedule.entries in
  (* 1. Every module tested exactly once. *)
  let wanted =
    match modules with Some l -> l | None -> Core.System.module_ids system
  in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (e : Core.Schedule.entry) ->
      Hashtbl.replace seen e.Core.Schedule.module_id
        (1
        + Option.value ~default:0
            (Hashtbl.find_opt seen e.Core.Schedule.module_id)))
    entries;
  List.iter
    (fun id ->
      match Hashtbl.find_opt seen id with
      | Some 1 -> ()
      | None -> fail "module %d is never tested" id
      | Some n -> fail "module %d is tested %d times" id n)
    wanted;
  Array.iter
    (fun (e : Core.Schedule.entry) ->
      if not (List.mem e.Core.Schedule.module_id wanted) then
        fail "module %d is tested but not part of the system"
          e.Core.Schedule.module_id)
    entries;
  (* 2. No two overlapping tests share a link or an endpoint. *)
  let n = Array.length entries in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = entries.(i) and b = entries.(j) in
      if overlap a b then begin
        let la = Noc.Link.Set.of_list a.Core.Schedule.links
        and lb = Noc.Link.Set.of_list b.Core.Schedule.links in
        Noc.Link.Set.iter
          (fun l ->
            fail "modules %d and %d overlap in time and both reserve %a"
              a.Core.Schedule.module_id b.Core.Schedule.module_id Noc.Link.pp
              l)
          (Noc.Link.Set.inter la lb);
        List.iter
          (fun ep ->
            if
              ep = b.Core.Schedule.source || ep = b.Core.Schedule.sink
            then
              fail "modules %d and %d overlap in time and share an endpoint"
                a.Core.Schedule.module_id b.Core.Schedule.module_id)
          [ a.Core.Schedule.source; a.Core.Schedule.sink ]
      end
    done
  done;
  (* 3. Instantaneous power within the limit.  Total power is
     piecewise constant, changing only when a test starts, so checking
     at every start instant covers every instant. *)
  (match power_limit with
  | None -> ()
  | Some limit ->
      Array.iter
        (fun (e : Core.Schedule.entry) ->
          let t = e.Core.Schedule.start in
          let total =
            Array.fold_left
              (fun acc (o : Core.Schedule.entry) ->
                if o.Core.Schedule.start <= t && t < o.Core.Schedule.finish
                then acc +. o.Core.Schedule.power
                else acc)
              0.0 entries
          in
          if total > limit +. 1e-6 then
            fail "power %.2f exceeds limit %.2f at t=%d" total limit t)
        entries);
  List.rev !errors
