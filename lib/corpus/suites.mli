(** The property-suite registry the testplan maps testpoints onto.

    Each suite is one named check over a corpus {!Corpus.item}; the
    registry is what {!Testplan.lint} cross-checks the checked-in plan
    against.  Corpus items are schedulable by construction, so every
    suite treats "could not plan" as a failure, never a skip. *)

type outcome =
  | Pass
  | Fail of string  (** why, first violation(s) included *)
  | Skip of string  (** the check does not apply to this item *)

type suite = {
  name : string;
  doc : string;  (** one-line description for reports and lint *)
  check : Corpus.item -> outcome;
}

val all : suite list
(** The registry, in report order:

    - ["schedule_invariants"] — greedy plans the item and the result
      passes both the production validator and the naive independent
      {!Invariants} re-check;
    - ["backend_differential"] — every registered backend is raced
      ({!Nocplan_core.Differential}): all attempts validator-clean and
      the race winner never worse than greedy;
    - ["fault_monotonicity"] — seeded fault-injection sweep: the rate-0
      point is fault-free with full availability, the injected fault
      count is non-decreasing in the rate (fault sets are nested
      prefixes), and every availability figure is consistent with its
      abandoned count.  Availability itself is deliberately {e not}
      required to be monotone: replanning after an extra early fault can
      dodge a later shared fault, so availability may locally rise with
      the rate (observed on ~0.5% of a 1000-system corpus);
    - ["preemptive_validity"] — session-split planning passes the
      preemptive validator;
    - ["export_roundtrip"] — the SoC survives print/parse exactly;
    - ["generation_determinism"] — re-drawing the item from its seed
      reproduces the same system fingerprint. *)

val names : unit -> string list
val find : string -> suite option
