module Itc02 = Nocplan_itc02
module Noc = Nocplan_noc
module Proc = Nocplan_proc
module Core = Nocplan_core
module Rng = Itc02.Data_gen.Rng

type item = {
  index : int;
  seed : int64;
  name : string;
  soc : Itc02.Soc.t;
  system : Core.System.t;
  torus : bool;
  width : int;
  height : int;
  leons : int;
  plasmas : int;
  flit_width : int;
  io_pairs : int;
  power_pct : float option;
  power_limit : float option;
  reuse : int;
}

(* Per-item seed: the corpus seed advanced by a golden-ratio stride, so
   items are independent splitmix64 streams and [item] is O(1) in the
   corpus size. *)
let item_seed ~seed ~index =
  Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))

(* Floor for a drawn power budget: any single test must fit alone.
   An entry's power is its module's test power plus the source and
   sink processor-leg powers plus router streaming on both XY paths;
   bounding the legs by the worst characterization and the streams by
   two full-diameter paths guarantees the greedy engine can always
   make progress, hence the instance is schedulable. *)
let progress_floor (system : Core.System.t) =
  let max_module_power =
    List.fold_left
      (fun acc (m : Itc02.Module_def.t) ->
        Float.max acc m.Itc02.Module_def.test_power)
      0.0 system.Core.System.soc.Itc02.Soc.modules
  in
  let leg_power =
    List.fold_left
      (fun acc (pp : Core.System.placed_processor) ->
        let p = pp.Core.System.processor in
        Float.max acc
          (p.Proc.Processor.bist.Proc.Characterization.power
          +. p.Proc.Processor.sink.Proc.Characterization.power))
      0.0 system.Core.System.processors
  in
  let topo = system.Core.System.topology in
  let stream =
    2.0
    *. system.Core.System.noc_power.Noc.Power.router_stream_power
    *. float_of_int (topo.Noc.Topology.width + topo.Noc.Topology.height)
  in
  1.05 *. (max_module_power +. leg_power +. stream)

let item ~seed ~index =
  if index < 0 then invalid_arg "Corpus.item: negative index";
  let rng = Rng.create (item_seed ~seed ~index) in
  let scan_modules = Rng.int_range rng ~lo:2 ~hi:7 in
  let comb_modules = Rng.int_range rng ~lo:0 ~hi:2 in
  let target_scan_cells = Rng.log_uniform_int rng ~lo:600 ~hi:8_000 in
  let max_chains = Rng.int_range rng ~lo:4 ~hi:16 in
  let max_patterns = Rng.log_uniform_int rng ~lo:16 ~hi:80 in
  let power_profile =
    match Rng.int rng ~bound:3 with
    | 0 -> Itc02.Data_gen.Toggle
    | 1 -> Itc02.Data_gen.Scaled { lo = 0.5; hi = 2.0 }
    | _ -> Itc02.Data_gen.Hotspot { count = 2; factor = 3.0 }
  in
  let torus = Rng.bool rng 0.5 in
  let leons = Rng.int_range rng ~lo:1 ~hi:2 in
  let plasmas = Rng.int_range rng ~lo:0 ~hi:1 in
  let flit_width = [| 16; 32; 64 |].(Rng.int rng ~bound:3) in
  let io_pairs = Rng.int_range rng ~lo:1 ~hi:2 in
  let power_pct =
    match Rng.int rng ~bound:3 with
    | 0 -> None
    | 1 -> Some 70.0
    | _ -> Some 100.0
  in
  (* Near-square grid sized to the core count, with a drawn slack of
     0..1 in each dimension; clamped to the 2..5 range the historical
     QCheck distribution covers. *)
  let tiles = scan_modules + comb_modules + leons + plasmas in
  let side =
    int_of_float (Float.round (Float.sqrt (float_of_int tiles)))
  in
  let clamp_dim d = max 2 (min 5 d) in
  let width = clamp_dim (side + Rng.int rng ~bound:2) in
  let height = clamp_dim (side + Rng.int rng ~bound:2) in
  let name = Printf.sprintf "syn%d" index in
  let profile =
    {
      Itc02.Data_gen.name;
      seed = item_seed ~seed ~index;
      scan_modules;
      comb_modules;
      target_scan_cells;
      max_chains;
      min_patterns = 4;
      max_patterns;
    }
  in
  let soc = Itc02.Data_gen.generate ~power:power_profile profile in
  let topology =
    if torus then Noc.Topology.torus ~width ~height
    else Noc.Topology.make ~width ~height
  in
  let processors =
    List.init leons (fun _ -> Proc.Processor.leon ~id:1)
    @ List.init plasmas (fun _ -> Proc.Processor.plasma ~id:1)
  in
  let corner x y = Noc.Coord.make ~x ~y in
  let io_inputs =
    corner 0 0 :: (if io_pairs > 1 then [ corner (width - 1) 0 ] else [])
  in
  let io_outputs =
    corner (width - 1) (height - 1)
    :: (if io_pairs > 1 then [ corner 0 (height - 1) ] else [])
  in
  let system =
    Core.System.build ~flit_width ~soc ~topology ~processors ~io_inputs
      ~io_outputs ()
  in
  let power_limit =
    Option.map
      (fun pct ->
        Float.max
          (Core.System.power_limit_of_pct system ~pct)
          (progress_floor system))
      power_pct
  in
  {
    index;
    seed;
    name;
    soc;
    system;
    torus;
    width;
    height;
    leons;
    plasmas;
    flit_width;
    io_pairs;
    power_pct;
    power_limit;
    reuse = leons + plasmas;
  }

let generate ~seed ~count =
  if count < 0 then invalid_arg "Corpus.generate: negative count";
  List.init count (fun index -> item ~seed ~index)

let config item =
  Core.Scheduler.config ~power_limit:item.power_limit ~reuse:item.reuse ()

let fingerprint item = Core.System.fingerprint item.system

let digest items =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map fingerprint items)))

let topology_kind item = if item.torus then "torus" else "mesh"

let csv_header =
  "name,index,modules,topology,width,height,leons,plasmas,flit,io_pairs,power_pct,fingerprint"

let csv_row item =
  Printf.sprintf "%s,%d,%d,%s,%d,%d,%d,%d,%d,%d,%s,%s" item.name item.index
    (Itc02.Soc.module_count item.soc)
    (topology_kind item) item.width item.height item.leons item.plasmas
    item.flit_width item.io_pairs
    (match item.power_pct with
    | None -> ""
    | Some pct -> Printf.sprintf "%g" pct)
    (fingerprint item)

let pp_header ppf () =
  Fmt.pf ppf "%-8s %-7s %-10s %-6s %-6s %-5s %-6s %s" "name" "modules"
    "topology" "procs" "flit" "io" "power" "fingerprint"

let pp_row ppf item =
  Fmt.pf ppf "%-8s %-7d %-10s %-6s %-6d %-5d %-6s %s" item.name
    (Itc02.Soc.module_count item.soc)
    (Printf.sprintf "%s %dx%d" (topology_kind item) item.width item.height)
    (Printf.sprintf "%dL+%dP" item.leons item.plasmas)
    item.flit_width item.io_pairs
    (match item.power_pct with
    | None -> "-"
    | Some pct -> Printf.sprintf "%g%%" pct)
    (fingerprint item)
