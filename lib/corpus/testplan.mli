(** Machine-parseable testplan: named testpoints mapped to property
    suites, dvsim-testplanner style.

    The checked-in plan ([test/testplan.json]) is the document of
    record for what the corpus sweep verifies; {!lint} keeps it honest
    against the implemented suite registry in both directions — a
    testpoint may not name a suite that does not exist, and a suite
    may not be left unreferenced by every testpoint. *)

type testpoint = {
  name : string;
  desc : string;  (** one-line intent, carried into reports *)
  suites : string list;  (** {!Suites} registry names, at least one *)
}

type t = { name : string; testpoints : testpoint list }

val of_string : string -> (t, string) result
(** Parse a testplan document:
    [{"name": ..., "testpoints": [{"name", "desc", "suites"}...]}].
    Structural errors (missing fields, wrong types, empty or duplicate
    testpoint names) are reported here; cross-checks against the suite
    registry belong to {!lint}. *)

val load : string -> (t, string) result
(** {!of_string} over a file's contents; IO errors become [Error]. *)

val lint : suites:string list -> t -> string list
(** Coverage annotation both ways: one message per testpoint
    referencing an unknown suite, and one per registered suite no
    testpoint references.  [[]] means the plan and the registry
    agree. *)
