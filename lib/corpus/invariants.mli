(** Naive, independent schedule invariant checker.

    An intentionally dumb re-check of the safety invariants every
    schedule must satisfy, shared by the test suites (historically
    [test/util.ml], which now delegates here) and by the corpus
    [schedule_invariants] property suite.  It deliberately duplicates
    (a subset of) {!Nocplan_core.Schedule.validate} with the simplest
    possible O(n²) pairwise-overlap logic and no cost model, so that a
    bug in the production validator cannot vouch for a bug in the
    schedulers. *)

val schedule_invariant_errors :
  ?power_limit:float option ->
  ?modules:int list ->
  Nocplan_core.System.t ->
  Nocplan_core.Schedule.t ->
  string list
(** Human-readable violation messages; [[]] means the schedule passes.
    Checks: every wanted module tested exactly once (default: the
    whole system), no two time-overlapping tests share a link or an
    endpoint, and instantaneous power stays within [power_limit] when
    one is given. *)
