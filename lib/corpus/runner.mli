(** The testplan engine: run every testpoint's property suites over a
    corpus, Domain-parallel, and aggregate per-testpoint counts.

    Items fan out round-robin over worker domains via
    {!Nocplan_core.Domains.map}; each item is checked against every
    (testpoint, suite) pair of the plan, and outcomes aggregate into
    one {!point} per testpoint.  The whole sweep runs inside a
    [corpus.sweep] trace span and emits [nocplan_corpus_*] counters
    (systems, checks, failures) when a collector is installed, so
    traced sweeps are attributable like any other driver. *)

type point = {
  testpoint : string;
  desc : string;
  pass : int;
  fail : int;
  skip : int;
  failures : (string * string) list;
      (** (item name, message) for the first few failures, sweep order *)
}

type report = {
  corpus : int;  (** items swept (after sharding) *)
  jobs : int;  (** domains requested (before clamping) *)
  shard : (int * int) option;  (** [(k, n)] when the corpus was sharded *)
  seconds : float;
  points : point list;  (** testplan order *)
}

val coverage : point -> int
(** Checks that actually ran: [pass + fail] (skips excluded). *)

val ok : report -> bool
(** No failures, and every testpoint has nonzero {!coverage}. *)

val shard : k:int -> n:int -> 'a list -> 'a list
(** The [k]-th of [n] round-robin slices, [1 <= k <= n]; the [n]
    shards of a list are disjoint and cover it exactly.
    @raise Invalid_argument if [k] is out of range or [n < 1]. *)

val run :
  ?jobs:int ->
  ?shard_of:int * int ->
  ?clock:(unit -> float) ->
  testplan:Testplan.t ->
  Corpus.item list ->
  report
(** Sweep [items] (already sharded by the caller; [shard_of] only
    labels the report).  [jobs] defaults to 1; [clock] times the sweep
    ([Sys.time] by default — callers with unix should pass wall time).
    A suite raising is recorded as a failure of that check, not a
    crash of the sweep.
    @raise Invalid_argument if the plan names a suite that is not
    registered (run {!Testplan.lint} first). *)

val pp_report : report Fmt.t
(** Aligned per-testpoint table plus a one-line verdict. *)

val csv : report -> string
(** ["testpoint,pass,fail,skip,coverage"] rows, header included. *)

val to_json : ?seed:int64 -> report -> Nocplan_serve.Json.t
(** The summary artifact: seed, corpus/shard/jobs/seconds, one object
    per testpoint (counts, coverage, first failures), and the overall
    verdict. *)
