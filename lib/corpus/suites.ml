module Itc02 = Nocplan_itc02
module Proc = Nocplan_proc
module Core = Nocplan_core
module Fault = Nocplan_fault

type outcome = Pass | Fail of string | Skip of string

type suite = {
  name : string;
  doc : string;
  check : Corpus.item -> outcome;
}

let truncate_list pp l =
  let shown = List.filteri (fun i _ -> i < 3) l in
  Fmt.str "%a%s" (Fmt.list ~sep:(Fmt.any "; ") pp) shown
    (if List.length l > 3 then Fmt.str "; … (%d total)" (List.length l)
     else "")

(* -- schedule_invariants -------------------------------------------- *)

let schedule_invariants_check (item : Corpus.item) =
  let config = Corpus.config item in
  match Core.Scheduler.run item.Corpus.system config with
  | exception Core.Scheduler.Unschedulable msg ->
      Fail ("greedy found the item unschedulable: " ^ msg)
  | schedule -> (
      match
        Core.Schedule.validate item.Corpus.system
          ~application:config.Core.Scheduler.application
          ~power_limit:config.Core.Scheduler.power_limit
          ~reuse:config.Core.Scheduler.reuse schedule
      with
      | Error violations ->
          Fail
            ("validator: "
            ^ truncate_list Core.Schedule.pp_violation violations)
      | Ok () -> (
          match
            Invariants.schedule_invariant_errors
              ~power_limit:config.Core.Scheduler.power_limit
              item.Corpus.system schedule
          with
          | [] -> Pass
          | errors -> Fail ("invariants: " ^ truncate_list Fmt.string errors)))

(* -- backend_differential ------------------------------------------- *)

let backend_differential_check (item : Corpus.item) =
  let row =
    Core.Differential.race_row ~label:item.Corpus.name item.Corpus.system
      (Corpus.config item)
  in
  match row.Core.Differential.outcome with
  | Error msg -> Fail ("no backend produced a valid schedule: " ^ msg)
  | Ok outcome ->
      if not (Core.Differential.all_backends_valid row) then
        let bad =
          List.filter_map
            (fun (a : Core.Backend.attempt) ->
              match a.Core.Backend.outcome with
              | Ok _ when not a.Core.Backend.valid ->
                  Some a.Core.Backend.backend
              | Ok _ | Error _ -> None)
            outcome.Core.Backend.attempts
        in
        Fail
          ("backend(s) emitted an invalid schedule: "
          ^ String.concat ", " bad)
      else if not (Core.Differential.race_never_worse row) then
        Fail
          (Fmt.str "race (%s, makespan %d) is worse than greedy (%a)"
             outcome.Core.Backend.winner
             outcome.Core.Backend.schedule.Core.Schedule.makespan
             (Fmt.option Fmt.int)
             (Core.Differential.greedy_makespan row))
      else Pass

(* -- fault_monotonicity --------------------------------------------- *)

let fault_rates = [ 0.0; 0.1; 0.25 ]

(* The injected fault SETS of a sweep are nested (prefixes of one seeded
   permutation), so the injected COUNT is monotone by construction.
   Availability itself is not: an extra early fault forces a replan that
   can move a module ahead of a later shared fault which would have
   abandoned it at the lower rate, so availability may locally rise with
   the rate (observed on ~0.5% of a 1000-system corpus).  We therefore
   check only the sound properties here: the rate-0 point is the fault-free
   baseline, injected counts never fall, and every availability figure is
   consistent with its abandoned count. *)
let fault_monotonicity_check (item : Corpus.item) =
  let seed = item.Corpus.index + 1 in
  match
    Fault.Injector.sweep ~power_limit:item.Corpus.power_limit
      ~reuse:item.Corpus.reuse ~seed ~rates:fault_rates item.Corpus.system
  with
  | exception Core.Scheduler.Unschedulable msg ->
      Fail ("fault sweep unschedulable: " ^ msg)
  | points -> (
      let physical (p : Fault.Injector.point) =
        if p.Fault.Injector.availability < 0.0
           || p.Fault.Injector.availability > 1.0
        then
          Some
            (Fmt.str "availability %.3f@%g outside [0,1]"
               p.Fault.Injector.availability p.Fault.Injector.rate)
        else if
          p.Fault.Injector.abandoned_count = 0
          && p.Fault.Injector.availability < 1.0
        then
          Some
            (Fmt.str "nothing abandoned at rate %g yet availability %.3f"
               p.Fault.Injector.rate p.Fault.Injector.availability)
        else if
          p.Fault.Injector.abandoned_count > 0
          && p.Fault.Injector.availability >= 1.0
        then
          Some
            (Fmt.str "%d abandoned at rate %g yet availability %.3f"
               p.Fault.Injector.abandoned_count p.Fault.Injector.rate
               p.Fault.Injector.availability)
        else None
      in
      let rec monotone = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if b.Fault.Injector.injected < a.Fault.Injector.injected then
              Fail
                (Fmt.str "injected faults fell with the rate: %d@%g -> %d@%g"
                   a.Fault.Injector.injected a.Fault.Injector.rate
                   b.Fault.Injector.injected b.Fault.Injector.rate)
            else monotone rest
        | _ -> Pass
      in
      match List.filter_map (fun (p, _) -> physical p) points with
      | msg :: _ -> Fail msg
      | [] -> (
          match points with
          | (zero, _) :: _
            when zero.Fault.Injector.availability < 1.0
                 || zero.Fault.Injector.injected <> 0 ->
              Fail
                (Fmt.str "rate 0 is not fault-free: %d faults, availability %.3f"
                   zero.Fault.Injector.injected
                   zero.Fault.Injector.availability)
          | points -> monotone points))

(* -- preemptive_validity -------------------------------------------- *)

let preemptive_validity_check (item : Corpus.item) =
  let config =
    Core.Preemptive.config ~power_limit:item.Corpus.power_limit
      ~max_sessions:2 ~reuse:item.Corpus.reuse ()
  in
  match Core.Preemptive.schedule item.Corpus.system config with
  | exception Core.Scheduler.Unschedulable msg ->
      Fail ("preemptive planning unschedulable: " ^ msg)
  | plan -> (
      match
        Core.Preemptive.validate item.Corpus.system
          ~application:config.Core.Preemptive.application
          ~power_limit:config.Core.Preemptive.power_limit
          ~reuse:config.Core.Preemptive.reuse plan
      with
      | Ok () -> Pass
      | Error violations ->
          Fail
            ("preemptive validator: "
            ^ truncate_list Core.Preemptive.pp_violation violations))

(* -- export_roundtrip ----------------------------------------------- *)

let export_roundtrip_check (item : Corpus.item) =
  match Itc02.Parser.parse (Itc02.Printer.to_string item.Corpus.soc) with
  | Error e ->
      Fail (Fmt.str "exported text does not parse: line %d: %s"
              e.Itc02.Parser.line e.Itc02.Parser.message)
  | Ok soc ->
      if Itc02.Soc.equal soc item.Corpus.soc then Pass
      else Fail "print/parse round-trip changed the SoC"

(* -- generation_determinism ----------------------------------------- *)

let generation_determinism_check (item : Corpus.item) =
  let again = Corpus.item ~seed:item.Corpus.seed ~index:item.Corpus.index in
  if String.equal (Corpus.fingerprint again) (Corpus.fingerprint item) then
    Pass
  else Fail "re-drawing the item from its seed changed the system"

(* -- registry -------------------------------------------------------- *)

let all =
  [
    {
      name = "schedule_invariants";
      doc =
        "greedy plans every item; production validator and naive \
         independent re-check both clean";
      check = schedule_invariants_check;
    };
    {
      name = "backend_differential";
      doc =
        "race the full backend registry: all attempts validator-clean, \
         race never worse than greedy";
      check = backend_differential_check;
    };
    {
      name = "fault_monotonicity";
      doc =
        "seeded fault sweep: fault-free at rate 0, injected counts \
         non-decreasing, availability consistent with abandonment";
      check = fault_monotonicity_check;
    };
    {
      name = "preemptive_validity";
      doc = "session-split plans pass the preemptive validator";
      check = preemptive_validity_check;
    };
    {
      name = "export_roundtrip";
      doc = "the generated SoC survives print/parse byte-exactly";
      check = export_roundtrip_check;
    };
    {
      name = "generation_determinism";
      doc = "re-drawing an item from its seed reproduces its fingerprint";
      check = generation_determinism_check;
    };
  ]

let names () = List.map (fun s -> s.name) all
let find name = List.find_opt (fun s -> s.name = name) all
