(** Deterministic, seeded synthetic-SoC corpus.

    Scales {!Nocplan_itc02.Data_gen} and the shared test generators
    into thousands of planning instances: mesh and torus topologies,
    varied module counts, scan volumes, wrapper (flit) widths, power
    profiles, processor mixes and IO pin budgets.  Generation is a
    pure function of [(seed, index)] — the splitmix64 PRNG is
    self-contained and every draw happens in a fixed order — so the
    same seed yields byte-identical systems on every run and platform
    (pinned by the golden {!digest} test).

    Every item is schedulable by construction: when a power budget is
    drawn, the absolute limit is floored so that any single test —
    module power plus processor legs plus worst-case NoC streaming —
    always fits, which is exactly the greedy engine's progress
    condition.  A suite failure over the corpus therefore always
    indicates a planner defect, never an infeasible draw. *)

type item = {
  index : int;  (** position in the corpus, [0 .. count-1] *)
  seed : int64;  (** the corpus seed the item was drawn under *)
  name : string;  (** ["syn<index>"], unique within a corpus *)
  soc : Nocplan_itc02.Soc.t;
  system : Nocplan_core.System.t;
  torus : bool;
  width : int;
  height : int;
  leons : int;
  plasmas : int;
  flit_width : int;
  io_pairs : int;  (** IO input/output port pairs, 1 or 2 *)
  power_pct : float option;
      (** the drawn budget as a percentage of total module power;
          [None] for unconstrained items *)
  power_limit : float option;
      (** the absolute limit handed to the schedulers: the percentage
          applied to this system, floored for guaranteed progress *)
  reuse : int;  (** processors reusable for test (all of them) *)
}

val item : seed:int64 -> index:int -> item
(** Draw the [index]-th item of the [seed] corpus.  O(1) in the corpus
    size: items are independent draws, so shards can regenerate only
    their slice. *)

val generate : seed:int64 -> count:int -> item list
(** The first [count] items, in index order.
    @raise Invalid_argument if [count < 0]. *)

val config : item -> Nocplan_core.Scheduler.config
(** The planning configuration the property suites run under: default
    greedy policy, BIST application, the item's power limit and full
    processor reuse. *)

val fingerprint : item -> string
(** {!Nocplan_core.System.fingerprint} of the item's system. *)

val digest : item list -> string
(** Hex digest over every item's fingerprint, in order — the corpus
    identity pinned by the golden determinism test. *)

val csv_header : string
val csv_row : item -> string
(** Manifest line: name, index, module count, topology kind and size,
    processor mix, flit width, IO pairs, power budget, fingerprint. *)

val pp_row : item Fmt.t
(** One aligned human-readable table row (see {!pp_header}). *)

val pp_header : unit Fmt.t
