module Core = Nocplan_core
module Trace = Nocplan_obs.Trace
module Json = Nocplan_serve.Json

type point = {
  testpoint : string;
  desc : string;
  pass : int;
  fail : int;
  skip : int;
  failures : (string * string) list;
}

type report = {
  corpus : int;
  jobs : int;
  shard : (int * int) option;
  seconds : float;
  points : point list;
}

let coverage p = p.pass + p.fail

let ok report =
  report.points <> []
  && List.for_all (fun p -> p.fail = 0 && coverage p > 0) report.points

let shard ~k ~n items =
  if n < 1 then invalid_arg "Runner.shard: n must be >= 1";
  if k < 1 || k > n then invalid_arg "Runner.shard: k out of 1..n";
  List.filteri (fun i _ -> i mod n = k - 1) items

let max_failures_kept = 5

(* One item's outcomes against every (testpoint, suite) pair. *)
let check_item (plan : (Testplan.testpoint * Suites.suite list) list)
    (item : Corpus.item) =
  List.concat_map
    (fun ((tp : Testplan.testpoint), suites) ->
      List.map
        (fun (suite : Suites.suite) ->
          let outcome =
            try suite.Suites.check item
            with exn ->
              Suites.Fail
                (Printf.sprintf "%s raised %s" suite.Suites.name
                   (Printexc.to_string exn))
          in
          (tp.Testplan.name, item.Corpus.name, outcome))
        suites)
    plan

let run ?(jobs = 1) ?shard_of ?(clock = Sys.time) ~testplan items =
  let plan =
    List.map
      (fun (tp : Testplan.testpoint) ->
        ( tp,
          List.map
            (fun name ->
              match Suites.find name with
              | Some s -> s
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Runner.run: testpoint %S names unknown suite %S \
                        (lint the plan first)"
                       tp.Testplan.name name))
            tp.Testplan.suites ))
      testplan.Testplan.testpoints
  in
  let started = clock () in
  let outcomes =
    Trace.span "corpus.sweep"
      ~attrs:
        [
          ("plan", Trace.String testplan.Testplan.name);
          ("systems", Trace.Int (List.length items));
          ("jobs", Trace.Int jobs);
        ]
    @@ fun () ->
    List.concat (Core.Domains.map ~domains:jobs (check_item plan) items)
  in
  let seconds = clock () -. started in
  let points =
    List.map
      (fun ((tp : Testplan.testpoint), _) ->
        let mine =
          List.filter (fun (name, _, _) -> name = tp.Testplan.name) outcomes
        in
        let count f = List.length (List.filter f mine) in
        {
          testpoint = tp.Testplan.name;
          desc = tp.Testplan.desc;
          pass = count (fun (_, _, o) -> o = Suites.Pass);
          fail =
            count (fun (_, _, o) ->
                match o with Suites.Fail _ -> true | _ -> false);
          skip =
            count (fun (_, _, o) ->
                match o with Suites.Skip _ -> true | _ -> false);
          failures =
            List.filteri
              (fun i _ -> i < max_failures_kept)
              (List.filter_map
                 (fun (_, item, o) ->
                   match o with
                   | Suites.Fail msg -> Some (item, msg)
                   | _ -> None)
                 mine);
        })
      plan
  in
  let report =
    { corpus = List.length items; jobs; shard = shard_of; seconds; points }
  in
  if Trace.enabled () then begin
    let checks =
      List.fold_left (fun acc p -> acc + p.pass + p.fail + p.skip) 0 points
    in
    let failures = List.fold_left (fun acc p -> acc + p.fail) 0 points in
    Trace.counter "nocplan_corpus_systems_total"
      ~attrs:[ ("value", Trace.Int report.corpus) ];
    Trace.counter "nocplan_corpus_checks_total"
      ~attrs:[ ("value", Trace.Int checks) ];
    Trace.counter "nocplan_corpus_failures_total"
      ~attrs:[ ("value", Trace.Int failures) ]
  end;
  report

let pp_report ppf report =
  Fmt.pf ppf "%-24s %6s %6s %6s %9s@." "testpoint" "pass" "fail" "skip"
    "coverage";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-24s %6d %6d %6d %9d@." p.testpoint p.pass p.fail p.skip
        (coverage p))
    report.points;
  List.iter
    (fun p ->
      List.iter
        (fun (item, msg) ->
          Fmt.pf ppf "  FAIL %s/%s: %s@." p.testpoint item msg)
        p.failures)
    report.points;
  Fmt.pf ppf "%s: %d system%s%s, %d domain%s, %.2fs"
    (if ok report then "ok" else "FAILED")
    report.corpus
    (if report.corpus = 1 then "" else "s")
    (match report.shard with
    | None -> ""
    | Some (k, n) -> Printf.sprintf " (shard %d/%d)" k n)
    report.jobs
    (if report.jobs = 1 then "" else "s")
    report.seconds

let csv report =
  String.concat "\n"
    ("testpoint,pass,fail,skip,coverage"
    :: List.map
         (fun p ->
           Printf.sprintf "%s,%d,%d,%d,%d" p.testpoint p.pass p.fail p.skip
             (coverage p))
         report.points)

let to_json ?seed report =
  let point p =
    Json.Obj
      [
        ("testpoint", Json.String p.testpoint);
        ("desc", Json.String p.desc);
        ("pass", Json.Int p.pass);
        ("fail", Json.Int p.fail);
        ("skip", Json.Int p.skip);
        ("coverage", Json.Int (coverage p));
        ( "failures",
          Json.List
            (List.map
               (fun (item, msg) ->
                 Json.Obj
                   [
                     ("item", Json.String item); ("message", Json.String msg);
                   ])
               p.failures) );
      ]
  in
  Json.Obj
    (List.concat
       [
         [ ("schema", Json.String "nocplan_corpus_verify/1") ];
         (match seed with
         | None -> []
         | Some s -> [ ("seed", Json.String (Int64.to_string s)) ]);
         [
           ("corpus", Json.Int report.corpus);
           ( "shard",
             match report.shard with
             | None -> Json.Null
             | Some (k, n) ->
                 Json.Obj [ ("k", Json.Int k); ("n", Json.Int n) ] );
           ("jobs", Json.Int report.jobs);
           ("seconds", Json.Float report.seconds);
           ("points", Json.List (List.map point report.points));
           ("ok", Json.Bool (ok report));
         ];
       ])
