module Json = Nocplan_serve.Json

type testpoint = { name : string; desc : string; suites : string list }
type t = { name : string; testpoints : testpoint list }

let ( let* ) = Result.bind

let field_str name json =
  match Json.str_field name json with
  | Some s when s <> "" -> Ok s
  | Some _ -> Error (Printf.sprintf "empty %S field" name)
  | None -> Error (Printf.sprintf "missing string field %S" name)

let parse_testpoint json =
  let* name = field_str "name" json in
  let* desc = field_str "desc" json in
  let* suites =
    match Json.member "suites" json with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match s with
            | Json.String s when s <> "" -> Ok (s :: acc)
            | _ ->
                Error
                  (Printf.sprintf "testpoint %S: suites must be strings" name))
          (Ok []) l
        |> Result.map List.rev
    | Some _ | None ->
        Error (Printf.sprintf "testpoint %S: missing \"suites\" array" name)
  in
  if suites = [] then
    Error (Printf.sprintf "testpoint %S references no suites" name)
  else Ok { name; desc; suites }

let of_string text =
  let* json = Json.parse text in
  let* name = field_str "name" json in
  let* testpoints =
    match Json.member "testpoints" json with
    | Some (Json.List (_ :: _ as l)) ->
        List.fold_left
          (fun acc tp ->
            let* acc = acc in
            let* tp = parse_testpoint tp in
            Ok (tp :: acc))
          (Ok []) l
        |> Result.map List.rev
    | Some _ | None -> Error "missing non-empty \"testpoints\" array"
  in
  let rec dup : testpoint list -> string option = function
    | [] -> None
    | tp :: rest ->
        if List.exists (fun (o : testpoint) -> o.name = tp.name) rest then
          Some tp.name
        else dup rest
  in
  match dup testpoints with
  | Some n -> Error (Printf.sprintf "duplicate testpoint name %S" n)
  | None -> Ok { name; testpoints }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let lint ~suites t =
  let unknown =
    List.concat_map
      (fun (tp : testpoint) ->
        List.filter_map
          (fun s ->
            if List.mem s suites then None
            else
              Some
                (Printf.sprintf
                   "testpoint %S names unknown property suite %S" tp.name s))
          tp.suites)
      t.testpoints
  in
  let unreferenced =
    List.filter_map
      (fun s ->
        if
          List.exists (fun tp -> List.mem s tp.suites) t.testpoints
        then None
        else
          Some
            (Printf.sprintf
               "property suite %S is not referenced by any testpoint" s))
      suites
  in
  unknown @ unreferenced
