(** Deterministic synthetic benchmark generation.

    The p22810 and p93791 per-module data cannot be redistributed
    here, so those benchmarks are reconstructed: a seeded,
    self-contained PRNG (splitmix64) draws per-module terminal, scan
    and pattern counts, and the scan volume is then rescaled so the
    benchmark's aggregate statistics (module count, combinational
    fraction, total scan cells) match the published ones.  Generation
    is fully deterministic: the same profile always yields the same
    benchmark.  See DESIGN.md, "Substitutions". *)

(** How per-module test power is assigned.  The default, [Toggle], is
    the historical toggle-proportional estimate
    ({!Module_def.estimated_power}); the other profiles reshape it so
    a corpus can exercise power-constrained scheduling beyond the
    uniform case. *)
type power_profile =
  | Toggle  (** toggle-proportional defaults, unchanged *)
  | Scaled of { lo : float; hi : float }
      (** every module's power multiplied by an independent uniform
          draw in [\[lo, hi\]]; requires [0 < lo <= hi] *)
  | Hotspot of { count : int; factor : float }
      (** [count] distinct randomly chosen modules draw [factor]× their
          toggle estimate; requires [count >= 1] and [factor > 0] *)

type profile = {
  name : string;
  seed : int64;
  scan_modules : int;  (** number of scan-testable (sequential) cores *)
  comb_modules : int;  (** number of combinational (scan-less) cores *)
  target_scan_cells : int;
      (** total scan cells the generated benchmark is rescaled to *)
  max_chains : int;  (** upper bound on scan chains per core *)
  min_patterns : int;
  max_patterns : int;  (** log-uniform pattern count range *)
}

val generate : ?power:power_profile -> profile -> Soc.t
(** Generate the benchmark described by [profile].  Module ids are
    assigned 1..n with scan and combinational cores interleaved
    deterministically.  [power] (default {!Toggle}) reshapes the
    per-module test powers after the structural draw; [Toggle] consumes
    no PRNG state, so historical profiles generate byte-identical
    benchmarks whether or not the argument is given.

    Generation depends only on the profile (and [power]): the PRNG is
    self-contained, every draw happens in a fixed order, and no
    hash-table or physical ordering leaks into the output — the same
    profile yields a byte-identical benchmark on every run and
    platform (pinned by the golden digest test).

    @raise Invalid_argument if the profile has no modules,
    non-positive ranges, or a malformed [power] profile. *)

(** {1 Raw PRNG}

    Exposed for reuse by tests and by the NoC traffic generator; a
    self-contained splitmix64 so that generated data never depends on
    the OCaml stdlib [Random] state. *)

module Rng : sig
  type t

  val create : int64 -> t
  val int : t -> bound:int -> int
  (** uniform in [\[0, bound)]; @raise Invalid_argument if [bound <= 0] *)

  val int_range : t -> lo:int -> hi:int -> int
  (** uniform in [\[lo, hi\]] inclusive; @raise Invalid_argument if
      [hi < lo] *)

  val float : t -> float
  (** uniform in [\[0, 1)] *)

  val log_uniform_int : t -> lo:int -> hi:int -> int
  (** log-uniformly distributed integer in [\[lo, hi\]]; requires
      [1 <= lo <= hi] *)

  val bool : t -> float -> bool
  (** [bool rng p] is true with probability [p] *)
end
