module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* splitmix64: fast, well-distributed, and trivially reproducible. *)
  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t ~bound =
    if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
    (* Keep 62 bits so the value fits OCaml's native int on 64-bit
       platforms. *)
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod bound

  let int_range t ~lo ~hi =
    if hi < lo then invalid_arg "Rng.int_range: hi < lo";
    lo + int t ~bound:(hi - lo + 1)

  let float t =
    let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    v /. 9007199254740992.0 (* 2^53 *)

  let log_uniform_int t ~lo ~hi =
    if lo < 1 || hi < lo then invalid_arg "Rng.log_uniform_int: bad range";
    let log_lo = log (float_of_int lo) and log_hi = log (float_of_int hi) in
    let x = exp (log_lo +. (float t *. (log_hi -. log_lo))) in
    max lo (min hi (int_of_float (Float.round x)))

  let bool t p = float t < p
end

type power_profile =
  | Toggle
  | Scaled of { lo : float; hi : float }
  | Hotspot of { count : int; factor : float }

type profile = {
  name : string;
  seed : int64;
  scan_modules : int;
  comb_modules : int;
  target_scan_cells : int;
  max_chains : int;
  min_patterns : int;
  max_patterns : int;
}

(* An intermediate module draw, before scan-volume rescaling. *)
type draw = {
  d_name : string;
  d_inputs : int;
  d_outputs : int;
  d_bidirs : int;
  d_cells : int; (* 0 for combinational *)
  d_chains : int;
  d_patterns : int;
}

let draw_comb rng index =
  {
    d_name = Printf.sprintf "comb%d" index;
    d_inputs = Rng.int_range rng ~lo:20 ~hi:250;
    d_outputs = Rng.int_range rng ~lo:20 ~hi:250;
    d_bidirs = (if Rng.bool rng 0.3 then Rng.int_range rng ~lo:1 ~hi:40 else 0);
    d_cells = 0;
    d_chains = 0;
    d_patterns = Rng.log_uniform_int rng ~lo:10 ~hi:200;
  }

let draw_scan rng index ~max_chains ~min_patterns ~max_patterns =
  let cells = Rng.log_uniform_int rng ~lo:100 ~hi:20_000 in
  let chains =
    max 1 (min max_chains (Rng.int_range rng ~lo:(cells / 800) ~hi:(cells / 100)))
  in
  {
    d_name = Printf.sprintf "scan%d" index;
    d_inputs = Rng.int_range rng ~lo:10 ~hi:120;
    d_outputs = Rng.int_range rng ~lo:10 ~hi:150;
    d_bidirs = (if Rng.bool rng 0.4 then Rng.int_range rng ~lo:1 ~hi:70 else 0);
    d_cells = cells;
    d_chains = chains;
    d_patterns = Rng.log_uniform_int rng ~lo:min_patterns ~hi:max_patterns;
  }

(* Split [cells] into [chains] near-equal chain lengths. *)
let chain_lengths ~cells ~chains =
  if cells = 0 then []
  else
    let base = cells / chains and extra = cells mod chains in
    List.init chains (fun i -> base + if i < extra then 1 else 0)

let to_module ~id ~scale d =
  let cells =
    if d.d_cells = 0 then 0
    else max d.d_chains (int_of_float (Float.round (float_of_int d.d_cells *. scale)))
  in
  Module_def.make ~bidirs:d.d_bidirs ~id ~name:d.d_name ~inputs:d.d_inputs
    ~outputs:d.d_outputs
    ~scan_chains:(chain_lengths ~cells ~chains:d.d_chains)
    ~patterns:d.d_patterns ()

let with_test_power (m : Module_def.t) test_power =
  Module_def.make ~bidirs:m.Module_def.bidirs ~test_power
    ?parent:m.Module_def.parent ~id:m.Module_def.id ~name:m.Module_def.name
    ~inputs:m.Module_def.inputs ~outputs:m.Module_def.outputs
    ~scan_chains:m.Module_def.scan_chains ~patterns:m.Module_def.patterns ()

(* Reshape the default toggle-proportional powers.  [Toggle] draws
   nothing from [rng], so adding the knob leaves every historical
   profile's output byte-identical. *)
let apply_power rng power modules =
  match power with
  | Toggle -> modules
  | Scaled { lo; hi } ->
      if lo <= 0.0 || hi < lo then
        invalid_arg "Data_gen.generate: bad Scaled power range";
      List.map
        (fun (m : Module_def.t) ->
          let f = lo +. (Rng.float rng *. (hi -. lo)) in
          with_test_power m (m.Module_def.test_power *. f))
        modules
  | Hotspot { count; factor } ->
      if count < 1 || factor <= 0.0 then
        invalid_arg "Data_gen.generate: bad Hotspot power profile";
      let n = List.length modules in
      let count = min count n in
      (* Distinct hotspot indices, drawn deterministically. *)
      let chosen = Hashtbl.create count in
      while Hashtbl.length chosen < count do
        Hashtbl.replace chosen (Rng.int rng ~bound:n) ()
      done;
      List.mapi
        (fun i (m : Module_def.t) ->
          if Hashtbl.mem chosen i then
            with_test_power m (m.Module_def.test_power *. factor)
          else m)
        modules

let generate ?(power = Toggle) profile =
  if profile.scan_modules < 1 then
    invalid_arg "Data_gen.generate: need at least one scan module";
  if profile.comb_modules < 0 then
    invalid_arg "Data_gen.generate: negative comb_modules";
  if profile.target_scan_cells < profile.scan_modules then
    invalid_arg "Data_gen.generate: target_scan_cells too small";
  if profile.min_patterns < 1 || profile.max_patterns < profile.min_patterns
  then invalid_arg "Data_gen.generate: bad pattern range";
  if profile.max_chains < 1 then
    invalid_arg "Data_gen.generate: max_chains must be >= 1";
  let rng = Rng.create profile.seed in
  let scan_draws =
    List.init profile.scan_modules (fun i ->
        draw_scan rng (i + 1) ~max_chains:profile.max_chains
          ~min_patterns:profile.min_patterns
          ~max_patterns:profile.max_patterns)
  in
  let comb_draws =
    List.init profile.comb_modules (fun i -> draw_comb rng (i + 1))
  in
  let raw_cells =
    List.fold_left (fun acc d -> acc + d.d_cells) 0 scan_draws
  in
  let scale = float_of_int profile.target_scan_cells /. float_of_int raw_cells in
  (* Interleave: one combinational core after every few scan cores, so
     id order does not correlate with core kind. *)
  let rec interleave scans combs acc =
    match (scans, combs) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | s1 :: s2 :: srest, c :: crest ->
        interleave srest crest (c :: s2 :: s1 :: acc)
    | [ s ], c :: crest -> interleave [] crest (c :: s :: acc)
  in
  let draws = interleave scan_draws comb_draws [] in
  let modules = List.mapi (fun i d -> to_module ~id:(i + 1) ~scale d) draws in
  let modules = apply_power rng power modules in
  Soc.make ~name:profile.name ~modules
