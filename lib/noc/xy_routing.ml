(* One step along an axis towards [target], taking the shorter way
   around on a torus (ties towards increasing coordinate). *)
let step ~kind ~size v target =
  match (kind : Topology.kind) with
  | Topology.Mesh -> if v < target then v + 1 else v - 1
  | Topology.Torus ->
      let forward = ((target - v) mod size + size) mod size in
      let backward = size - forward in
      let wrap x = ((x mod size) + size) mod size in
      if forward <= backward then wrap (v + 1) else wrap (v - 1)

let route topology ~src ~dst =
  if
    (not (Topology.in_bounds topology src))
    || not (Topology.in_bounds topology dst)
  then invalid_arg "Xy_routing.route: endpoint out of bounds";
  let kind = topology.Topology.kind in
  let rec go (c : Coord.t) acc =
    if Coord.equal c dst then List.rev (c :: acc)
    else if c.x <> dst.Coord.x then
      go
        { c with x = step ~kind ~size:topology.Topology.width c.x dst.Coord.x }
        (c :: acc)
    else
      go
        { c with y = step ~kind ~size:topology.Topology.height c.y dst.Coord.y }
        (c :: acc)
  in
  go src []

let hops topology ~src ~dst = Topology.distance topology src dst

let links_of_route routers =
  match routers with
  | [] -> invalid_arg "Xy_routing.links_of_route: empty route"
  | src :: _ ->
      let rec channels = function
        | a :: (b :: _ as rest) -> Link.channel a b :: channels rest
        | [ _ ] | [] -> []
      in
      let rec last = function
        | [ c ] -> c
        | _ :: rest -> last rest
        | [] -> assert false
      in
      (Link.Inject src :: channels routers) @ [ Link.Eject (last routers) ]

let links topology ~src ~dst = links_of_route (route topology ~src ~dst)

let routers_on_route topology ~src ~dst = hops topology ~src ~dst + 1
