type config = {
  topology : Topology.t;
  latency : Latency.t;
  buffer_flits : int;
  flit_energy : float;
}

let config ?(buffer_flits = 2) ?(flit_energy = 1.0) topology latency =
  if buffer_flits < 1 then
    invalid_arg "Flit_sim.config: buffer_flits must be >= 1";
  if flit_energy < 0.0 then invalid_arg "Flit_sim.config: negative flit_energy";
  { topology; latency; buffer_flits; flit_energy }

type delivery = {
  packet : Packet.t;
  header_at : int;
  delivered_at : int;
  energy : float;
}

let latency d = d.delivered_at - d.packet.Packet.inject_time

type result = { deliveries : delivery list; cycles : int }

(* Per-channel simulation state.  [holder] is the id of the packet
   currently owning the channel (wormhole exclusivity), or -1.
   [busy_until] is the cycle the in-progress flit transfer completes.
   [occupancy] counts flits sitting in the buffer at the downstream
   end of the channel. *)
type chan_state = {
  mutable holder : int;
  mutable busy_until : int;
  mutable occupancy : int;
  mutable transfer_pending : bool;
      (* a flit is mid-transfer and will enter the buffer at
         [busy_until] *)
}

(* Per-packet simulation state.  [path] is the ordered channel list
   (Inject, Channel*, Eject).  [crossed.(k)] counts flits that fully
   crossed channel [k].  [acquired_up_to] is the highest path index
   this packet's header has acquired. *)
type pkt_state = {
  pkt : Packet.t;
  path : Link.t array;
  crossed : int array;
  mutable acquired_up_to : int;
  mutable header_at : int;
  mutable delivered_at : int;
}

let run config packets =
  let ids = List.map (fun (p : Packet.t) -> p.id) packets in
  let sorted_ids = List.sort_uniq Int.compare ids in
  if List.length sorted_ids <> List.length ids then
    invalid_arg "Flit_sim.run: duplicate packet ids";
  List.iter
    (fun (p : Packet.t) ->
      if
        (not (Topology.in_bounds config.topology p.src))
        || not (Topology.in_bounds config.topology p.dst)
      then invalid_arg "Flit_sim.run: packet endpoint out of bounds")
    packets;
  let states =
    List.map
      (fun (p : Packet.t) ->
        let path =
          Array.of_list
            (Xy_routing.links config.topology ~src:p.src ~dst:p.dst)
        in
        {
          pkt = p;
          path;
          crossed = Array.make (Array.length path) 0;
          acquired_up_to = -1;
          header_at = -1;
          delivered_at = -1;
        })
      packets
  in
  (* Stable processing order: by injection time then id, so arbitration
     is deterministic (first-come, lowest id). *)
  let states =
    List.sort
      (fun a b ->
        let c =
          Int.compare a.pkt.Packet.inject_time b.pkt.Packet.inject_time
        in
        if c <> 0 then c else Int.compare a.pkt.Packet.id b.pkt.Packet.id)
      states
  in
  let channels : (Link.t, chan_state) Hashtbl.t = Hashtbl.create 64 in
  let chan link =
    match Hashtbl.find_opt channels link with
    | Some c -> c
    | None ->
        let c =
          { holder = -1; busy_until = 0; occupancy = 0; transfer_pending = false }
        in
        Hashtbl.add channels link c;
        c
  in
  let total_flit_hops = ref 0 in
  let all_delivered () = List.for_all (fun s -> s.delivered_at >= 0) states in
  let now = ref 0 in
  (* Upstream flit availability for channel [k] of packet [s]: the
     source (for k = 0, once injection time has come) or the buffer at
     the downstream end of channel [k-1].  Only evaluated when channel
     [k] has no transfer in flight, so [crossed.(k)] fully accounts for
     flits already consumed from that buffer. *)
  let flits_available s k =
    if k = 0 then
      if !now >= s.pkt.Packet.inject_time then
        s.pkt.Packet.flits - s.crossed.(0)
      else 0
    else s.crossed.(k - 1) - s.crossed.(k)
  in
  (* Downstream buffer room for channel [k]: the Eject channel drains
     into the sink (infinite), others into a finite buffer. *)
  let room s k =
    if k = Array.length s.path - 1 then max_int
    else config.buffer_flits - (chan s.path.(k)).occupancy
  in
  let step_packet s =
    if s.delivered_at < 0 then begin
      let path_len = Array.length s.path in
      (* 1. Complete finished transfers on every channel this packet
         holds. *)
      for k = 0 to s.acquired_up_to do
        let c = chan s.path.(k) in
        if c.holder = s.pkt.Packet.id && c.transfer_pending
           && !now >= c.busy_until
        then begin
          c.transfer_pending <- false;
          s.crossed.(k) <- s.crossed.(k) + 1;
          if k < path_len - 1 then c.occupancy <- c.occupancy + 1;
          incr total_flit_hops;
          if s.crossed.(k) = 1 && k = path_len - 1 then s.header_at <- !now;
          if s.crossed.(k) = s.pkt.Packet.flits then begin
            (* Tail passed: release the channel. *)
            c.holder <- -1;
            if k = path_len - 1 then s.delivered_at <- !now
          end
        end
      done;
      (* 2. Try to acquire the next channel for the header. *)
      if s.acquired_up_to < path_len - 1 then begin
        let k = s.acquired_up_to + 1 in
        if flits_available s k > 0 then begin
          let c = chan s.path.(k) in
          if c.holder = -1 then begin
            c.holder <- s.pkt.Packet.id;
            s.acquired_up_to <- k
          end
        end
      end;
      (* 3. Start new flit transfers on held, idle channels.  The
         header flit additionally pays the router's routing latency on
         each channel acquisition (modelled as part of its transfer
         time on that channel). *)
      for k = 0 to s.acquired_up_to do
        let c = chan s.path.(k) in
        if
          c.holder = s.pkt.Packet.id && (not c.transfer_pending)
          && !now >= c.busy_until
          && s.crossed.(k) < s.pkt.Packet.flits
          && flits_available s k > 0
          && room s k > 0
        then begin
          (* The header pays the routing latency at each router it
             enters: on the inject port and on every inter-router
             channel, but not on the eject port (leaving the last
             router is pure flow control). *)
          let is_header = s.crossed.(k) = 0 in
          let pays_routing = is_header && k < path_len - 1 in
          let cost =
            config.latency.Latency.flow_latency
            + if pays_routing then config.latency.Latency.routing_latency else 0
          in
          (* Consume the flit from the upstream buffer now. *)
          if k > 0 then begin
            let up = chan s.path.(k - 1) in
            up.occupancy <- up.occupancy - 1
          end;
          c.transfer_pending <- true;
          c.busy_until <- !now + cost
        end
      done
    end
  in
  let guard = ref 0 in
  let max_cycles =
    (* Generous bound: serialized delivery of everything. *)
    List.fold_left
      (fun acc s ->
        acc + s.pkt.Packet.inject_time
        + Latency.packet_latency config.latency
            ~hops:
              (Xy_routing.hops config.topology ~src:s.pkt.Packet.src
                 ~dst:s.pkt.Packet.dst)
            ~flits:s.pkt.Packet.flits)
      1000 states
    * 4
  in
  while not (all_delivered ()) do
    List.iter step_packet states;
    incr now;
    incr guard;
    if !guard > max_cycles then
      failwith "Flit_sim.run: simulation did not converge (deadlock?)"
  done;
  let finished = !now - 1 in
  let deliveries =
    states
    |> List.map (fun s ->
           {
             packet = s.pkt;
             header_at = s.header_at;
             delivered_at = s.delivered_at;
             energy =
               config.flit_energy
               *. float_of_int
                    (s.pkt.Packet.flits
                    * Xy_routing.routers_on_route config.topology
                        ~src:s.pkt.Packet.src ~dst:s.pkt.Packet.dst);
           })
    |> List.sort (fun a b -> Int.compare a.packet.Packet.id b.packet.Packet.id)
  in
  { deliveries; cycles = finished }
