type booking = { owner : int; start : int; finish : int }

(* Per-link calendar: bookings in parallel growable arrays, sorted by
   start time.  Reserved intervals never overlap, so the finish times
   are sorted too and every query reduces to one binary search. *)
type cal = {
  mutable starts : int array;
  mutable finishes : int array;
  mutable owners : int array;
  mutable len : int;
}

type t = { mutable by_link : cal Link.Map.t }

let create () = { by_link = Link.Map.empty }

let fresh_cal () =
  {
    starts = Array.make 8 0;
    finishes = Array.make 8 0;
    owners = Array.make 8 0;
    len = 0;
  }

(* Index of the first booking that ends after [time] — the only one
   that can overlap a window starting at [time].  Binary search over
   the (sorted) finish times. *)
let first_ending_after cal time =
  let lo = ref 0 and hi = ref cal.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cal.finishes.(mid) > time then hi := mid else lo := mid + 1
  done;
  !lo

let cal_free cal ~start ~finish =
  let i = first_ending_after cal start in
  i >= cal.len || cal.starts.(i) >= finish

let is_free t links ~start ~finish =
  start >= finish
  || List.for_all
       (fun link ->
         match Link.Map.find_opt link t.by_link with
         | None -> true
         | Some cal -> cal_free cal ~start ~finish)
       links

let conflicts t links ~start ~finish =
  if start >= finish then []
  else
    List.concat_map
      (fun link ->
        match Link.Map.find_opt link t.by_link with
        | None -> []
        | Some cal ->
            let rec go i acc =
              if i >= cal.len || cal.starts.(i) >= finish then List.rev acc
              else
                let b =
                  {
                    owner = cal.owners.(i);
                    start = cal.starts.(i);
                    finish = cal.finishes.(i);
                  }
                in
                go (i + 1) ((link, b) :: acc)
            in
            go (first_ending_after cal start) [])
      links

let ensure_capacity cal =
  if cal.len = Array.length cal.starts then begin
    let cap = 2 * cal.len in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 cal.len;
      b
    in
    cal.starts <- grow cal.starts;
    cal.finishes <- grow cal.finishes;
    cal.owners <- grow cal.owners
  end

(* Insert into a calendar the window was checked free on.  Everything
   before the insertion point ends by [start]; everything from it on
   starts at or after [finish] — sortedness is preserved. *)
let cal_insert cal ~owner ~start ~finish =
  ensure_capacity cal;
  let i = first_ending_after cal start in
  let tail = cal.len - i in
  Array.blit cal.starts i cal.starts (i + 1) tail;
  Array.blit cal.finishes i cal.finishes (i + 1) tail;
  Array.blit cal.owners i cal.owners (i + 1) tail;
  cal.starts.(i) <- start;
  cal.finishes.(i) <- finish;
  cal.owners.(i) <- owner;
  cal.len <- cal.len + 1

let reserve t ~owner links ~start ~finish =
  if start < 0 || finish < start then
    invalid_arg "Reservation.reserve: bad interval";
  if not (is_free t links ~start ~finish) then
    invalid_arg "Reservation.reserve: window is not free";
  if start < finish then
    List.iter
      (fun link ->
        let cal =
          match Link.Map.find_opt link t.by_link with
          | Some cal -> cal
          | None ->
              let cal = fresh_cal () in
              t.by_link <- Link.Map.add link cal t.by_link;
              cal
        in
        cal_insert cal ~owner ~start ~finish)
      links

let next_free_time t links ~from ~duration =
  if duration <= 0 then from
  else begin
    (* Fixpoint: any booking overlapping the candidate window pushes
       the candidate to that booking's finish.  Each step discards at
       least one booking, so it terminates, and any feasible start must
       be at or past every finish it jumps over — the result is the
       earliest free time. *)
    let candidate = ref from in
    let moved = ref true in
    while !moved do
      moved := false;
      List.iter
        (fun link ->
          match Link.Map.find_opt link t.by_link with
          | None -> ()
          | Some cal ->
              let i = first_ending_after cal !candidate in
              if i < cal.len && cal.starts.(i) < !candidate + duration then begin
                candidate := cal.finishes.(i);
                moved := true
              end)
        links
    done;
    !candidate
  end

let bookings t link =
  match Link.Map.find_opt link t.by_link with
  | None -> []
  | Some cal ->
      List.init cal.len (fun i ->
          {
            owner = cal.owners.(i);
            start = cal.starts.(i);
            finish = cal.finishes.(i);
          })
