type booking = { owner : int; start : int; finish : int }

(* Per-channel calendar: bookings in parallel growable arrays, sorted
   by start time.  Reserved intervals never overlap, so the finish
   times are sorted too and every query reduces to one binary
   search. *)
type cal = {
  mutable starts : int array;
  mutable finishes : int array;
  mutable owners : int array;
  mutable len : int;
}

(* Channels are the caller's dense nonnegative ids, so the calendar is
   a plain array indexed by channel — the scheduler probes it inside
   its inner candidate loop, where even a hashed lookup per link was
   measurable.  Untouched channels share one immutable empty calendar
   that is swapped for a private one on first booking. *)
type t = { mutable cals : cal array }

let empty_cal = { starts = [||]; finishes = [||]; owners = [||]; len = 0 }
let create () = { cals = Array.make 16 empty_cal }

let cal_at t c = if c < Array.length t.cals then t.cals.(c) else empty_cal

(* Forget every booking but keep each channel's private calendar and
   its capacity: a cleared calendar re-books without allocating, which
   is what makes reusing one calendar across thousands of scheduler
   evaluations worthwhile. *)
let clear t =
  Array.iter (fun cal -> if cal != empty_cal then cal.len <- 0) t.cals

let fresh_cal () =
  {
    starts = Array.make 8 0;
    finishes = Array.make 8 0;
    owners = Array.make 8 0;
    len = 0;
  }

(* The private, writable calendar of a channel, growing the channel
   array as needed. *)
let writable_cal t c =
  if c >= Array.length t.cals then begin
    let cals = Array.make (max (c + 1) (2 * Array.length t.cals)) empty_cal in
    Array.blit t.cals 0 cals 0 (Array.length t.cals);
    t.cals <- cals
  end;
  let cal = t.cals.(c) in
  if cal != empty_cal then cal
  else begin
    let cal = fresh_cal () in
    t.cals.(c) <- cal;
    cal
  end

(* Index of the first booking that ends after [time] — the only one
   that can overlap a window starting at [time].  Binary search over
   the (sorted) finish times. *)
let first_ending_after cal time =
  let lo = ref 0 and hi = ref cal.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cal.finishes.(mid) > time then hi := mid else lo := mid + 1
  done;
  !lo

let cal_free cal ~start ~finish =
  let i = first_ending_after cal start in
  i >= cal.len || cal.starts.(i) >= finish

(* Decisions-level diagnostics for a failed probe: the first booking
   blocking the window on [channel].  Off the fast path — only reached
   when the probe already failed and a collector asked for decision
   events. *)
let emit_conflict t channel ~start ~finish =
  let cal = cal_at t channel in
  let i = first_ending_after cal start in
  if i < cal.len then
    Nocplan_obs.Trace.instant "noc.reservation.conflict"
      ~attrs:
        [
          ("channel", Nocplan_obs.Trace.Int channel);
          ("owner", Nocplan_obs.Trace.Int cal.owners.(i));
          ("busy_start", Nocplan_obs.Trace.Int cal.starts.(i));
          ("busy_finish", Nocplan_obs.Trace.Int cal.finishes.(i));
          ("start", Nocplan_obs.Trace.Int start);
          ("finish", Nocplan_obs.Trace.Int finish);
        ]

let is_free t channels ~start ~finish =
  start >= finish
  ||
  let n = Array.length channels in
  let ok = ref true and i = ref 0 in
  while !ok && !i < n do
    ok := cal_free (cal_at t channels.(!i)) ~start ~finish;
    incr i
  done;
  if (not !ok) && Nocplan_obs.Trace.decisions () then
    emit_conflict t channels.(!i - 1) ~start ~finish;
  !ok

let conflicts t channels ~start ~finish =
  if start >= finish then []
  else
    List.concat_map
      (fun c ->
        let cal = cal_at t c in
        let rec go i acc =
          if i >= cal.len || cal.starts.(i) >= finish then List.rev acc
          else
            let b =
              {
                owner = cal.owners.(i);
                start = cal.starts.(i);
                finish = cal.finishes.(i);
              }
            in
            go (i + 1) ((c, b) :: acc)
        in
        go (first_ending_after cal start) [])
      (Array.to_list channels)

let ensure_capacity cal =
  if cal.len = Array.length cal.starts then begin
    let cap = 2 * cal.len in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 cal.len;
      b
    in
    cal.starts <- grow cal.starts;
    cal.finishes <- grow cal.finishes;
    cal.owners <- grow cal.owners
  end

(* Insert into a calendar the window was checked free on.  Everything
   before the insertion point ends by [start]; everything from it on
   starts at or after [finish] — sortedness is preserved. *)
let cal_insert cal ~owner ~start ~finish =
  ensure_capacity cal;
  let i = first_ending_after cal start in
  let tail = cal.len - i in
  Array.blit cal.starts i cal.starts (i + 1) tail;
  Array.blit cal.finishes i cal.finishes (i + 1) tail;
  Array.blit cal.owners i cal.owners (i + 1) tail;
  cal.starts.(i) <- start;
  cal.finishes.(i) <- finish;
  cal.owners.(i) <- owner;
  cal.len <- cal.len + 1

let reserve t ~owner channels ~start ~finish =
  if start < 0 || finish < start then
    invalid_arg "Reservation.reserve: bad interval";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Reservation.reserve: negative channel")
    channels;
  if not (is_free t channels ~start ~finish) then
    invalid_arg "Reservation.reserve: window is not free";
  if start < finish then
    Array.iter
      (fun c -> cal_insert (writable_cal t c) ~owner ~start ~finish)
      channels

(* Re-booking a window already proven free (a traced commit being
   replayed) skips the [is_free] revalidation of [reserve]: the
   scheduler's prefix resume re-applies hundreds of bookings per
   search step, and each is non-overlapping by construction. *)
let restore t ~owner channels ~start ~finish =
  if start < finish then
    Array.iter
      (fun c -> cal_insert (writable_cal t c) ~owner ~start ~finish)
      channels

let next_free_time t channels ~from ~duration =
  if duration <= 0 then from
  else begin
    (* Fixpoint: any booking overlapping the candidate window pushes
       the candidate to that booking's finish.  Each step discards at
       least one booking, so it terminates, and any feasible start must
       be at or past every finish it jumps over — the result is the
       earliest free time. *)
    let candidate = ref from in
    let moved = ref true in
    while !moved do
      moved := false;
      Array.iter
        (fun c ->
          let cal = cal_at t c in
          let i = first_ending_after cal !candidate in
          if i < cal.len && cal.starts.(i) < !candidate + duration then begin
            candidate := cal.finishes.(i);
            moved := true
          end)
        channels
    done;
    !candidate
  end

let bookings t channel =
  let cal = cal_at t channel in
  List.init cal.len (fun i ->
      {
        owner = cal.owners.(i);
        start = cal.starts.(i);
        finish = cal.finishes.(i);
      })
