(** Deterministic dimension-ordered (XY) routing.

    Packets travel first along the X dimension to the destination
    column, then along Y to the destination row — the routing
    algorithm the paper's tool supports.  On a torus the router takes
    the shorter way around each axis (ties broken towards increasing
    coordinate), which is the standard dimension-ordered torus rule. *)

val route : Topology.t -> src:Coord.t -> dst:Coord.t -> Coord.t list
(** The sequence of routers traversed, inclusive of [src] and [dst].
    [route t ~src ~dst:src] is [[src]].
    @raise Invalid_argument if an endpoint is out of bounds. *)

val hops : Topology.t -> src:Coord.t -> dst:Coord.t -> int
(** Number of inter-router channels on the route, i.e.
    {!Topology.distance}. *)

val links_of_route : Coord.t list -> Link.t list
(** The occupied channel list of a stream along an arbitrary router
    path (adjacent coordinates, inclusive of both tiles): [Inject]
    at the head, each inter-router channel in path order, [Eject] at
    the last router.  [links] is this applied to {!route}; detour
    routers ({!Nocplan_fault.Detour}) use it for their non-XY paths.
    @raise Invalid_argument on an empty route. *)

val links : Topology.t -> src:Coord.t -> dst:Coord.t -> Link.t list
(** The full occupied channel list of a stream from the tile at [src]
    to the tile at [dst]: [Inject src], each inter-router channel in
    path order, [Eject dst].  When [src = dst] this is
    [[Inject src; Eject src]] (the stream still crosses the local
    router). *)

val routers_on_route : Topology.t -> src:Coord.t -> dst:Coord.t -> int
(** Number of routers a packet traverses: [hops + 1]. *)
