(** Time-interval reservation calendar for NoC channels.

    Test streams occupy their XY paths for the whole duration of a
    test (circuit-style occupancy: the stream of pattern packets is
    continuous).  The scheduler uses this calendar to decide whether a
    candidate (source, CUT, sink) assignment is conflict-free and to
    book it.  Intervals are half-open [[start, finish)].

    Channels are identified by dense nonnegative integers assigned by
    the caller (the access table numbers each distinct {!Link.t} it
    routes over), so every probe is an array index — the calendar sits
    inside the scheduler's innermost candidate loop, where a keyed
    lookup per link dominated the evaluation cost.  Never-booked
    channels are implicitly free, whatever their id. *)

type t

type booking = {
  owner : int;  (** scheduler-chosen tag, e.g. the CUT's module id *)
  start : int;
  finish : int;
}

val create : unit -> t

val clear : t -> unit
(** Drop every booking but keep the per-channel storage, so the next
    run re-books without allocating.  Callers that reuse one calendar
    across runs (the scheduler's evaluation arena) depend on this
    being O(channels touched so far). *)

val is_free : t -> int array -> start:int -> finish:int -> bool
(** No booked interval on any of the channels overlaps
    [[start, finish)].  An empty interval ([start >= finish]) is
    always free.  When a {!Nocplan_obs.Trace} collector is installed
    at the [Decisions] level, a failed probe emits one
    [noc.reservation.conflict] instant naming the blocking booking —
    with no collector the probe is branch-free beyond one atomic
    load. *)

val conflicts : t -> int array -> start:int -> finish:int ->
  (int * booking) list
(** All bookings overlapping the window, for diagnostics. *)

val reserve : t -> owner:int -> int array -> start:int -> finish:int -> unit
(** Book the channels for the window.
    @raise Invalid_argument if [start < 0] or [finish < start], if a
    channel id is negative, or if the window is not free (callers must
    check first — booking a conflicting window is a scheduler bug). *)

val restore : t -> owner:int -> int array -> start:int -> finish:int -> unit
(** [reserve] minus the [is_free] revalidation, for re-applying a
    booking already known to be conflict-free — the scheduler's prefix
    resume replays traced commits with it.  Booking a window that is
    {e not} free corrupts the calendar's sorted invariant silently, so
    only traced history may go through here. *)

val next_free_time : t -> int array -> from:int -> duration:int -> int
(** Earliest [t >= from] such that [[t, t + duration)] is free on all
    channels.  With a finite number of bookings this always exists. *)

val bookings : t -> int -> booking list
(** Bookings on one channel, sorted by start time. *)
