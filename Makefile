# Convenience targets; dune does the real work.

.PHONY: all build test bench bench-json check examples clean doc doc-lint \
        coverage serve-smoke fault-smoke corpus-smoke testplan-lint

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable benchmark artefact only (fast): Figure-1 sweeps,
# timing vs the recorded seed baseline, written to BENCH_nocplan.json.
bench-json:
	dune exec bench/main.exe -- --smoke

# API docs via odoc when it is installed; skipped with a notice
# otherwise (the CI image does not ship odoc).
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc && echo "doc: _build/default/_doc/_html/index.html"; \
	else \
	  echo "doc: odoc not installed, skipping (opam install odoc)"; \
	fi

# Keep README/OBSERVABILITY fences and cross-links honest against the
# real CLI; builds @doc too when odoc is present.
doc-lint:
	sh tools/doc_lint.sh

# Test coverage via bisect_ppx when it is installed; skipped with a
# notice otherwise (the CI image does not ship bisect_ppx).  Every
# library carries an (instrumentation (backend bisect_ppx)) stanza,
# which dune resolves only when --instrument-with is passed, so plain
# builds never need the package.
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  rm -rf _coverage && \
	  BISECT_FILE=$$PWD/_coverage/bisect dune runtest --force \
	    --instrument-with bisect_ppx && \
	  bisect-ppx-report html --coverage-path _coverage -o _coverage/html && \
	  bisect-ppx-report summary --coverage-path _coverage && \
	  echo "coverage: _coverage/html/index.html"; \
	else \
	  echo "coverage: bisect_ppx not installed, skipping (opam install bisect_ppx)"; \
	fi

# Live-socket smoke: boot the real server, replay the committed
# request script through test/serve_replay.py and check the response
# shape (14 responses — including the batch-compatible plan/validate
# tail with distinct seeds and a warm-opt-out anneal — with the two
# bad requests refused).  Skipped with a
# notice when python3 is missing.
serve-smoke: build
	@if command -v python3 >/dev/null 2>&1; then \
	  sock=$$(mktemp -u /tmp/nocplan-smoke.XXXXXX.sock); \
	  dune exec bin/nocplan.exe -- serve --socket $$sock & pid=$$!; \
	  for i in $$(seq 1 50); do [ -S $$sock ] && break; sleep 0.1; done; \
	  out=$$(python3 test/serve_replay.py $$sock test/serve_smoke.jsonl); \
	  kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	  lines=$$(printf '%s\n' "$$out" | grep -c '"id"'); \
	  oks=$$(printf '%s\n' "$$out" | grep -c '"ok": true'); \
	  if [ "$$lines" -eq 14 ] && [ "$$oks" -eq 12 ]; then \
	    echo "serve-smoke: 14 responses, 12 ok, 2 refused — pass"; \
	  else \
	    echo "serve-smoke: FAIL ($$lines responses, $$oks ok)"; exit 1; \
	  fi; \
	else \
	  echo "serve-smoke: python3 not installed, skipping"; \
	fi

# Seeded fault-injection smoke on d695: the gate exits non-zero if any
# replanned schedule violates the independent fault invariants or the
# availability curve is not monotone in the fault rate.
fault-smoke: build
	dune exec bin/nocplan.exe -- faults d695_leon \
	  --rates 0,0.05,0.1,0.2 --seed 7 --gate

# dvsim-style testplan/registry cross-check: unknown suite references
# and unreferenced suites both fail the build.
testplan-lint: build
	sh tools/testplan_lint.sh

# Corpus smoke: a small seed-pinned synthetic corpus through the full
# checked-in testplan on two domains; exits non-zero if any testpoint
# reports a failed check (or the testplan itself has drifted).
corpus-smoke: testplan-lint
	dune exec bin/nocplan.exe -- verify --testplan test/testplan.json \
	  --count 12 --jobs 2 --seed 7

# The tier-1 gate plus doc lint plus a benchmark smoke run producing
# the JSON and checking it against the committed baseline (skip the
# regression gate with NOCPLAN_BENCH_GATE=off on unrelated machines).
check:
	dune build @all
	dune runtest
	sh tools/doc_lint.sh
	$(MAKE) coverage
	$(MAKE) serve-smoke
	$(MAKE) fault-smoke
	$(MAKE) corpus-smoke
	dune exec bench/main.exe -- --smoke --json _build/BENCH_smoke.json --gate BENCH_nocplan.json

examples:
	@for e in quickstart figure1 power_limits custom_soc greedy_anomaly \
	          software_test model_validation custom_program fault_tolerance \
	          paper_flow; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
