# Convenience targets; dune does the real work.

.PHONY: all build test bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart figure1 power_limits custom_soc greedy_anomaly \
	          software_test model_validation custom_program fault_tolerance \
	          paper_flow; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
