#!/bin/sh
# Cross-check test/testplan.json against the compiled property-suite
# registry, dvsim-style coverage annotation both ways: a testpoint
# naming a suite that does not exist fails, and a registered suite no
# testpoint references fails too (silent coverage loss).  The check
# itself lives in the binary (`nocplan verify --lint`), so the lint
# can never drift from the parser or the registry it guards.
set -e
cd "$(dirname "$0")/.."
dune build bin/nocplan.exe
exec dune exec bin/nocplan.exe -- verify --testplan test/testplan.json --lint
