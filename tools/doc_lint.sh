#!/bin/sh
# Documentation lint: keep the prose honest against the real CLI.
#
#   1. Every `nocplan <subcommand>` mentioned inside a fenced code
#      block of README.md / OBSERVABILITY.md must be a real
#      subcommand of the built binary.
#   1b. The CLI flag surface and the README must agree both ways:
#      every option flag declared by any subcommand's --help is
#      documented in README.md, and every --flag used in a fenced
#      nocplan example is a real flag (--help/--version exempt).
#   2. Every markdown file the README links to must exist.
#   3. OBSERVABILITY.md must be reachable from README.md (the span
#      taxonomy is documentation-as-contract for the golden tests).
#   4. If odoc is installed, `dune build @doc` must succeed; when it
#      is not installed the check is skipped with a notice (the CI
#      image does not ship odoc).
#
# Run from the repository root: `make doc-lint` or `sh tools/doc_lint.sh`.

set -eu

fail=0
err() { echo "doc-lint: $1" >&2; fail=1; }

BIN=_build/default/bin/nocplan.exe
if [ ! -x "$BIN" ]; then
  echo "doc-lint: building $BIN" >&2
  dune build bin/nocplan.exe
fi

# -- 1. CLI subcommands referenced in code fences ---------------------------

# COMMANDS section of --help=plain: subcommand names are the first
# word of indented entries.
subcommands=$("$BIN" --help=plain 2>/dev/null \
  | awk '/^COMMANDS/{s=1;next} /^[A-Z]/{s=0} s && /^       [a-z]/{print $1}' \
  | sort -u)
[ -n "$subcommands" ] || { err "could not extract subcommands from $BIN --help"; }

for doc in README.md OBSERVABILITY.md; do
  [ -f "$doc" ] || { err "$doc missing"; continue; }
  # Words following `nocplan` / `nocplan.exe --` inside ``` fences.
  mentioned=$(awk '/^```/{f=!f;next} f' "$doc" \
    | grep -oE 'nocplan(\.exe)?( --)? [a-z][a-z0-9-]*' \
    | awk '{print $NF}' | sort -u || true)
  for cmd in $mentioned; do
    if ! printf '%s\n' "$subcommands" | grep -qx "$cmd"; then
      err "$doc references unknown subcommand 'nocplan $cmd'"
    fi
  done
done

# -- 1b. CLI flags: --help and the README must agree ------------------------

# Union of declared option flags across every subcommand's help page.
# Declaration lines are exactly 7-space indented ("       --flag=VAL" or
# "       -x VAL, --flag=VAL"); deeper-indented description prose is
# excluded so a doc string mentioning another flag cannot declare it.
cli_flags=$(for cmd in $subcommands; do
    "$BIN" "$cmd" --help=plain 2>/dev/null \
      | grep -E '^       -' \
      | grep -oE -e '--[a-z][a-z0-9-]*'
  done | sort -u | grep -vE '^--(help|version)$' || true)
[ -n "$cli_flags" ] || err "could not extract option flags from $BIN help pages"

# Forward: every real flag is documented somewhere in the README.  The
# word boundary keeps --trace from being satisfied by --trace-ring.
for f in $cli_flags; do
  grep -qE -e "(^|[^a-z0-9-])$f([^a-z0-9-]|\$)" README.md \
    || err "README.md does not document CLI flag $f"
done

# Reverse: every --flag used in a fenced nocplan example is real.
readme_flags=$(awk '/^```/{f=!f;next} f && /nocplan/' README.md \
  | grep -oE -e '--[a-z][a-z0-9-]*' | sort -u || true)
for f in $readme_flags; do
  case "$f" in
    --help|--version) continue ;;
  esac
  printf '%s\n' "$cli_flags" | grep -qx -e "$f" \
    || err "README.md fenced example uses unknown CLI flag $f"
done

# -- 2. Local markdown links from the README --------------------------------

for target in $(grep -oE '\]\([A-Za-z0-9_./-]+\.md\)' README.md \
                  | sed 's/^](//; s/)$//' | sort -u); do
  [ -f "$target" ] || err "README.md links to missing file $target"
done

# -- 3. OBSERVABILITY.md reachable from README ------------------------------

grep -q 'OBSERVABILITY\.md' README.md \
  || err "README.md does not link OBSERVABILITY.md"
grep -q 'OBSERVABILITY\.md' DESIGN.md \
  || err "DESIGN.md does not reference OBSERVABILITY.md"

# -- 4. odoc (optional) ------------------------------------------------------

if command -v odoc >/dev/null 2>&1; then
  echo "doc-lint: odoc found, building @doc" >&2
  dune build @doc || err "dune build @doc failed"
else
  echo "doc-lint: odoc not installed, skipping API-doc build" >&2
fi

if [ "$fail" -ne 0 ]; then
  echo "doc-lint: FAILED" >&2
  exit 1
fi
echo "doc-lint: ok"
