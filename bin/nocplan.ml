(* nocplan — NoC-based SoC test planning with processor reuse.

   Command-line front end over the nocplan_core planner: inspect
   benchmarks, characterize the NoC and the processors, produce single
   schedules, run the paper's sweeps, and host the concurrent planning
   service. *)

module Itc02 = Nocplan_itc02
module Noc = Nocplan_noc
module Proc = Nocplan_proc
module Core = Nocplan_core
module Fault = Nocplan_fault
module Serve = Nocplan_serve
module Obs = Nocplan_obs
module Corpus = Nocplan_corpus
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Exit codes                                                         *)

(* Scripts driving nocplan (CI included) distinguish "you asked for
   something malformed" from "the instance is infeasible". *)
let exit_parse = 2
let exit_unschedulable = 3

let exits =
  Cmd.Exit.info exit_parse
    ~doc:
      "on malformed input: unknown system, unreadable or invalid benchmark \
       description, invalid generation profile."
  :: Cmd.Exit.info exit_unschedulable
       ~doc:"when the planner proves the requested instance unschedulable."
  :: Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let parse_fail msg =
  Fmt.epr "nocplan: %s@." msg;
  exit_parse

let plan_fail msg =
  Fmt.epr "nocplan: unschedulable: %s@." msg;
  exit_unschedulable

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                            *)

let load_system ~spec ~width ~height ~leons ~plasmas =
  (* A spec naming neither a builtin system nor a corpus benchmark may
     be a description file; its text goes through the same inline path
     the planning service uses. *)
  let is_named =
    Option.is_some (Serve.Sysbuild.builtin_system spec)
    || Option.is_some (Itc02.Benchmarks.find spec)
  in
  if (not is_named) && Sys.file_exists spec then
    match In_channel.with_open_text spec In_channel.input_all with
    | text ->
        Result.map_error
          (fun e -> Fmt.str "%s: %s" spec e)
          (Serve.Sysbuild.build
             { Serve.Sysbuild.system = spec; soc_text = Some text; width;
               height; leons; plasmas })
    | exception Sys_error msg -> Error msg
  else
    Serve.Sysbuild.build
      { Serve.Sysbuild.system = spec; soc_text = None; width; height; leons;
        plasmas }

let system_spec =
  let doc =
    "System to plan: a builtin system (d695_leon, p22810_leon, p93791_leon, \
     *_mixed), any ITC'02 corpus benchmark (u226 .. a586710) or a benchmark \
     description file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)

let width_arg =
  Arg.(value & opt (some int) None & info [ "width" ] ~docv:"W"
         ~doc:"Mesh width (benchmark/file systems only).")

let height_arg =
  Arg.(value & opt (some int) None & info [ "height" ] ~docv:"H"
         ~doc:"Mesh height (benchmark/file systems only).")

let leons_arg =
  Arg.(value & opt int 4 & info [ "leons" ] ~docv:"N"
         ~doc:"Leon processors to add (benchmark/file systems only).")

let plasmas_arg =
  Arg.(value & opt int 0 & info [ "plasmas" ] ~docv:"N"
         ~doc:"Plasma processors to add (benchmark/file systems only).")

let policy_arg =
  let policy_conv =
    Arg.enum [ ("greedy", Core.Scheduler.Greedy); ("lookahead", Core.Scheduler.Lookahead) ]
  in
  Arg.(value & opt policy_conv Core.Scheduler.Greedy & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Resource selection policy: greedy (the paper's) or lookahead.")

let application_arg =
  let application_conv =
    Arg.enum
      [ ("bist", Proc.Processor.Bist); ("decompress", Proc.Processor.Decompression) ]
  in
  Arg.(value & opt application_conv Proc.Processor.Bist & info [ "application" ] ~docv:"APP"
         ~doc:"Test application run by reused processors.")

let power_arg =
  Arg.(value & opt (some float) None & info [ "power" ] ~docv:"PCT"
         ~doc:"Power limit as a percentage of the sum of all core powers.")

let reuse_arg =
  Arg.(value & opt (some int) None & info [ "reuse" ] ~docv:"N"
         ~doc:"Number of processors reused for test (default: all).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record trace spans and write them to $(docv) as Chrome \
               trace-event JSON (open in chrome://tracing or Perfetto).")

let backend_arg =
  let backend_conv = Arg.enum [ ("greedy", `Greedy); ("binpack", `Binpack); ("race", `Race) ] in
  Arg.(value & opt backend_conv `Greedy & info [ "backend" ] ~docv:"BACKEND"
         ~doc:"Planning backend: greedy (the paper's event-driven list \
               scheduler), binpack (rectangle bin packing: shelf heuristic, \
               best-fit decreasing), or race (run every registered backend \
               concurrently on Domains and keep the best valid plan).")

(* Traced CLI runs want real time on the trace axis; tests that pin
   event structure use the library's deterministic default clock. *)
let wall_clock () =
  let epoch = Unix.gettimeofday () in
  fun () -> (Unix.gettimeofday () -. epoch) *. 1e6

(* Run [f] under a trace collector when [trace] (a Chrome JSON output
   path) or [decisions] (--explain) asks for one; return [f]'s result
   with the collected events.  The trace file is written on success. *)
let with_tracing ?(decisions = false) trace f =
  if trace = None && not decisions then (f (), [])
  else begin
    let level = if decisions then Obs.Trace.Decisions else Obs.Trace.Spans in
    let result, events =
      Obs.Trace.with_collector ~level ~clock:(wall_clock ()) f
    in
    (match trace with
    | Some path ->
        Obs.Chrome.to_file path events;
        Fmt.epr "nocplan: trace written to %s (%d events)@." path
          (List.length events)
    | None -> ());
    (result, events)
  end

(* ------------------------------------------------------------------ *)
(* show                                                               *)

let show_cmd =
  let run spec width height leons plasmas =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system ->
        Fmt.pr "%a@." Core.System.pp system;
        0
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg)
  in
  Cmd.v (cmd_info "show" ~doc:"Describe a system: modules, placement, ports.")
    term

(* ------------------------------------------------------------------ *)
(* plan                                                               *)

let pp_attempt ppf (a : Core.Backend.attempt) =
  match a.Core.Backend.outcome with
  | Ok s ->
      Fmt.pf ppf "  %-8s makespan %8d  %s  %.3fs" a.Core.Backend.backend
        s.Core.Schedule.makespan
        (if a.Core.Backend.valid then "valid  " else "INVALID")
        a.Core.Backend.latency_s
  | Error msg ->
      Fmt.pf ppf "  %-8s failed: %s  (%.3fs)" a.Core.Backend.backend msg
        a.Core.Backend.latency_s

let plan_cmd =
  let run spec width height leons plasmas policy application power reuse
      backend gantt resources json csv trace explain =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        let reuse =
          match reuse with
          | Some r -> r
          | None -> List.length system.Core.System.processors
        in
        let power_limit =
          Option.map
            (fun pct -> Core.System.power_limit_of_pct system ~pct)
            power
        in
        let solve () =
          match backend with
          | `Greedy ->
              ( Core.Backend.solve Core.Backend.greedy system
                  (Core.Scheduler.config ~policy ~application ~power_limit
                     ~reuse ()),
                None )
          | `Binpack ->
              ( Core.Backend.solve Core.Backend.binpack system
                  (Core.Scheduler.config ~policy ~application ~power_limit
                     ~reuse ()),
                None )
          | `Race ->
              let outcome =
                Core.Backend.race ~clock:Unix.gettimeofday system
                  (Core.Scheduler.config ~policy ~application ~power_limit
                     ~reuse ())
              in
              (outcome.Core.Backend.schedule, Some outcome)
        in
        match with_tracing ~decisions:explain trace solve with
        | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
        | (sched, _), _ when json ->
            print_string (Core.Export.schedule_json system sched);
            0
        | (sched, _), _ when csv ->
            print_string (Core.Export.schedule_csv system sched);
            0
        | (sched, race_outcome), events ->
            (match race_outcome with
            | Some o ->
                Fmt.pr "@[<v>backend race: winner %s@,%a@]@."
                  o.Core.Backend.winner
                  (Fmt.list ~sep:Fmt.cut pp_attempt)
                  o.Core.Backend.attempts
            | None -> ());
            Fmt.pr "%a@." Core.Schedule.pp sched;
            if gantt then
              print_string (Core.Gantt.render system sched);
            if resources then
              print_string (Core.Gantt.render_resources system ~reuse sched);
            (match
               Core.Schedule.validate system ~application ~power_limit ~reuse
                 sched
             with
            | Ok () -> Fmt.pr "schedule validated: ok@."
            | Error vs ->
                Fmt.pr "@[<v>schedule INVALID:@,%a@]@."
                  (Fmt.list ~sep:Fmt.cut Core.Schedule.pp_violation)
                  vs);
            if explain then
              Fmt.pr "@.%a@." Core.Explain.pp_report
                (Core.Explain.decisions_of_events events);
            0)
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart.")
  in
  let resources_arg =
    Arg.(value & flag & info [ "resources" ]
           ~doc:"Render per-resource utilization bars.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the schedule as JSON.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the schedule as CSV.")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Print the scheduler's decision log: every commit with its \
                 full candidate set, flagging greedy-anomaly commits where a \
                 busy external pair would have finished earlier than the \
                 processor chosen.")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ policy_arg $ application_arg $ power_arg
          $ reuse_arg $ backend_arg $ gantt_arg $ resources_arg $ json_arg
          $ csv_arg $ trace_arg $ explain_arg)
  in
  Cmd.v (cmd_info "plan" ~doc:"Produce and validate one test schedule.") term

(* ------------------------------------------------------------------ *)
(* stats                                                              *)

let stats_cmd =
  let run spec width height leons plasmas policy application power reuse vcd =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        let reuse =
          match reuse with
          | Some r -> r
          | None -> List.length system.Core.System.processors
        in
        match
          Core.Planner.schedule ~policy ~application ?power_limit_pct:power
            ~reuse system
        with
        | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
        | sched ->
            Fmt.pr "%a@." Core.Metrics.pp
              (Core.Metrics.of_schedule system ~reuse sched);
            (match vcd with
            | Some path ->
                Core.Vcd.to_file path system ~reuse sched;
                Fmt.pr "waveform written to %s@." path
            | None -> ());
            0)
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Also dump the schedule as a VCD waveform.")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ policy_arg $ application_arg $ power_arg
          $ reuse_arg $ vcd_arg)
  in
  Cmd.v
    (cmd_info "stats"
       ~doc:"Schedule quality metrics (concurrency, utilization, power).")
    term

(* ------------------------------------------------------------------ *)
(* anneal                                                             *)

let anneal_cmd =
  let run spec width height leons plasmas power reuse iterations seed chains
      exchange placement_moves trace =
    if placement_moves < 0.0 || placement_moves > 1.0 then
      parse_fail "--placement-moves must be within [0, 1]"
    else
      match load_system ~spec ~width ~height ~leons ~plasmas with
      | Error msg -> parse_fail msg
      | Ok system -> (
          let reuse =
            match reuse with
            | Some r -> r
            | None -> List.length system.Core.System.processors
          in
          let power_limit =
            Option.map
              (fun pct -> Core.System.power_limit_of_pct system ~pct)
              power
          in
          match
            with_tracing trace (fun () ->
                Core.Annealing.schedule ~power_limit ~iterations
                  ~seed:(Int64.of_int seed) ~chains ~exchange_period:exchange
                  ~placement_moves ~reuse system)
          with
          | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
          | r, _ ->
              Fmt.pr "%a@." Core.Schedule.pp r.Core.Annealing.schedule;
              Fmt.pr
                "greedy order %d -> annealed %d (%.1f%% better; %d engine \
                 evaluations, %d accepted moves, %d chains, %d exchanges)@."
                r.Core.Annealing.initial_makespan
                r.Core.Annealing.schedule.Core.Schedule.makespan
                (Core.Annealing.improvement_pct r)
                r.Core.Annealing.evaluations r.Core.Annealing.accepted
                r.Core.Annealing.chains r.Core.Annealing.exchanges;
              if r.Core.Annealing.placement_evals > 0 then
                Fmt.pr
                  "placement moves: %d evaluated, %d accepted (joint \
                   order+placement search)@."
                  r.Core.Annealing.placement_evals
                  r.Core.Annealing.placement_accepted;
              0)
  in
  let iterations_arg =
    Arg.(value & opt int 400 & info [ "iterations" ] ~docv:"N"
           ~doc:"Annealing iterations per chain (engine evaluations).")
  in
  let seed_arg =
    Arg.(value & opt int 0x5A & info [ "seed" ] ~docv:"SEED"
           ~doc:"Deterministic search seed.")
  in
  let chains_arg =
    Arg.(value & opt int 1 & info [ "chains" ] ~docv:"K"
           ~doc:"Parallel tempering chains (1 = the sequential annealer).")
  in
  let exchange_arg =
    Arg.(value & opt int 50 & info [ "exchange" ] ~docv:"N"
           ~doc:"Iterations between best-exchanges across chains.")
  in
  let placement_arg =
    Arg.(value & opt float 0.0 & info [ "placement-moves" ] ~docv:"RATIO"
           ~doc:"Probability in [0, 1] that a move swaps two module tiles \
                 instead of two order positions (0 = order-only annealing; \
                 processors and IO ports stay pinned).")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ power_arg $ reuse_arg $ iterations_arg
          $ seed_arg $ chains_arg $ exchange_arg $ placement_arg $ trace_arg)
  in
  Cmd.v
    (cmd_info "anneal"
       ~doc:
         "Improve the test order by simulated annealing (parallel tempering \
          with --chains > 1).")
    term

(* ------------------------------------------------------------------ *)
(* replay                                                             *)

let replay_cmd =
  let run spec width height leons plasmas reuse max_patterns =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        let system = Core.Schedule_sim.downscale ~max_patterns system in
        let reuse =
          match reuse with
          | Some r -> r
          | None -> List.length system.Core.System.processors
        in
        match Core.Planner.schedule ~reuse system with
        | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
        | sched ->
            let report = Core.Schedule_sim.replay system sched in
            Fmt.pr "%a@." Core.Schedule_sim.pp_report report;
            0)
  in
  let max_patterns_arg =
    Arg.(value & opt int 20 & info [ "max-patterns" ] ~docv:"N"
           ~doc:"Cap pattern counts before replay (flit-level cost).")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ reuse_arg $ max_patterns_arg)
  in
  Cmd.v
    (cmd_info "replay"
       ~doc:
         "Cross-validate the cost model: execute a (downscaled) schedule on \
          the flit-level simulator.")
    term

(* ------------------------------------------------------------------ *)
(* optimal                                                            *)

let optimal_cmd =
  let run spec width height leons plasmas power reuse max_nodes orders =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        let reuse =
          match reuse with
          | Some r -> r
          | None -> List.length system.Core.System.processors
        in
        let power_limit =
          Option.map
            (fun pct -> Core.System.power_limit_of_pct system ~pct)
            power
        in
        let greedy () =
          Core.Scheduler.run system
            (Core.Scheduler.config ~power_limit ~reuse ())
        in
        if orders then
          match
            Core.Exhaustive.order_search ~power_limit ~max_evals:max_nodes
              ~reuse system
          with
          | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
          | r ->
              let greedy = greedy () in
              Fmt.pr "%a@." Core.Schedule.pp r.Core.Exhaustive.schedule;
              Fmt.pr
                "greedy %d, best order %d (%s; %d engine evaluations, %d \
                 subtrees pruned)@."
                greedy.Core.Schedule.makespan
                r.Core.Exhaustive.schedule.Core.Schedule.makespan
                (if r.Core.Exhaustive.exact then "optimal over orders"
                 else "evaluation budget exhausted")
                r.Core.Exhaustive.evaluations r.Core.Exhaustive.pruned;
              0
        else
          match
            Core.Exhaustive.schedule ~power_limit ~max_nodes ~reuse system
          with
          | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
          | r ->
              let greedy = greedy () in
              Fmt.pr "%a@." Core.Schedule.pp r.Core.Exhaustive.schedule;
              Fmt.pr
                "greedy %d, branch-and-bound %d (%s, %d nodes expanded)@."
                greedy.Core.Schedule.makespan
                r.Core.Exhaustive.schedule.Core.Schedule.makespan
                (if r.Core.Exhaustive.exact then "optimal"
                 else "node budget exhausted")
                r.Core.Exhaustive.nodes;
              0)
  in
  let max_nodes_arg =
    Arg.(value & opt int 300_000 & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget (engine evaluations with \
                 $(b,--orders)).")
  in
  let orders_arg =
    Arg.(value & flag & info [ "orders" ]
           ~doc:"Search the order space (the space annealing samples) with \
                 prefix-resumed evaluations instead of the schedule space.")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ power_arg $ reuse_arg $ max_nodes_arg $ orders_arg)
  in
  Cmd.v
    (cmd_info "optimal"
       ~doc:"Certified-optimal schedule for small systems (branch and bound).")
    term

(* ------------------------------------------------------------------ *)
(* sweep                                                              *)

let sweep_cmd =
  let run spec width height leons plasmas policy application power csv trace =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        match
          with_tracing trace (fun () ->
              Core.Planner.reuse_sweep ~policy ~application
                ?power_limit_pct:power system)
        with
        | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
        | sweep, _ ->
            if csv then print_string (Core.Report.sweep_csv sweep)
            else begin
              Fmt.pr "%a@." Core.Planner.pp_sweep sweep;
              Fmt.pr "%a@." Core.Report.pp_headline (Core.Report.headline sweep)
            end;
            0)
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ policy_arg $ application_arg $ power_arg
          $ csv_arg $ trace_arg)
  in
  Cmd.v
    (cmd_info "sweep"
       ~doc:"Test time for every processor-reuse count (Figure 1 series).")
    term

(* ------------------------------------------------------------------ *)
(* characterize                                                       *)

let characterize_cmd =
  let run width height =
    let width = Option.value width ~default:4 in
    let height = Option.value height ~default:4 in
    let topology = Noc.Topology.make ~width ~height in
    let latency = Noc.Latency.hermes_like in
    let config = Noc.Flit_sim.config topology latency in
    let timing = Noc.Characterize.measure_timing config in
    Fmt.pr "NoC (%a, %a):@." Noc.Topology.pp topology Noc.Latency.pp latency;
    Fmt.pr "  measured on the flit simulator: %a@." Noc.Characterize.pp_timing
      timing;
    let power =
      Noc.Characterize.measure_power config (Noc.Traffic.spec ~packets:500 ())
    in
    Fmt.pr "  mean stream power: %a@.@." Noc.Power.pp power;
    List.iter
      (fun p -> Fmt.pr "%a@.@." Proc.Processor.pp p)
      [ Proc.Processor.leon ~id:1; Proc.Processor.plasma ~id:1 ];
    0
  in
  let term = Term.(const run $ width_arg $ height_arg) in
  Cmd.v
    (cmd_info "characterize"
       ~doc:"Measure NoC timing/power and processor test applications.")
    term

(* ------------------------------------------------------------------ *)
(* generate                                                           *)

let generate_cmd =
  let run name seed scan comb cells chains min_patterns max_patterns output =
    let profile =
      {
        Itc02.Data_gen.name;
        seed = Int64.of_int seed;
        scan_modules = scan;
        comb_modules = comb;
        target_scan_cells = cells;
        max_chains = chains;
        min_patterns;
        max_patterns;
      }
    in
    match Itc02.Data_gen.generate profile with
    | exception Invalid_argument msg -> parse_fail msg
    | soc -> (
        match output with
        | Some path ->
            Itc02.Printer.to_file path soc;
            Fmt.pr "%a@.written to %s@." Itc02.Soc.pp_summary soc path;
            0
        | None ->
            print_string (Itc02.Printer.to_string soc);
            0)
  in
  let name_arg =
    Arg.(value & opt string "synthetic" & info [ "name" ] ~docv:"NAME"
           ~doc:"Benchmark name.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Deterministic generation seed.")
  in
  let scan_arg =
    Arg.(value & opt int 8 & info [ "scan-modules" ] ~docv:"N"
           ~doc:"Number of scan-testable cores.")
  in
  let comb_arg =
    Arg.(value & opt int 2 & info [ "comb-modules" ] ~docv:"N"
           ~doc:"Number of combinational cores.")
  in
  let cells_arg =
    Arg.(value & opt int 10_000 & info [ "scan-cells" ] ~docv:"N"
           ~doc:"Total scan cells to calibrate to.")
  in
  let chains_arg =
    Arg.(value & opt int 32 & info [ "max-chains" ] ~docv:"N"
           ~doc:"Upper bound on scan chains per core.")
  in
  let min_patterns_arg =
    Arg.(value & opt int 20 & info [ "min-patterns" ] ~docv:"N"
           ~doc:"Minimum pattern count per core.")
  in
  let max_patterns_arg =
    Arg.(value & opt int 800 & info [ "max-patterns" ] ~docv:"N"
           ~doc:"Maximum pattern count per core.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the description to a file instead of stdout.")
  in
  let term =
    Term.(const run $ name_arg $ seed_arg $ scan_arg $ comb_arg
          $ cells_arg $ chains_arg $ min_patterns_arg $ max_patterns_arg
          $ output_arg)
  in
  Cmd.v
    (cmd_info "generate"
       ~doc:"Generate a deterministic synthetic benchmark description.")
    term

(* ------------------------------------------------------------------ *)
(* corpus                                                             *)

let corpus_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Deterministic corpus seed (generate/describe).")

let corpus_count_arg =
  Arg.(value & opt int 16 & info [ "count" ] ~docv:"N"
         ~doc:"Number of synthetic systems to draw (generate/describe).")

let corpus_cmd =
  let list_embedded () =
    Fmt.pr "%-10s %-8s %-12s %-14s %-12s@." "name" "modules" "scan cells"
      "test bits" "total power";
    List.iter
      (fun soc ->
        let cells =
          List.fold_left
            (fun acc m -> acc + Itc02.Module_def.scan_cells m)
            0 soc.Itc02.Soc.modules
        in
        Fmt.pr "%-10s %-8d %-12d %-14d %-12.1f@." soc.Itc02.Soc.name
          (Itc02.Soc.module_count soc)
          cells
          (Itc02.Soc.total_test_bits soc)
          (Itc02.Soc.total_test_power soc))
      (Itc02.Benchmarks.all ());
    0
  in
  let describe items =
    Fmt.pr "%a@." Corpus.Corpus.pp_header ();
    List.iter (fun item -> Fmt.pr "%a@." Corpus.Corpus.pp_row item) items;
    Fmt.pr "corpus digest: %s@." (Corpus.Corpus.digest items);
    0
  in
  let generate items out =
    match out with
    | None -> parse_fail "corpus generate needs --out DIR"
    | Some dir -> (
        match
          if Sys.file_exists dir then
            if Sys.is_directory dir then Ok ()
            else Error (dir ^ " exists and is not a directory")
          else begin
            Unix.mkdir dir 0o755;
            Ok ()
          end
        with
        | Error msg -> parse_fail msg
        | exception Unix.Unix_error (e, _, _) ->
            parse_fail (dir ^ ": " ^ Unix.error_message e)
        | Ok () ->
            List.iter
              (fun (item : Corpus.Corpus.item) ->
                Itc02.Printer.to_file
                  (Filename.concat dir (item.Corpus.Corpus.name ^ ".soc"))
                  item.Corpus.Corpus.soc)
              items;
            Out_channel.with_open_text (Filename.concat dir "MANIFEST.csv")
              (fun oc ->
                Out_channel.output_string oc Corpus.Corpus.csv_header;
                Out_channel.output_char oc '\n';
                List.iter
                  (fun item ->
                    Out_channel.output_string oc (Corpus.Corpus.csv_row item);
                    Out_channel.output_char oc '\n')
                  items);
            Fmt.pr "wrote %d systems and MANIFEST.csv to %s (digest %s)@."
              (List.length items) dir
              (Corpus.Corpus.digest items);
            0)
  in
  let run action seed count out =
    match action with
    | `List -> list_embedded ()
    | `Describe | `Generate -> (
        match Corpus.Corpus.generate ~seed:(Int64.of_int seed) ~count with
        | exception Invalid_argument msg -> parse_fail msg
        | items -> (
            match action with
            | `Describe -> describe items
            | _ -> generate items out))
  in
  let action_arg =
    let actions =
      [ ("list", `List); ("describe", `Describe); ("generate", `Generate) ]
    in
    Arg.(value & pos 0 (enum actions) `List
         & info [] ~docv:"ACTION"
             ~doc:
               "$(docv) is $(b,list) (default: the embedded ITC'02 \
                benchmarks), $(b,describe) (draw a seeded synthetic corpus \
                and print its table and digest) or $(b,generate) (write the \
                drawn systems and a MANIFEST.csv to --out).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory the generated corpus is written to.")
  in
  Cmd.v
    (cmd_info "corpus"
       ~doc:
         "List the embedded ITC'02 benchmark corpus, or draw a deterministic \
          synthetic SoC corpus (describe/generate).")
    Term.(const run $ action_arg $ corpus_seed_arg $ corpus_count_arg
          $ out_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)

let verify_cmd =
  let run testplan seed count jobs shard csv out lint trace =
    match Corpus.Testplan.load testplan with
    | Error msg -> parse_fail ("testplan: " ^ msg)
    | Ok plan -> (
        match Corpus.Testplan.lint ~suites:(Corpus.Suites.names ()) plan with
        | _ :: _ as errors ->
            List.iter (fun e -> Fmt.epr "nocplan: testplan: %s@." e) errors;
            exit_parse
        | [] ->
            if lint then begin
              Fmt.pr "testplan %s: %d testpoints over %d property suites, \
                      lint clean@."
                plan.Corpus.Testplan.name
                (List.length plan.Corpus.Testplan.testpoints)
                (List.length (Corpus.Suites.names ()));
              0
            end
            else begin
              let items =
                Corpus.Corpus.generate ~seed:(Int64.of_int seed) ~count
              in
              match
                match shard with
                | None -> Ok items
                | Some (k, n) -> (
                    match Corpus.Runner.shard ~k ~n items with
                    | sharded -> Ok sharded
                    | exception Invalid_argument msg -> Error msg)
              with
              | Error msg -> parse_fail msg
              | Ok items ->
                  let epoch = Unix.gettimeofday () in
                  let clock () = Unix.gettimeofday () -. epoch in
                  let report, _events =
                    with_tracing trace (fun () ->
                        Corpus.Runner.run ~jobs ?shard_of:shard ~clock
                          ~testplan:plan items)
                  in
                  if csv then Fmt.pr "%s@." (Corpus.Runner.csv report)
                  else Fmt.pr "%a@." Corpus.Runner.pp_report report;
                  Option.iter
                    (fun path ->
                      Out_channel.with_open_text path (fun oc ->
                          Out_channel.output_string oc
                            (Serve.Json.to_string
                               (Corpus.Runner.to_json
                                  ~seed:(Int64.of_int seed) report));
                          Out_channel.output_char oc '\n');
                      Fmt.pr "summary written to %s@." path)
                    out;
                  if Corpus.Runner.ok report then 0 else 1
            end)
  in
  let testplan_arg =
    Arg.(required & opt (some string) None & info [ "testplan" ] ~docv:"FILE"
           ~doc:"Machine-parseable testplan (JSON) mapping testpoints to \
                 property suites.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains the corpus sweep fans out over (clamped to \
                 the recommended domain count).")
  in
  let shard_conv =
    let parse s =
      match String.split_on_char '/' s with
      | [ k; n ] -> (
          match (int_of_string_opt k, int_of_string_opt n) with
          | Some k, Some n -> Ok (k, n)
          | _ -> Error (`Msg "expected K/N, e.g. 2/4"))
      | _ -> Error (`Msg "expected K/N, e.g. 2/4")
    in
    Arg.conv (parse, fun ppf (k, n) -> Fmt.pf ppf "%d/%d" k n)
  in
  let shard_arg =
    Arg.(value & opt (some shard_conv) None & info [ "shard" ] ~docv:"K/N"
           ~doc:"Verify only the K-th of N disjoint corpus shards (CI \
                 fan-out); the N shards cover the corpus exactly.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Print per-testpoint counts as CSV instead of the table.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the JSON summary artifact to $(docv).")
  in
  let lint_arg =
    Arg.(value & flag & info [ "lint" ]
           ~doc:"Only cross-check the testplan against the property-suite \
                 registry (both ways) and exit.")
  in
  let count_arg =
    Arg.(value & opt int 1000 & info [ "count" ] ~docv:"N"
           ~doc:"Corpus size to draw before sharding.")
  in
  let term =
    Term.(const run $ testplan_arg $ corpus_seed_arg $ count_arg $ jobs_arg
          $ shard_arg $ csv_arg $ out_arg $ lint_arg $ trace_arg)
  in
  Cmd.v
    (cmd_info "verify"
       ~doc:
         "Run every testplan testpoint's property suites over a seeded \
          synthetic corpus, Domain-parallel, and report per-testpoint \
          pass/fail/coverage counts.")
    term

(* ------------------------------------------------------------------ *)
(* faults                                                             *)

let faults_cmd =
  let run spec width height leons plasmas policy application power reuse
      rates seed selftest csv gate trace =
    match load_system ~spec ~width ~height ~leons ~plasmas with
    | Error msg -> parse_fail msg
    | Ok system -> (
        let reuse =
          match reuse with
          | Some r -> r
          | None -> List.length system.Core.System.processors
        in
        let power_limit =
          Option.map
            (fun pct -> Core.System.power_limit_of_pct system ~pct)
            power
        in
        let topology = system.Core.System.topology in
        match
          with_tracing trace (fun () ->
              let sweep =
                Fault.Injector.sweep ~policy ~application ~power_limit ~reuse
                  ~seed ~rates system
              in
              (* Independent per-step validation: every replanned
                 schedule must route only over healthy resources. *)
              let violations =
                List.concat_map
                  (fun (_, r) ->
                    List.concat_map
                      (fun (s : Fault.Injector.step) ->
                        match
                          Fault.Recover.validate ~application ~reuse
                            ~at:s.Fault.Injector.at
                            ~faults:s.Fault.Injector.faults system
                            s.Fault.Injector.outcome
                        with
                        | Ok () -> []
                        | Error vs -> vs)
                      r.Fault.Injector.steps)
                  sweep
              in
              (sweep, violations))
        with
        | exception Core.Scheduler.Unschedulable msg -> plan_fail msg
        | (sweep, violations), _ ->
            if selftest then begin
              let params = Fault.Selftest.params () in
              let config =
                Core.Scheduler.config ~policy ~application ~power_limit ~reuse
                  ()
              in
              let baseline = Core.Scheduler.run system config in
              let interleaved =
                Fault.Selftest.schedule ~policy:Fault.Selftest.Interleaved
                  params system config
              in
              let eager =
                Fault.Selftest.schedule ~policy:Fault.Selftest.Eager params
                  system config
              in
              Fmt.pr
                "self-test (router %d, link %d, %d lanes, horizon %d): \
                 trusted %d, interleaved %d, eager %d@."
                params.Fault.Selftest.router_test
                params.Fault.Selftest.link_test params.Fault.Selftest.lanes
                (Fault.Selftest.horizon params topology)
                baseline.Core.Schedule.makespan
                interleaved.Core.Schedule.makespan
                eager.Core.Schedule.makespan
            end;
            if csv then begin
              Fmt.pr "rate,faults,replans,abandoned,availability,makespan@.";
              List.iter
                (fun ((p : Fault.Injector.point), _) ->
                  Fmt.pr "%.3f,%d,%d,%d,%.4f,%d@." p.Fault.Injector.rate
                    p.Fault.Injector.injected p.Fault.Injector.replans
                    p.Fault.Injector.abandoned_count
                    p.Fault.Injector.availability p.Fault.Injector.makespan)
                sweep
            end
            else
              List.iter
                (fun ((p : Fault.Injector.point), _) ->
                  Fmt.pr "%a@." Fault.Injector.pp_point p)
                sweep;
            let monotone =
              let rec ok = function
                | (a : Fault.Injector.point) :: (b :: _ as rest) ->
                    a.Fault.Injector.availability
                    >= b.Fault.Injector.availability
                    && ok rest
                | [ _ ] | [] -> true
              in
              ok (List.map fst sweep)
            in
            if violations <> [] then
              Fmt.pr "@[<v>invariant violations:@,%a@]@."
                (Fmt.list ~sep:Fmt.cut Fault.Recover.pp_violation)
                violations;
            if not monotone then
              Fmt.pr "availability curve is not monotone in fault rate@.";
            if gate && (violations <> [] || not monotone) then begin
              Fmt.epr "nocplan: faults gate failed@.";
              1
            end
            else 0)
  in
  let rates_arg =
    let doc = "Comma-separated fault rates in [0, 1] to sweep." in
    Arg.(value
         & opt (list float) [ 0.0; 0.05; 0.1; 0.15; 0.2 ]
         & info [ "rates" ] ~docv:"R1,R2,..." ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Deterministic fault-injection seed.")
  in
  let selftest_arg =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Also report the network health phase: makespans under \
                 eager (test-first) and interleaved (test-on-demand) router \
                 self-test gating next to the trusted-network baseline.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the curve as CSV.")
  in
  let gate_arg =
    Arg.(value & flag & info [ "gate" ]
           ~doc:"Exit non-zero if any replanned schedule violates the \
                 independent fault invariants or the availability curve is \
                 not monotone in the fault rate (CI smoke gate).")
  in
  let term =
    Term.(const run $ system_spec $ width_arg $ height_arg $ leons_arg
          $ plasmas_arg $ policy_arg $ application_arg $ power_arg
          $ reuse_arg $ rates_arg $ seed_arg $ selftest_arg $ csv_arg
          $ gate_arg $ trace_arg)
  in
  Cmd.v
    (cmd_info "faults"
       ~doc:
         "Seeded fault-injection campaigns: kill routers and links \
          mid-session, replan over detour routes, and report the \
          availability / makespan-degradation curve.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                              *)

let serve_cmd =
  let run socket tcp tcp_ro workers queue cache warm no_coalesce no_batch
      batch_limit shared verbosity trace trace_ring =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (Some
         (match verbosity with
         | [] -> Logs.Warning
         | [ _ ] -> Logs.Info
         | _ -> Logs.Debug));
    (* The serve trace is bounded: a fixed-size ring of events whose
       overflow batches stream straight into the trace file, so memory
       stays at one ring's worth however long the server runs. *)
    let finish_trace =
      match trace with
      | None -> fun () -> ()
      | Some path ->
          let stream = Obs.Chrome.stream path in
          let collector =
            Obs.Trace.collector ~clock:(wall_clock ()) ~capacity:trace_ring
              ~on_flush:(Obs.Chrome.stream_events stream)
              ()
          in
          Obs.Trace.install collector;
          fun () ->
            Obs.Trace.uninstall ();
            Obs.Trace.flush collector;
            let n = Obs.Chrome.close_stream stream in
            Fmt.epr "nocplan: trace written to %s (%d events)@." path n
    in
    let make_service () =
      Serve.Service.create ?workers ~queue_capacity:queue
        ~cache_capacity:cache ~warm_capacity:warm
        ~coalescing:(not no_coalesce) ~batching:(not no_batch) ~batch_limit
        ~shared_capacity:shared ()
    in
    (match (socket, tcp, tcp_ro) with
    | None, None, None ->
        let service = make_service () in
        Serve.Server.serve_stdio service;
        Serve.Service.shutdown service
    | _ ->
        (* Take SIGINT/SIGTERM synchronously in a dedicated thread.  A
           Sys.Signal_handle callback only runs at an OCaml safepoint,
           and an idle server has every thread blocked in accept or a
           condition wait — the callback would never fire.  Blocking
           the signals here, before any worker or handler thread is
           spawned, makes every descendant inherit the mask. *)
        ignore (Thread.sigmask SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
        let service = make_service () in
        let listeners =
          (match socket with
          | Some path -> [ Serve.Server.listen service ~path ]
          | None -> [])
          @ (match tcp with
            | Some (host, port) ->
                [ Serve.Server.listen_tcp service ~host ~port ]
            | None -> [])
          @
          match tcp_ro with
          | Some (host, port) ->
              [ Serve.Server.listen_tcp ~read_only:true service ~host ~port ]
          | None -> []
        in
        let _stopper =
          Thread.create
            (fun () ->
              ignore (Thread.wait_signal [ Sys.sigint; Sys.sigterm ]);
              List.iter Serve.Server.stop listeners)
            ()
        in
        List.iter Serve.Server.wait listeners;
        Serve.Service.shutdown service);
    finish_trace ();
    0
  in
  let hostport =
    let parse s =
      let default_host = "127.0.0.1" in
      let of_port p =
        match int_of_string_opt p with
        | Some port when port >= 0 && port < 65536 -> Ok port
        | _ -> Error (`Msg (Printf.sprintf "bad port %S" p))
      in
      match String.rindex_opt s ':' with
      | None -> Result.map (fun port -> (default_host, port)) (of_port s)
      | Some i ->
          let host = String.sub s 0 i in
          let host = if host = "" then default_host else host in
          Result.map
            (fun port -> (host, port))
            (of_port (String.sub s (i + 1) (String.length s - i - 1)))
    in
    let print ppf (host, port) = Fmt.pf ppf "%s:%d" host port in
    Arg.conv (parse, print)
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of \
                 serving stdin/stdout.")
  in
  let tcp_arg =
    Arg.(value & opt (some hostport) None & info [ "tcp" ] ~docv:"[HOST:]PORT"
           ~doc:"Also listen on TCP at $(docv) (host defaults to \
                 127.0.0.1; port 0 picks a free one).")
  in
  let tcp_ro_arg =
    Arg.(value & opt (some hostport) None
         & info [ "tcp-ro" ] ~docv:"[HOST:]PORT"
             ~doc:"Also listen on TCP at $(docv) in read-only mode: metrics \
                   and prometheus ops are served, planning ops are refused \
                   with a read_only error — safe to expose to a scrape \
                   pipeline.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains (default: recommended domain count - 1, \
                 at least 1; clamped to the recommended count).")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Job queue capacity; a full queue rejects requests with an \
                 overload error.")
  in
  let cache_arg =
    Arg.(value & opt int 8 & info [ "cache" ] ~docv:"N"
           ~doc:"Access-table cache capacity (systems retained).")
  in
  let warm_arg =
    Arg.(value & opt int 32 & info [ "warm" ] ~docv:"N"
           ~doc:"Warm-start cache capacity: best annealing traces retained \
                 across requests, keyed by system and configuration (0 \
                 disables).")
  in
  let no_coalesce_arg =
    Arg.(value & flag & info [ "no-coalesce" ]
           ~doc:"Give every request its own solve instead of attaching \
                 identical concurrent requests to one in-flight job.")
  in
  let no_batch_arg =
    Arg.(value & flag & info [ "no-batch" ]
           ~doc:"Run every job alone instead of draining distinct but \
                 compatible queued requests (same system and configuration \
                 modulo order) onto one worker pass.")
  in
  let batch_limit_arg =
    Arg.(value & opt int 16 & info [ "batch-limit" ] ~docv:"N"
           ~doc:"Maximum requests grouped onto one batch pass (>= 2).")
  in
  let shared_arg =
    Arg.(value & opt int 8 & info [ "shared" ] ~docv:"N"
           ~doc:"Shared evaluation-cache registry capacity: per-(system, \
                 configuration) prefix-trace caches reused across requests \
                 (0 disables).")
  in
  let verbose_arg =
    Arg.(value & flag_all & info [ "v"; "verbose" ]
           ~doc:"Log requests to stderr (repeat for debug logging).")
  in
  let trace_ring_arg =
    Arg.(value & opt int 4096 & info [ "trace-ring" ] ~docv:"N"
           ~doc:"Trace ring capacity: events buffered in memory between \
                 flushes to the --trace file.")
  in
  let term =
    Term.(const run $ socket_arg $ tcp_arg $ tcp_ro_arg $ workers_arg
          $ queue_arg $ cache_arg $ warm_arg $ no_coalesce_arg $ no_batch_arg
          $ batch_limit_arg $ shared_arg $ verbose_arg $ trace_arg
          $ trace_ring_arg)
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:
         "Run the concurrent planning service: JSON-lines requests over \
          stdin/stdout, a Unix-domain socket, and/or TCP.")
    term

let main =
  let doc = "test planning for NoC-based SoCs with processor reuse" in
  Cmd.group
    (Cmd.info "nocplan" ~version:"1.0.0" ~doc ~exits)
    [
      show_cmd;
      plan_cmd;
      sweep_cmd;
      characterize_cmd;
      replay_cmd;
      optimal_cmd;
      stats_cmd;
      anneal_cmd;
      generate_cmd;
      corpus_cmd;
      verify_cmd;
      faults_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval' main)
