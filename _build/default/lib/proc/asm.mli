(** Textual assembly for the {!Isa} instruction set.

    Accepts the syntax {!Isa.pp} prints, one statement per line:

    {v
    # comment (also ';')
    loop:                 # a label
      li r1, 42
      addi r1, r1, -1
      load r2, 4(r3)
      store r2, 4(r3)
      bne r1, r0, loop
      send r1
      halt
    v}

    Mnemonics and register names are case-insensitive; commas are
    optional separators. *)

type error = { line : int; message : string }

val parse : string -> (Program.stmt list, error) result
(** Parse statements without assembling (labels unresolved). *)

val parse_program : string -> (Program.t, error) result
(** Parse and assemble; assembler errors (duplicate/undefined labels)
    are reported on line 0. *)

val to_string : Program.stmt list -> string
(** Render statements in the accepted syntax;
    [parse (to_string stmts)] round-trips. *)

val pp_error : error Fmt.t
