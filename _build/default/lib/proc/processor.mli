(** A processor available for reuse as a test source and sink.

    Bundles everything the planner needs: the measured characterization
    of each test application (obtained by running the application on
    the {!Machine} interpreter under the processor's cycle table) and
    the processor's own test requirements (it may only be reused after
    it has been tested). *)

type application = Bist | Decompression
(** How the processor produces stimuli when acting as a source.  The
    sink side always runs the MISR compactor. *)

type t = private {
  name : string;
  isa_family : string;
  costs : Machine.costs;
  bist : Characterization.t;
  sink : Characterization.t;
  decompression : Characterization.t;
  self_test : Nocplan_itc02.Module_def.t;
      (** the processor as a core under test; its [id] is assigned when
          the processor is embedded in a system *)
  power_active : float;
  memory_capacity_words : int;
      (** local memory available for the test program and its data;
          bounds which cores the decompression application can serve *)
}

val make :
  ?memory_capacity_words:int ->
  name:string ->
  isa_family:string ->
  costs:Machine.costs ->
  power_active:float ->
  self_test:Nocplan_itc02.Module_def.t ->
  unit ->
  t
(** Build a processor description, measuring all three application
    characterizations on the interpreter.  [memory_capacity_words]
    defaults to 16384.
    @raise Invalid_argument if the capacity is [< 1]. *)

val leon : id:int -> t
(** The Leon (SPARC V8) preset with its self-test module under the
    given benchmark id. *)

val plasma : id:int -> t
(** The Plasma (MIPS-I) preset. *)

val source_characterization : t -> application -> Characterization.t

val generation_overhead : t -> application -> int
(** Whole-cycle steady-state generation cost per pattern when this
    processor is the test source — the paper's "the processor takes 10
    clock cycles to generate a test pattern" figure, measured:
    [round cycles_per_pattern] of the application. *)

val memory_capacity : t -> int
(** [memory_capacity_words]. *)

val with_self_test_id : t -> id:int -> t
(** The same processor with its self-test module renumbered. *)

val equal : t -> t -> bool
val pp : t Fmt.t
