type reg = int

let reg_count = 32

type 'label t =
  | Li of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Addi of reg * reg * int
  | Sub of reg * reg * reg
  | Xor of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Beq of reg * reg * 'label
  | Bne of reg * reg * 'label
  | Blt of reg * reg * 'label
  | Jump of 'label
  | Send of reg
  | Recv of reg
  | Halt

let map_label f = function
  | Li (rd, imm) -> Li (rd, imm)
  | Mov (rd, rs) -> Mov (rd, rs)
  | Add (rd, rs1, rs2) -> Add (rd, rs1, rs2)
  | Addi (rd, rs, imm) -> Addi (rd, rs, imm)
  | Sub (rd, rs1, rs2) -> Sub (rd, rs1, rs2)
  | Xor (rd, rs1, rs2) -> Xor (rd, rs1, rs2)
  | And (rd, rs1, rs2) -> And (rd, rs1, rs2)
  | Or (rd, rs1, rs2) -> Or (rd, rs1, rs2)
  | Shl (rd, rs, imm) -> Shl (rd, rs, imm)
  | Shr (rd, rs, imm) -> Shr (rd, rs, imm)
  | Load (rd, rs, off) -> Load (rd, rs, off)
  | Store (rd, rs, off) -> Store (rd, rs, off)
  | Beq (r1, r2, l) -> Beq (r1, r2, f l)
  | Bne (r1, r2, l) -> Bne (r1, r2, f l)
  | Blt (r1, r2, l) -> Blt (r1, r2, f l)
  | Jump l -> Jump (f l)
  | Send rs -> Send rs
  | Recv rd -> Recv rd
  | Halt -> Halt

let regs_of = function
  | Li (rd, _) -> [ rd ]
  | Mov (a, b) | Shl (a, b, _) | Shr (a, b, _) | Addi (a, b, _)
  | Load (a, b, _) | Store (a, b, _) ->
      [ a; b ]
  | Add (a, b, c) | Sub (a, b, c) | Xor (a, b, c) | And (a, b, c)
  | Or (a, b, c) ->
      [ a; b; c ]
  | Beq (a, b, _) | Bne (a, b, _) | Blt (a, b, _) -> [ a; b ]
  | Jump _ | Halt -> []
  | Send r | Recv r -> [ r ]

let check_registers instr =
  List.for_all (fun r -> r >= 0 && r < reg_count) (regs_of instr)

let pp pp_label ppf = function
  | Li (rd, imm) -> Fmt.pf ppf "li r%d, %d" rd imm
  | Mov (rd, rs) -> Fmt.pf ppf "mov r%d, r%d" rd rs
  | Add (rd, a, b) -> Fmt.pf ppf "add r%d, r%d, r%d" rd a b
  | Addi (rd, rs, imm) -> Fmt.pf ppf "addi r%d, r%d, %d" rd rs imm
  | Sub (rd, a, b) -> Fmt.pf ppf "sub r%d, r%d, r%d" rd a b
  | Xor (rd, a, b) -> Fmt.pf ppf "xor r%d, r%d, r%d" rd a b
  | And (rd, a, b) -> Fmt.pf ppf "and r%d, r%d, r%d" rd a b
  | Or (rd, a, b) -> Fmt.pf ppf "or r%d, r%d, r%d" rd a b
  | Shl (rd, rs, imm) -> Fmt.pf ppf "shl r%d, r%d, %d" rd rs imm
  | Shr (rd, rs, imm) -> Fmt.pf ppf "shr r%d, r%d, %d" rd rs imm
  | Load (rd, rs, off) -> Fmt.pf ppf "load r%d, %d(r%d)" rd off rs
  | Store (rd, rs, off) -> Fmt.pf ppf "store r%d, %d(r%d)" rd off rs
  | Beq (a, b, l) -> Fmt.pf ppf "beq r%d, r%d, %a" a b pp_label l
  | Bne (a, b, l) -> Fmt.pf ppf "bne r%d, r%d, %a" a b pp_label l
  | Blt (a, b, l) -> Fmt.pf ppf "blt r%d, r%d, %a" a b pp_label l
  | Jump l -> Fmt.pf ppf "jump %a" pp_label l
  | Send r -> Fmt.pf ppf "send r%d" r
  | Recv r -> Fmt.pf ppf "recv r%d" r
  | Halt -> Fmt.pf ppf "halt"
