(** Software test-data decompression — the paper's announced
    extension ("in the near future we will also support
    decompression").

    The processor reads run-length-encoded test data from its local
    memory, expands it and sends the expanded words to the CUT.  The
    attraction over BIST is deterministic (ATPG) patterns at a memory
    cost proportional to the compressed size. *)

val encode : int list -> int array
(** Run-length encode a word sequence as [(count, word)] pairs, zero
    terminated — the memory image {!program} consumes.  Runs longer
    than [2^31 - 1] are split. *)

val decoded_length : int array -> int
(** Number of words {!program} will emit for a memory image.
    @raise Invalid_argument on a malformed (unterminated or odd)
    image. *)

val program : Program.t
(** The decompression loop: reads pairs at address 0, sends each word
    [count] times, halts on a zero count. *)

val compression_ratio : int list -> float
(** [decoded words / encoded words] of {!encode} on the sequence. *)

val estimated_memory_words : words:int -> mean_run_length:int -> int
(** Memory footprint of serving a test set of [words] stimulus words
    through this application, assuming runs of the given mean length:
    the RLE image (two words per run plus the terminator) plus the
    program itself.
    @raise Invalid_argument unless both arguments are [>= 1]. *)
