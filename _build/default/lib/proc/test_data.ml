module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper
module Rng = Nocplan_itc02.Data_gen.Rng

type style = Atpg of float | Random

let pp_style ppf = function
  | Atpg d -> Fmt.pf ppf "atpg(care %.2f)" d
  | Random -> Fmt.string ppf "random"


let stimulus_words style ~seed ~words_per_pattern ~patterns =
  if words_per_pattern < 1 || patterns < 1 then
    invalid_arg "Test_data.stimulus_words: non-positive size";
  (match style with
  | Atpg d when d < 0.0 || d > 1.0 ->
      invalid_arg "Test_data.stimulus_words: care density outside [0, 1]"
  | Atpg _ | Random -> ());
  let rng = Rng.create seed in
  let word () =
    match style with
    | Random -> Rng.int rng ~bound:0x40000000 lxor (Rng.int rng ~bound:4 lsl 30)
    | Atpg density ->
        (* Care bits cluster: a word is either entirely don't-care
           (zero fill, the common case) or a care word with random
           content.  This word-level clustering is what makes real
           ATPG stimulus run-length compressible. *)
        if Rng.bool rng density then
          ((Rng.int rng ~bound:0x40000000 lsl 2) lor Rng.int rng ~bound:4)
          land 0xFFFFFFFF
        else 0
  in
  List.concat_map
    (fun _ -> List.init words_per_pattern (fun _ -> word ()))
    (List.init patterns (fun p -> p))

let words_per_pattern ~flit_width m =
  let wrapper = Wrapper.design ~width:flit_width m in
  wrapper.Wrapper.scan_in_max + 1

let stream_for style ~seed ~flit_width m =
  stimulus_words style ~seed
    ~words_per_pattern:(words_per_pattern ~flit_width m)
    ~patterns:m.Module_def.patterns

let measured_compression style ~seed ~flit_width m =
  Decompress.compression_ratio (stream_for style ~seed ~flit_width m)

let measured_memory_words style ~seed ~flit_width m =
  let image = Decompress.encode (stream_for style ~seed ~flit_width m) in
  Array.length image + Program.length Decompress.program
