(** Cycle and test parameters of the Leon processor (SPARC V8
    compliant, the synthesizable core from Gaisler used by the paper).

    The cycle table reflects the single-issue 5-stage integer pipeline:
    single-cycle ALU, 2-cycle loads, 3-cycle stores (SPARC stores
    occupy the memory stage an extra cycle), and an untaken-delay-slot
    penalty on taken branches.  It is calibrated so that the software
    BIST loop costs the ~10 cycles per pattern the paper assumes —
    {!Processor.leon} measures the actual figure by running the
    program. *)

val costs : Machine.costs

val power_active : float
(** Power drawn while the processor runs a test application. *)

val self_test : id:int -> Nocplan_itc02.Module_def.t
(** The processor itself as a core under test.  Leon is the complex
    processor of the pair: many scan cells and a large pattern count,
    so it becomes available as a test resource late ("complex
    processors ... may be reused for test few times"). *)
