let max_run = 0x7FFFFFFF

let encode words =
  let rec runs = function
    | [] -> []
    | w :: _ as all ->
        let rec split n = function
          | x :: rest when x = w && n < max_run -> split (n + 1) rest
          | rest -> (n, rest)
        in
        let count, rest = split 0 all in
        (count, w) :: runs rest
  in
  let pairs = runs words in
  let image = Array.make ((2 * List.length pairs) + 1) 0 in
  List.iteri
    (fun i (count, w) ->
      image.(2 * i) <- count;
      image.((2 * i) + 1) <- w)
    pairs;
  image

let decoded_length image =
  let n = Array.length image in
  let rec go i acc =
    if i >= n then invalid_arg "Decompress.decoded_length: unterminated image"
    else if image.(i) = 0 then acc
    else if i + 1 >= n then
      invalid_arg "Decompress.decoded_length: truncated pair"
    else go (i + 2) (acc + image.(i))
  in
  go 0 0

let program =
  let open Isa in
  Program.assemble_exn
    [
      Instr (Li (1, 0));
      Label "loop";
      Instr (Load (2, 1, 0));
      Instr (Beq (2, 0, "done"));
      Instr (Load (3, 1, 1));
      Instr (Addi (1, 1, 2));
      Label "emit";
      Instr (Send 3);
      Instr (Addi (2, 2, -1));
      Instr (Bne (2, 0, "emit"));
      Instr (Jump "loop");
      Label "done";
      Instr Halt;
    ]

let estimated_memory_words ~words ~mean_run_length =
  if words < 1 || mean_run_length < 1 then
    invalid_arg "Decompress.estimated_memory_words: arguments must be >= 1";
  let runs = (words + mean_run_length - 1) / mean_run_length in
  (2 * runs) + 1 + Program.length program

let compression_ratio words =
  match words with
  | [] -> 1.0
  | _ ->
      float_of_int (List.length words)
      /. float_of_int (Array.length (encode words))
