module Module_def = Nocplan_itc02.Module_def

let costs =
  Machine.costs ~alu:1 ~load:2 ~store:3 ~branch_taken:2 ~branch_not_taken:1
    ~jump:2 ~send:3 ~recv:3

let power_active = 120.0

(* Scan structure and pattern count of a Leon-class core: a few
   thousand flip-flops (integer unit, register windows, control) in 32
   balanced chains, with the large deterministic pattern set complex
   processors need. *)
let self_test ~id =
  let cells = 2600 and chain_count = 32 in
  let base = cells / chain_count and extra = cells mod chain_count in
  Module_def.make ~id ~name:"leon"
    ~inputs:92 ~outputs:64
    ~scan_chains:(List.init chain_count (fun i -> base + if i < extra then 1 else 0))
    ~patterns:420 ()
