(** Cycle and test parameters of the Plasma processor (MIPS-I
    compliant, the synthesizable core from opencores.org used by the
    paper).

    Plasma is a small 2/3-stage implementation without a load delay
    bypass: loads, stores and taken branches all stall, so its test
    applications run slower than Leon's — but as the simpler core it
    needs far fewer patterns for its own test and becomes a reusable
    test resource earlier. *)

val costs : Machine.costs
val power_active : float
val self_test : id:int -> Nocplan_itc02.Module_def.t
