(** Cycle-counting interpreter for {!Isa} programs.

    The interpreter is deliberately simple — in-order, one instruction
    at a time — with all micro-architectural difference between the
    modelled processors captured by the {!costs} table.  Words are
    32-bit (values are masked to 32 bits on every write). *)

type costs = {
  alu : int;  (** register-register and register-immediate ALU ops *)
  load : int;
  store : int;
  branch_taken : int;
  branch_not_taken : int;
  jump : int;
  send : int;  (** write to the network-interface register *)
  recv : int;
}

val costs :
  alu:int ->
  load:int ->
  store:int ->
  branch_taken:int ->
  branch_not_taken:int ->
  jump:int ->
  send:int ->
  recv:int ->
  costs
(** @raise Invalid_argument if any cost is [< 1]. *)

type io = {
  on_send : int -> unit;  (** called for each [Send]ed word *)
  recv_word : unit -> int;  (** supplies each [Recv]ed word *)
}

val null_io : io
(** Discards sends, supplies zeros. *)

type outcome =
  | Halted  (** the program executed [Halt] *)
  | Fuel_exhausted  (** [max_cycles] was reached first *)

type stats = {
  outcome : outcome;
  cycles : int;
  instructions : int;
  sent_words : int;
  received_words : int;
}

val run :
  ?io:io ->
  ?memory_words:int ->
  ?memory_image:int array ->
  ?max_cycles:int ->
  costs ->
  Program.t ->
  stats
(** Execute from instruction 0.  [memory_words] defaults to 4096,
    [max_cycles] to 100 million; [memory_image], when given, is copied
    into memory starting at address 0 before execution.

    @raise Invalid_argument on a memory access out of bounds, a jump
    outside the program (both indicate a broken test program), or a
    [memory_image] larger than memory. *)
