let default_taps = 0x80200003
(* x^32 + x^22 + x^2 + x + 1, maximal length, expressed as the XOR
   mask applied when the shifted-out bit is 1 (Galois form). *)

let word_mask = 0xFFFFFFFF

(* One Galois-LFSR step, the computation the generator program codes. *)
let lfsr_step ~taps state =
  let low_bit = state land 1 in
  let shifted = state lsr 1 in
  if low_bit = 1 then (shifted lxor taps) land word_mask else shifted

let reference_states ~seed ~taps ~count =
  if seed = 0 then invalid_arg "Bist.reference_states: zero seed";
  let rec go state n acc =
    if n = 0 then List.rev acc
    else
      let state = lfsr_step ~taps state in
      go state (n - 1) (state :: acc)
  in
  go (seed land word_mask) count []

(* One MISR step: shift the signature, feed back the taps on overflow,
   mix in the response word. *)
let misr_step ~taps signature word =
  let top_bit = (signature lsr 31) land 1 in
  let shifted = (signature lsl 1) land word_mask in
  let folded = if top_bit = 1 then shifted lxor taps else shifted in
  (folded lxor word) land word_mask

let reference_signature ~taps words =
  List.fold_left (misr_step ~taps) 0 words

let generator_program ~patterns ~seed ~taps =
  if patterns < 1 then invalid_arg "Bist.generator_program: patterns < 1";
  if seed = 0 then invalid_arg "Bist.generator_program: zero seed";
  let open Isa in
  Program.assemble_exn
    [
      Instr (Li (5, 1));
      Instr (Li (3, taps));
      Instr (Li (1, seed));
      Instr (Li (2, patterns));
      Label "loop";
      Instr (And (4, 1, 5));
      Instr (Shr (1, 1, 1));
      Instr (Beq (4, 0, "no_feedback"));
      Instr (Xor (1, 1, 3));
      Label "no_feedback";
      Instr (Send 1);
      Instr (Addi (2, 2, -1));
      Instr (Bne (2, 0, "loop"));
      Instr Halt;
    ]

let sink_program ~words ~taps =
  if words < 1 then invalid_arg "Bist.sink_program: words < 1";
  let open Isa in
  Program.assemble_exn
    [
      Instr (Li (3, taps));
      Instr (Li (1, 0));
      Instr (Li (2, words));
      Label "loop";
      Instr (Recv (4));
      Instr (Shr (6, 1, 31));
      Instr (Shl (1, 1, 1));
      Instr (Beq (6, 0, "no_feedback"));
      Instr (Xor (1, 1, 3));
      Label "no_feedback";
      Instr (Xor (1, 1, 4));
      Instr (Addi (2, 2, -1));
      Instr (Bne (2, 0, "loop"));
      Instr Halt;
    ]
