module Rng = Nocplan_itc02.Data_gen.Rng

(* Each output bit: XOR of direct taps and AND-pair taps over the
   stimulus lines.  The AND pairs make detection input-dependent, so
   coverage accumulates over patterns instead of saturating on the
   first one. *)
type output_spec = { direct : int list; and_pairs : (int * int) list }
type cut = { inputs : int; outputs : output_spec list }

let cut ~seed ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Coverage.cut: sizes must be >= 1";
  let rng = Rng.create seed in
  let line () = Rng.int rng ~bound:inputs in
  let output _ =
    let direct = List.init (1 + Rng.int rng ~bound:3) (fun _ -> line ()) in
    let and_pairs =
      List.init (1 + Rng.int rng ~bound:3) (fun _ -> (line (), line ()))
    in
    { direct; and_pairs }
  in
  { inputs; outputs = List.init outputs output }

let eval_with cut read =
  List.map
    (fun spec ->
      let direct = List.fold_left (fun acc i -> acc <> read i) false spec.direct in
      List.fold_left
        (fun acc (a, b) -> acc <> (read a && read b))
        direct spec.and_pairs)
    cut.outputs

let apply cut stimulus =
  if List.length stimulus <> cut.inputs then
    invalid_arg "Coverage.apply: wrong stimulus size";
  let bits = Array.of_list stimulus in
  eval_with cut (fun i -> bits.(i))

type fault = { line : int; stuck_at : bool }

let faults cut =
  List.concat_map
    (fun line -> [ { line; stuck_at = false }; { line; stuck_at = true } ])
    (List.init cut.inputs (fun i -> i))

let detects cut fault stimulus =
  if List.length stimulus <> cut.inputs then
    invalid_arg "Coverage.detects: wrong stimulus size";
  let bits = Array.of_list stimulus in
  let golden = eval_with cut (fun i -> bits.(i)) in
  let faulty =
    eval_with cut (fun i -> if i = fault.line then fault.stuck_at else bits.(i))
  in
  golden <> faulty

type curve = { detected : int list; total_faults : int }

let run cut ~patterns =
  let fault_list = faults cut in
  let remaining = ref fault_list in
  let found = ref 0 in
  let detected =
    List.map
      (fun pattern ->
        let hit, miss =
          List.partition (fun f -> detects cut f pattern) !remaining
        in
        found := !found + List.length hit;
        remaining := miss;
        !found)
      patterns
  in
  { detected; total_faults = List.length fault_list }

let coverage curve =
  if curve.total_faults = 0 then 1.0
  else
    let final =
      match List.rev curve.detected with [] -> 0 | last :: _ -> last
    in
    float_of_int final /. float_of_int curve.total_faults

let lfsr_patterns ~seed ~inputs ~count =
  let words_per_pattern = (inputs + 31) / 32 in
  let words =
    Bist.reference_states ~seed ~taps:Bist.default_taps
      ~count:(count * words_per_pattern)
  in
  let bit word i = (word lsr i) land 1 = 1 in
  let rec chunk acc words =
    match words with
    | [] -> List.rev acc
    | _ ->
        let rec take k taken rest =
          if k = 0 then (List.rev taken, rest)
          else
            match rest with
            | [] -> (List.rev taken, [])
            | w :: tl -> take (k - 1) (w :: taken) tl
        in
        let mine, rest = take words_per_pattern [] words in
        let bits =
          List.init inputs (fun i ->
              let word = List.nth mine (i / 32) in
              bit word (i mod 32))
        in
        chunk (bits :: acc) rest
  in
  chunk [] words
