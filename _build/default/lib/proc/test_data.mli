(** Concrete test-data generation and measured compressibility.

    The planner's memory-feasibility check needs to know how well a
    core's stimulus data compresses.  Rather than assuming a ratio,
    this module synthesizes the data and measures it: deterministic
    ATPG-like pattern sets in which only a sparse fraction of bits are
    {e care} bits (random) and the rest are zero-filled — the
    structure that makes real scan data run-length compressible.
    Fully-random (BIST-like) data is also available as the
    incompressible extreme. *)

type style =
  | Atpg of float
      (** [Atpg care_density]: each stimulus word is a random care
          word with this probability and all-zero fill otherwise —
          care bits cluster in real ATPG sets, which is what makes
          them run-length compressible.  Typical densities are a few
          percent. *)
  | Random  (** every bit pseudo-random — BIST-like, incompressible *)

val stimulus_words :
  style -> seed:int64 -> words_per_pattern:int -> patterns:int -> int list
(** The flit-width-packed stimulus stream of a whole test set:
    [patterns * words_per_pattern] 32-bit words, deterministic in
    [seed].
    @raise Invalid_argument on non-positive sizes or a care density
    outside [0, 1]. *)

val stream_for :
  style -> seed:int64 -> flit_width:int -> Nocplan_itc02.Module_def.t -> int list
(** The stimulus stream of a module: scan-in flits per pattern are
    derived from the module's wrapper at [flit_width]. *)

val measured_compression :
  style -> seed:int64 -> flit_width:int -> Nocplan_itc02.Module_def.t -> float
(** Run-length compression ratio ({!Decompress.compression_ratio}) of
    the module's synthesized stimulus stream. *)

val measured_memory_words :
  style -> seed:int64 -> flit_width:int -> Nocplan_itc02.Module_def.t -> int
(** Exact memory footprint of serving the module through the
    decompression application: the actual RLE image of the synthesized
    stream plus the program. *)

val pp_style : style Fmt.t
