type stmt = Label of string | Instr of string Isa.t
type t = { code : int Isa.t array; source : stmt list }

let assemble stmts =
  let exception Error of string in
  try
    (* Pass 1: label -> instruction index. *)
    let labels = Hashtbl.create 16 in
    let count =
      List.fold_left
        (fun idx stmt ->
          match stmt with
          | Label name ->
              if Hashtbl.mem labels name then
                raise (Error (Printf.sprintf "duplicate label %S" name));
              Hashtbl.add labels name idx;
              idx
          | Instr _ -> idx + 1)
        0 stmts
    in
    if count = 0 then raise (Error "empty program");
    let resolve name =
      match Hashtbl.find_opt labels name with
      | Some idx -> idx
      | None -> raise (Error (Printf.sprintf "undefined label %S" name))
    in
    (* Pass 2: emit code with resolved targets. *)
    let code =
      List.filter_map
        (function
          | Label _ -> None
          | Instr instr ->
              if not (Isa.check_registers instr) then
                raise
                  (Error
                     (Fmt.str "register out of range in %a"
                        (Isa.pp Fmt.string) instr));
              Some (Isa.map_label resolve instr))
        stmts
      |> Array.of_list
    in
    Ok { code; source = stmts }
  with Error msg -> Result.Error msg

let assemble_exn stmts =
  match assemble stmts with
  | Ok p -> p
  | Error msg -> invalid_arg ("Program.assemble: " ^ msg)

let length t = Array.length t.code

let pp ppf t =
  let idx = ref 0 in
  let pp_stmt ppf = function
    | Label name -> Fmt.pf ppf "%s:" name
    | Instr instr ->
        Fmt.pf ppf "  %3d  %a" !idx (Isa.pp Fmt.string) instr;
        incr idx
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_stmt) t.source
