type t = {
  application : string;
  cycles_per_pattern : float;
  setup_cycles : int;
  memory_words : int;
  power : float;
}

(* Measure the per-iteration steady-state cost by differencing two run
   lengths: run the application for [n] and [2n] iterations, so fixed
   setup cost cancels out of the slope. *)
let slope_and_setup ~run n =
  let c1 = run n and c2 = run (2 * n) in
  let slope = float_of_int (c2 - c1) /. float_of_int n in
  let setup =
    max 0 (c1 - int_of_float (Float.round (slope *. float_of_int n)))
  in
  (slope, setup)

let of_bist ?(patterns = 512) ~costs ~power () =
  if patterns < 1 then invalid_arg "Characterization.of_bist: patterns < 1";
  let run n =
    let program =
      Bist.generator_program ~patterns:n ~seed:0xACE1 ~taps:Bist.default_taps
    in
    let stats = Machine.run costs program in
    assert (stats.Machine.outcome = Machine.Halted);
    assert (stats.Machine.sent_words = n);
    stats.Machine.cycles
  in
  let cycles_per_pattern, setup_cycles = slope_and_setup ~run patterns in
  let memory_words =
    Program.length
      (Bist.generator_program ~seed:0xACE1 ~taps:Bist.default_taps
         ~patterns:2)
  in
  { application = "bist"; cycles_per_pattern; setup_cycles; memory_words; power }

let of_sink ?(words = 512) ~costs ~power () =
  if words < 1 then invalid_arg "Characterization.of_sink: words < 1";
  let run n =
    let program = Bist.sink_program ~words:n ~taps:Bist.default_taps in
    let stats = Machine.run costs program in
    assert (stats.Machine.outcome = Machine.Halted);
    assert (stats.Machine.received_words = n);
    stats.Machine.cycles
  in
  let cycles_per_pattern, setup_cycles = slope_and_setup ~run words in
  let memory_words =
    Program.length (Bist.sink_program ~words:2 ~taps:Bist.default_taps)
  in
  { application = "misr-sink"; cycles_per_pattern; setup_cycles; memory_words; power }

let of_decompress ?(words = 512) ?(mean_run_length = 4) ~costs ~power () =
  if words < 1 then invalid_arg "Characterization.of_decompress: words < 1";
  if mean_run_length < 1 then
    invalid_arg "Characterization.of_decompress: mean_run_length < 1";
  (* A synthetic stream with the requested mean run length: runs of
     [mean_run_length] distinct words. *)
  let stream n =
    List.concat_map
      (fun i -> List.init mean_run_length (fun _ -> 0x100 + (i land 0xFF)))
      (List.init (n / mean_run_length) (fun i -> i))
  in
  let run n =
    let image = Decompress.encode (stream n) in
    let stats =
      Machine.run ~memory_image:image
        ~memory_words:(max 4096 (Array.length image + 16))
        costs Decompress.program
    in
    assert (stats.Machine.outcome = Machine.Halted);
    stats.Machine.cycles
  in
  let n = words - (words mod mean_run_length) in
  let n = max mean_run_length n in
  let cycles_per_pattern, setup_cycles = slope_and_setup ~run n in
  let memory_words =
    Program.length Decompress.program
    + Array.length (Decompress.encode (stream n))
  in
  {
    application = "decompress";
    cycles_per_pattern;
    setup_cycles;
    memory_words;
    power;
  }

let pp ppf c =
  Fmt.pf ppf
    "@[<h>%s: %.2f cycles/pattern, setup %d, %d memory words, power %.1f@]"
    c.application c.cycles_per_pattern c.setup_cycles c.memory_words c.power
