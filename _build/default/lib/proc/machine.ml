type costs = {
  alu : int;
  load : int;
  store : int;
  branch_taken : int;
  branch_not_taken : int;
  jump : int;
  send : int;
  recv : int;
}

let costs ~alu ~load ~store ~branch_taken ~branch_not_taken ~jump ~send ~recv =
  let all =
    [ alu; load; store; branch_taken; branch_not_taken; jump; send; recv ]
  in
  if List.exists (fun c -> c < 1) all then
    invalid_arg "Machine.costs: every cost must be >= 1";
  { alu; load; store; branch_taken; branch_not_taken; jump; send; recv }

type io = { on_send : int -> unit; recv_word : unit -> int }

let null_io = { on_send = (fun _ -> ()); recv_word = (fun () -> 0) }

type outcome = Halted | Fuel_exhausted

type stats = {
  outcome : outcome;
  cycles : int;
  instructions : int;
  sent_words : int;
  received_words : int;
}

let word_mask = 0xFFFFFFFF

(* Sign for 32-bit signed comparison. *)
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let run ?(io = null_io) ?(memory_words = 4096) ?memory_image
    ?(max_cycles = 100_000_000) costs program =
  let regs = Array.make Isa.reg_count 0 in
  let memory = Array.make memory_words 0 in
  (match memory_image with
  | Some image ->
      if Array.length image > memory_words then
        invalid_arg "Machine.run: memory_image larger than memory";
      Array.blit image 0 memory 0 (Array.length image)
  | None -> ());
  let code = program.Program.code in
  let code_len = Array.length code in
  let pc = ref 0 in
  let cycles = ref 0 in
  let instructions = ref 0 in
  let sent = ref 0 in
  let received = ref 0 in
  let outcome = ref Fuel_exhausted in
  let get r = if r = 0 then 0 else regs.(r) in
  let set r v = if r <> 0 then regs.(r) <- v land word_mask in
  let mem_addr a =
    if a < 0 || a >= memory_words then
      invalid_arg (Printf.sprintf "Machine.run: memory access at %d" a)
    else a
  in
  let jump_to target =
    if target < 0 || target >= code_len then
      invalid_arg (Printf.sprintf "Machine.run: jump to %d" target)
    else pc := target
  in
  let running = ref true in
  while !running && !cycles < max_cycles do
    if !pc < 0 || !pc >= code_len then
      invalid_arg (Printf.sprintf "Machine.run: pc out of code at %d" !pc);
    let instr = code.(!pc) in
    incr instructions;
    pc := !pc + 1;
    (match instr with
    | Isa.Li (rd, imm) ->
        set rd imm;
        cycles := !cycles + costs.alu
    | Isa.Mov (rd, rs) ->
        set rd (get rs);
        cycles := !cycles + costs.alu
    | Isa.Add (rd, a, b) ->
        set rd (get a + get b);
        cycles := !cycles + costs.alu
    | Isa.Addi (rd, rs, imm) ->
        set rd (get rs + imm);
        cycles := !cycles + costs.alu
    | Isa.Sub (rd, a, b) ->
        set rd (get a - get b);
        cycles := !cycles + costs.alu
    | Isa.Xor (rd, a, b) ->
        set rd (get a lxor get b);
        cycles := !cycles + costs.alu
    | Isa.And (rd, a, b) ->
        set rd (get a land get b);
        cycles := !cycles + costs.alu
    | Isa.Or (rd, a, b) ->
        set rd (get a lor get b);
        cycles := !cycles + costs.alu
    | Isa.Shl (rd, rs, imm) ->
        set rd (get rs lsl imm);
        cycles := !cycles + costs.alu
    | Isa.Shr (rd, rs, imm) ->
        set rd (get rs lsr imm);
        cycles := !cycles + costs.alu
    | Isa.Load (rd, rs, off) ->
        set rd memory.(mem_addr (get rs + off));
        cycles := !cycles + costs.load
    | Isa.Store (rd, rs, off) ->
        memory.(mem_addr (get rs + off)) <- get rd;
        cycles := !cycles + costs.store
    | Isa.Beq (a, b, target) ->
        if get a = get b then begin
          jump_to target;
          cycles := !cycles + costs.branch_taken
        end
        else cycles := !cycles + costs.branch_not_taken
    | Isa.Bne (a, b, target) ->
        if get a <> get b then begin
          jump_to target;
          cycles := !cycles + costs.branch_taken
        end
        else cycles := !cycles + costs.branch_not_taken
    | Isa.Blt (a, b, target) ->
        if signed (get a) < signed (get b) then begin
          jump_to target;
          cycles := !cycles + costs.branch_taken
        end
        else cycles := !cycles + costs.branch_not_taken
    | Isa.Jump target ->
        jump_to target;
        cycles := !cycles + costs.jump
    | Isa.Send rs ->
        io.on_send (get rs);
        incr sent;
        cycles := !cycles + costs.send
    | Isa.Recv rd ->
        set rd (io.recv_word () land word_mask);
        incr received;
        cycles := !cycles + costs.recv
    | Isa.Halt ->
        running := false;
        outcome := Halted)
  done;
  {
    outcome = !outcome;
    cycles = !cycles;
    instructions = !instructions;
    sent_words = !sent;
    received_words = !received;
  }
