module Module_def = Nocplan_itc02.Module_def

type application = Bist | Decompression

type t = {
  name : string;
  isa_family : string;
  costs : Machine.costs;
  bist : Characterization.t;
  sink : Characterization.t;
  decompression : Characterization.t;
  self_test : Module_def.t;
  power_active : float;
  memory_capacity_words : int;
}

let make ?(memory_capacity_words = 16_384) ~name ~isa_family ~costs
    ~power_active ~self_test () =
  if memory_capacity_words < 1 then
    invalid_arg "Processor.make: memory capacity must be >= 1";
  {
    name;
    isa_family;
    costs;
    bist = Characterization.of_bist ~costs ~power:power_active ();
    sink = Characterization.of_sink ~costs ~power:power_active ();
    decompression =
      Characterization.of_decompress ~costs ~power:power_active ();
    self_test;
    power_active;
    memory_capacity_words;
  }

(* Leon systems typically pair the core with a larger on-chip RAM than
   the minimal Plasma configuration. *)
let leon ~id =
  make ~memory_capacity_words:32_768 ~name:"leon" ~isa_family:"SPARC V8"
    ~costs:Leon.costs ~power_active:Leon.power_active
    ~self_test:(Leon.self_test ~id) ()

let plasma ~id =
  make ~memory_capacity_words:8_192 ~name:"plasma" ~isa_family:"MIPS-I"
    ~costs:Plasma.costs ~power_active:Plasma.power_active
    ~self_test:(Plasma.self_test ~id) ()

let source_characterization t = function
  | Bist -> t.bist
  | Decompression -> t.decompression

let generation_overhead t application =
  let c = source_characterization t application in
  int_of_float (Float.round c.Characterization.cycles_per_pattern)

let memory_capacity t = t.memory_capacity_words

let with_self_test_id t ~id =
  let s = t.self_test in
  {
    t with
    self_test =
      Module_def.make ~bidirs:s.Module_def.bidirs
        ~test_power:s.Module_def.test_power ~id ~name:s.Module_def.name
        ~inputs:s.Module_def.inputs ~outputs:s.Module_def.outputs
        ~scan_chains:s.Module_def.scan_chains ~patterns:s.Module_def.patterns
        ();
  }

let equal a b =
  String.equal a.name b.name
  && String.equal a.isa_family b.isa_family
  && Module_def.equal a.self_test b.self_test

let pp ppf t =
  Fmt.pf ppf
    "@[<v>processor %s (%s, %d memory words):@,  %a@,  %a@,  %a@,  self-test: %a@]"
    t.name t.isa_family t.memory_capacity_words Characterization.pp t.bist
    Characterization.pp t.sink Characterization.pp t.decompression
    Module_def.pp t.self_test
