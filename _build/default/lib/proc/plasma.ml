module Module_def = Nocplan_itc02.Module_def

let costs =
  Machine.costs ~alu:1 ~load:3 ~store:3 ~branch_taken:3 ~branch_not_taken:1
    ~jump:3 ~send:3 ~recv:3

let power_active = 70.0

let self_test ~id =
  let cells = 1100 and chain_count = 16 in
  let base = cells / chain_count and extra = cells mod chain_count in
  Module_def.make ~id ~name:"plasma"
    ~inputs:60 ~outputs:42
    ~scan_chains:(List.init chain_count (fun i -> base + if i < extra then 1 else 0))
    ~patterns:180 ()
