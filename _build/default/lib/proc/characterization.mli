(** Processor test-application characterization — the second step of
    the paper's flow.

    "The test application has to be characterized in terms of time,
    memory requirements and power to each processor in the system
    reused for test."  The numbers here are {e measured} by running
    the application programs on the {!Machine} interpreter under the
    processor's cycle table, not assumed. *)

type t = {
  application : string;  (** ["bist"], ["misr-sink"] or ["decompress"] *)
  cycles_per_pattern : float;
      (** steady-state processor cycles per generated (or consumed)
          pattern word *)
  setup_cycles : int;  (** one-time cost before the first pattern *)
  memory_words : int;  (** program + test-data memory footprint *)
  power : float;
      (** power the processor draws while running the application *)
}

val of_bist :
  ?patterns:int -> costs:Machine.costs -> power:float -> unit -> t
(** Characterize the LFSR generator ({!Bist.generator_program}) by
    running it; [patterns] (default 512) sizes the measurement run. *)

val of_sink : ?words:int -> costs:Machine.costs -> power:float -> unit -> t
(** Characterize the MISR response sink ({!Bist.sink_program}). *)

val of_decompress :
  ?words:int ->
  ?mean_run_length:int ->
  costs:Machine.costs ->
  power:float ->
  unit ->
  t
(** Characterize the RLE decompressor on a synthetic stream whose runs
    have the given mean length (default 4): longer runs amortize the
    per-run memory accesses over more emitted words. *)

val pp : t Fmt.t
