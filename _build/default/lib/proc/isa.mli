(** A small load/store instruction set shared by the modelled
    processors.

    The paper characterizes each reused processor by actually running
    the test application on it; here the application runs on this ISA
    interpreted by {!Machine} under a per-processor cycle table
    ({!Leon}, {!Plasma}).  The ISA is deliberately the common subset of
    MIPS-I and SPARC V8 that the test programs need, plus [Send]/[Recv]
    for the network interface register. *)

type reg = int
(** Register index, 0..31.  Register 0 is hard-wired to zero, as on
    MIPS; the SPARC %g0 convention is identical. *)

val reg_count : int

type 'label t =
  | Li of reg * int  (** [rd <- imm] *)
  | Mov of reg * reg  (** [rd <- rs] *)
  | Add of reg * reg * reg  (** [rd <- rs1 + rs2] *)
  | Addi of reg * reg * int  (** [rd <- rs + imm] *)
  | Sub of reg * reg * reg
  | Xor of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Shl of reg * reg * int  (** logical shift left by constant *)
  | Shr of reg * reg * int  (** logical shift right by constant *)
  | Load of reg * reg * int  (** [rd <- mem.(rs + off)] *)
  | Store of reg * reg * int  (** [mem.(rs + off) <- rd] *)
  | Beq of reg * reg * 'label
  | Bne of reg * reg * 'label
  | Blt of reg * reg * 'label  (** signed comparison *)
  | Jump of 'label
  | Send of reg  (** write [rs] to the network-interface output port *)
  | Recv of reg  (** read one word from the network-interface input *)
  | Halt

val map_label : ('a -> 'b) -> 'a t -> 'b t

val check_registers : 'a t -> bool
(** All register operands are within [0..reg_count-1]. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
