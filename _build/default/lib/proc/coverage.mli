(** Fault-coverage measurement for pattern sources.

    The benchmarks state pattern counts; this module grounds them: a
    synthetic combinational core (a seeded network of AND/XOR taps) is
    driven pattern by pattern, a single-stuck-at fault list over its
    stimulus lines is simulated by forcing each line in turn, and the
    coverage curve (faults detected after each pattern) is recorded.
    Used to compare the LFSR BIST stream against other pattern sources
    — the classical result that pseudo-random coverage grows fast and
    saturates, with a hard tail of resistant faults. *)

type cut
(** A synthetic combinational core under test. *)

val cut : seed:int64 -> inputs:int -> outputs:int -> cut
(** A deterministic random network: every output is the XOR of a few
    direct input taps and a few AND pairs.
    @raise Invalid_argument unless both sizes are [>= 1]. *)

val apply : cut -> bool list -> bool list
(** Evaluate the fault-free core on one stimulus.
    @raise Invalid_argument on a wrong-sized stimulus. *)

type fault = { line : int; stuck_at : bool }
(** Single stuck-at fault on a stimulus line. *)

val faults : cut -> fault list
(** The full single-stuck-at list over the stimulus lines
    ([2 * inputs] faults). *)

val detects : cut -> fault -> bool list -> bool
(** Does this stimulus detect the fault (faulty response differs from
    the fault-free one)? *)

type curve = {
  detected : int list;
      (** cumulative faults detected after pattern 1, 2, ... *)
  total_faults : int;
}

val run : cut -> patterns:bool list list -> curve
(** Simulate the pattern set in order. *)

val coverage : curve -> float
(** Final coverage fraction in [0, 1] ([1.0] for an empty fault
    list). *)

val lfsr_patterns : seed:int -> inputs:int -> count:int -> bool list list
(** [count] stimulus vectors drawn from the software BIST LFSR
    ({!Bist.reference_states}), bit-unpacked to [inputs] lines. *)
