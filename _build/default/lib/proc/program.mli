(** Assembly programs: labelled statement lists resolved to
    branch-target-indexed code. *)

type stmt = Label of string | Instr of string Isa.t

type t = private {
  code : int Isa.t array;  (** branch targets resolved to code indices *)
  source : stmt list;  (** the original statements, for listings *)
}

val assemble : stmt list -> (t, string) result
(** Resolve labels.  Errors on duplicate labels, references to
    undefined labels, register operands out of range, or an empty
    program. *)

val assemble_exn : stmt list -> t
(** @raise Invalid_argument with the error message of {!assemble}. *)

val length : t -> int
(** Number of instructions. *)

val pp : t Fmt.t
(** Listing with labels and instruction indices. *)
