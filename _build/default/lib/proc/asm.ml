type error = { line : int; message : string }

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Split one line into lexical atoms: words, numbers, and the
   punctuation that matters ('(' ')' ':').  Commas are separators. *)
let atoms_of_line line_text =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | '(' | ')' | ':' ->
          flush ();
          out := String.make 1 c :: !out
      | c -> Buffer.add_char buf c)
    line_text;
  flush ();
  List.rev !out

let strip_comment line_text =
  let cut_at idx = String.sub line_text 0 idx in
  match (String.index_opt line_text '#', String.index_opt line_text ';') with
  | Some a, Some b -> cut_at (min a b)
  | Some a, None -> cut_at a
  | None, Some b -> cut_at b
  | None, None -> line_text

let register line atom =
  let atom_l = String.lowercase_ascii atom in
  if String.length atom_l < 2 || atom_l.[0] <> 'r' then
    fail line "expected a register (r0..r%d), got %S" (Isa.reg_count - 1) atom
  else
    match int_of_string_opt (String.sub atom_l 1 (String.length atom_l - 1)) with
    | Some r when r >= 0 && r < Isa.reg_count -> r
    | Some _ | None -> fail line "register out of range: %S" atom

let integer line atom =
  match int_of_string_opt atom with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" atom

(* load/store operand: off(rbase) split into "off" "(" "rbase" ")" *)
let mem_operand line = function
  | [ off; "("; base; ")" ] -> (register line base, integer line off)
  | atoms ->
      fail line "expected off(reg), got %S" (String.concat " " atoms)

let instruction line mnemonic operands : string Isa.t =
  let reg = register line and int = integer line in
  match (String.lowercase_ascii mnemonic, operands) with
  | "li", [ rd; imm ] -> Isa.Li (reg rd, int imm)
  | "mov", [ rd; rs ] -> Isa.Mov (reg rd, reg rs)
  | "add", [ rd; a; b ] -> Isa.Add (reg rd, reg a, reg b)
  | "addi", [ rd; rs; imm ] -> Isa.Addi (reg rd, reg rs, int imm)
  | "sub", [ rd; a; b ] -> Isa.Sub (reg rd, reg a, reg b)
  | "xor", [ rd; a; b ] -> Isa.Xor (reg rd, reg a, reg b)
  | "and", [ rd; a; b ] -> Isa.And (reg rd, reg a, reg b)
  | "or", [ rd; a; b ] -> Isa.Or (reg rd, reg a, reg b)
  | "shl", [ rd; rs; imm ] -> Isa.Shl (reg rd, reg rs, int imm)
  | "shr", [ rd; rs; imm ] -> Isa.Shr (reg rd, reg rs, int imm)
  | "load", rd :: rest -> (
      match mem_operand line rest with
      | base, off -> Isa.Load (reg rd, base, off))
  | "store", rd :: rest -> (
      match mem_operand line rest with
      | base, off -> Isa.Store (reg rd, base, off))
  | "beq", [ a; b; target ] -> Isa.Beq (reg a, reg b, target)
  | "bne", [ a; b; target ] -> Isa.Bne (reg a, reg b, target)
  | "blt", [ a; b; target ] -> Isa.Blt (reg a, reg b, target)
  | "jump", [ target ] -> Isa.Jump target
  | "send", [ rs ] -> Isa.Send (reg rs)
  | "recv", [ rd ] -> Isa.Recv (reg rd)
  | "halt", [] -> Isa.Halt
  | ( ( "li" | "mov" | "add" | "addi" | "sub" | "xor" | "and" | "or" | "shl"
      | "shr" | "beq" | "bne" | "blt" | "jump" | "send" | "recv" | "halt" ),
      _ ) ->
      fail line "wrong operand count for %s" mnemonic
  | _, _ -> fail line "unknown mnemonic %S" mnemonic

let parse_line line_no line_text =
  match atoms_of_line (strip_comment line_text) with
  | [] -> []
  | [ name; ":" ] -> [ Program.Label name ]
  | name :: ":" :: rest ->
      Program.Label name
      :: (match rest with
         | mnemonic :: operands ->
             [ Program.Instr (instruction line_no mnemonic operands) ]
         | [] -> [])
  | mnemonic :: operands ->
      [ Program.Instr (instruction line_no mnemonic operands) ]

let parse text =
  match
    String.split_on_char '\n' text
    |> List.mapi (fun i line_text -> parse_line (i + 1) line_text)
    |> List.concat
  with
  | stmts -> Ok stmts
  | exception Parse_error e -> Error e

let parse_program text =
  match parse text with
  | Error _ as e -> e
  | Ok stmts -> (
      match Program.assemble stmts with
      | Ok p -> Ok p
      | Error message -> Error { line = 0; message })

let to_string stmts =
  let render = function
    | Program.Label name -> name ^ ":"
    | Program.Instr instr -> "  " ^ Fmt.str "%a" (Isa.pp Fmt.string) instr
  in
  String.concat "\n" (List.map render stmts) ^ "\n"
