(** Software BIST test applications.

    The generator program emulates pseudo-random BIST logic in
    software: an LFSR stepped once per pattern, each state sent to the
    CUT through the network interface.  The sink program compacts
    responses into a MISR.  Both are the programs the paper's
    "BIST application" models on the reused processors. *)

val default_taps : int
(** A maximal-length 32-bit LFSR polynomial (Fibonacci form). *)

val generator_program : patterns:int -> seed:int -> taps:int -> Program.t
(** Program that sends [patterns] successive LFSR states.
    @raise Invalid_argument if [patterns < 1] or [seed = 0]. *)

val sink_program : words:int -> taps:int -> Program.t
(** Program that receives [words] response words and folds them into a
    MISR signature.  @raise Invalid_argument if [words < 1]. *)

val reference_states : seed:int -> taps:int -> count:int -> int list
(** Pure reference implementation of the generator's LFSR: the exact
    word sequence {!generator_program} sends (used to test the
    program, and usable as a golden pattern source). *)

val reference_signature : taps:int -> int list -> int
(** Pure reference of the sink's MISR folding over a word list. *)
