lib/proc/decompress.ml: Array Isa List Program
