lib/proc/plasma.ml: List Machine Nocplan_itc02
