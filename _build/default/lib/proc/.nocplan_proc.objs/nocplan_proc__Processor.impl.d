lib/proc/processor.ml: Characterization Float Fmt Leon Machine Nocplan_itc02 Plasma String
