lib/proc/asm.mli: Fmt Program
