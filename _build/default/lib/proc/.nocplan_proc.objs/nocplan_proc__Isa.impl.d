lib/proc/isa.ml: Fmt List
