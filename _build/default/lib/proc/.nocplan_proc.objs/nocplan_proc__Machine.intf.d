lib/proc/machine.mli: Program
