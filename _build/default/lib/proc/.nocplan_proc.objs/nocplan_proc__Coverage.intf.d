lib/proc/coverage.mli:
