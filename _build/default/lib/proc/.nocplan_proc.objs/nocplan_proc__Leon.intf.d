lib/proc/leon.mli: Machine Nocplan_itc02
