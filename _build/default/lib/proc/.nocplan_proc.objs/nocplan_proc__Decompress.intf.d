lib/proc/decompress.mli: Program
