lib/proc/bist.mli: Program
