lib/proc/isa.mli: Fmt
