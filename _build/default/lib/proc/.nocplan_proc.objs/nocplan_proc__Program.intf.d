lib/proc/program.mli: Fmt Isa
