lib/proc/coverage.ml: Array Bist List Nocplan_itc02
