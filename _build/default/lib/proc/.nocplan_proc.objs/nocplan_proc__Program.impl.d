lib/proc/program.ml: Array Fmt Hashtbl Isa List Printf Result
