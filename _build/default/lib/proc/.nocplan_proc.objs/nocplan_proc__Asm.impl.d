lib/proc/asm.ml: Buffer Fmt Format Isa List Program String
