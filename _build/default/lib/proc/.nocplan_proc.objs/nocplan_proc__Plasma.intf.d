lib/proc/plasma.mli: Machine Nocplan_itc02
