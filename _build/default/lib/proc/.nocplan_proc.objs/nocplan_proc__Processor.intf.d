lib/proc/processor.mli: Characterization Fmt Machine Nocplan_itc02
