lib/proc/characterization.ml: Array Bist Decompress Float Fmt List Machine Program
