lib/proc/leon.ml: List Machine Nocplan_itc02
