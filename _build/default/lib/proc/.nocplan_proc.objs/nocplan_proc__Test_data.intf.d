lib/proc/test_data.mli: Fmt Nocplan_itc02
