lib/proc/machine.ml: Array Isa List Printf Program
