lib/proc/test_data.ml: Array Decompress Fmt List Nocplan_itc02 Program
