lib/proc/characterization.mli: Fmt Machine
