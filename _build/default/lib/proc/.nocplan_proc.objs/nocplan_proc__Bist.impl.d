lib/proc/bist.ml: Isa List Program
