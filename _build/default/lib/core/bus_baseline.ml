module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper
module Processor = Nocplan_proc.Processor

type result = { makespan : int; per_module : (int * int) list }

let plan ?(application = Processor.Bist) ?bus_cycle
    ?(use_processor_sources = false) system =
  let bus_cycle =
    match bus_cycle with
    | Some c ->
        if c < 1 then invalid_arg "Bus_baseline.plan: bus_cycle must be >= 1";
        c
    | None ->
        Nocplan_noc.Latency.stream_cycle_per_flit system.System.latency
  in
  let generation_overhead =
    if not use_processor_sources then 0
    else
      match system.System.processors with
      | p :: _ ->
          Processor.generation_overhead p.System.processor application
      | [] -> 0
  in
  let per_module =
    List.map
      (fun (m : Module_def.t) ->
        let wrapper = Wrapper.design ~width:system.System.flit_width m in
        let words_per_pattern =
          wrapper.Wrapper.scan_in_max + 1 + wrapper.Wrapper.scan_out_max + 1
        in
        let per_pattern =
          max (Wrapper.pattern_cycles wrapper)
            (words_per_pattern * bus_cycle)
          + generation_overhead
        in
        (m.Module_def.id, m.Module_def.patterns * per_pattern))
      system.System.soc.Soc.modules
  in
  let makespan = List.fold_left (fun acc (_, d) -> acc + d) 0 per_module in
  { makespan; per_module }

let speedup _system ~noc_makespan result =
  if noc_makespan < 1 then invalid_arg "Bus_baseline.speedup: bad makespan";
  float_of_int result.makespan /. float_of_int noc_makespan
