type headline = {
  system_name : string;
  baseline : int;
  best_reuse : int;
  best_makespan : int;
  reduction_pct : float;
}

let headline (sweep : Planner.sweep) =
  let baseline = (Planner.baseline_point sweep).Planner.makespan in
  let best = Planner.best_point sweep in
  {
    system_name = sweep.Planner.system_name;
    baseline;
    best_reuse = best.Planner.reuse;
    best_makespan = best.Planner.makespan;
    reduction_pct = Planner.reduction_pct ~baseline best.Planner.makespan;
  }

let pp_headline ppf h =
  Fmt.pf ppf
    "@[<h>%s: baseline %d -> %d with %d processors reused: %.1f%% test time \
     reduction@]"
    h.system_name h.baseline h.best_makespan h.best_reuse h.reduction_pct

let sweep_csv (sweep : Planner.sweep) =
  let baseline = (Planner.baseline_point sweep).Planner.makespan in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "reuse,makespan,reduction_pct,peak_power,validated\n";
  List.iter
    (fun (p : Planner.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.2f,%.1f,%b\n" p.Planner.reuse
           p.Planner.makespan
           (Planner.reduction_pct ~baseline p.Planner.makespan)
           p.Planner.peak_power p.Planner.validated))
    sweep.Planner.points;
  Buffer.contents buf

let two_series ~title_a ~title_b (a : Planner.sweep) (b : Planner.sweep) =
  if List.length a.Planner.points <> List.length b.Planner.points then
    invalid_arg "Report: sweeps have different lengths";
  let base_a = (Planner.baseline_point a).Planner.makespan in
  let base_b = (Planner.baseline_point b).Planner.makespan in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s  %22s  %22s\n" "reuse" title_a title_b);
  List.iter2
    (fun (pa : Planner.point) (pb : Planner.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d  %12d (%5.1f%%)  %12d (%5.1f%%)\n"
           pa.Planner.reuse pa.Planner.makespan
           (Planner.reduction_pct ~baseline:base_a pa.Planner.makespan)
           pb.Planner.makespan
           (Planner.reduction_pct ~baseline:base_b pb.Planner.makespan)))
    a.Planner.points b.Planner.points;
  Buffer.contents buf

let figure1_table ~unconstrained ~constrained =
  two_series ~title_a:"no power limit" ~title_b:"power constrained"
    unconstrained constrained

let comparison_table ~label_a ~label_b a b =
  two_series ~title_a:label_a ~title_b:label_b a b

let series_glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let ascii_chart ?(height = 16) ?(width = 60) series =
  if series = [] then invalid_arg "Report.ascii_chart: no series";
  List.iter
    (fun (_, s) ->
      if s.Planner.points = [] then
        invalid_arg "Report.ascii_chart: empty sweep")
    series;
  let all_points =
    List.concat_map (fun (_, s) -> s.Planner.points) series
  in
  let y_min, y_max =
    List.fold_left
      (fun (lo, hi) (p : Planner.point) ->
        (min lo p.Planner.makespan, max hi p.Planner.makespan))
      (max_int, min_int) all_points
  in
  let x_max =
    List.fold_left
      (fun acc (p : Planner.point) -> max acc p.Planner.reuse)
      0 all_points
  in
  let span = max 1 (y_max - y_min) in
  let row_of makespan =
    (* row 0 is the top of the chart *)
    (height - 1) - ((makespan - y_min) * (height - 1) / span)
  in
  let col_of reuse = reuse * (width - 1) / max 1 x_max in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  List.iteri
    (fun i (_, s) ->
      let glyph = series_glyphs.(i mod Array.length series_glyphs) in
      List.iter
        (fun (p : Planner.point) ->
          let row = row_of p.Planner.makespan in
          let col = col_of p.Planner.reuse in
          Bytes.set grid.(row) col glyph)
        s.Planner.points)
    series;
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%9d " y_max
        else if row = height - 1 then Printf.sprintf "%9d " y_min
        else String.make 10 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_char buf '|';
      Buffer.add_string buf (Bytes.to_string line);
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 10 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%10s 0%s%d  (processors reused)\n" ""
       (String.make (width - 2 - String.length (string_of_int x_max)) ' ')
       x_max);
  List.iteri
    (fun i (label, _) ->
      Buffer.add_string buf
        (Printf.sprintf "%12s %s\n"
           (String.make 1 series_glyphs.(i mod Array.length series_glyphs))
           label))
    series;
  Buffer.contents buf
