(** Cost model of one core test over the NoC.

    Testing core [c] from source [s] to sink [k] streams one stimulus
    packet and one response packet per test pattern along the XY paths
    [s -> c] and [c -> k].  Patterns are pipelined: the path-fill
    latency is paid once, and in steady state each pattern costs the
    maximum of the core's shift time, the two transport times and the
    source/sink software overheads (zero for the external tester; the
    measured cycles-per-pattern for a processor — the paper's
    "processor takes 10 clock cycles to generate a test pattern,
    while the external tester takes zero"). *)

type cost = {
  duration : int;  (** cycles from stream start to last response *)
  power : float;
      (** instantaneous power while the test runs: CUT + source +
          sink + occupied routers *)
  links : Nocplan_noc.Link.t list;
      (** deduplicated channels of both paths — the reservation
          footprint *)
  routers : int;  (** distinct routers the two paths traverse *)
  per_pattern : int;  (** steady-state cycles per pattern *)
}

val cost :
  ?patterns:int ->
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  cost
(** [patterns] overrides the module's pattern count — used by the
    preemptive scheduler to price a partial test session (the path
    fill, setup and drain are paid per session).
    @raise Invalid_argument if the pair is not {!Resource.valid_pair},
    the module id is unknown, [patterns < 1], or an endpoint refers to
    a non-processor module. *)

val assumed_run_length : int
(** Mean run length assumed when estimating how well a core's test set
    compresses (matches the default of
    {!Nocplan_proc.Characterization.of_decompress}). *)

val decompression_footprint : System.t -> module_id:int -> int
(** Memory words a processor needs to serve this core's full test set
    through the decompression application: the RLE image of
    [patterns * scan-in flits] stimulus words plus the program,
    estimated at {!assumed_run_length}.
    @raise Invalid_argument on an unknown module. *)

val decompression_footprint_measured :
  ?style:Nocplan_proc.Test_data.style ->
  ?seed:int64 ->
  System.t ->
  module_id:int ->
  int
(** The same footprint, {e measured}: the module's stimulus stream is
    synthesized ({!Nocplan_proc.Test_data}, default [Atpg 0.05],
    seed 7) and actually RLE-encoded.  Slower but exact for the
    synthesized data; the bench harness compares it against the
    estimate. *)

val route_feasible :
  System.t ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** Whether the XY paths source->CUT and CUT->sink avoid every link in
    the system's [failed_links].  Routing is deterministic, so a test
    whose path crosses a faulty channel simply cannot run; the planner
    must pick other resources (or the instance is unschedulable). *)

val feasible :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  sink:Resource.endpoint ->
  bool
(** [route_feasible && memory_feasible] — the full admission check the
    schedulers apply to a candidate pair. *)

val memory_feasible :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  module_id:int ->
  source:Resource.endpoint ->
  bool
(** Whether the source can hold the test data the application needs:
    always true for the external tester and for BIST (the generator is
    a few words); for decompression, true iff
    {!decompression_footprint} fits the processor's memory capacity. *)

val pp_cost : cost Fmt.t
