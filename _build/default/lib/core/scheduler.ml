module Reservation = Nocplan_noc.Reservation
module Processor = Nocplan_proc.Processor

let log_src =
  Logs.Src.create "nocplan.scheduler" ~doc:"Test scheduler decisions"

module Log = (val Logs.src_log log_src)

type policy = Greedy | Lookahead

type config = {
  policy : policy;
  application : Processor.application;
  reuse : int;
  power_limit : float option;
  order : int list option;
  start_time : int;
  modules : int list option;
  pretested : int list;
}

let config ?(policy = Greedy) ?(application = Processor.Bist)
    ?(power_limit = None) ?order ?(start_time = 0) ?modules
    ?(pretested = []) ~reuse () =
  if start_time < 0 then invalid_arg "Scheduler.config: negative start_time";
  { policy; application; reuse; power_limit; order; start_time; modules; pretested }

exception Unschedulable of string

let pp_policy ppf = function
  | Greedy -> Fmt.string ppf "greedy"
  | Lookahead -> Fmt.string ppf "lookahead"

(* Endpoint pool entry: [avail = None] means the endpoint is not in
   the pool yet (a processor whose own test has not been scheduled);
   [Some t] means it is (or will be) idle from time [t]. *)
type slot = { endpoint : Resource.endpoint; mutable avail : int option }

let run system config =
  let endpoints = Resource.all_endpoints system ~reuse:config.reuse in
  let slots =
    List.map
      (fun endpoint ->
        match endpoint with
        | Resource.External_in _ | Resource.External_out _ ->
            { endpoint; avail = Some config.start_time }
        | Resource.Processor id ->
            if List.mem id config.pretested then
              { endpoint; avail = Some config.start_time }
            else { endpoint; avail = None })
      endpoints
  in
  let calendar = Reservation.create () in
  let monitor = Power_monitor.create ~limit:config.power_limit in
  let committed = ref [] in
  let wanted =
    match config.modules with
    | None -> System.module_ids system
    | Some ids ->
        List.iter
          (fun id ->
            if not (Nocplan_itc02.Soc.mem system.System.soc id) then
              invalid_arg
                (Printf.sprintf "Scheduler.run: unknown module %d" id))
          ids;
        List.sort_uniq Stdlib.compare ids
  in
  let initial_order =
    match config.order with
    | None ->
        List.filter (fun id -> List.mem id wanted)
          (Priority.order system ~reuse:config.reuse)
    | Some order ->
        if List.sort Stdlib.compare order <> wanted then
          invalid_arg
            "Scheduler.run: order must be a permutation of the scheduled \
             module ids";
        order
  in
  let pending = ref initial_order in
  (* The cost model is time-invariant, so cache it per assignment: the
     look-ahead policy evaluates every pair at every event otherwise. *)
  let cost_cache : (int * Resource.endpoint * Resource.endpoint, Test_access.cost) Hashtbl.t =
    Hashtbl.create 256
  in
  let cost module_id ~source ~sink =
    let key = (module_id, source, sink) in
    match Hashtbl.find_opt cost_cache key with
    | Some c -> c
    | None ->
        let c =
          Test_access.cost system ~application:config.application ~module_id
            ~source ~sink
        in
        Hashtbl.add cost_cache key c;
        c
  in
  (* Candidate (source, sink) pairs among the given slots for one
     core, each with the time both ends are idle.  Pairs rejected by
     the admission check (role compatibility, faulty links on the XY
     paths, decompression memory) are dropped here. *)
  let pairs_of ~module_id slots_subset =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun snk ->
            if
              Test_access.feasible system ~application:config.application
                ~module_id ~source:src.endpoint ~sink:snk.endpoint
            then
              match (src.avail, snk.avail) with
              | Some a, Some b -> Some (src, snk, max a b)
              | (None | Some _), _ -> None
            else None)
          slots_subset)
      slots_subset
  in
  let try_commit ~now module_id (src, snk, _avail) =
    let c = cost module_id ~source:src.endpoint ~sink:snk.endpoint in
    let finish = now + c.Test_access.duration in
    if
      Reservation.is_free calendar c.Test_access.links ~start:now ~finish
      && Power_monitor.fits monitor ~start:now ~finish
           ~power:c.Test_access.power
    then begin
      Reservation.reserve calendar ~owner:module_id c.Test_access.links
        ~start:now ~finish;
      Power_monitor.add monitor ~start:now ~finish ~power:c.Test_access.power;
      src.avail <- Some finish;
      snk.avail <- Some finish;
      let entry =
        {
          Schedule.module_id;
          source = src.endpoint;
          sink = snk.endpoint;
          start = now;
          finish;
          power = c.Test_access.power;
          links = c.Test_access.links;
        }
      in
      committed := entry :: !committed;
      Log.debug (fun m ->
          m "t=%d: start module %d on %a -> %a (finish %d, power %.1f)" now
            module_id Resource.pp src.endpoint Resource.pp snk.endpoint finish
            c.Test_access.power);
      (* A freshly tested reusable processor joins the pool when its
         test completes. *)
      (match System.processor_of_module system module_id with
      | Some _ -> (
          match
            List.find_opt
              (fun s -> Resource.equal s.endpoint (Resource.Processor module_id))
              slots
          with
          | Some slot -> slot.avail <- Some finish
          | None -> (* beyond the reuse horizon: tested but not reused *) ())
      | None -> ());
      true
    end
    else false
  in
  (* One scheduling attempt for one core at time [now].  Returns true
     if the core was started. *)
  let attempt_greedy ~now module_id =
    let idle =
      List.filter
        (fun s -> match s.avail with Some a -> a <= now | None -> false)
        slots
    in
    (* "The greedy behavior ... forces it to select the first test
       interface available": order pairs by how early they became
       idle. *)
    let candidates =
      List.sort
        (fun (_, _, a) (_, _, b) -> Stdlib.compare a b)
        (pairs_of ~module_id idle)
    in
    List.exists (try_commit ~now module_id) candidates
  in
  let attempt_lookahead ~now module_id =
    let known =
      List.filter (fun s -> Option.is_some s.avail) slots
    in
    let estimated_finish (src, snk, avail) =
      let c = cost module_id ~source:src.endpoint ~sink:snk.endpoint in
      max now avail + c.Test_access.duration
    in
    let candidates =
      pairs_of ~module_id known
      |> List.map (fun pair -> (estimated_finish pair, pair))
      |> List.sort (fun (fa, _) (fb, _) -> Stdlib.compare fa fb)
      |> List.map snd
    in
    (* Take candidates in completion order; commit the first idle one,
       but stop as soon as the best remaining pair is still busy —
       waiting for it beats settling for a worse pair. *)
    let rec go = function
      | [] -> false
      | ((_, _, avail) as pair) :: rest ->
          if avail > now then false
          else if try_commit ~now module_id pair then true
          else go rest
    in
    go candidates
  in
  let attempt =
    match config.policy with
    | Greedy -> attempt_greedy
    | Lookahead -> attempt_lookahead
  in
  let now = ref config.start_time in
  let guard = ref 0 in
  while !pending <> [] do
    incr guard;
    if !guard > 10_000_000 then
      raise (Unschedulable "scheduler did not converge");
    let scheduled, still_pending =
      List.partition (fun id -> attempt ~now:!now id) !pending
    in
    ignore scheduled;
    pending := still_pending;
    if !pending <> [] then begin
      (* Advance to the next endpoint-release event. *)
      let next =
        List.fold_left
          (fun acc s ->
            match s.avail with
            | Some a when a > !now -> (
                match acc with Some m -> Some (min m a) | None -> Some a)
            | Some _ | None -> acc)
          None slots
      in
      match next with
      | Some t -> now := t
      | None ->
          raise
            (Unschedulable
               (Printf.sprintf
                  "no progress at t=%d with %d cores pending (power limit too \
                   tight or no resources)"
                  !now
                  (List.length !pending)))
    end
  done;
  Schedule.of_entries !committed
