module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def

let module_name system id =
  match Soc.find system.System.soc id with
  | m -> m.Module_def.name
  | exception Not_found -> "?"

let endpoint_string endpoint = Fmt.str "%a" Resource.pp endpoint

(* Coordinates print as "(x,y)"; keep CSV columns intact. *)
let endpoint_csv endpoint =
  String.map (function ',' -> ';' | c -> c) (endpoint_string endpoint)

let schedule_csv system (schedule : Schedule.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "module_id,name,source,sink,start,finish,duration,power\n";
  List.iter
    (fun (e : Schedule.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%d,%d,%d,%.3f\n" e.Schedule.module_id
           (module_name system e.Schedule.module_id)
           (endpoint_csv e.Schedule.source)
           (endpoint_csv e.Schedule.sink)
           e.Schedule.start e.Schedule.finish
           (e.Schedule.finish - e.Schedule.start)
           e.Schedule.power))
    schedule.Schedule.entries;
  Buffer.contents buf

(* Minimal RFC 8259 string escaping: the exported strings are ASCII
   identifiers, but escape defensively. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let entry_json system (e : Schedule.entry) =
  Printf.sprintf
    "{\"module\":%d,\"name\":\"%s\",\"source\":\"%s\",\"sink\":\"%s\",\"start\":%d,\"finish\":%d,\"power\":%.3f}"
    e.Schedule.module_id
    (json_escape (module_name system e.Schedule.module_id))
    (json_escape (endpoint_string e.Schedule.source))
    (json_escape (endpoint_string e.Schedule.sink))
    e.Schedule.start e.Schedule.finish e.Schedule.power

let schedule_json system (schedule : Schedule.t) =
  Printf.sprintf "{\"makespan\":%d,\"entries\":[%s]}\n"
    schedule.Schedule.makespan
    (String.concat ","
       (List.map (entry_json system) schedule.Schedule.entries))

let point_json (p : Planner.point) =
  Printf.sprintf
    "{\"reuse\":%d,\"makespan\":%d,\"peak_power\":%.3f,\"validated\":%b}"
    p.Planner.reuse p.Planner.makespan p.Planner.peak_power p.Planner.validated

let sweep_json (sweep : Planner.sweep) =
  Printf.sprintf
    "{\"system\":\"%s\",\"policy\":\"%s\",\"power_limit_pct\":%s,\"points\":[%s]}\n"
    (json_escape sweep.Planner.system_name)
    (Fmt.str "%a" Scheduler.pp_policy sweep.Planner.policy)
    (match sweep.Planner.power_limit_pct with
    | Some pct -> Printf.sprintf "%.2f" pct
    | None -> "null")
    (String.concat "," (List.map point_json sweep.Planner.points))
