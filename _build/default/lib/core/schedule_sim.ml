module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper
module Flit_sim = Nocplan_noc.Flit_sim
module Packet = Nocplan_noc.Packet
module Latency = Nocplan_noc.Latency
module Xy = Nocplan_noc.Xy_routing
module Processor = Nocplan_proc.Processor
module Characterization = Nocplan_proc.Characterization

type test_report = {
  module_id : int;
  scheduled_start : int;
  scheduled_finish : int;
  simulated_finish : int;
  slack : int;
}

type report = {
  tests : test_report list;
  worst_slack : int;
  max_ratio : float;
}

let downscale ~max_patterns system =
  if max_patterns < 1 then
    invalid_arg "Schedule_sim.downscale: max_patterns must be >= 1";
  let cap (m : Module_def.t) =
    Module_def.make ~bidirs:m.Module_def.bidirs
      ~test_power:m.Module_def.test_power ?parent:m.Module_def.parent
      ~id:m.Module_def.id ~name:m.Module_def.name ~inputs:m.Module_def.inputs
      ~outputs:m.Module_def.outputs ~scan_chains:m.Module_def.scan_chains
      ~patterns:(min max_patterns m.Module_def.patterns) ()
  in
  let soc = Soc.map_modules cap system.System.soc in
  (* System.make validates each processor's self-test module against
     the soc, so the placed processors must be rebuilt with equally
     capped templates. *)
  let rebuilt_processors =
    List.map
      (fun (p : System.placed_processor) ->
        {
          p with
          System.processor =
            (let pr = p.System.processor in
             Processor.make
               ~memory_capacity_words:pr.Processor.memory_capacity_words
               ~name:pr.Processor.name ~isa_family:pr.Processor.isa_family
               ~costs:pr.Processor.costs
               ~power_active:pr.Processor.power_active
               ~self_test:(cap pr.Processor.self_test) ());
        })
      system.System.processors
  in
  System.make
    ~failed_links:(Nocplan_noc.Link.Set.elements system.System.failed_links)
    ~soc ~topology:system.System.topology
    ~latency:system.System.latency ~noc_power:system.System.noc_power
    ~flit_width:system.System.flit_width ~placement:system.System.placement
    ~processors:rebuilt_processors ~io_inputs:system.System.io_inputs
    ~io_outputs:system.System.io_outputs ()

(* Per-pattern timing pieces, mirroring Test_access. *)
let entry_profile system ~application ~src ~snk ~cut (e : Schedule.entry) =
  let m =
    match Soc.find system.System.soc e.Schedule.module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Schedule_sim.replay: unknown module %d"
             e.Schedule.module_id)
  in
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  let flow = Latency.stream_cycle_per_flit system.System.latency in
  let gen, setup =
    match e.Schedule.source with
    | Resource.External_in _ -> (0, 0)
    | Resource.External_out _ -> (0, 0)
    | Resource.Processor id -> (
        match System.processor_of_module system id with
        | Some p ->
            let c =
              Processor.source_characterization p.System.processor application
            in
            ( Processor.generation_overhead p.System.processor application,
              c.Characterization.setup_cycles )
        | None -> (0, 0))
  in
  let sink_overhead =
    match e.Schedule.sink with
    | Resource.Processor id -> (
        match System.processor_of_module system id with
        | Some p ->
            int_of_float
              (Float.round
                 p.System.processor.Processor.sink
                   .Characterization.cycles_per_pattern)
        | None -> 0)
    | Resource.External_in _ | Resource.External_out _ -> 0
  in
  let routing = system.System.latency.Latency.routing_latency in
  let flits_in = wrapper.Wrapper.scan_in_max + 1 in
  let flits_out = wrapper.Wrapper.scan_out_max + 1 in
  let topology = system.System.topology in
  let hops_in = Xy.hops topology ~src ~dst:cut in
  let hops_out = Xy.hops topology ~src:cut ~dst:snk in
  let transport_in = ((hops_in + 2) * routing) + (flits_in * flow) in
  let transport_out = ((hops_out + 2) * routing) + (flits_out * flow) in
  let module Link = Nocplan_noc.Link in
  let links_in = Link.Set.of_list (Xy.links topology ~src ~dst:cut) in
  let links_out = Link.Set.of_list (Xy.links topology ~src:cut ~dst:snk) in
  let transport =
    if Link.Set.is_empty (Link.Set.inter links_in links_out) then
      max transport_in transport_out
    else transport_in + transport_out
  in
  let per_pattern =
    max (Wrapper.pattern_cycles wrapper) transport + gen + sink_overhead
  in
  (m, wrapper, per_pattern, setup, flits_in, flits_out)

let replay ?(application = Processor.Bist) system (schedule : Schedule.t) =
  let next_packet_id = ref 0 in
  let fresh_id () =
    let id = !next_packet_id in
    incr next_packet_id;
    id
  in
  (* Expand every entry into its packet stream, remembering which
     packet ids carry this test's responses. *)
  let expansions =
    List.map
      (fun (e : Schedule.entry) ->
        let src = Resource.coord system e.Schedule.source in
        let snk = Resource.coord system e.Schedule.sink in
        let cut = System.coord_of_module system e.Schedule.module_id in
        let m, _wrapper, per_pattern, setup, flits_in, flits_out =
          entry_profile system ~application ~src ~snk ~cut e
        in
        let stimulus_fill =
          Latency.header_latency system.System.latency
            ~hops:(Xy.hops system.System.topology ~src ~dst:cut)
        in
        let packets =
          List.concat_map
            (fun k ->
              let t_stim = e.Schedule.start + setup + (k * per_pattern) in
              let stim =
                Packet.make ~id:(fresh_id ()) ~src ~dst:cut ~flits:flits_in
                  ~inject_time:t_stim
              in
              (* The response for pattern [k] leaves the CUT after the
                 pattern has been scanned in and captured. *)
              let t_resp = t_stim + stimulus_fill + per_pattern in
              let resp =
                Packet.make ~id:(fresh_id ()) ~src:cut ~dst:snk
                  ~flits:flits_out ~inject_time:t_resp
              in
              [ (stim, false); (resp, true) ])
            (List.init m.Module_def.patterns (fun k -> k))
        in
        (e, packets))
      schedule.Schedule.entries
  in
  let all_packets = List.concat_map (fun (_, ps) -> List.map fst ps) expansions in
  let config =
    Flit_sim.config system.System.topology system.System.latency
  in
  let result = Flit_sim.run config all_packets in
  let delivered =
    List.map
      (fun (d : Flit_sim.delivery) -> (d.Flit_sim.packet.Packet.id, d))
      result.Flit_sim.deliveries
  in
  let tests =
    List.map
      (fun ((e : Schedule.entry), packets) ->
        let response_ids =
          List.filter_map
            (fun ((p : Packet.t), is_response) ->
              if is_response then Some p.Packet.id else None)
            packets
        in
        let simulated_finish =
          List.fold_left
            (fun acc id ->
              match List.assoc_opt id delivered with
              | Some d -> max acc d.Flit_sim.delivered_at
              | None -> acc)
            0 response_ids
        in
        {
          module_id = e.Schedule.module_id;
          scheduled_start = e.Schedule.start;
          scheduled_finish = e.Schedule.finish;
          simulated_finish;
          slack = e.Schedule.finish - simulated_finish;
        })
      expansions
  in
  let worst_slack =
    List.fold_left (fun acc t -> min acc t.slack) max_int tests
  in
  let max_ratio =
    List.fold_left
      (fun acc t ->
        let scheduled = max 1 (t.scheduled_finish - t.scheduled_start) in
        let simulated = max 1 (t.simulated_finish - t.scheduled_start) in
        Float.max acc (float_of_int simulated /. float_of_int scheduled))
      0.0 tests
  in
  { tests; worst_slack; max_ratio }

let pp_report ppf r =
  let pp_test ppf t =
    Fmt.pf ppf "@[<h>module %3d: scheduled [%d,%d), simulated finish %d (slack %d)@]"
      t.module_id t.scheduled_start t.scheduled_finish t.simulated_finish
      t.slack
  in
  Fmt.pf ppf "@[<v>%a@,worst slack %d, max sim/analytic ratio %.3f@]"
    (Fmt.list ~sep:Fmt.cut pp_test)
    r.tests r.worst_slack r.max_ratio
