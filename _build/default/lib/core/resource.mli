(** Test resource endpoints.

    A test needs a {e source} (delivers stimuli) and a {e sink}
    (collects responses).  External interfaces provide one of the two
    roles each; a tested processor can serve either role, one test at
    a time. *)

type endpoint =
  | External_in of Nocplan_noc.Coord.t
      (** external tester stimulus port attached at this router *)
  | External_out of Nocplan_noc.Coord.t
      (** external tester response port *)
  | Processor of int
      (** a reused processor, identified by its self-test module id *)

val coord : System.t -> endpoint -> Nocplan_noc.Coord.t
(** Tile of the endpoint. @raise Invalid_argument for a [Processor]
    endpoint whose id is not a processor of the system. *)

val can_source : endpoint -> bool
(** [External_in] and [Processor] endpoints can drive stimuli. *)

val can_sink : endpoint -> bool
(** [External_out] and [Processor] endpoints can collect responses. *)

val valid_pair : source:endpoint -> sink:endpoint -> bool
(** Role-compatible and not the same processor on both ends (a
    processor runs one test application at a time). *)

val all_endpoints : System.t -> reuse:int -> endpoint list
(** Every endpoint of the system when the first [reuse] processors are
    reusable: IO ports first, then those processors in system order.
    @raise Invalid_argument if [reuse] is negative or exceeds the
    processor count. *)

val equal : endpoint -> endpoint -> bool
val compare : endpoint -> endpoint -> int
val pp : endpoint Fmt.t
