(** Machine-readable schedule export for downstream tooling
    (spreadsheets, waveform annotation, regression diffing). *)

val schedule_csv : System.t -> Schedule.t -> string
(** One row per entry:
    [module_id,name,source,sink,start,finish,duration,power]
    with a header line, sorted by start time. *)

val schedule_json : System.t -> Schedule.t -> string
(** The schedule as a JSON object:
    {v
    { "makespan": ..., "entries": [ { "module": ..., "name": ...,
      "source": ..., "sink": ..., "start": ..., "finish": ...,
      "power": ... }, ... ] }
    v}
    Strings are escaped per RFC 8259. *)

val sweep_json : Planner.sweep -> string
(** A sweep as JSON: system, policy, power limit and the points. *)
