(** Branch-and-bound test scheduling for small instances.

    The paper's scheduler is greedy and it self-reports an anomaly;
    this module provides the reference point: an exhaustive search
    over schedules (branching on which core starts next, on which
    (source, sink) pair, and on whether to deliberately wait for the
    next resource release) with lower-bound pruning.  Exponential —
    intended for systems of up to roughly ten modules, where it
    certifies the optimum the heuristics are compared against.

    Feasibility is evaluated directly against the committed entries
    (link-overlap and power checks recomputed per candidate), so the
    search shares no mutable state across branches. *)

type result = {
  schedule : Schedule.t;  (** the best schedule found *)
  exact : bool;
      (** [true] when the search space was exhausted within the node
          budget, i.e. [schedule] is optimal over the searched class *)
  nodes : int;  (** search nodes expanded *)
}

val schedule :
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?max_nodes:int ->
  reuse:int ->
  System.t ->
  result
(** Search for a minimal-makespan schedule.  [max_nodes] (default
    [300_000]) bounds the search; when exceeded the best incumbent is
    returned with [exact = false].  The greedy solution seeds the
    incumbent, so the result is never worse than {!Scheduler.run} with
    {!Scheduler.Greedy}.

    @raise Scheduler.Unschedulable when no complete schedule exists
    (e.g. the power limit is below a single test's power). *)
