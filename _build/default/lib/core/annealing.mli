(** Simulated annealing over test orderings.

    The greedy engine commits cores in a fixed visiting order; the
    paper derives that order from distances to the resources.  This
    optimizer searches the order space instead: neighbours swap two
    positions, each candidate order is evaluated by running the
    (deterministic) engine, and worse moves are accepted with the usual
    Metropolis probability under a geometric cooling schedule.

    Sits between the O(ms) greedy heuristic and the exponential
    {!Exhaustive} search: a few hundred engine evaluations buy most of
    the available improvement on mid-size systems. *)

type result = {
  schedule : Schedule.t;  (** best schedule found *)
  initial_makespan : int;  (** the heuristic-order (greedy) makespan *)
  evaluations : int;  (** engine runs performed *)
  accepted : int;  (** moves accepted (including uphill ones) *)
}

val improvement_pct : result -> float
(** Reduction of the best makespan relative to the initial one. *)

val schedule :
  ?policy:Scheduler.policy ->
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?seed:int64 ->
  reuse:int ->
  System.t ->
  result
(** Run the search.  Defaults: [Greedy] inner policy, BIST, no power
    limit, [iterations = 400], [initial_temperature] = 2% of the
    initial makespan, [cooling = 0.99] per iteration, [seed = 0x5AL].
    Fully deterministic for fixed arguments.  The result is never worse
    than the plain heuristic order.

    @raise Scheduler.Unschedulable if even the initial order cannot be
    scheduled.
    @raise Invalid_argument for non-positive [iterations], [cooling]
    outside (0, 1], or negative temperature. *)
