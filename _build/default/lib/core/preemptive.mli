(** Preemptive test scheduling: splitting pattern sets into sessions.

    The non-preemptive planner keeps a (source, sink) pair and its NoC
    paths busy for a core's whole test.  Splitting the pattern set into
    sessions lets long tests yield resources — useful under tight power
    limits and when a fast external interface frees mid-test (the very
    situation behind the paper's greedy anomaly).  The price is real:
    every session re-pays the source/sink software setup, both path
    fills and the final drain, so over-splitting loses.

    Sessions of the same core are strictly ordered in time (scan state
    is held in the core between sessions) and may use different
    resource pairs. *)

type session = {
  module_id : int;
  source : Resource.endpoint;
  sink : Resource.endpoint;
  start : int;
  finish : int;
  patterns : int;  (** patterns applied in this session, [>= 1] *)
  power : float;
  links : Nocplan_noc.Link.t list;
}

type plan = private {
  sessions : session list;  (** sorted by [start] then [module_id] *)
  makespan : int;
}

val plan_of_sessions : session list -> plan
(** @raise Invalid_argument on malformed intervals or [patterns < 1]. *)

type config = {
  application : Nocplan_proc.Processor.application;
  reuse : int;
  power_limit : float option;
  max_sessions : int;  (** split each core into at most this many *)
}

val config :
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit:float option ->
  ?max_sessions:int ->
  reuse:int ->
  unit ->
  config
(** Defaults: BIST, no power limit, [max_sessions = 3].
    @raise Invalid_argument if [max_sessions < 1]. *)

val schedule : System.t -> config -> plan
(** Greedy list scheduling over session chunks: each core's pattern
    set is divided into up to [max_sessions] near-equal chunks; chunk
    [k+1] becomes available when chunk [k] completes; each chunk picks
    the first available feasible pair, exactly like the non-preemptive
    greedy engine.
    @raise Scheduler.Unschedulable when no progress is possible. *)

type violation =
  | Patterns_not_covered of { module_id : int; applied : int; required : int }
  | Sessions_overlap of int  (** two sessions of this core overlap *)
  | Resource_overlap of Resource.endpoint
  | Link_overlap of Nocplan_noc.Link.t
  | Power_exceeded of { time : int; total : float; limit : float }
  | Invalid_session of session

val validate :
  System.t ->
  application:Nocplan_proc.Processor.application ->
  power_limit:float option ->
  reuse:int ->
  plan ->
  (unit, violation list) result
(** Independent re-check: full pattern coverage per module, in-order
    non-overlapping sessions per core, endpoint/link exclusivity,
    power, pair validity and per-session cost agreement. *)

val pp_plan : plan Fmt.t
val pp_violation : violation Fmt.t
