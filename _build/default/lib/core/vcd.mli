(** Value-change-dump (VCD) export of schedules.

    Renders a schedule as a waveform: one 16-bit variable per test
    resource carrying the id of the module it is currently serving
    (0 when idle), one 16-bit variable for the number of concurrent
    tests and one real variable for the instantaneous power.  Open the
    result in GTKWave or any EDA waveform viewer; one VCD time unit is
    one test clock cycle. *)

val of_schedule : System.t -> reuse:int -> Schedule.t -> string
(** The complete VCD document. *)

val to_file : string -> System.t -> reuse:int -> Schedule.t -> unit
(** Write it to a file. @raise Sys_error on I/O failure. *)
