module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper
module Soc = Nocplan_itc02.Soc
module Xy = Nocplan_noc.Xy_routing
module Link = Nocplan_noc.Link
module Latency = Nocplan_noc.Latency
module Power = Nocplan_noc.Power
module Coord = Nocplan_noc.Coord
module Processor = Nocplan_proc.Processor
module Characterization = Nocplan_proc.Characterization

type cost = {
  duration : int;
  power : float;
  links : Link.t list;
  routers : int;
  per_pattern : int;
}

(* Source-side steady overhead and one-time setup, and the power the
   endpoint draws. *)
let source_profile system ~application = function
  | Resource.External_in _ -> (0, 0, 0.0)
  | Resource.External_out _ ->
      invalid_arg "Test_access: External_out cannot source"
  | Resource.Processor id -> (
      match System.processor_of_module system id with
      | None -> invalid_arg "Test_access: source is not a processor"
      | Some p ->
          let c = Processor.source_characterization p.System.processor application in
          ( Processor.generation_overhead p.System.processor application,
            c.Characterization.setup_cycles,
            c.Characterization.power ))

let sink_profile system = function
  | Resource.External_out _ -> (0, 0, 0.0)
  | Resource.External_in _ -> invalid_arg "Test_access: External_in cannot sink"
  | Resource.Processor id -> (
      match System.processor_of_module system id with
      | None -> invalid_arg "Test_access: sink is not a processor"
      | Some p ->
          let c = p.System.processor.Processor.sink in
          ( int_of_float (Float.round c.Characterization.cycles_per_pattern),
            c.Characterization.setup_cycles,
            c.Characterization.power ))

let distinct_routers routes =
  List.sort_uniq Coord.compare (List.concat routes) |> List.length

let cost ?patterns system ~application ~module_id ~source ~sink =
  if not (Resource.valid_pair ~source ~sink) then
    invalid_arg "Test_access.cost: invalid source/sink pair";
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Test_access.cost: unknown module %d" module_id)
  in
  let pattern_count =
    match patterns with
    | None -> m.Module_def.patterns
    | Some p ->
        if p < 1 then invalid_arg "Test_access.cost: patterns must be >= 1";
        p
  in
  let cut = System.coord_of_module system module_id in
  let src = Resource.coord system source in
  let snk = Resource.coord system sink in
  let latency = system.System.latency in
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  (* Transport: one flit per shift cycle per direction, plus a header
     flit per pattern packet. *)
  let flits_in = wrapper.Wrapper.scan_in_max + 1 in
  let flits_out = wrapper.Wrapper.scan_out_max + 1 in
  let flow = Latency.stream_cycle_per_flit latency in
  let routing = latency.Latency.routing_latency in
  let gen_overhead, src_setup, src_power = source_profile system ~application source in
  let sink_overhead, sink_setup, sink_power = sink_profile system sink in
  let shift_cycles = Wrapper.pattern_cycles wrapper in
  let topology = system.System.topology in
  let hops_in = Xy.hops topology ~src ~dst:cut in
  let hops_out = Xy.hops topology ~src:cut ~dst:snk in
  (* Sustainable pattern cadence on a wormhole path, verified against
     the flit-level simulator by Schedule_sim: under back-to-back
     packets the successor's header trails the predecessor's tail by
     the routing setup at every one of the [hops + 2] port/channel
     crossings, on top of the flits' flow-control slots. *)
  let transport_in = ((hops_in + 2) * routing) + (flits_in * flow) in
  let transport_out = ((hops_out + 2) * routing) + (flits_out * flow) in
  let links_in = Link.Set.of_list (Xy.links topology ~src ~dst:cut) in
  let links_out = Link.Set.of_list (Xy.links topology ~src:cut ~dst:snk) in
  let paths_shared = not (Link.Set.is_empty (Link.Set.inter links_in links_out)) in
  (* If the two paths share a channel, the stimulus and response
     streams serialize on it and their occupancies add up. *)
  let transport =
    if paths_shared then transport_in + transport_out
    else max transport_in transport_out
  in
  let per_pattern =
    max shift_cycles transport + gen_overhead + sink_overhead
  in
  let fill_in = Latency.header_latency latency ~hops:hops_in in
  let fill_out = Latency.header_latency latency ~hops:hops_out in
  (* After the last pattern slot the final response still drains
     through the sink path. *)
  let drain = flits_out * flow in
  let duration =
    src_setup + sink_setup + fill_in + fill_out
    + (pattern_count * per_pattern)
    + drain
  in
  let route_in = Xy.route topology ~src ~dst:cut in
  let route_out = Xy.route topology ~src:cut ~dst:snk in
  let links = Link.Set.elements (Link.Set.union links_in links_out) in
  let routers = distinct_routers [ route_in; route_out ] in
  let power =
    m.Module_def.test_power +. src_power +. sink_power
    +. Power.stream_power system.System.noc_power ~routers
  in
  { duration; power; links; routers; per_pattern }

let assumed_run_length = 4

let decompression_footprint system ~module_id =
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Test_access.decompression_footprint: unknown module %d"
             module_id)
  in
  let wrapper = Wrapper.design ~width:system.System.flit_width m in
  let words = max 1 (m.Module_def.patterns * (wrapper.Wrapper.scan_in_max + 1)) in
  Nocplan_proc.Decompress.estimated_memory_words ~words
    ~mean_run_length:assumed_run_length

let decompression_footprint_measured
    ?(style = Nocplan_proc.Test_data.Atpg 0.05) ?(seed = 7L) system
    ~module_id =
  let m =
    match Soc.find system.System.soc module_id with
    | m -> m
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf
             "Test_access.decompression_footprint_measured: unknown module %d"
             module_id)
  in
  Nocplan_proc.Test_data.measured_memory_words style ~seed
    ~flit_width:system.System.flit_width m

let memory_feasible system ~application ~module_id ~source =
  match (application, source) with
  | Processor.Bist, _
  | Processor.Decompression, (Resource.External_in _ | Resource.External_out _)
    ->
      true
  | Processor.Decompression, Resource.Processor id -> (
      match System.processor_of_module system id with
      | Some p ->
          decompression_footprint system ~module_id
          <= Processor.memory_capacity p.System.processor
      | None -> false)

let route_feasible system ~module_id ~source ~sink =
  let failed = system.System.failed_links in
  Link.Set.is_empty failed
  ||
  let cut = System.coord_of_module system module_id in
  let src = Resource.coord system source in
  let snk = Resource.coord system sink in
  let topology = system.System.topology in
  List.for_all
    (fun l -> not (Link.Set.mem l failed))
    (Xy.links topology ~src ~dst:cut @ Xy.links topology ~src:cut ~dst:snk)

let feasible system ~application ~module_id ~source ~sink =
  Resource.valid_pair ~source ~sink
  && route_feasible system ~module_id ~source ~sink
  && memory_feasible system ~application ~module_id ~source

let pp_cost ppf c =
  Fmt.pf ppf
    "@[<h>cost(duration %d, per-pattern %d, power %.1f, %d links, %d routers)@]"
    c.duration c.per_pattern c.power (List.length c.links) c.routers
