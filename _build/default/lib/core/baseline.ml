let schedule ?(application = Nocplan_proc.Processor.Bist) ?power_limit_pct
    system =
  Planner.schedule ~application ?power_limit_pct ~reuse:0 system

let makespan ?application ?power_limit_pct system =
  (schedule ?application ?power_limit_pct system).Schedule.makespan
