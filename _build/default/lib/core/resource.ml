module Coord = Nocplan_noc.Coord

type endpoint =
  | External_in of Coord.t
  | External_out of Coord.t
  | Processor of int

let coord system = function
  | External_in c | External_out c -> c
  | Processor id -> (
      match System.processor_of_module system id with
      | Some p -> p.System.coord
      | None ->
          invalid_arg
            (Printf.sprintf "Resource.coord: %d is not a processor module" id))

let can_source = function
  | External_in _ | Processor _ -> true
  | External_out _ -> false

let can_sink = function
  | External_out _ | Processor _ -> true
  | External_in _ -> false

let valid_pair ~source ~sink =
  can_source source && can_sink sink
  &&
  match (source, sink) with
  | Processor a, Processor b -> a <> b
  | (External_in _ | External_out _ | Processor _), _ -> true

let all_endpoints system ~reuse =
  let procs = system.System.processors in
  if reuse < 0 || reuse > List.length procs then
    invalid_arg "Resource.all_endpoints: reuse out of range";
  let reused = List.filteri (fun i _ -> i < reuse) procs in
  List.map (fun c -> External_in c) system.System.io_inputs
  @ List.map (fun c -> External_out c) system.System.io_outputs
  @ List.map (fun p -> Processor p.System.module_id) reused

let compare a b =
  let tag = function
    | External_in _ -> 0
    | External_out _ -> 1
    | Processor _ -> 2
  in
  match (a, b) with
  | External_in ca, External_in cb | External_out ca, External_out cb ->
      Coord.compare ca cb
  | Processor ia, Processor ib -> Stdlib.compare ia ib
  | (External_in _ | External_out _ | Processor _), _ ->
      Stdlib.compare (tag a) (tag b)

let equal a b = compare a b = 0

let pp ppf = function
  | External_in c -> Fmt.pf ppf "ext-in%a" Coord.pp c
  | External_out c -> Fmt.pf ppf "ext-out%a" Coord.pp c
  | Processor id -> Fmt.pf ppf "proc#%d" id
