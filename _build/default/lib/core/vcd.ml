(* VCD identifier codes: printable ASCII 33..126, shortest-first. *)
let id_code index =
  let base = 94 in
  let rec go index acc =
    let digit = Char.chr (33 + (index mod base)) in
    let acc = String.make 1 digit ^ acc in
    if index < base then acc else go ((index / base) - 1) acc
  in
  go index ""

let sanitize name =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

let binary_of_int width v =
  String.init width (fun i ->
      if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let of_schedule system ~reuse (schedule : Schedule.t) =
  let endpoints = Resource.all_endpoints system ~reuse in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "$comment nocplan schedule waveform $end\n";
  out "$timescale 1ns $end\n";
  out "$scope module nocplan $end\n";
  let endpoint_codes =
    List.mapi
      (fun i endpoint ->
        let code = id_code i in
        out "$var reg 16 %s %s $end\n" code
          (sanitize (Fmt.str "%a" Resource.pp endpoint));
        (endpoint, code))
      endpoints
  in
  let concurrency_code = id_code (List.length endpoints) in
  let power_code = id_code (List.length endpoints + 1) in
  out "$var reg 16 %s concurrent_tests $end\n" concurrency_code;
  out "$var real 64 %s total_power $end\n" power_code;
  out "$upscope $end\n$enddefinitions $end\n";
  (* Event times: all starts and finishes. *)
  let times =
    List.concat_map
      (fun (e : Schedule.entry) -> [ e.Schedule.start; e.Schedule.finish ])
      schedule.Schedule.entries
    |> List.cons 0
    |> List.sort_uniq Stdlib.compare
  in
  let serving endpoint time =
    match
      List.find_opt
        (fun (e : Schedule.entry) ->
          e.Schedule.start <= time
          && time < e.Schedule.finish
          && (Resource.equal e.Schedule.source endpoint
             || Resource.equal e.Schedule.sink endpoint))
        schedule.Schedule.entries
    with
    | Some e -> e.Schedule.module_id
    | None -> 0
  in
  let active time =
    List.filter
      (fun (e : Schedule.entry) ->
        e.Schedule.start <= time && time < e.Schedule.finish)
      schedule.Schedule.entries
  in
  let last : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let emit time code value =
    match Hashtbl.find_opt last code with
    | Some v when String.equal v value -> false
    | Some _ | None ->
        Hashtbl.replace last code value;
        ignore time;
        true
  in
  List.iter
    (fun time ->
      let changes = Buffer.create 64 in
      List.iter
        (fun (endpoint, code) ->
          let value = binary_of_int 16 (serving endpoint time) in
          if emit time code value then
            Buffer.add_string changes (Printf.sprintf "b%s %s\n" value code))
        endpoint_codes;
      let concurrent = List.length (active time) in
      let cvalue = binary_of_int 16 concurrent in
      if emit time concurrency_code cvalue then
        Buffer.add_string changes
          (Printf.sprintf "b%s %s\n" cvalue concurrency_code);
      let power =
        List.fold_left
          (fun acc (e : Schedule.entry) -> acc +. e.Schedule.power)
          0.0 (active time)
      in
      let pvalue = Printf.sprintf "%.3f" power in
      if emit time power_code pvalue then
        Buffer.add_string changes (Printf.sprintf "r%s %s\n" pvalue power_code);
      if Buffer.length changes > 0 then begin
        out "#%d\n" time;
        Buffer.add_buffer buf changes
      end)
    times;
  Buffer.contents buf

let to_file path system ~reuse schedule =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (of_schedule system ~reuse schedule))
