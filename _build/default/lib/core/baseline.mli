(** The comparison baseline: external-tester-only test planning.

    "The results ... demonstrate that increasing the number of
    processors reused for test reduces the test time {e compared to
    the test without processor reuse}."  The baseline is the same
    engine with an empty processor resource pool — every test is fed
    and drained through the external interfaces. *)

val schedule :
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit_pct:float ->
  System.t ->
  Schedule.t
(** Greedy schedule with [reuse = 0]. *)

val makespan :
  ?application:Nocplan_proc.Processor.application ->
  ?power_limit_pct:float ->
  System.t ->
  int
