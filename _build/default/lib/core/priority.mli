(** Test priority ordering.

    "The position of the CUTs, processors and IO ports determine the
    order and priority of the test.  The cores closer to IO ports or
    processors are tested first."  Ties are broken towards larger test
    volume (finishing long tests early helps the makespan), then by
    module id for determinism. *)

val distance_to_nearest_resource : System.t -> reuse:int -> int -> int
(** Manhattan distance from the module's tile to the nearest IO port
    or reusable-processor tile. *)

val order : System.t -> reuse:int -> int list
(** All module ids sorted by test priority (highest priority first). *)
