(** Cross-validation of the analytic cost model against the flit-level
    NoC simulator.

    The planner prices every test with the closed-form {!Test_access}
    model.  This module {e executes} a schedule instead: each test is
    expanded into its per-pattern stimulus and response packets, all
    packets of all concurrent tests are replayed together on
    {!Nocplan_noc.Flit_sim}, and the simulated completion of every test
    is compared with the scheduled window.

    Because the flit simulator is cycle-stepped, replay cost grows with
    the makespan; use [max_patterns] to downscale pattern counts (the
    per-pattern steady state is what the model must get right, so a few
    tens of patterns per core suffice). *)

type test_report = {
  module_id : int;
  scheduled_start : int;
  scheduled_finish : int;
  simulated_finish : int;
      (** cycle the last response flit of this test was delivered *)
  slack : int;
      (** [scheduled_finish - simulated_finish]; negative means the
          simulation missed the analytic deadline *)
}

type report = {
  tests : test_report list;  (** one per schedule entry, by start time *)
  worst_slack : int;
  max_ratio : float;
      (** max over tests of [simulated duration / scheduled duration] *)
}

val downscale : max_patterns:int -> System.t -> System.t
(** The same system with every module's pattern count capped — for
    affordable replay.  @raise Invalid_argument if [max_patterns < 1]. *)

val replay :
  ?application:Nocplan_proc.Processor.application ->
  System.t ->
  Schedule.t ->
  report
(** Replay the schedule.  The schedule must belong to the given system
    (same module ids and placements); entries are expanded as:

    - stimulus packet [k] (scan-in flits + header) injected at the
      source at [start + setup + k * per_pattern];
    - response packet [k] injected at the CUT one scan-load later.

    @raise Invalid_argument if an entry references an unknown module. *)

val pp_report : report Fmt.t
