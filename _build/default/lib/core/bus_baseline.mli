(** Bus-based test access — the related-work architecture.

    The approaches the paper improves on (Huang et al., Hwang &
    Abraham, Amory et al. 2003) reuse an embedded processor on a
    {e shared bus}: one transfer at a time, no spatial parallelism.
    This module prices the same systems under a bus TAM so the paper's
    motivation — NoC concurrency — can be quantified.

    Model: a single arbitrated bus moves one word per [bus_cycle]
    cycles; a test's stimulus and response words all cross the bus, so
    per pattern it carries [(si + 1) + (so + 1)] words; the source's
    generation overhead overlaps bus transfers only up to the usual
    [max].  Tests are fully serialized on the bus — processors still
    help by removing nothing but the external interface bottleneck, so
    processor reuse buys (almost) no time on a bus: exactly the
    observation that motivates the NoC. *)

type result = {
  makespan : int;  (** serialized total test time on the bus *)
  per_module : (int * int) list;  (** (module id, test duration) *)
}

val plan :
  ?application:Nocplan_proc.Processor.application ->
  ?bus_cycle:int ->
  ?use_processor_sources:bool ->
  System.t ->
  result
(** Price the whole benchmark on a bus.  [bus_cycle] (default: the
    NoC's flow latency, i.e. equal raw bandwidth) is the cycles per
    bus word; [use_processor_sources] (default false) adds the
    generation overhead of a processor source to every pattern,
    modelling the related-work setups where the processor, not an
    external tester, feeds the bus.
    @raise Invalid_argument if [bus_cycle < 1]. *)

val speedup : System.t -> noc_makespan:int -> result -> float
(** [bus makespan / noc makespan] — how much the NoC's parallelism
    buys over the serial bus. *)
