(** Tabular and CSV reporting of experiment results. *)

type headline = {
  system_name : string;
  baseline : int;  (** reuse = 0 makespan *)
  best_reuse : int;
  best_makespan : int;
  reduction_pct : float;
}

val headline : Planner.sweep -> headline
(** The quantity the paper quotes in the text: the best reduction over
    the sweep relative to the no-reuse baseline. *)

val pp_headline : headline Fmt.t

val sweep_csv : Planner.sweep -> string
(** [reuse,makespan,reduction_pct,peak_power,validated] rows with a
    header line. *)

val figure1_table :
  unconstrained:Planner.sweep -> constrained:Planner.sweep -> string
(** The two series of one Figure-1 panel side by side, aligned on
    reuse count.
    @raise Invalid_argument if the sweeps have different lengths. *)

val comparison_table :
  label_a:string -> label_b:string -> Planner.sweep -> Planner.sweep -> string
(** Generic two-series table (used for the greedy-vs-lookahead
    ablation). *)

val ascii_chart :
  ?height:int -> ?width:int -> (string * Planner.sweep) list -> string
(** Render sweeps as an ASCII line chart — test time (y) against
    processors reused (x), the shape of the paper's Figure 1.  Each
    series is drawn with its own glyph and listed in a legend; the y
    axis is scaled to the global extremes.  [height] defaults to 16
    rows, [width] to 60 columns.
    @raise Invalid_argument if no series is given or a sweep is
    empty. *)
