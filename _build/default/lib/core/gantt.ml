module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def

let bucket ~width ~makespan time =
  if makespan = 0 then 0
  else min (width - 1) (time * width / makespan)

let bar ~width ~makespan ~start ~finish ch =
  let row = Bytes.make width '.' in
  let first = bucket ~width ~makespan start in
  let last = bucket ~width ~makespan (max start (finish - 1)) in
  for i = first to last do
    Bytes.set row i ch
  done;
  Bytes.to_string row

let render ?(width = 72) system (schedule : Schedule.t) =
  let makespan = max 1 schedule.Schedule.makespan in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "time 0 .. %d (one column = %d cycles)\n"
       schedule.Schedule.makespan
       (max 1 (makespan / width)));
  List.iter
    (fun (e : Schedule.entry) ->
      let name =
        match Soc.find system.System.soc e.Schedule.module_id with
        | m -> m.Module_def.name
        | exception Not_found -> "?"
      in
      let ch =
        if System.is_processor_module system e.Schedule.module_id then '#'
        else '='
      in
      Buffer.add_string buf
        (Fmt.str "%12s %3d |%s| %a->%a\n" name e.Schedule.module_id
           (bar ~width ~makespan ~start:e.Schedule.start
              ~finish:e.Schedule.finish ch)
           Resource.pp e.Schedule.source Resource.pp e.Schedule.sink))
    schedule.Schedule.entries;
  Buffer.contents buf

let render_resources ?(width = 72) system ~reuse (schedule : Schedule.t) =
  let makespan = max 1 schedule.Schedule.makespan in
  let endpoints = Resource.all_endpoints system ~reuse in
  let buf = Buffer.create 1024 in
  List.iter
    (fun endpoint ->
      let row = Bytes.make width '.' in
      List.iter
        (fun (e : Schedule.entry) ->
          let serves =
            Resource.equal e.Schedule.source endpoint
            || Resource.equal e.Schedule.sink endpoint
          in
          if serves then begin
            let first = bucket ~width ~makespan e.Schedule.start in
            let last =
              bucket ~width ~makespan
                (max e.Schedule.start (e.Schedule.finish - 1))
            in
            for i = first to last do
              Bytes.set row i '='
            done
          end)
        schedule.Schedule.entries;
      let busy = Schedule.resource_busy_time schedule endpoint in
      let label = Fmt.str "%a" Resource.pp endpoint in
      Buffer.add_string buf
        (Printf.sprintf "%14s |%s| %3.0f%%\n" label (Bytes.to_string row)
           (100.0 *. float_of_int busy /. float_of_int makespan)))
    endpoints;
  Buffer.contents buf
