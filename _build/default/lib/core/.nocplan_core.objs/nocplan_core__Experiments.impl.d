lib/core/experiments.ml: Array List Nocplan_itc02 Nocplan_noc Nocplan_proc System
