lib/core/baseline.ml: Nocplan_proc Planner Schedule
