lib/core/preemptive.ml: Fmt Hashtbl List Nocplan_itc02 Nocplan_noc Nocplan_proc Power_monitor Printf Priority Resource Scheduler Stdlib System Test_access
