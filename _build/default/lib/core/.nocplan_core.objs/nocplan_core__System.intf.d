lib/core/system.mli: Fmt Nocplan_itc02 Nocplan_noc Nocplan_proc Placement
