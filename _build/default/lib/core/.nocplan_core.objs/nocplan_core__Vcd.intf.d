lib/core/vcd.mli: Schedule System
