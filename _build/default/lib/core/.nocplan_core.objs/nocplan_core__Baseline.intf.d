lib/core/baseline.mli: Nocplan_proc Schedule System
