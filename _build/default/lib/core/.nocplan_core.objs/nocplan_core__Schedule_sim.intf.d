lib/core/schedule_sim.mli: Fmt Nocplan_proc Schedule System
