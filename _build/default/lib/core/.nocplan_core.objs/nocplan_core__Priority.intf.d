lib/core/priority.mli: System
