lib/core/metrics.ml: Float Fmt List Resource Schedule
