lib/core/gantt.ml: Buffer Bytes Fmt List Nocplan_itc02 Printf Resource Schedule System
