lib/core/bus_baseline.ml: List Nocplan_itc02 Nocplan_noc Nocplan_proc System
