lib/core/report.mli: Fmt Planner
