lib/core/export.mli: Planner Schedule System
