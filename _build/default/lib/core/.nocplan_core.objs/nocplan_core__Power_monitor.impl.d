lib/core/power_monitor.ml: Float List
