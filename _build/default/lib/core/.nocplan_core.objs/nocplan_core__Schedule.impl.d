lib/core/schedule.ml: Float Fmt List Nocplan_itc02 Nocplan_noc Printf Resource Stdlib System Test_access
