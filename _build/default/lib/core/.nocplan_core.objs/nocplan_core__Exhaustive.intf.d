lib/core/exhaustive.mli: Nocplan_proc Schedule System
