lib/core/export.ml: Buffer Char Fmt List Nocplan_itc02 Planner Printf Resource Schedule Scheduler String System
