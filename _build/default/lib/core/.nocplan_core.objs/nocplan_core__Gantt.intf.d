lib/core/gantt.mli: Schedule System
