lib/core/schedule.mli: Fmt Nocplan_noc Nocplan_proc Resource System
