lib/core/metrics.mli: Fmt Resource Schedule System
