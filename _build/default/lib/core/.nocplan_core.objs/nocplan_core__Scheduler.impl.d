lib/core/scheduler.ml: Fmt Hashtbl List Logs Nocplan_itc02 Nocplan_noc Nocplan_proc Option Power_monitor Printf Priority Resource Schedule Stdlib System Test_access
