lib/core/vcd.ml: Buffer Char Fmt Hashtbl List Out_channel Printf Resource Schedule Stdlib String
