lib/core/test_access.mli: Fmt Nocplan_noc Nocplan_proc Resource System
