lib/core/resource.ml: Fmt List Nocplan_noc Printf Stdlib System
