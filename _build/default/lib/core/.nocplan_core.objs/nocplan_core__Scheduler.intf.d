lib/core/scheduler.mli: Fmt Nocplan_proc Schedule System
