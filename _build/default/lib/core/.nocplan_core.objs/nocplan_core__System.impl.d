lib/core/system.ml: Fmt List Nocplan_itc02 Nocplan_noc Nocplan_proc Option Placement Printf
