lib/core/placement.ml: Array Fmt Int List Map Nocplan_noc Printf
