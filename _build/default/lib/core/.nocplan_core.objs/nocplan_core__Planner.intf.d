lib/core/planner.mli: Fmt Nocplan_proc Schedule Scheduler System
