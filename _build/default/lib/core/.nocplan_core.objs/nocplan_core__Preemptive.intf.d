lib/core/preemptive.mli: Fmt Nocplan_noc Nocplan_proc Resource System
