lib/core/power_monitor.mli:
