lib/core/annealing.ml: Array Nocplan_itc02 Nocplan_proc Priority Schedule Scheduler
