lib/core/experiments.mli: System
