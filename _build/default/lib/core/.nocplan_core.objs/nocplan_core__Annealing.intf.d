lib/core/annealing.mli: Nocplan_proc Schedule Scheduler System
