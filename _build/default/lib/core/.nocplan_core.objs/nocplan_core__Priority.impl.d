lib/core/priority.ml: List Nocplan_itc02 Nocplan_noc Resource Stdlib System
