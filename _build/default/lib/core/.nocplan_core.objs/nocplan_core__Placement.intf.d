lib/core/placement.mli: Fmt Nocplan_noc
