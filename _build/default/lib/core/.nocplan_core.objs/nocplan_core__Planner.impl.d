lib/core/planner.ml: Domain Float Fmt Fun List Nocplan_itc02 Nocplan_proc Schedule Scheduler System
