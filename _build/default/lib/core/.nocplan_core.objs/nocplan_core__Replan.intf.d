lib/core/replan.mli: Fmt Nocplan_noc Nocplan_proc Resource Schedule Scheduler Stdlib System
