lib/core/test_access.ml: Float Fmt List Nocplan_itc02 Nocplan_noc Nocplan_proc Printf Resource System
