lib/core/report.ml: Array Buffer Bytes Fmt List Planner Printf String
