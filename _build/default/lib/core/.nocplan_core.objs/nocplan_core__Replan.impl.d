lib/core/replan.ml: Fmt List Nocplan_noc Nocplan_proc Resource Schedule Scheduler System Test_access
