lib/core/schedule_sim.ml: Float Fmt List Nocplan_itc02 Nocplan_noc Nocplan_proc Printf Resource Schedule System
