lib/core/exhaustive.ml: Hashtbl List Nocplan_noc Nocplan_proc Resource Schedule Scheduler Stdlib System Test_access
