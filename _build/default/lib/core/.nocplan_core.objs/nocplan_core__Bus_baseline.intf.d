lib/core/bus_baseline.mli: Nocplan_proc System
