lib/core/resource.mli: Fmt Nocplan_noc System
