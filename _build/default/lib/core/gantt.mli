(** ASCII Gantt rendering of a schedule.

    One row per module, time flowing left to right, the bar annotated
    with the resources serving the test.  Intended for terminal
    inspection of small systems and for the examples. *)

val render : ?width:int -> System.t -> Schedule.t -> string
(** [render ~width system schedule] scales the makespan to [width]
    characters (default 72).  Rows are ordered by start time. *)

val render_resources : ?width:int -> System.t -> reuse:int -> Schedule.t -> string
(** One row per resource endpoint instead: shows utilization and idle
    gaps of the external interfaces and reused processors. *)
