module Link = Nocplan_noc.Link
module Processor = Nocplan_proc.Processor

type result = {
  kept : Schedule.entry list;
  voided : Schedule.entry list;
  replanned : Schedule.entry list;
  makespan : int;
}

let after_fault ?(policy = Scheduler.Greedy)
    ?(application = Processor.Bist) ?(power_limit = None) ~reuse ~at ~failed
    system (schedule : Schedule.t) =
  if at < 0 then invalid_arg "Replan.after_fault: negative event time";
  let kept, voided =
    List.partition
      (fun (e : Schedule.entry) -> e.Schedule.finish <= at)
      schedule.Schedule.entries
  in
  let done_ids = List.map (fun (e : Schedule.entry) -> e.Schedule.module_id) kept in
  let remaining =
    List.filter
      (fun id -> not (List.mem id done_ids))
      (System.module_ids system)
  in
  let degraded = System.with_failed_links system failed in
  let pretested =
    List.filter (fun id -> System.is_processor_module system id) done_ids
  in
  let replanned =
    if remaining = [] then []
    else
      (Scheduler.run degraded
         (Scheduler.config ~policy ~application ~power_limit ~start_time:at
            ~modules:remaining ~pretested ~reuse ()))
        .Schedule.entries
  in
  let makespan =
    List.fold_left
      (fun acc (e : Schedule.entry) -> max acc e.Schedule.finish)
      0 (kept @ replanned)
  in
  { kept; voided; replanned; makespan }

type violation =
  | Coverage of int
  | Replanned_too_early of Schedule.entry
  | Replanned_entry_invalid of Schedule.entry
  | Resource_conflict of Resource.endpoint
  | Link_conflict of Link.t
  | Processor_not_ready of { user : Schedule.entry; processor_id : int }

let validate system ~application ~reuse ~at ~failed r =
  ignore reuse;
  let degraded = System.with_failed_links system failed in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let combined = r.kept @ r.replanned in
  (* exact-once coverage over kept + replanned *)
  List.iter
    (fun id ->
      let count =
        List.length
          (List.filter
             (fun (e : Schedule.entry) -> e.Schedule.module_id = id)
             combined)
      in
      if count <> 1 then add (Coverage id))
    (System.module_ids system);
  (* replanned entries: timing, feasibility, cost *)
  List.iter
    (fun (e : Schedule.entry) ->
      if e.Schedule.start < at then add (Replanned_too_early e);
      let feasible =
        match
          Test_access.cost degraded ~application
            ~module_id:e.Schedule.module_id ~source:e.Schedule.source
            ~sink:e.Schedule.sink
        with
        | c ->
            Test_access.feasible degraded ~application
              ~module_id:e.Schedule.module_id ~source:e.Schedule.source
              ~sink:e.Schedule.sink
            && e.Schedule.finish - e.Schedule.start = c.Test_access.duration
        | exception Invalid_argument _ -> false
      in
      if not feasible then add (Replanned_entry_invalid e))
    r.replanned;
  (* exclusivity among replanned entries (kept entries all end by [at],
     so they cannot clash with them) *)
  let overlapping (a : Schedule.entry) (b : Schedule.entry) =
    a.Schedule.start < b.Schedule.finish && b.Schedule.start < a.Schedule.finish
  in
  let rec pairs = function
    | [] -> ()
    | (e : Schedule.entry) :: rest ->
        List.iter
          (fun (e' : Schedule.entry) ->
            if overlapping e e' then begin
              List.iter
                (fun (a, b) ->
                  if Resource.equal a b then add (Resource_conflict a))
                [
                  (e.Schedule.source, e'.Schedule.source);
                  (e.Schedule.source, e'.Schedule.sink);
                  (e.Schedule.sink, e'.Schedule.source);
                  (e.Schedule.sink, e'.Schedule.sink);
                ];
              let links' = Link.Set.of_list e'.Schedule.links in
              List.iter
                (fun l -> if Link.Set.mem l links' then add (Link_conflict l))
                e.Schedule.links
            end)
          rest;
        pairs rest
  in
  pairs r.replanned;
  (* processor precedence across the whole session: an endpoint used by
     a replanned entry must belong to a processor tested in [kept] or
     tested earlier among the replanned entries *)
  let tested_by id =
    match
      List.find_opt
        (fun (e : Schedule.entry) -> e.Schedule.module_id = id)
        combined
    with
    | Some e -> Some e.Schedule.finish
    | None -> None
  in
  List.iter
    (fun (e : Schedule.entry) ->
      let check = function
        | Resource.Processor id -> (
            match tested_by id with
            | Some finish when finish <= e.Schedule.start -> ()
            | Some _ | None ->
                add (Processor_not_ready { user = e; processor_id = id }))
        | Resource.External_in _ | Resource.External_out _ -> ()
      in
      check e.Schedule.source;
      check e.Schedule.sink)
    r.replanned;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>replanned session (makespan %d):@,kept %d tests, voided %d, replanned %d@,%a@]"
    r.makespan (List.length r.kept) (List.length r.voided)
    (List.length r.replanned)
    (Fmt.list ~sep:Fmt.cut (fun ppf (e : Schedule.entry) ->
         Fmt.pf ppf "  [%d,%d) module %d: %a -> %a" e.Schedule.start
           e.Schedule.finish e.Schedule.module_id Resource.pp
           e.Schedule.source Resource.pp e.Schedule.sink))
    r.replanned

let pp_violation ppf = function
  | Coverage id -> Fmt.pf ppf "module %d not covered exactly once" id
  | Replanned_too_early e ->
      Fmt.pf ppf "replanned entry starts before the event: module %d at %d"
        e.Schedule.module_id e.Schedule.start
  | Replanned_entry_invalid e ->
      Fmt.pf ppf "replanned entry infeasible on the degraded NoC: module %d"
        e.Schedule.module_id
  | Resource_conflict r -> Fmt.pf ppf "endpoint %a double-booked" Resource.pp r
  | Link_conflict l -> Fmt.pf ppf "link %a double-booked" Link.pp l
  | Processor_not_ready { user; processor_id } ->
      Fmt.pf ppf "processor %d used before its test completed (module %d)"
        processor_id user.Schedule.module_id
