type kind = Mesh | Torus
type t = { width : int; height : int; kind : kind }

let create ~kind ~width ~height =
  if width < 1 || height < 1 then
    invalid_arg "Topology.make: dimensions must be >= 1";
  { width; height; kind }

let make ~width ~height = create ~kind:Mesh ~width ~height
let torus ~width ~height = create ~kind:Torus ~width ~height

let router_count t = t.width * t.height

let in_bounds t (c : Coord.t) =
  c.x >= 0 && c.x < t.width && c.y >= 0 && c.y < t.height

let coords t =
  List.concat_map
    (fun y -> List.init t.width (fun x -> Coord.make ~x ~y))
    (List.init t.height (fun y -> y))

let neighbors t (c : Coord.t) =
  if not (in_bounds t c) then invalid_arg "Topology.neighbors: out of bounds";
  let wrap v size = ((v mod size) + size) mod size in
  let candidates =
    match t.kind with
    | Mesh ->
        [
          { Coord.x = c.x - 1; y = c.y };
          { Coord.x = c.x + 1; y = c.y };
          { Coord.x = c.x; y = c.y - 1 };
          { Coord.x = c.x; y = c.y + 1 };
        ]
        |> List.filter (in_bounds t)
    | Torus ->
        [
          { Coord.x = wrap (c.x - 1) t.width; y = c.y };
          { Coord.x = wrap (c.x + 1) t.width; y = c.y };
          { Coord.x = c.x; y = wrap (c.y - 1) t.height };
          { Coord.x = c.x; y = wrap (c.y + 1) t.height };
        ]
  in
  (* A 1-wide axis wraps to the router itself; a 2-wide axis reaches
     the same partner both ways.  Deduplicate and drop self-loops. *)
  List.sort_uniq Coord.compare candidates
  |> List.filter (fun n -> not (Coord.equal n c))

let axis_distance ~kind ~size a b =
  let d = abs (a - b) in
  match kind with Mesh -> d | Torus -> min d (size - d)

let distance t (a : Coord.t) (b : Coord.t) =
  axis_distance ~kind:t.kind ~size:t.width a.x b.x
  + axis_distance ~kind:t.kind ~size:t.height a.y b.y

let index t (c : Coord.t) =
  if not (in_bounds t c) then invalid_arg "Topology.index: out of bounds";
  (c.y * t.width) + c.x

let of_index t i =
  if i < 0 || i >= router_count t then
    invalid_arg "Topology.of_index: out of range";
  Coord.make ~x:(i mod t.width) ~y:(i / t.width)

let equal a b = a.width = b.width && a.height = b.height && a.kind = b.kind

let pp ppf t =
  Fmt.pf ppf "%dx%d %s" t.width t.height
    (match t.kind with Mesh -> "mesh" | Torus -> "torus")
