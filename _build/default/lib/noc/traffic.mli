(** Random traffic generation for NoC characterization.

    The paper characterizes NoC power as "the mean power consumption to
    send packets of random size and random payload"; this module
    produces such workloads deterministically. *)

type spec = {
  packets : int;  (** number of packets to generate *)
  min_flits : int;
  max_flits : int;  (** uniform packet size range, inclusive *)
  max_inject_gap : int;
      (** consecutive injection times differ by a uniform draw in
          [\[0, max_inject_gap\]] *)
  seed : int64;
}

val spec :
  ?min_flits:int ->
  ?max_flits:int ->
  ?max_inject_gap:int ->
  ?seed:int64 ->
  packets:int ->
  unit ->
  spec
(** Defaults: [min_flits = 2], [max_flits = 32], [max_inject_gap = 20],
    [seed = 0xCAFEL].
    @raise Invalid_argument on an empty or inverted size range or
    [packets < 1]. *)

val generate : Topology.t -> spec -> Packet.t list
(** Uniform-random source/destination pairs (always distinct tiles when
    the mesh has more than one router), sizes and injection times drawn
    from [spec].  Packet ids are [0 .. packets-1]. *)
