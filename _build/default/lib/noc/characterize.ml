type timing = { routing_latency : int; flow_latency : int; residual : int }

let pp_timing ppf t =
  Fmt.pf ppf "timing(routing %d, flow %d, residual %d)" t.routing_latency
    t.flow_latency t.residual

(* Latency of one uncontended probe packet through the simulator. *)
let probe config ~src ~dst ~flits =
  let packet = Packet.make ~id:0 ~src ~dst ~flits ~inject_time:0 in
  match (Flit_sim.run config [ packet ]).deliveries with
  | [ d ] -> Flit_sim.latency d
  | _ -> assert false

(* A destination at exactly [hops] routed distance from the origin —
   on a torus the wraparound shortens straight-line picks, so search
   the coordinate list. *)
let probe_endpoints config ~hops =
  let topo = config.Flit_sim.topology in
  let origin = Coord.make ~x:0 ~y:0 in
  match
    List.find_opt
      (fun c -> Topology.distance topo origin c = hops)
      (Topology.coords topo)
  with
  | Some dst -> (origin, dst)
  | None -> invalid_arg "Characterize: topology too small for probe" 

let measure_timing config =
  let lat ~hops ~flits =
    let src, dst = probe_endpoints config ~hops in
    probe config ~src ~dst ~flits
  in
  (* L(h, f) = (h+1)R + (h+2)F + (f-1)F: two differences recover the
     two unknowns exactly. *)
  let l_1_4 = lat ~hops:1 ~flits:4 in
  let l_1_8 = lat ~hops:1 ~flits:8 in
  let l_2_4 = lat ~hops:2 ~flits:4 in
  let flow_latency = (l_1_8 - l_1_4) / 4 in
  let routing_latency = l_2_4 - l_1_4 - flow_latency in
  let fitted = Latency.make ~routing_latency ~flow_latency in
  let residual =
    let errors =
      List.concat_map
        (fun hops ->
          List.map
            (fun flits ->
              abs (lat ~hops ~flits - Latency.packet_latency fitted ~hops ~flits))
            [ 1; 2; 5; 16 ])
        [ 1; 2; 3 ]
    in
    List.fold_left max 0 errors
  in
  { routing_latency; flow_latency; residual }

let measure_power config spec =
  let packets = Traffic.generate config.Flit_sim.topology spec in
  let result = Flit_sim.run config packets in
  let per_router_powers =
    List.map
      (fun (d : Flit_sim.delivery) ->
        let routers =
          Xy_routing.routers_on_route config.Flit_sim.topology
            ~src:d.packet.Packet.src ~dst:d.packet.Packet.dst
        in
        let active = max 1 (Flit_sim.latency d) in
        d.energy /. float_of_int (routers * active))
      result.deliveries
  in
  let mean =
    List.fold_left ( +. ) 0.0 per_router_powers
    /. float_of_int (List.length per_router_powers)
  in
  Power.make ~router_stream_power:mean
