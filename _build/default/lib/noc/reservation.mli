(** Time-interval reservation calendar for NoC channels.

    Test streams occupy their XY paths for the whole duration of a
    test (circuit-style occupancy: the stream of pattern packets is
    continuous).  The scheduler uses this calendar to decide whether a
    candidate (source, CUT, sink) assignment is conflict-free and to
    book it.  Intervals are half-open [[start, finish)]. *)

type t

type booking = {
  owner : int;  (** scheduler-chosen tag, e.g. the CUT's module id *)
  start : int;
  finish : int;
}

val create : unit -> t

val is_free : t -> Link.t list -> start:int -> finish:int -> bool
(** No booked interval on any of the links overlaps [[start, finish)].
    An empty interval ([start >= finish]) is always free. *)

val conflicts : t -> Link.t list -> start:int -> finish:int ->
  (Link.t * booking) list
(** All bookings overlapping the window, for diagnostics. *)

val reserve : t -> owner:int -> Link.t list -> start:int -> finish:int -> unit
(** Book the links for the window.
    @raise Invalid_argument if [start < 0] or [finish < start], or if
    the window is not free (callers must check first — booking a
    conflicting window is a scheduler bug). *)

val next_free_time : t -> Link.t list -> from:int -> duration:int -> int
(** Earliest [t >= from] such that [[t, t + duration)] is free on all
    links.  With a finite number of bookings this always exists. *)

val bookings : t -> Link.t -> booking list
(** Bookings on one link, sorted by start time. *)
