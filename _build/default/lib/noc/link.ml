module T = struct
  type t = Inject of Coord.t | Channel of Coord.t * Coord.t | Eject of Coord.t

  let compare a b =
    let tag = function Inject _ -> 0 | Channel _ -> 1 | Eject _ -> 2 in
    match (a, b) with
    | Inject ca, Inject cb | Eject ca, Eject cb -> Coord.compare ca cb
    | Channel (fa, ta), Channel (fb, tb) ->
        let c = Coord.compare fa fb in
        if c <> 0 then c else Coord.compare ta tb
    | (Inject _ | Channel _ | Eject _), _ -> Stdlib.compare (tag a) (tag b)
end

include T

let channel from_ to_ =
  if Coord.equal from_ to_ then
    invalid_arg "Link.channel: endpoints must be distinct routers";
  Channel (from_, to_)

let routers = function
  | Inject c | Eject c -> [ c ]
  | Channel (a, b) -> [ a; b ]

let equal a b = compare a b = 0

let pp ppf = function
  | Inject c -> Fmt.pf ppf "inject%a" Coord.pp c
  | Eject c -> Fmt.pf ppf "eject%a" Coord.pp c
  | Channel (a, b) -> Fmt.pf ppf "%a->%a" Coord.pp a Coord.pp b

module Set = Set.Make (T)
module Map = Map.Make (T)
