(** NoC characterization: the first step of the paper's flow.

    The designer "characterizes the NoC in terms of time and power
    consumption".  Here the characterization target is the flit-level
    simulator: uncontended probe packets recover the router's routing
    latency and the channel's flow-control latency, and random traffic
    yields the mean per-router stream power used by the planner. *)

type timing = {
  routing_latency : int;
  flow_latency : int;
  residual : int;
      (** worst absolute error of the fitted analytic model against
          the simulator over the probe set; 0 when the analytic model
          is exact *)
}

val measure_timing : Flit_sim.config -> timing
(** Send single uncontended probe packets of varying hop count and
    size through the simulator and solve for the two latency
    parameters.  The mesh must be at least 3 routers wide. *)

val measure_power : Flit_sim.config -> Traffic.spec -> Power.t
(** Run random traffic and return the mean power one stream adds per
    traversed router: mean over packets of
    [energy / (routers_on_route * active_cycles)]. *)

val pp_timing : timing Fmt.t
