type t = { x : int; y : int }

let make ~x ~y =
  if x < 0 || y < 0 then invalid_arg "Coord.make: negative component";
  { x; y }

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let equal a b = a.x = b.x && a.y = b.y
let compare a b = Stdlib.compare (a.x, a.y) (b.x, b.y)
let pp ppf c = Fmt.pf ppf "(%d,%d)" c.x c.y
