(** A packet: the unit of traffic in the flit-level simulator. *)

type t = private {
  id : int;
  src : Coord.t;
  dst : Coord.t;
  flits : int;  (** total flits including the header flit *)
  inject_time : int;  (** cycle at which the source offers the header *)
}

val make : id:int -> src:Coord.t -> dst:Coord.t -> flits:int -> inject_time:int -> t
(** @raise Invalid_argument if [flits < 1] or [inject_time < 0]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
