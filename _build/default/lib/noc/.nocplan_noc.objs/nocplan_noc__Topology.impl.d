lib/noc/topology.ml: Coord Fmt List
