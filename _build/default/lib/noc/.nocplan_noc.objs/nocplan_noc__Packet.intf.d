lib/noc/packet.mli: Coord Fmt
