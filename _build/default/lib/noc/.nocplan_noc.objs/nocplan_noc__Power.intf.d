lib/noc/power.mli: Fmt
