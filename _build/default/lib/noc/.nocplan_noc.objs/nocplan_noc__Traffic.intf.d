lib/noc/traffic.mli: Packet Topology
