lib/noc/flit_sim.mli: Latency Packet Topology
