lib/noc/characterize.ml: Coord Flit_sim Fmt Latency List Packet Power Topology Traffic Xy_routing
