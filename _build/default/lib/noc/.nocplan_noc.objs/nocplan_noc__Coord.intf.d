lib/noc/coord.mli: Fmt
