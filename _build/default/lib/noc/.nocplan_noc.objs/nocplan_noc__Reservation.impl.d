lib/noc/reservation.ml: Link List Stdlib
