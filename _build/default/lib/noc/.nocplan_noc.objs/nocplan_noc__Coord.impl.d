lib/noc/coord.ml: Fmt Stdlib
