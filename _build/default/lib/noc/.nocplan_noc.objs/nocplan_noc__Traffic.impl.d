lib/noc/traffic.ml: Coord List Nocplan_itc02 Packet Topology
