lib/noc/latency.mli: Fmt
