lib/noc/power.ml: Float Fmt
