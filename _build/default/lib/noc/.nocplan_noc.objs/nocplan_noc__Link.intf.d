lib/noc/link.mli: Coord Fmt Map Set
