lib/noc/packet.ml: Coord Fmt
