lib/noc/characterize.mli: Flit_sim Fmt Power Traffic
