lib/noc/link.ml: Coord Fmt Map Set Stdlib
