lib/noc/xy_routing.ml: Coord Link List Topology
