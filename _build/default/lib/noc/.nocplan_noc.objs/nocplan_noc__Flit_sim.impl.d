lib/noc/flit_sim.ml: Array Hashtbl Latency Link List Packet Stdlib Topology Xy_routing
