lib/noc/reservation.mli: Link
