lib/noc/latency.ml: Fmt
