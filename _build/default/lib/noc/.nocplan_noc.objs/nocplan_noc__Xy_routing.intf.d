lib/noc/xy_routing.mli: Coord Link Topology
