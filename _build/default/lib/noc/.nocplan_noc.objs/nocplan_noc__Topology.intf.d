lib/noc/topology.mli: Coord Fmt
