type t = {
  id : int;
  src : Coord.t;
  dst : Coord.t;
  flits : int;
  inject_time : int;
}

let make ~id ~src ~dst ~flits ~inject_time =
  if flits < 1 then invalid_arg "Packet.make: flits must be >= 1";
  if inject_time < 0 then invalid_arg "Packet.make: negative inject_time";
  { id; src; dst; flits; inject_time }

let equal a b =
  a.id = b.id && Coord.equal a.src b.src && Coord.equal a.dst b.dst
  && a.flits = b.flits && a.inject_time = b.inject_time

let pp ppf p =
  Fmt.pf ppf "packet#%d %a->%a %d flits @@%d" p.id Coord.pp p.src Coord.pp
    p.dst p.flits p.inject_time
