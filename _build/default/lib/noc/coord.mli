(** Router coordinates on a 2-D mesh. *)

type t = { x : int; y : int }

val make : x:int -> y:int -> t
(** @raise Invalid_argument on negative components. *)

val manhattan : t -> t -> int
(** Hop distance under minimal (XY) routing. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
