module Rng = Nocplan_itc02.Data_gen.Rng

type spec = {
  packets : int;
  min_flits : int;
  max_flits : int;
  max_inject_gap : int;
  seed : int64;
}

let spec ?(min_flits = 2) ?(max_flits = 32) ?(max_inject_gap = 20)
    ?(seed = 0xCAFEL) ~packets () =
  if packets < 1 then invalid_arg "Traffic.spec: packets must be >= 1";
  if min_flits < 1 || max_flits < min_flits then
    invalid_arg "Traffic.spec: bad flit range";
  if max_inject_gap < 0 then invalid_arg "Traffic.spec: negative inject gap";
  { packets; min_flits; max_flits; max_inject_gap; seed }

let generate topology s =
  let rng = Rng.create s.seed in
  let n = Topology.router_count topology in
  let random_coord () = Topology.of_index topology (Rng.int rng ~bound:n) in
  let rec distinct_pair () =
    let src = random_coord () and dst = random_coord () in
    if n > 1 && Coord.equal src dst then distinct_pair () else (src, dst)
  in
  let time = ref 0 in
  List.init s.packets (fun id ->
      let src, dst = distinct_pair () in
      let flits = Rng.int_range rng ~lo:s.min_flits ~hi:s.max_flits in
      time := !time + Rng.int_range rng ~lo:0 ~hi:s.max_inject_gap;
      Packet.make ~id ~src ~dst ~flits ~inject_time:!time)
