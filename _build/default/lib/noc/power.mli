(** NoC power accounting.

    The paper measures "the mean power consumption to send packets of
    random size and random payload" and adds that value to {e each
    router the packet passes through}.  We keep the same per-router
    convention: a test stream crossing [r] routers adds
    [r * router_stream_power] to the instantaneous power draw for the
    duration of the stream. *)

type t = private {
  router_stream_power : float;
      (** mean power one active stream adds per traversed router *)
}

val make : router_stream_power:float -> t
(** @raise Invalid_argument if the value is negative. *)

val default : t
(** A small default relative to typical core powers, so that NoC power
    matters under tight limits without dominating. *)

val stream_power : t -> routers:int -> float
(** Power added by a stream traversing [routers] routers. *)

val equal : t -> t -> bool
val pp : t Fmt.t
