type t = { routing_latency : int; flow_latency : int }

let make ~routing_latency ~flow_latency =
  if routing_latency < 0 then
    invalid_arg "Latency.make: routing_latency must be >= 0";
  if flow_latency < 1 then invalid_arg "Latency.make: flow_latency must be >= 1";
  { routing_latency; flow_latency }

let hermes_like = make ~routing_latency:5 ~flow_latency:2

(* A path of [hops] inter-router channels crosses [hops + 1] routers
   and [hops + 2] ports/channels (local inject, the channels, local
   eject).  The header pays the routing latency once per router and
   the flow-control latency once per crossing. *)
let header_latency t ~hops =
  if hops < 0 then invalid_arg "Latency.header_latency: negative hops";
  ((hops + 1) * t.routing_latency) + ((hops + 2) * t.flow_latency)

let packet_latency t ~hops ~flits =
  if flits < 1 then invalid_arg "Latency.packet_latency: flits must be >= 1";
  header_latency t ~hops + ((flits - 1) * t.flow_latency)

let stream_cycle_per_flit t = t.flow_latency
let equal a b = a.routing_latency = b.routing_latency && a.flow_latency = b.flow_latency
let pp ppf t = Fmt.pf ppf "latency(routing %d, flow %d)" t.routing_latency t.flow_latency
