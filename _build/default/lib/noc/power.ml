type t = { router_stream_power : float }

let make ~router_stream_power =
  if router_stream_power < 0.0 then
    invalid_arg "Power.make: negative router_stream_power";
  { router_stream_power }

let default = make ~router_stream_power:2.0
let stream_power t ~routers = float_of_int routers *. t.router_stream_power
let equal a b = Float.equal a.router_stream_power b.router_stream_power
let pp ppf t = Fmt.pf ppf "noc-power(%.2f/router)" t.router_stream_power
