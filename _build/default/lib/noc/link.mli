(** Directed channel identities.

    A test stream occupies a sequence of channels: the local injection
    channel at its source tile, the inter-router channels along the XY
    path, and the local ejection channel at its destination tile.
    Channels are the unit of reservation — two concurrent test streams
    conflict exactly when they share a channel in time. *)

type t =
  | Inject of Coord.t  (** local port into the router at this tile *)
  | Channel of Coord.t * Coord.t
      (** directed inter-router channel [from -> to]; the two
          coordinates are mesh neighbours *)
  | Eject of Coord.t  (** local port out of the router at this tile *)

val channel : Coord.t -> Coord.t -> t
(** A directed channel between two routers.  Adjacency depends on the
    topology (meshes: unit manhattan distance; tori also have the
    wraparound channels), so only distinctness is enforced here — the
    routing layer produces adjacent pairs by construction.
    @raise Invalid_argument if the coordinates are equal. *)

val routers : t -> Coord.t list
(** The router(s) this channel touches: one for [Inject]/[Eject], two
    for [Channel]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
