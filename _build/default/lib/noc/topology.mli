(** Grid network topologies: 2-D mesh and 2-D torus.

    The paper's tool supports "NoCs based on grid topology using XY
    routing"; routers are addressed by {!Coord.t} with [x] in
    [0..width-1] and [y] in [0..height-1].  The torus variant adds the
    wraparound channels, shortening worst-case paths — dimension-order
    routing picks the shorter way around each axis. *)

type kind = Mesh | Torus

type t = private { width : int; height : int; kind : kind }

val make : width:int -> height:int -> t
(** A mesh. @raise Invalid_argument unless both dimensions are [>= 1]. *)

val torus : width:int -> height:int -> t
(** A torus. @raise Invalid_argument unless both dimensions are [>= 1]. *)

val router_count : t -> int
val in_bounds : t -> Coord.t -> bool

val coords : t -> Coord.t list
(** All router coordinates in row-major order. *)

val neighbors : t -> Coord.t -> Coord.t list
(** The mesh neighbours of a router; on a torus this includes the
    wraparound partners (and never duplicates: a 1-wide or 2-wide axis
    contributes each neighbour once).
    @raise Invalid_argument if the coordinate is out of bounds. *)

val distance : t -> Coord.t -> Coord.t -> int
(** Hop count under minimal dimension-ordered routing: the manhattan
    distance on a mesh; per-axis [min d (size - d)] on a torus. *)

val index : t -> Coord.t -> int
(** Row-major linearization, for array-backed per-router state.
    @raise Invalid_argument if out of bounds. *)

val of_index : t -> int -> Coord.t
(** Inverse of {!index}. @raise Invalid_argument if out of range. *)

val equal : t -> t -> bool
val pp : t Fmt.t
