(** Cycle-stepped flit-level simulator of a wormhole-switched mesh.

    This is the executable model behind the "NoC characterization"
    step of the flow: it moves individual flits through routers with
    finite buffers, per-router header routing delay and per-channel
    flow-control delay, and wormhole semantics (a channel is held by
    one packet from header acquisition until its tail passes; blocked
    headers keep holding their upstream channels).

    The analytic {!Latency} formulas are validated against this
    simulator by the test suite and by {!Characterize}. *)

type config = {
  topology : Topology.t;
  latency : Latency.t;
  buffer_flits : int;
      (** capacity of the flit buffer at the downstream end of every
          channel; must be [>= 1] *)
  flit_energy : float;
      (** energy consumed by one flit crossing one router *)
}

val config :
  ?buffer_flits:int -> ?flit_energy:float -> Topology.t -> Latency.t -> config
(** [buffer_flits] defaults to 2, [flit_energy] to 1.0.
    @raise Invalid_argument for non-positive buffering or negative
    energy. *)

type delivery = {
  packet : Packet.t;
  header_at : int;  (** cycle the header reached the destination port *)
  delivered_at : int;  (** cycle the tail flit was ejected *)
  energy : float;  (** total flit-hop energy of the packet *)
}

val latency : delivery -> int
(** [delivered_at - inject_time]. *)

type result = {
  deliveries : delivery list;  (** one per packet, in packet-id order *)
  cycles : int;  (** cycle at which the last flit was delivered *)
}

val run : config -> Packet.t list -> result
(** Simulate until every packet is delivered.

    @raise Invalid_argument if a packet's endpoints are out of bounds
    or two packets share an id. *)
