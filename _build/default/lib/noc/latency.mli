(** Analytic wormhole timing model.

    The paper characterizes a NoC router by two figures: the {e routing
    latency} (intra-router cycles to set up the connection through a
    router) and the {e flow-control latency} (inter-router cycles to
    move one flit across a channel).  Under wormhole switching with no
    contention, a packet of [f] flits crossing [h] channels is fully
    delivered after the header pays the per-router setup on each of the
    [h+1] routers and the body streams behind it. *)

type t = private {
  routing_latency : int;  (** cycles per router to route the header *)
  flow_latency : int;  (** cycles per flit per channel hop *)
}

val make : routing_latency:int -> flow_latency:int -> t
(** @raise Invalid_argument unless [routing_latency >= 0] and
    [flow_latency >= 1]. *)

val hermes_like : t
(** [routing_latency = 5], [flow_latency = 2]: the figures of the
    Hermes NoC used by the paper's group (PUCRS). *)

val header_latency : t -> hops:int -> int
(** Cycles until the header flit reaches the destination local port.
    A path of [hops] channels crosses [hops + 1] routers (each paying
    the routing latency) and [hops + 2] ports/channels — local inject,
    the channels, local eject — each paying the flow-control latency:
    [(hops + 1) * routing_latency + (hops + 2) * flow_latency].
    This formula is exact against {!Flit_sim} on an uncontended path;
    {!Characterize.measure_timing} verifies it.
    @raise Invalid_argument if [hops < 0]. *)

val packet_latency : t -> hops:int -> flits:int -> int
(** Cycles until the last flit of an [flits]-flit packet reaches the
    destination: [header_latency + (flits - 1) * flow_latency].
    @raise Invalid_argument if [flits < 1] or [hops < 0]. *)

val stream_cycle_per_flit : t -> int
(** Steady-state cycles between consecutive flits of a pipelined
    stream: [flow_latency]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
