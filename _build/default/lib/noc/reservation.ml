type booking = { owner : int; start : int; finish : int }
type t = { mutable by_link : booking list Link.Map.t }

let create () = { by_link = Link.Map.empty }

let overlaps b ~start ~finish = b.start < finish && start < b.finish

let link_bookings t link =
  match Link.Map.find_opt link t.by_link with Some bs -> bs | None -> []

let is_free t links ~start ~finish =
  start >= finish
  || List.for_all
       (fun link ->
         List.for_all
           (fun b -> not (overlaps b ~start ~finish))
           (link_bookings t link))
       links

let conflicts t links ~start ~finish =
  if start >= finish then []
  else
    List.concat_map
      (fun link ->
        link_bookings t link
        |> List.filter (fun b -> overlaps b ~start ~finish)
        |> List.map (fun b -> (link, b)))
      links

let insert_sorted b bs =
  let rec go = function
    | [] -> [ b ]
    | hd :: tl ->
        if b.start <= hd.start then b :: hd :: tl else hd :: go tl
  in
  go bs

let reserve t ~owner links ~start ~finish =
  if start < 0 || finish < start then
    invalid_arg "Reservation.reserve: bad interval";
  if not (is_free t links ~start ~finish) then
    invalid_arg "Reservation.reserve: window is not free";
  if start < finish then
    let b = { owner; start; finish } in
    t.by_link <-
      List.fold_left
        (fun map link ->
          Link.Map.update link
            (function
              | Some bs -> Some (insert_sorted b bs) | None -> Some [ b ])
            map)
        t.by_link links

let next_free_time t links ~from ~duration =
  if duration <= 0 then from
  else
    (* Candidate start times: [from] and the finish time of every
       booking on the links; the earliest feasible one wins. *)
    let candidates =
      from
      :: List.concat_map
           (fun link ->
             List.filter_map
               (fun b -> if b.finish > from then Some b.finish else None)
               (link_bookings t link))
           links
    in
    let feasible =
      List.filter
        (fun s -> s >= from && is_free t links ~start:s ~finish:(s + duration))
        candidates
    in
    match feasible with
    | [] -> invalid_arg "Reservation.next_free_time: no candidate (impossible)"
    | s :: rest -> List.fold_left min s rest

let bookings t link =
  List.sort
    (fun a b -> Stdlib.compare (a.start, a.finish) (b.start, b.finish))
    (link_bookings t link)
