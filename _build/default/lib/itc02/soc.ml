type t = { name : string; modules : Module_def.t list }

let check_no_duplicate_ids modules =
  let sorted =
    List.sort Stdlib.compare (List.map (fun (m : Module_def.t) -> m.id) modules)
  in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if a = b then
          invalid_arg (Printf.sprintf "Soc: duplicate module id %d" a)
        else scan rest
    | [ _ ] | [] -> ()
  in
  scan sorted

let check_hierarchy modules =
  let ids = List.map (fun (m : Module_def.t) -> m.Module_def.id) modules in
  let parent_of id =
    (List.find (fun (m : Module_def.t) -> m.Module_def.id = id) modules)
      .Module_def.parent
  in
  List.iter
    (fun (m : Module_def.t) ->
      match m.Module_def.parent with
      | None -> ()
      | Some p ->
          if not (List.mem p ids) then
            invalid_arg
              (Printf.sprintf "Soc: module %d has unknown parent %d"
                 m.Module_def.id p);
          (* Walk up; a cycle would revisit the start before running
             out of ancestors. *)
          let rec walk id steps =
            if steps > List.length ids then
              invalid_arg
                (Printf.sprintf "Soc: hierarchy cycle through module %d"
                   m.Module_def.id)
            else
              match parent_of id with
              | None -> ()
              | Some up -> walk up (steps + 1)
          in
          walk m.Module_def.id 0)
    modules

let make ~name ~modules =
  if String.equal name "" then invalid_arg "Soc.make: empty name";
  if modules = [] then invalid_arg "Soc.make: empty module list";
  check_no_duplicate_ids modules;
  check_hierarchy modules;
  let modules =
    List.sort
      (fun (a : Module_def.t) (b : Module_def.t) -> Stdlib.compare a.id b.id)
      modules
  in
  { name; modules }

let children soc id =
  List.filter_map
    (fun (m : Module_def.t) ->
      if m.Module_def.parent = Some id then Some m.Module_def.id else None)
    soc.modules

let roots soc =
  List.filter_map
    (fun (m : Module_def.t) ->
      if m.Module_def.parent = None then Some m.Module_def.id else None)
    soc.modules

let hierarchy_depth soc =
  let rec depth id =
    match children soc id with
    | [] -> 1
    | kids -> 1 + List.fold_left (fun acc k -> max acc (depth k)) 0 kids
  in
  List.fold_left (fun acc id -> max acc (depth id)) 0 (roots soc)

let find soc id = List.find (fun (m : Module_def.t) -> m.id = id) soc.modules
let mem soc id = List.exists (fun (m : Module_def.t) -> m.id = id) soc.modules
let module_count soc = List.length soc.modules
let module_ids soc = List.map (fun (m : Module_def.t) -> m.id) soc.modules
let add_modules soc extra = make ~name:soc.name ~modules:(soc.modules @ extra)

let total_test_power soc =
  List.fold_left
    (fun acc (m : Module_def.t) -> acc +. m.test_power)
    0.0 soc.modules

let total_test_bits soc =
  List.fold_left (fun acc m -> acc + Module_def.test_bits m) 0 soc.modules

let max_module_id soc =
  List.fold_left (fun acc (m : Module_def.t) -> max acc m.id) 0 soc.modules

let map_modules f soc =
  make ~name:soc.name ~modules:(List.map f soc.modules)

let equal a b =
  String.equal a.name b.name
  && List.length a.modules = List.length b.modules
  && List.for_all2 Module_def.equal a.modules b.modules

let pp ppf soc =
  Fmt.pf ppf "@[<v>soc %s (%d modules)@,%a@]" soc.name (module_count soc)
    (Fmt.list ~sep:Fmt.cut Module_def.pp)
    soc.modules

let pp_summary ppf soc =
  Fmt.pf ppf "@[<h>%s: %d modules, %d test bits, total power %.1f@]" soc.name
    (module_count soc) (total_test_bits soc) (total_test_power soc)
