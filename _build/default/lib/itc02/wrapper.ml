type t = { width : int; scan_in_max : int; scan_out_max : int }

(* LPT partition: [chains] are bin loads, mutable during construction.
   Returns the bin load array. *)
let lpt_loads ~bins items =
  let loads = Array.make bins 0 in
  let place item =
    let min_idx = ref 0 in
    for i = 1 to bins - 1 do
      if loads.(i) < loads.(!min_idx) then min_idx := i
    done;
    loads.(!min_idx) <- loads.(!min_idx) + item
  in
  List.iter place (List.sort (fun a b -> Stdlib.compare b a) items);
  loads

(* Distribute [cells] unit cells over [bins] bins already carrying the
   LPT scan partition; unit cells go to the shortest bin, which for
   units is equivalent to spreading the excess evenly.  We compute
   exactly by running LPT with the scan chains followed by unit
   cells. *)
let side_loads ~bins ~scan_chains ~cells =
  let units = List.init cells (fun _ -> 1) in
  (* LPT sorts by size, so scan chains are placed before unit cells;
     appending keeps the computation a single LPT run. *)
  lpt_loads ~bins (scan_chains @ units)

let side_length ~bins ~scan_chains ~cells =
  Array.fold_left max 0 (side_loads ~bins ~scan_chains ~cells)

let design ~width (m : Module_def.t) =
  if width < 1 then invalid_arg "Wrapper.design: width must be >= 1";
  let scan_in_max =
    side_length ~bins:width ~scan_chains:m.scan_chains
      ~cells:(m.inputs + m.bidirs)
  in
  let scan_out_max =
    side_length ~bins:width ~scan_chains:m.scan_chains
      ~cells:(m.outputs + m.bidirs)
  in
  { width; scan_in_max; scan_out_max }

type layout = { in_lengths : int list; out_lengths : int list }

let layout ~width (m : Module_def.t) =
  if width < 1 then invalid_arg "Wrapper.layout: width must be >= 1";
  {
    in_lengths =
      Array.to_list
        (side_loads ~bins:width ~scan_chains:m.scan_chains
           ~cells:(m.inputs + m.bidirs));
    out_lengths =
      Array.to_list
        (side_loads ~bins:width ~scan_chains:m.scan_chains
           ~cells:(m.outputs + m.bidirs));
  }

let pattern_cycles w = max w.scan_in_max w.scan_out_max + 1

let test_cycles w ~patterns =
  if patterns < 0 then invalid_arg "Wrapper.test_cycles: negative patterns";
  ((1 + max w.scan_in_max w.scan_out_max) * patterns)
  + min w.scan_in_max w.scan_out_max

let equal a b =
  a.width = b.width && a.scan_in_max = b.scan_in_max
  && a.scan_out_max = b.scan_out_max

let pp ppf w =
  Fmt.pf ppf "@[<h>wrapper(width %d, si %d, so %d)@]" w.width w.scan_in_max
    w.scan_out_max
