(** Parser for the textual benchmark format used by this library.

    The format is a flattened ITC'02-style description:

    {v
    # comment, to end of line
    Soc d695
    Module 1 c6288
      Inputs 32
      Outputs 32
      Bidirs 0              # optional, default 0
      ScanChains 0          # count, then that many lengths
      Patterns 12
      Power 25.0            # optional, default: toggle model
    End
    Module 2 c7552
      ...
    End
    v}

    Keywords are case-insensitive; fields inside a [Module] block may
    appear in any order; [Inputs], [Outputs], [ScanChains] and
    [Patterns] are mandatory. *)

type error = { line : int; message : string }

val parse : string -> (Soc.t, error) result
(** Parse a benchmark from the full text of a description. *)

val parse_exn : string -> Soc.t
(** Like {!parse} but raises [Failure] with a located message. *)

val of_file : string -> (Soc.t, error) result
(** Read and parse a description file.  I/O errors are reported as an
    [error] on line 0. *)

val pp_error : error Fmt.t
