(** Description of one core (module) of an ITC'02-style system-on-chip
    test benchmark.

    A module carries the information a core provider ships with the
    core for test purposes: functional terminal counts, internal scan
    chains and the size of the test set.  This is the "CUTs
    characterization" input of the test planning flow. *)

type t = private {
  id : int;  (** benchmark-unique module identifier, [>= 1] *)
  name : string;  (** human-readable core name, e.g. ["s38417"] *)
  inputs : int;  (** functional input terminals *)
  outputs : int;  (** functional output terminals *)
  bidirs : int;  (** bidirectional terminals *)
  scan_chains : int list;  (** internal scan chain lengths, cells *)
  patterns : int;  (** number of test patterns in the test set *)
  test_power : float;
      (** average power drawn while this core is under test, in the
          arbitrary-but-consistent units used across a benchmark *)
  parent : int option;
      (** enclosing module for hierarchical benchmarks (the ITC'02
          format nests cores); [None] for top-level modules.  The
          planner flattens the hierarchy, as is conventional in the
          scheduling literature, but the relation is preserved for
          format fidelity. *)
}

val make :
  ?bidirs:int ->
  ?test_power:float ->
  ?parent:int ->
  id:int ->
  name:string ->
  inputs:int ->
  outputs:int ->
  scan_chains:int list ->
  patterns:int ->
  unit ->
  t
(** [make ~id ~name ~inputs ~outputs ~scan_chains ~patterns ()] builds
    a module description.  [bidirs] defaults to [0]; [parent] to
    [None].  When [test_power] is omitted it defaults to
    {!estimated_power} of the module, the toggle-proportional estimate
    conventional in the power-constrained ITC'02 literature.

    @raise Invalid_argument if [id < 1], any terminal count is
    negative, [patterns < 1], a scan chain length is [< 1], or
    [parent] equals [id]. *)

val estimated_power : scan_cells:int -> terminals:int -> float
(** Toggle-proportional power estimate: during scan shifting, every
    scan cell and terminal may toggle each cycle, so the estimate is
    proportional to [scan_cells + terminals].  Used as the default
    [test_power] by {!make}. *)

val scan_cells : t -> int
(** Total number of internal scan cells. *)

val is_combinational : t -> bool
(** [true] iff the module has no scan chain. *)

val terminals : t -> int
(** [inputs + outputs + 2 * bidirs]: terminal count as seen by a
    wrapper (bidirectionals need a cell on each side). *)

val test_bits : t -> int
(** Total test data volume in bits: for each pattern, stimuli bits
    ([inputs + bidirs + scan cells]) plus response bits
    ([outputs + bidirs + scan cells]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
