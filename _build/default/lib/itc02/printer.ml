let pp_parent ppf = function
  | None -> ()
  | Some p -> Fmt.pf ppf "@,  Parent %d" p

let pp_module ppf (m : Module_def.t) =
  Fmt.pf ppf "@[<v>Module %d %s@,  Inputs %d@,  Outputs %d@,  Bidirs %d@,  ScanChains %d%a@,  Patterns %d@,  Power %.17g%a@,End@]"
    m.id m.name m.inputs m.outputs m.bidirs
    (List.length m.scan_chains)
    (Fmt.list ~sep:Fmt.nop (fun ppf len -> Fmt.pf ppf " %d" len))
    m.scan_chains m.patterns m.test_power pp_parent m.parent

let pp_soc ppf (soc : Soc.t) =
  Fmt.pf ppf "@[<v>Soc %s@,%a@]" soc.name
    (Fmt.list ~sep:Fmt.cut pp_module)
    soc.modules

let to_string soc = Fmt.str "%a@." pp_soc soc

let to_file path soc =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string soc))
