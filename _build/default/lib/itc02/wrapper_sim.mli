(** Bit-level simulation of wrapper scan access.

    The planner's timing model says: at flit width [w], one flit per
    cycle feeds all wrapper chains in parallel, a pattern is fully
    loaded after [scan_in_max] cycles, and the previous response is
    recovered after [scan_out_max] cycles of shifting out.  This
    module {e performs} that shifting on explicit bit registers, so
    the timing claims are verified against an executable model (the
    test suite round-trips patterns through it). *)

type t
(** A wrapper instance: one shift register per wrapper chain, on both
    the scan-in and scan-out sides. *)

val create : Wrapper.layout -> t
(** Fresh wrapper with all cells zero. *)

val in_cells : t -> int
(** Total scan-in cells (the stimulus bits of one pattern). *)

val out_cells : t -> int

val shift_in_cycles : t -> int
(** Cycles to load one full pattern: the longest scan-in chain —
    equals {!Wrapper.t.scan_in_max} for the same design. *)

val shift_out_cycles : t -> int

val shift_in : t -> flit:bool list -> unit
(** One scan-in cycle: bit [i] of the flit enters wrapper chain [i]
    (extra flit bits beyond the chain count are padding and ignored;
    chains already full simply shift, dropping their oldest bit —
    callers align patterns so this never loses stimulus).
    @raise Invalid_argument if the flit is narrower than the chain
    count. *)

val load_pattern : t -> bool list -> unit
(** Load one whole pattern (a [in_cells]-bit stimulus): packs the bits
    chain by chain, applies {!shift_in_cycles} shift cycles, and
    leaves the chains holding exactly the pattern.
    @raise Invalid_argument on a wrong-sized pattern. *)

val stimulus : t -> bool list
(** The stimulus bits currently held by the scan-in chains, in the
    same order {!load_pattern} consumes. *)

val capture : t -> response:bool list -> unit
(** Capture cycle: latch the core's response into the scan-out
    chains.  @raise Invalid_argument on a wrong-sized response. *)

val shift_out_all : t -> bool list
(** Shift the scan-out side empty and return the response bits in
    capture order — exactly {!shift_out_cycles} cycles' worth. *)
