(** Deterministic synthetic benchmark generation.

    The p22810 and p93791 per-module data cannot be redistributed
    here, so those benchmarks are reconstructed: a seeded,
    self-contained PRNG (splitmix64) draws per-module terminal, scan
    and pattern counts, and the scan volume is then rescaled so the
    benchmark's aggregate statistics (module count, combinational
    fraction, total scan cells) match the published ones.  Generation
    is fully deterministic: the same profile always yields the same
    benchmark.  See DESIGN.md, "Substitutions". *)

type profile = {
  name : string;
  seed : int64;
  scan_modules : int;  (** number of scan-testable (sequential) cores *)
  comb_modules : int;  (** number of combinational (scan-less) cores *)
  target_scan_cells : int;
      (** total scan cells the generated benchmark is rescaled to *)
  max_chains : int;  (** upper bound on scan chains per core *)
  min_patterns : int;
  max_patterns : int;  (** log-uniform pattern count range *)
}

val generate : profile -> Soc.t
(** Generate the benchmark described by [profile].  Module ids are
    assigned 1..n with scan and combinational cores interleaved
    deterministically.

    @raise Invalid_argument if the profile has no modules or
    non-positive ranges. *)

(** {1 Raw PRNG}

    Exposed for reuse by tests and by the NoC traffic generator; a
    self-contained splitmix64 so that generated data never depends on
    the OCaml stdlib [Random] state. *)

module Rng : sig
  type t

  val create : int64 -> t
  val int : t -> bound:int -> int
  (** uniform in [\[0, bound)]; @raise Invalid_argument if [bound <= 0] *)

  val int_range : t -> lo:int -> hi:int -> int
  (** uniform in [\[lo, hi\]] inclusive; @raise Invalid_argument if
      [hi < lo] *)

  val float : t -> float
  (** uniform in [\[0, 1)] *)

  val log_uniform_int : t -> lo:int -> hi:int -> int
  (** log-uniformly distributed integer in [\[lo, hi\]]; requires
      [1 <= lo <= hi] *)

  val bool : t -> float -> bool
  (** [bool rng p] is true with probability [p] *)
end
