(** Reconstruction of the p22810 benchmark (Philips, ITC'02 set):
    28 modules, medium test-data volume.  Per-module data is generated
    deterministically and rescaled to the published aggregate
    statistics — see DESIGN.md, "Substitutions". *)

val soc : unit -> Soc.t
(** The 28-module p22810 reconstruction; deterministic across calls. *)

val profile : Data_gen.profile
(** The generation profile, exposed so tests can check calibration. *)
