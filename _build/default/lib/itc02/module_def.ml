type t = {
  id : int;
  name : string;
  inputs : int;
  outputs : int;
  bidirs : int;
  scan_chains : int list;
  patterns : int;
  test_power : float;
  parent : int option;
}

let estimated_power ~scan_cells ~terminals =
  0.5 *. float_of_int (scan_cells + terminals)

let make ?(bidirs = 0) ?test_power ?parent ~id ~name ~inputs ~outputs
    ~scan_chains ~patterns () =
  if id < 1 then invalid_arg "Module_def.make: id must be >= 1";
  if inputs < 0 || outputs < 0 || bidirs < 0 then
    invalid_arg "Module_def.make: negative terminal count";
  if patterns < 1 then invalid_arg "Module_def.make: patterns must be >= 1";
  if List.exists (fun len -> len < 1) scan_chains then
    invalid_arg "Module_def.make: scan chain length must be >= 1";
  (match parent with
  | Some p when p = id -> invalid_arg "Module_def.make: module is its own parent"
  | Some _ | None -> ());
  let cells = List.fold_left ( + ) 0 scan_chains in
  let terminals = inputs + outputs + (2 * bidirs) in
  let test_power =
    match test_power with
    | Some p ->
        if p < 0.0 then invalid_arg "Module_def.make: negative test_power";
        p
    | None -> estimated_power ~scan_cells:cells ~terminals
  in
  { id; name; inputs; outputs; bidirs; scan_chains; patterns; test_power; parent }

let scan_cells m = List.fold_left ( + ) 0 m.scan_chains
let is_combinational m = m.scan_chains = []
let terminals m = m.inputs + m.outputs + (2 * m.bidirs)

let test_bits m =
  let cells = scan_cells m in
  let stimuli = m.inputs + m.bidirs + cells in
  let responses = m.outputs + m.bidirs + cells in
  m.patterns * (stimuli + responses)

let equal a b =
  a.id = b.id && String.equal a.name b.name && a.inputs = b.inputs
  && a.outputs = b.outputs && a.bidirs = b.bidirs
  && a.scan_chains = b.scan_chains
  && a.patterns = b.patterns
  && Float.equal a.test_power b.test_power
  && a.parent = b.parent

let compare a b = Stdlib.compare (a.id, a.name) (b.id, b.name)

let pp ppf m =
  Fmt.pf ppf "@[<h>module %d %s: %d in, %d out, %d bidir, %d cells/%d chains, %d patterns, power %.1f@]"
    m.id m.name m.inputs m.outputs m.bidirs (scan_cells m)
    (List.length m.scan_chains) m.patterns m.test_power
