(** The d695 benchmark of the ITC'02 SoC Test Benchmarks set.

    d695 combines two ISCAS'85 combinational cores and eight ISCAS'89
    scan cores.  The per-core terminal, scan-chain and pattern counts
    below follow the values published with the benchmark set and used
    throughout the TAM-optimization literature. *)

val soc : unit -> Soc.t
(** The ten-core d695 system.  Rebuilt on each call (cheap); module
    ids are 1..10 in the conventional order c6288, c7552, s838, s9234,
    s38417, s13207, s15850, s5378, s35932, s38584. *)
