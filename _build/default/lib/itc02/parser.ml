type error = { line : int; message : string }

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* One token with the line it came from. *)
type token = { line : int; text : string }

let tokenize text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let tokens = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c)
                                  (strip_comment line))
      |> List.iter (fun word ->
             if word <> "" then
               tokens := { line = line_no; text = word } :: !tokens))
    (String.split_on_char '\n' text);
  List.rev !tokens

let keyword_equal token kw =
  String.lowercase_ascii token.text = String.lowercase_ascii kw

let int_of_token tok =
  match int_of_string_opt tok.text with
  | Some n -> n
  | None -> fail tok.line "expected an integer, got %S" tok.text

let float_of_token tok =
  match float_of_string_opt tok.text with
  | Some f -> f
  | None -> fail tok.line "expected a number, got %S" tok.text

(* Accumulator for one Module block. *)
type fields = {
  mutable inputs : int option;
  mutable outputs : int option;
  mutable bidirs : int option;
  mutable scan_chains : int list option;
  mutable patterns : int option;
  mutable power : float option;
  mutable parent : int option;
}

let fresh_fields () =
  {
    inputs = None;
    outputs = None;
    bidirs = None;
    scan_chains = None;
    patterns = None;
    power = None;
    parent = None;
  }

let required line what = function
  | Some v -> v
  | None -> fail line "module is missing the %s field" what

let rec take n tokens line what =
  if n = 0 then ([], tokens)
  else
    match tokens with
    | [] -> fail line "unexpected end of input while reading %s" what
    | tok :: rest ->
        let taken, remaining = take (n - 1) rest line what in
        (tok :: taken, remaining)

let set_once tok what slot_value set =
  match slot_value with
  | Some _ -> fail tok.line "duplicate %s field" what
  | None -> set ()

let parse_module_block ~id_tok ~name_tok tokens =
  let fields = fresh_fields () in
  let rec loop tokens =
    match tokens with
    | [] -> fail id_tok.line "module %s: missing End" name_tok.text
    | tok :: rest when keyword_equal tok "End" ->
        let id = int_of_token id_tok in
        let line = id_tok.line in
        let m =
          try
            Module_def.make
              ?bidirs:fields.bidirs ?test_power:fields.power
              ?parent:fields.parent ~id ~name:name_tok.text
              ~inputs:(required line "Inputs" fields.inputs)
              ~outputs:(required line "Outputs" fields.outputs)
              ~scan_chains:(required line "ScanChains" fields.scan_chains)
              ~patterns:(required line "Patterns" fields.patterns)
              ()
          with Invalid_argument msg -> fail line "%s" msg
        in
        (m, rest)
    | tok :: rest when keyword_equal tok "Inputs" ->
        let v, rest = take 1 rest tok.line "Inputs" in
        let n = int_of_token (List.hd v) in
        set_once tok "Inputs" fields.inputs (fun () ->
            fields.inputs <- Some n);
        loop rest
    | tok :: rest when keyword_equal tok "Outputs" ->
        let v, rest = take 1 rest tok.line "Outputs" in
        let n = int_of_token (List.hd v) in
        set_once tok "Outputs" fields.outputs (fun () ->
            fields.outputs <- Some n);
        loop rest
    | tok :: rest when keyword_equal tok "Bidirs" ->
        let v, rest = take 1 rest tok.line "Bidirs" in
        let n = int_of_token (List.hd v) in
        set_once tok "Bidirs" fields.bidirs (fun () ->
            fields.bidirs <- Some n);
        loop rest
    | tok :: rest when keyword_equal tok "Patterns" ->
        let v, rest = take 1 rest tok.line "Patterns" in
        let n = int_of_token (List.hd v) in
        set_once tok "Patterns" fields.patterns (fun () ->
            fields.patterns <- Some n);
        loop rest
    | tok :: rest when keyword_equal tok "Parent" ->
        let v, rest = take 1 rest tok.line "Parent" in
        let n = int_of_token (List.hd v) in
        set_once tok "Parent" fields.parent (fun () ->
            fields.parent <- Some n);
        loop rest
    | tok :: rest when keyword_equal tok "Power" ->
        let v, rest = take 1 rest tok.line "Power" in
        let f = float_of_token (List.hd v) in
        set_once tok "Power" fields.power (fun () -> fields.power <- Some f);
        loop rest
    | tok :: rest when keyword_equal tok "ScanChains" ->
        let count_tok, rest = take 1 rest tok.line "ScanChains" in
        let count = int_of_token (List.hd count_tok) in
        if count < 0 then fail tok.line "negative scan chain count";
        let length_toks, rest = take count rest tok.line "scan chain lengths" in
        let lengths = List.map int_of_token length_toks in
        set_once tok "ScanChains" fields.scan_chains (fun () ->
            fields.scan_chains <- Some lengths);
        loop rest
    | tok :: _ -> fail tok.line "unexpected token %S in module block" tok.text
  in
  loop tokens

let parse_tokens tokens =
  match tokens with
  | soc_kw :: name_tok :: rest when keyword_equal soc_kw "Soc" ->
      let rec modules_loop acc tokens =
        match tokens with
        | [] -> List.rev acc
        | tok :: id_tok :: name_tok :: rest when keyword_equal tok "Module" ->
            let m, rest = parse_module_block ~id_tok ~name_tok rest in
            modules_loop (m :: acc) rest
        | tok :: _ ->
            fail tok.line "expected a Module block, got %S" tok.text
      in
      let modules = modules_loop [] rest in
      (try Soc.make ~name:name_tok.text ~modules
       with Invalid_argument msg -> fail name_tok.line "%s" msg)
  | tok :: _ -> fail tok.line "expected the Soc keyword, got %S" tok.text
  | [] -> fail 1 "empty description"

let parse text =
  match parse_tokens (tokenize text) with
  | soc -> Ok soc
  | exception Parse_error e -> Error e

let parse_exn text =
  match parse text with
  | Ok soc -> soc
  | Error e -> failwith (Fmt.str "%a" pp_error e)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error { line = 0; message = msg }
