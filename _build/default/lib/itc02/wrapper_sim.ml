(* Each wrapper chain is a shift register modelled as a [bool array]
   plus a fill pointer; shifting in pushes at the head and drops the
   oldest bit once full, like real scan cells. *)

type chain = { cells : bool array }

type t = { in_chains : chain list; out_chains : chain list }

let make_chain length = { cells = Array.make (max 0 length) false }

let create (layout : Wrapper.layout) =
  {
    in_chains = List.map make_chain layout.Wrapper.in_lengths;
    out_chains = List.map make_chain layout.Wrapper.out_lengths;
  }

let chain_cells chains =
  List.fold_left (fun acc c -> acc + Array.length c.cells) 0 chains

let in_cells t = chain_cells t.in_chains
let out_cells t = chain_cells t.out_chains

let longest chains =
  List.fold_left (fun acc c -> max acc (Array.length c.cells)) 0 chains

let shift_in_cycles t = longest t.in_chains
let shift_out_cycles t = longest t.out_chains

(* Shift one bit into a chain at index 0; every cell moves one place
   down; the last cell's bit is returned (falls out the far end). *)
let shift_chain chain bit =
  let n = Array.length chain.cells in
  if n = 0 then bit
  else begin
    let out = chain.cells.(n - 1) in
    for i = n - 1 downto 1 do
      chain.cells.(i) <- chain.cells.(i - 1)
    done;
    chain.cells.(0) <- bit;
    out
  end

let shift_in t ~flit =
  if List.length flit < List.length t.in_chains then
    invalid_arg "Wrapper_sim.shift_in: flit narrower than the chain count";
  List.iteri
    (fun i chain -> ignore (shift_chain chain (List.nth flit i)))
    t.in_chains

(* Pattern order: chain 0's cells first (in scan order: the bit that
   ends up deepest is shifted first), then chain 1, ... *)
let load_pattern t bits =
  if List.length bits <> in_cells t then
    invalid_arg "Wrapper_sim.load_pattern: wrong pattern size";
  (* Split per chain. *)
  let rec split chains bits =
    match chains with
    | [] -> []
    | chain :: rest ->
        let n = Array.length chain.cells in
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | b :: tl -> take (k - 1) (b :: acc) tl
        in
        let mine, others = take n [] bits in
        mine :: split rest others
  in
  let per_chain = split t.in_chains bits in
  let cycles = shift_in_cycles t in
  (* Cycle c feeds each chain its next bit; shorter chains are fed
     padding (false) during the leading cycles so their real bits
     arrive last and are not shifted out. *)
  for c = 0 to cycles - 1 do
    let flit =
      List.map2
        (fun chain mine ->
          let n = Array.length chain.cells in
          let lead = cycles - n in
          if c < lead then false else List.nth mine (c - lead))
        t.in_chains per_chain
    in
    shift_in t ~flit
  done

let stimulus t =
  List.concat_map
    (fun chain ->
      (* cell (n-1) was shifted first: scan order is deepest first. *)
      List.rev (Array.to_list chain.cells))
    t.in_chains

let capture t ~response =
  if List.length response <> out_cells t then
    invalid_arg "Wrapper_sim.capture: wrong response size";
  let rec fill chains bits =
    match chains with
    | [] -> ()
    | chain :: rest ->
        let n = Array.length chain.cells in
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | b :: tl -> take (k - 1) (b :: acc) tl
        in
        let mine, others = take n [] bits in
        List.iteri (fun i b -> chain.cells.(i) <- b) mine;
        fill rest others
  in
  fill t.out_chains response

let shift_out_all t =
  let cycles = shift_out_cycles t in
  (* Collect each chain's output bit per cycle; chain order is fixed,
     so re-assembling per chain recovers capture order. *)
  let per_cycle =
    List.init cycles (fun _ ->
        List.map (fun chain -> shift_chain chain false) t.out_chains)
    (* List.init evaluates in order; each call shifts once. *)
  in
  (* Bit j of chain k appears at cycle (cycles - n_k + ... ): the cell
     at index n-1 leaves first.  Reconstruct per chain: for a chain of
     length n, its bits leave during the FIRST n cycles, deepest cell
     (index n-1) first — i.e. capture index n-1, n-2, ...  Rebuild to
     capture order 0..n-1. *)
  List.concat
    (List.mapi
       (fun chain_idx chain ->
         let n = Array.length chain.cells in
         let leaving =
           List.filteri (fun cycle _ -> cycle < n) per_cycle
           |> List.map (fun flit -> List.nth flit chain_idx)
         in
         (* leaving = [cell n-1; cell n-2; ...; cell 0] *)
         List.rev leaving)
       t.out_chains)
