(** The full ITC'02 SoC Test Benchmarks corpus.

    Twelve systems were published at ITC 2002 (Marinissen, Iyengar,
    Chakrabarty): two academic (d695, d281), five Philips (p-prefixed),
    and five from other donors.  d695 is embedded with its published
    per-core data ({!Data_d695}); the others are deterministic
    reconstructions calibrated to the published module counts and
    relative test-data volumes (see DESIGN.md, "Substitutions").  The
    corpus gives scheduling experiments a spread of sizes from 4 to 32
    modules. *)

val names : string list
(** All benchmark names, in the conventional order: u226, d281, d695,
    h953, g1023, f2126, q12710, p22810, p34392, p93791, t512505,
    a586710. *)

val find : string -> Soc.t option
(** Look a benchmark up by name. *)

val all : unit -> Soc.t list
(** Every benchmark, in {!names} order.  Deterministic. *)

val profile : string -> Data_gen.profile option
(** The generation profile of a reconstructed benchmark; [None] for
    d695 (embedded directly) and unknown names. *)
