(* Chain lengths: [count] chains of near-equal length totalling
   [cells], matching the balanced chain structure of the published
   benchmark within transcription precision. *)
let chains ~cells ~count =
  if count = 0 then []
  else
    let base = cells / count and extra = cells mod count in
    List.init count (fun i -> base + if i < extra then 1 else 0)

let core ~id ~name ~inputs ~outputs ?(bidirs = 0) ~cells ~count ~patterns () =
  Module_def.make ~bidirs ~id ~name ~inputs ~outputs
    ~scan_chains:(chains ~cells ~count) ~patterns ()

let soc () =
  Soc.make ~name:"d695"
    ~modules:
      [
        core ~id:1 ~name:"c6288" ~inputs:32 ~outputs:32 ~cells:0 ~count:0
          ~patterns:12 ();
        core ~id:2 ~name:"c7552" ~inputs:207 ~outputs:108 ~cells:0 ~count:0
          ~patterns:73 ();
        core ~id:3 ~name:"s838" ~inputs:35 ~outputs:2 ~cells:32 ~count:1
          ~patterns:75 ();
        core ~id:4 ~name:"s9234" ~inputs:36 ~outputs:39 ~cells:228 ~count:4
          ~patterns:105 ();
        core ~id:5 ~name:"s38417" ~inputs:28 ~outputs:106 ~cells:1636
          ~count:32 ~patterns:68 ();
        core ~id:6 ~name:"s13207" ~inputs:31 ~outputs:121 ~cells:669 ~count:16
          ~patterns:234 ();
        core ~id:7 ~name:"s15850" ~inputs:14 ~outputs:87 ~cells:534 ~count:16
          ~patterns:95 ();
        core ~id:8 ~name:"s5378" ~inputs:35 ~outputs:49 ~cells:179 ~count:4
          ~patterns:97 ();
        core ~id:9 ~name:"s35932" ~inputs:35 ~outputs:320 ~cells:1728
          ~count:32 ~patterns:12 ();
        core ~id:10 ~name:"s38584" ~inputs:38 ~outputs:304 ~cells:1426
          ~count:32 ~patterns:110 ();
      ]
