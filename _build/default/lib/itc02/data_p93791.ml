(* Calibration: 32 modules, scan-dominated; close to 100k scan cells,
   roughly 3x the volume of p22810, making it the heaviest benchmark
   of the set as published. *)
let profile : Data_gen.profile =
  {
    name = "p93791";
    seed = 0x93791L;
    scan_modules = 26;
    comb_modules = 6;
    target_scan_cells = 98_000;
    max_chains = 46;
    min_patterns = 30;
    max_patterns = 900;
  }

let soc () = Data_gen.generate profile
