(** Reconstruction of the p93791 benchmark (Philips, ITC'02 set):
    32 modules, the largest test-data volume of the set.  Per-module
    data is generated deterministically and rescaled to the published
    aggregate statistics — see DESIGN.md, "Substitutions". *)

val soc : unit -> Soc.t
(** The 32-module p93791 reconstruction; deterministic across calls. *)

val profile : Data_gen.profile
(** The generation profile, exposed so tests can check calibration. *)
