(** IEEE-1500-style test wrapper design for a core.

    When a core is tested over the NoC, the flit width of the network
    plays the role of the TAM width: each flit delivers one bit to each
    of up to [width] wrapper scan chains in parallel.  The wrapper
    design problem is to partition the core's internal scan chains and
    functional terminals into at most [width] balanced wrapper chains;
    the longest wrapper scan-in (scan-out) chain determines the number
    of shift cycles — and hence flits — needed per pattern.

    The partition uses the classical LPT (longest processing time
    first) heuristic of the ITC'02 TAM literature: internal scan chains
    are placed, longest first, on the currently shortest wrapper chain;
    functional input (output) cells are then distributed one by one
    onto the shortest scan-in (scan-out) side. *)

type t = private {
  width : int;  (** number of wrapper chains the design was built for *)
  scan_in_max : int;
      (** length of the longest wrapper scan-in chain: shift-in cycles
          (and stimulus flits) per pattern *)
  scan_out_max : int;
      (** length of the longest wrapper scan-out chain: shift-out
          cycles (and response flits) per pattern *)
}

val design : width:int -> Module_def.t -> t
(** [design ~width m] partitions [m]'s scan chains and terminals into
    at most [width] wrapper chains.

    @raise Invalid_argument if [width < 1]. *)

type layout = {
  in_lengths : int list;
      (** cells per wrapper scan-in chain, one entry per wrapper chain
          (including empty chains), in wrapper-chain order *)
  out_lengths : int list;  (** same for the scan-out side *)
}

val layout : width:int -> Module_def.t -> layout
(** The concrete partition behind {!design}: the per-chain cell counts
    whose maxima are [scan_in_max]/[scan_out_max].  Used by the
    bit-level wrapper simulator.
    @raise Invalid_argument if [width < 1]. *)

val pattern_cycles : t -> int
(** Core-side shift cycles consumed per pattern in steady state, with
    the scan-out of pattern [i] overlapped with the scan-in of pattern
    [i+1]: [max scan_in_max scan_out_max + 1] (the [+1] is the
    capture cycle). *)

val test_cycles : t -> patterns:int -> int
(** Total core-side test application time for [patterns] patterns,
    the standard wrapper formula
    [(1 + max si so) * patterns + min si so]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
