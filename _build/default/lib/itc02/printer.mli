(** Serializer for the textual benchmark format of {!Parser}.

    [Parser.parse (to_string soc)] round-trips to a benchmark equal to
    [soc] (powers are printed with enough precision to survive the
    round trip). *)

val pp_module : Module_def.t Fmt.t
(** Print one [Module ... End] block. *)

val pp_soc : Soc.t Fmt.t
(** Print a full description. *)

val to_string : Soc.t -> string

val to_file : string -> Soc.t -> unit
(** [to_file path soc] writes the description to [path].
    @raise Sys_error on I/O failure. *)
