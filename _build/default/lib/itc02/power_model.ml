type t =
  | Toggle_proportional of float
  | Uniform of float
  | Volume_proportional of float

let default = Toggle_proportional 0.5

let module_power model (m : Module_def.t) =
  match model with
  | Toggle_proportional k ->
      k /. 0.5
      *. Module_def.estimated_power
           ~scan_cells:(Module_def.scan_cells m)
           ~terminals:(Module_def.terminals m)
  | Uniform p -> p
  | Volume_proportional k ->
      k *. float_of_int (Module_def.test_bits m) /. float_of_int m.patterns

let apply model soc =
  let rebuild (m : Module_def.t) =
    Module_def.make ~bidirs:m.bidirs ~test_power:(module_power model m)
      ?parent:m.parent ~id:m.id ~name:m.name ~inputs:m.inputs
      ~outputs:m.outputs ~scan_chains:m.scan_chains ~patterns:m.patterns ()
  in
  Soc.map_modules rebuild soc

let pp ppf = function
  | Toggle_proportional k -> Fmt.pf ppf "toggle-proportional(%g)" k
  | Uniform p -> Fmt.pf ppf "uniform(%g)" p
  | Volume_proportional k -> Fmt.pf ppf "volume-proportional(%g)" k
