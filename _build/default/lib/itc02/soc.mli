(** A system-on-chip test benchmark: a named collection of modules.

    Mirrors the structure of the ITC'02 SoC Test Benchmarks: a flat
    list of cores, each with its test-relevant characterization.  The
    hierarchy information of the original format is not retained —
    like most of the test-scheduling literature we treat the module
    list as flat. *)

type t = private { name : string; modules : Module_def.t list }

val make : name:string -> modules:Module_def.t list -> t
(** [make ~name ~modules] builds a benchmark.

    @raise Invalid_argument if [modules] is empty, if two modules share
    an id, if [name] is empty, if a module's parent is not in the
    benchmark, or if the parent relation has a cycle. *)

val children : t -> int -> int list
(** Ids of the modules whose [parent] is the given module, ascending. *)

val roots : t -> int list
(** Ids of the top-level (parentless) modules, ascending. *)

val hierarchy_depth : t -> int
(** Longest root-to-leaf chain in the parent relation; [1] for a flat
    benchmark. *)

val find : t -> int -> Module_def.t
(** [find soc id] returns the module with identifier [id].
    @raise Not_found if no module has that id. *)

val mem : t -> int -> bool
val module_count : t -> int
val module_ids : t -> int list
(** Ids in ascending order. *)

val add_modules : t -> Module_def.t list -> t
(** [add_modules soc extra] appends [extra] (e.g. processor cores being
    added to a benchmark, as the paper does to build d695_leon).
    @raise Invalid_argument on duplicate ids. *)

val total_test_power : t -> float
(** Sum of all modules' [test_power]; the paper's power limits are
    percentages of this value. *)

val total_test_bits : t -> int
(** Total test data volume of the benchmark. *)

val max_module_id : t -> int

val map_modules : (Module_def.t -> Module_def.t) -> t -> t
(** Rebuild the benchmark by transforming every module (used e.g. to
    re-derive test power under a different power model).
    @raise Invalid_argument if the transform introduces duplicate
    ids. *)

val equal : t -> t -> bool
val pp : t Fmt.t

val pp_summary : t Fmt.t
(** One-line summary: name, module count, total volume and power. *)
