(** Test power models for benchmark modules.

    The original ITC'02 format carries no power information, yet the
    paper schedules under power constraints defined as a percentage of
    the sum of all cores' test power.  Following the convention of the
    power-constrained ITC'02 literature we synthesize per-module power
    deterministically from the module's size; since the paper's limits
    are *relative*, only the relative magnitudes matter. *)

type t =
  | Toggle_proportional of float
      (** [Toggle_proportional k]: power = [k * (scan_cells +
          terminals)] — every scan cell and terminal may toggle each
          shift cycle.  [Toggle_proportional 0.5] is the default model
          used by {!Module_def.make}. *)
  | Uniform of float  (** every module draws the same power *)
  | Volume_proportional of float
      (** [Volume_proportional k]: power = [k * test_bits / patterns]
          — proportional to the per-pattern data volume. *)

val default : t
(** [Toggle_proportional 0.5]. *)

val module_power : t -> Module_def.t -> float
(** Power of one module under the model. *)

val apply : t -> Soc.t -> Soc.t
(** Rebuild a benchmark with every module's [test_power] re-derived
    under the model. *)

val pp : t Fmt.t
