(* Calibration: 28 modules of which roughly a quarter are
   combinational logic blocks; about 30k scan cells in total, an order
   of magnitude above d695 and well below p93791. *)
let profile : Data_gen.profile =
  {
    name = "p22810";
    seed = 0x22810L;
    scan_modules = 21;
    comb_modules = 7;
    target_scan_cells = 30_000;
    max_chains = 32;
    min_patterns = 20;
    max_patterns = 1_200;
  }

let soc () = Data_gen.generate profile
