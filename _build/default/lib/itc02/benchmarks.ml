(* Calibration notes: module counts are the published ones; the
   scan-cell targets and pattern ranges set each reconstruction's
   test-data volume in the published relative order — the tiny academic
   systems (u226, d281, h953, g1023) well below the Philips parts, the
   few-large-core donors (f2126, q12710, a586710) dominated by a
   handful of heavy modules, and t512505 the largest of the set. *)

let reconstructed : (string * Data_gen.profile) list =
  [
    ( "u226",
      {
        Data_gen.name = "u226";
        seed = 0x226L;
        scan_modules = 5;
        comb_modules = 4;
        target_scan_cells = 1_500;
        max_chains = 8;
        min_patterns = 10;
        max_patterns = 300;
      } );
    ( "d281",
      {
        Data_gen.name = "d281";
        seed = 0x281L;
        scan_modules = 6;
        comb_modules = 2;
        target_scan_cells = 3_800;
        max_chains = 8;
        min_patterns = 15;
        max_patterns = 400;
      } );
    ( "h953",
      {
        Data_gen.name = "h953";
        seed = 0x953L;
        scan_modules = 7;
        comb_modules = 1;
        target_scan_cells = 5_500;
        max_chains = 16;
        min_patterns = 20;
        max_patterns = 250;
      } );
    ( "g1023",
      {
        Data_gen.name = "g1023";
        seed = 0x1023L;
        scan_modules = 11;
        comb_modules = 3;
        target_scan_cells = 5_400;
        max_chains = 16;
        min_patterns = 15;
        max_patterns = 350;
      } );
    ( "f2126",
      {
        Data_gen.name = "f2126";
        seed = 0x2126L;
        scan_modules = 4;
        comb_modules = 0;
        target_scan_cells = 15_000;
        max_chains = 32;
        min_patterns = 60;
        max_patterns = 800;
      } );
    ( "q12710",
      {
        Data_gen.name = "q12710";
        seed = 0x12710L;
        scan_modules = 4;
        comb_modules = 0;
        target_scan_cells = 20_000;
        max_chains = 32;
        min_patterns = 100;
        max_patterns = 1_000;
      } );
    ( "p34392",
      {
        Data_gen.name = "p34392";
        seed = 0x34392L;
        scan_modules = 15;
        comb_modules = 4;
        target_scan_cells = 23_000;
        max_chains = 32;
        min_patterns = 30;
        max_patterns = 1_000;
      } );
    ( "t512505",
      {
        Data_gen.name = "t512505";
        seed = 0x512505L;
        scan_modules = 27;
        comb_modules = 4;
        target_scan_cells = 160_000;
        max_chains = 46;
        min_patterns = 40;
        max_patterns = 1_200;
      } );
    ( "a586710",
      {
        Data_gen.name = "a586710";
        seed = 0x586710L;
        scan_modules = 7;
        comb_modules = 0;
        target_scan_cells = 50_000;
        max_chains = 32;
        min_patterns = 200;
        max_patterns = 2_000;
      } );
  ]

let names =
  [
    "u226"; "d281"; "d695"; "h953"; "g1023"; "f2126"; "q12710"; "p22810";
    "p34392"; "p93791"; "t512505"; "a586710";
  ]

let profile name =
  match name with
  | "p22810" -> Some Data_p22810.profile
  | "p93791" -> Some Data_p93791.profile
  | _ -> List.assoc_opt name reconstructed

let find name =
  match name with
  | "d695" -> Some (Data_d695.soc ())
  | "p22810" -> Some (Data_p22810.soc ())
  | "p93791" -> Some (Data_p93791.soc ())
  | _ ->
      Option.map (fun p -> Data_gen.generate p) (List.assoc_opt name reconstructed)

let all () =
  List.map
    (fun name ->
      match find name with
      | Some soc -> soc
      | None -> assert false (* names and find cover the same set *))
    names
