lib/itc02/soc.mli: Fmt Module_def
