lib/itc02/wrapper.ml: Array Fmt List Module_def Stdlib
