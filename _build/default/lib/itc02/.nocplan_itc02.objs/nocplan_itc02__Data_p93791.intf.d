lib/itc02/data_p93791.mli: Data_gen Soc
