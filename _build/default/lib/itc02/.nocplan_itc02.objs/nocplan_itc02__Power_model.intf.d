lib/itc02/power_model.mli: Fmt Module_def Soc
