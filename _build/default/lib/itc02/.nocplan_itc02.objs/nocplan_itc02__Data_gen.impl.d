lib/itc02/data_gen.ml: Float Int64 List Module_def Printf Soc
