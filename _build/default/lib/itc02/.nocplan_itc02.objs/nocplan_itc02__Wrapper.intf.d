lib/itc02/wrapper.mli: Fmt Module_def
