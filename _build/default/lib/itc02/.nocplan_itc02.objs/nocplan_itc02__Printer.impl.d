lib/itc02/printer.ml: Fmt List Module_def Out_channel Soc
