lib/itc02/soc.ml: Fmt List Module_def Printf Stdlib String
