lib/itc02/data_d695.mli: Soc
