lib/itc02/data_p22810.mli: Data_gen Soc
