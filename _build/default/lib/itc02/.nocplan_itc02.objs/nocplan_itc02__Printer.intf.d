lib/itc02/printer.mli: Fmt Module_def Soc
