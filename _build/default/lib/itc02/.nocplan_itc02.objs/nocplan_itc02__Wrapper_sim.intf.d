lib/itc02/wrapper_sim.mli: Wrapper
