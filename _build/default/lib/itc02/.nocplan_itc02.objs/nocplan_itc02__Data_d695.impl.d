lib/itc02/data_d695.ml: List Module_def Soc
