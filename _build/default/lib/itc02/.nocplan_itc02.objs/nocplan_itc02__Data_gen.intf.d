lib/itc02/data_gen.mli: Soc
