lib/itc02/module_def.ml: Float Fmt List Stdlib String
