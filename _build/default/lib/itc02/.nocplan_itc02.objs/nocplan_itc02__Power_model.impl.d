lib/itc02/power_model.ml: Fmt Module_def Soc
