lib/itc02/parser.ml: Fmt Format In_channel List Module_def Soc String
