lib/itc02/data_p93791.ml: Data_gen
