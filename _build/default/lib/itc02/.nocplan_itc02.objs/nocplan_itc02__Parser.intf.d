lib/itc02/parser.mli: Fmt Soc
