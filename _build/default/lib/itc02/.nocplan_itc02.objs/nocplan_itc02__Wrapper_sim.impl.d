lib/itc02/wrapper_sim.ml: Array List Wrapper
