lib/itc02/benchmarks.ml: Data_d695 Data_gen Data_p22810 Data_p93791 List Option
