lib/itc02/benchmarks.mli: Data_gen Soc
