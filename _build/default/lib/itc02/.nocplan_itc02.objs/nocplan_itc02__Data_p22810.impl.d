lib/itc02/data_p22810.ml: Data_gen
