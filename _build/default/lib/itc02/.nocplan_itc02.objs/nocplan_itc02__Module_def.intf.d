lib/itc02/module_def.mli: Fmt
