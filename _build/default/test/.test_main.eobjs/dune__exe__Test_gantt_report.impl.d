test/test_gantt_report.ml: Alcotest Float List Nocplan_core Nocplan_proc Printf String Util
