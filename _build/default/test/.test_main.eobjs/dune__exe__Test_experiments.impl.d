test/test_experiments.ml: Alcotest Lazy List Nocplan_core Nocplan_itc02 Nocplan_noc Printf
