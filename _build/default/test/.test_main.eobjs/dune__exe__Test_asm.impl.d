test/test_asm.ml: Alcotest List Nocplan_proc QCheck2 Util
