test/test_exhaustive.ml: Alcotest Fmt List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc Result Util
