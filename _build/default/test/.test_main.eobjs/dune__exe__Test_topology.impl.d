test/test_topology.ml: Alcotest Fun List Nocplan_noc Stdlib Util
