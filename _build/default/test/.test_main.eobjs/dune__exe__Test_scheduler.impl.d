test/test_scheduler.ml: Alcotest Fmt List Nocplan_core Nocplan_noc Nocplan_proc Option QCheck2 Util
