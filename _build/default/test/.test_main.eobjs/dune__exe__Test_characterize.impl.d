test/test_characterize.ml: Alcotest Nocplan_noc Util
