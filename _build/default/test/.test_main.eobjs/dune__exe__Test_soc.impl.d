test/test_soc.ml: Alcotest Fun List Nocplan_itc02 Util
