test/test_schedule_sim.ml: Alcotest List Nocplan_core Nocplan_itc02 Printf Util
