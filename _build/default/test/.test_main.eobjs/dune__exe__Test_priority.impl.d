test/test_priority.ml: Alcotest List Nocplan_core Nocplan_itc02 Nocplan_noc Stdlib Util
