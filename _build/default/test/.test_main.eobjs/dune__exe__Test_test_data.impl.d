test/test_test_data.ml: Alcotest Array List Nocplan_core Nocplan_itc02 Nocplan_proc Util
