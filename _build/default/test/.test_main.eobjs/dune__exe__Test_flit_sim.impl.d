test/test_flit_sim.ml: Alcotest Float Int64 List Nocplan_noc Printf QCheck2 Util
