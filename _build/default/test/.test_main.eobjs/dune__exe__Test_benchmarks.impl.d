test/test_benchmarks.ml: Alcotest Fmt List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc Option
