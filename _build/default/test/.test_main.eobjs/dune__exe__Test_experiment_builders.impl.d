test/test_experiment_builders.ml: Alcotest List Nocplan_core Nocplan_noc
