test/test_traffic.ml: Alcotest Int64 List Nocplan_noc QCheck2 Util
