test/test_schedule.ml: Alcotest Fmt List Nocplan_core Nocplan_noc Nocplan_proc Stdlib Util
