test/test_program.ml: Alcotest Array Fmt Nocplan_proc String
