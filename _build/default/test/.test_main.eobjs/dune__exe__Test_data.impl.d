test/test_data.ml: Alcotest Array Int64 List Nocplan_itc02 QCheck2 Util
