test/test_hierarchy.ml: Alcotest List Nocplan_core Nocplan_itc02 Nocplan_noc Printf Util
