test/test_power_model.ml: Alcotest Float List Nocplan_itc02 Util
