test/test_bist.ml: Alcotest List Nocplan_proc QCheck2 Stdlib Util
