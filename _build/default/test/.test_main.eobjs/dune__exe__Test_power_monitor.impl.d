test/test_power_monitor.ml: Alcotest Float Fun List Nocplan_core QCheck2 Util
