test/test_machine.ml: Alcotest List Nocplan_proc QCheck2 Util
