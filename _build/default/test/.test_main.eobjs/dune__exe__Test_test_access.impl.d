test/test_test_access.ml: Alcotest List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc Util
