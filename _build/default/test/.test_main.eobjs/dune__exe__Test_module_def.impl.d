test/test_module_def.ml: Alcotest Float Nocplan_itc02 QCheck2 Util
