test/test_latency.ml: Alcotest Nocplan_noc QCheck2 Util
