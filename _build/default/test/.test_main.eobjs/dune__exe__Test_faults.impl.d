test/test_faults.ml: Alcotest Fmt List Nocplan_core Nocplan_noc Nocplan_proc Printf Util
