test/test_export.ml: Alcotest Char List Nocplan_core Printf String Util
