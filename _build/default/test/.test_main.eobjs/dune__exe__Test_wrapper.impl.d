test/test_wrapper.ml: Alcotest Array List Nocplan_itc02 QCheck2 Stdlib Util
