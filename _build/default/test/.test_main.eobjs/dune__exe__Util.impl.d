test/util.ml: List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc Printf QCheck2 QCheck_alcotest
