test/test_decompress.ml: Alcotest Array List Nocplan_proc QCheck2 Util
