test/test_annealing.ml: Alcotest Fmt List Nocplan_core Nocplan_proc Result Util
