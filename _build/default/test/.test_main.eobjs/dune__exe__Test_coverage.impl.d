test/test_coverage.ml: Alcotest Int64 List Nocplan_proc QCheck2 Util
