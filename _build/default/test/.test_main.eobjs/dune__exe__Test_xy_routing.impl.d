test/test_xy_routing.ml: Alcotest List Nocplan_noc QCheck2 Util
