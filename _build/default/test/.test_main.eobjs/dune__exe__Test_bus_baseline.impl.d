test/test_bus_baseline.ml: Alcotest List Nocplan_core Util
