test/test_resource.ml: Alcotest List Nocplan_core Nocplan_noc Nocplan_proc Util
