test/test_memory.ml: Alcotest Fmt List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc QCheck2 Util
