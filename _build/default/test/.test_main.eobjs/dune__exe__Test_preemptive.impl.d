test/test_preemptive.ml: Alcotest Fmt List Nocplan_core Nocplan_itc02 Nocplan_noc Nocplan_proc Printf QCheck2 Result Util
