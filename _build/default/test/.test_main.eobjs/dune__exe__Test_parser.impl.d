test/test_parser.ml: Alcotest Filename Fmt List Nocplan_itc02 String Sys Util
