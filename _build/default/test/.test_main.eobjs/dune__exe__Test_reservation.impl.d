test/test_reservation.ml: Alcotest List Nocplan_noc QCheck2 Util
