test/test_processor.ml: Alcotest List Nocplan_itc02 Nocplan_proc
