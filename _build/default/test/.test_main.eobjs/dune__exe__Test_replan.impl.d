test/test_replan.ml: Alcotest Fmt List Nocplan_core Nocplan_noc Nocplan_proc QCheck2 Result Util
