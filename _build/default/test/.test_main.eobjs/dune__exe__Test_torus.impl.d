test/test_torus.ml: Alcotest Fmt List Nocplan_core Nocplan_noc Nocplan_proc Printf QCheck2 Util
