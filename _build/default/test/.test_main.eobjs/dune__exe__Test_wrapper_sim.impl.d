test/test_wrapper_sim.ml: Alcotest List Nocplan_itc02 QCheck2 Util
