test/test_metrics_vcd.ml: Alcotest Filename In_channel List Nocplan_core Printf String Sys Util
