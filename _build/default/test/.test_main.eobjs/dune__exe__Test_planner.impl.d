test/test_planner.ml: Alcotest Float List Nocplan_core Nocplan_proc Util
