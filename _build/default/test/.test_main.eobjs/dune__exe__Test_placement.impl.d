test/test_placement.ml: Alcotest List Nocplan_core Nocplan_noc Printf QCheck2 Stdlib Util
