open Util
module Xy = Nocplan_noc.Xy_routing
module Coord = Nocplan_noc.Coord
module Link = Nocplan_noc.Link

let c x y = Coord.make ~x ~y
let mesh8 = Nocplan_noc.Topology.make ~width:8 ~height:8

let test_straight_route () =
  let route = Xy.route mesh8 ~src:(c 0 0) ~dst:(c 3 0) in
  Alcotest.(check int) "length" 4 (List.length route);
  Alcotest.(check bool) "starts at src" true (Coord.equal (List.hd route) (c 0 0))

let test_xy_order () =
  (* X first, then Y: (0,0) -> (2,2) goes through (1,0), (2,0), (2,1). *)
  let route = Xy.route mesh8 ~src:(c 0 0) ~dst:(c 2 2) in
  let expected = [ c 0 0; c 1 0; c 2 0; c 2 1; c 2 2 ] in
  Alcotest.(check bool) "dimension order" true
    (List.for_all2 Coord.equal route expected)

let test_self_route () =
  let route = Xy.route mesh8 ~src:(c 1 1) ~dst:(c 1 1) in
  Alcotest.(check int) "single router" 1 (List.length route);
  let links = Xy.links mesh8 ~src:(c 1 1) ~dst:(c 1 1) in
  Alcotest.(check int) "inject + eject" 2 (List.length links)

let test_links_structure () =
  let links = Xy.links mesh8 ~src:(c 0 0) ~dst:(c 1 1) in
  match links with
  | [ Link.Inject a; Link.Channel (b, d); Link.Channel (e, f); Link.Eject g ]
    ->
      Alcotest.(check bool) "inject at src" true (Coord.equal a (c 0 0));
      Alcotest.(check bool) "first hop x" true
        (Coord.equal b (c 0 0) && Coord.equal d (c 1 0));
      Alcotest.(check bool) "second hop y" true
        (Coord.equal e (c 1 0) && Coord.equal f (c 1 1));
      Alcotest.(check bool) "eject at dst" true (Coord.equal g (c 1 1))
  | _ -> Alcotest.failf "unexpected link shape (%d links)" (List.length links)

let src_dst_gen =
  QCheck2.Gen.(
    let coord = pair (int_range 0 7) (int_range 0 7) in
    pair coord coord)

let prop_route_length =
  qcheck "route length = manhattan + 1" src_dst_gen
    (fun ((sx, sy), (dx, dy)) ->
      let src = c sx sy and dst = c dx dy in
      List.length (Xy.route mesh8 ~src ~dst) = Coord.manhattan src dst + 1)

let prop_route_contiguous =
  qcheck "route steps are unit hops" src_dst_gen (fun ((sx, sy), (dx, dy)) ->
      let route = Xy.route mesh8 ~src:(c sx sy) ~dst:(c dx dy) in
      let rec ok = function
        | a :: (b :: _ as rest) -> Coord.manhattan a b = 1 && ok rest
        | [ _ ] | [] -> true
      in
      ok route)

let prop_route_no_revisit =
  qcheck "route never revisits a router" src_dst_gen
    (fun ((sx, sy), (dx, dy)) ->
      let route = Xy.route mesh8 ~src:(c sx sy) ~dst:(c dx dy) in
      List.length (List.sort_uniq Coord.compare route) = List.length route)

let prop_links_count =
  qcheck "links = hops + 2" src_dst_gen (fun ((sx, sy), (dx, dy)) ->
      let src = c sx sy and dst = c dx dy in
      List.length (Xy.links mesh8 ~src ~dst) = Xy.hops mesh8 ~src ~dst + 2)

let prop_channels_valid =
  qcheck "all channels connect neighbours" src_dst_gen
    (fun ((sx, sy), (dx, dy)) ->
      Xy.links mesh8 ~src:(c sx sy) ~dst:(c dx dy)
      |> List.for_all (function
           | Link.Channel (a, b) -> Coord.manhattan a b = 1
           | Link.Inject _ | Link.Eject _ -> true))

let suite =
  [
    Alcotest.test_case "straight route" `Quick test_straight_route;
    Alcotest.test_case "x before y" `Quick test_xy_order;
    Alcotest.test_case "self route" `Quick test_self_route;
    Alcotest.test_case "link structure" `Quick test_links_structure;
    prop_route_length;
    prop_route_contiguous;
    prop_route_no_revisit;
    prop_links_count;
    prop_channels_valid;
  ]
