(* Fault-coverage measurement of pattern sources. *)

open Util
module Coverage = Nocplan_proc.Coverage

let cut () = Coverage.cut ~seed:3L ~inputs:32 ~outputs:16

let test_apply_deterministic () =
  let c = cut () in
  let stimulus = List.init 32 (fun i -> i mod 3 = 0) in
  Alcotest.(check (list bool)) "same response"
    (Coverage.apply c stimulus) (Coverage.apply c stimulus)

let test_fault_list_size () =
  Alcotest.(check int) "two faults per line" 64
    (List.length (Coverage.faults (cut ())))

let test_curve_monotone_and_bounded () =
  let c = cut () in
  let patterns = Coverage.lfsr_patterns ~seed:0xACE1 ~inputs:32 ~count:60 in
  let curve = Coverage.run c ~patterns in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone" true (monotone curve.Coverage.detected);
  List.iter
    (fun d ->
      Alcotest.(check bool) "bounded" true
        (d >= 0 && d <= curve.Coverage.total_faults))
    curve.Coverage.detected;
  Alcotest.(check int) "one point per pattern" 60
    (List.length curve.Coverage.detected)

let test_random_patterns_reach_high_coverage () =
  let c = cut () in
  let patterns = Coverage.lfsr_patterns ~seed:0xACE1 ~inputs:32 ~count:200 in
  let curve = Coverage.run c ~patterns in
  Alcotest.(check bool) "above 90%" true (Coverage.coverage curve > 0.9)

let test_detection_semantics () =
  let c = cut () in
  let stimulus = List.init 32 (fun i -> i mod 2 = 0) in
  List.iter
    (fun fault ->
      (* A fault whose stuck value equals the applied bit cannot be
         detected by this pattern (the forced line does not change). *)
      let applied = List.nth stimulus fault.Coverage.line in
      if applied = fault.Coverage.stuck_at then
        Alcotest.(check bool) "same-value fault invisible" false
          (Coverage.detects c fault stimulus))
    (Coverage.faults c)

let test_all_zero_pattern_sees_no_stuck_at_zero () =
  let c = cut () in
  let zeros = List.init 32 (fun _ -> false) in
  List.iter
    (fun (fault : Coverage.fault) ->
      if fault.Coverage.stuck_at = false then
        Alcotest.(check bool) "s-a-0 invisible under zeros" false
          (Coverage.detects c fault zeros))
    (Coverage.faults c)

let test_lfsr_pattern_shape () =
  let patterns = Coverage.lfsr_patterns ~seed:1 ~inputs:40 ~count:12 in
  Alcotest.(check int) "count" 12 (List.length patterns);
  List.iter
    (fun p -> Alcotest.(check int) "width" 40 (List.length p))
    patterns

let prop_curves_deterministic =
  qcheck ~count:15 "coverage runs are deterministic"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 8 64))
    (fun (seed, inputs) ->
      let c = Coverage.cut ~seed:(Int64.of_int seed) ~inputs ~outputs:8 in
      let patterns = Coverage.lfsr_patterns ~seed:7 ~inputs ~count:20 in
      Coverage.run c ~patterns = Coverage.run c ~patterns)

let suite =
  [
    Alcotest.test_case "apply deterministic" `Quick test_apply_deterministic;
    Alcotest.test_case "fault list size" `Quick test_fault_list_size;
    Alcotest.test_case "curve monotone and bounded" `Quick
      test_curve_monotone_and_bounded;
    Alcotest.test_case "high coverage reached" `Quick
      test_random_patterns_reach_high_coverage;
    Alcotest.test_case "detection semantics" `Quick test_detection_semantics;
    Alcotest.test_case "all-zero pattern blind to s-a-0" `Quick
      test_all_zero_pattern_sees_no_stuck_at_zero;
    Alcotest.test_case "lfsr pattern shape" `Quick test_lfsr_pattern_shape;
    prop_curves_deterministic;
  ]
