open Util
module Core = Nocplan_core
module Exhaustive = Core.Exhaustive
module Scheduler = Core.Scheduler
module Schedule = Core.Schedule
module Proc = Nocplan_proc

let greedy_makespan ?(power_limit = None) ~reuse sys =
  (Scheduler.run sys (Scheduler.config ~power_limit ~reuse ())).Schedule.makespan

let test_never_worse_than_greedy () =
  let sys = small_system () in
  let r = Exhaustive.schedule ~reuse:1 sys in
  Alcotest.(check bool) "<= greedy" true
    (r.Exhaustive.schedule.Schedule.makespan <= greedy_makespan ~reuse:1 sys)

let test_result_validates () =
  let sys = small_system () in
  let r = Exhaustive.schedule ~reuse:1 sys in
  match
    Schedule.validate sys ~application:Proc.Processor.Bist ~power_limit:None
      ~reuse:1 r.Exhaustive.schedule
  with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid: %a" (Fmt.list Schedule.pp_violation) vs

let test_exact_on_small_instance () =
  let sys = small_system () in
  let r = Exhaustive.schedule ~reuse:1 sys in
  Alcotest.(check bool) "search exhausted" true r.Exhaustive.exact;
  Alcotest.(check bool) "expanded some nodes" true (r.Exhaustive.nodes > 1)

let test_single_core_optimum () =
  (* One core, one external pair: the optimum is that test's duration,
     which greedy also achieves — exhaustive must agree exactly. *)
  let soc =
    Nocplan_itc02.Soc.make ~name:"one"
      ~modules:
        [
          Nocplan_itc02.Module_def.make ~id:1 ~name:"a" ~inputs:8 ~outputs:8
            ~scan_chains:[ 32 ] ~patterns:10 ();
        ]
  in
  let sys =
    Core.System.build ~soc
      ~topology:(Nocplan_noc.Topology.make ~width:2 ~height:2)
      ~processors:[]
      ~io_inputs:[ Nocplan_noc.Coord.make ~x:0 ~y:0 ]
      ~io_outputs:[ Nocplan_noc.Coord.make ~x:1 ~y:1 ]
      ()
  in
  let r = Exhaustive.schedule ~reuse:0 sys in
  Alcotest.(check bool) "exact" true r.Exhaustive.exact;
  Alcotest.(check int) "matches greedy on the trivial instance"
    (greedy_makespan ~reuse:0 sys)
    r.Exhaustive.schedule.Schedule.makespan

let test_node_budget_degrades_gracefully () =
  let sys = small_system () in
  let r = Exhaustive.schedule ~max_nodes:3 ~reuse:1 sys in
  Alcotest.(check bool) "not exact" false r.Exhaustive.exact;
  (* Even with a tiny budget the greedy incumbent is available. *)
  Alcotest.(check bool) "incumbent no worse than greedy" true
    (r.Exhaustive.schedule.Schedule.makespan <= greedy_makespan ~reuse:1 sys)

let test_with_power_limit () =
  let sys = small_system () in
  let limit = Some (Core.System.power_limit_of_pct sys ~pct:95.0) in
  let r = Exhaustive.schedule ~power_limit:limit ~reuse:1 sys in
  match
    Schedule.validate sys ~application:Proc.Processor.Bist ~power_limit:limit
      ~reuse:1 r.Exhaustive.schedule
  with
  | Ok () ->
      Alcotest.(check bool) "<= greedy under same limit" true
        (r.Exhaustive.schedule.Schedule.makespan
        <= greedy_makespan ~power_limit:limit ~reuse:1 sys)
  | Error vs ->
      Alcotest.failf "invalid: %a" (Fmt.list Schedule.pp_violation) vs

let prop_never_worse_and_valid =
  qcheck ~count:8 "exhaustive <= greedy and validates on random systems"
    system_gen
    (fun sys ->
      (* Keep the instance small enough for the search. *)
      let module_count =
        Nocplan_itc02.Soc.module_count sys.Core.System.soc
      in
      module_count > 6
      ||
      let reuse = List.length sys.Core.System.processors in
      let r = Exhaustive.schedule ~max_nodes:30_000 ~reuse sys in
      r.Exhaustive.schedule.Schedule.makespan <= greedy_makespan ~reuse sys
      && Result.is_ok
           (Schedule.validate sys ~application:Proc.Processor.Bist
              ~power_limit:None ~reuse r.Exhaustive.schedule))

let suite =
  [
    Alcotest.test_case "never worse than greedy" `Quick
      test_never_worse_than_greedy;
    Alcotest.test_case "result validates" `Quick test_result_validates;
    Alcotest.test_case "exact on a small instance" `Quick
      test_exact_on_small_instance;
    Alcotest.test_case "single-core optimum" `Quick test_single_core_optimum;
    Alcotest.test_case "node budget degrades gracefully" `Quick
      test_node_budget_degrades_gracefully;
    Alcotest.test_case "with a power limit" `Quick test_with_power_limit;
    prop_never_worse_and_valid;
  ]
