(* Synthesized test data and measured compressibility. *)

module Proc = Nocplan_proc
module Test_data = Proc.Test_data
module Decompress = Proc.Decompress
module Module_def = Nocplan_itc02.Module_def

let module_fixture =
  Module_def.make ~id:1 ~name:"fix" ~inputs:16 ~outputs:16
    ~scan_chains:[ 64; 64 ] ~patterns:40 ()

let test_stream_size () =
  let words =
    Test_data.stimulus_words (Test_data.Atpg 0.1) ~seed:1L
      ~words_per_pattern:5 ~patterns:7
  in
  Alcotest.(check int) "patterns x words" 35 (List.length words)

let test_deterministic () =
  let gen () =
    Test_data.stream_for (Test_data.Atpg 0.05) ~seed:42L ~flit_width:32
      module_fixture
  in
  Alcotest.(check bool) "same stream" true (gen () = gen ())

let test_seed_matters () =
  let gen seed = Test_data.stream_for Test_data.Random ~seed ~flit_width:32 module_fixture in
  Alcotest.(check bool) "different seeds differ" true (gen 1L <> gen 2L)

let test_atpg_compresses_random_does_not () =
  let atpg =
    Test_data.measured_compression (Test_data.Atpg 0.05) ~seed:1L
      ~flit_width:32 module_fixture
  in
  let random =
    Test_data.measured_compression Test_data.Random ~seed:1L ~flit_width:32
      module_fixture
  in
  Alcotest.(check bool) "atpg compresses" true (atpg > 2.0);
  Alcotest.(check bool) "random does not" true (random < 1.0)

let test_density_monotone () =
  let ratio d =
    Test_data.measured_compression (Test_data.Atpg d) ~seed:1L ~flit_width:32
      module_fixture
  in
  Alcotest.(check bool) "sparser data compresses better" true
    (ratio 0.02 > ratio 0.2)

let test_memory_is_encode_plus_program () =
  let style = Test_data.Atpg 0.05 in
  let stream = Test_data.stream_for style ~seed:3L ~flit_width:32 module_fixture in
  let expected =
    Array.length (Decompress.encode stream)
    + Proc.Program.length Decompress.program
  in
  Alcotest.(check int) "exact footprint" expected
    (Test_data.measured_memory_words style ~seed:3L ~flit_width:32
       module_fixture)

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Test_data.stimulus_words (Test_data.Atpg 1.5) ~seed:1L
        ~words_per_pattern:1 ~patterns:1);
  expect_invalid (fun () ->
      Test_data.stimulus_words Test_data.Random ~seed:1L ~words_per_pattern:0
        ~patterns:1)

let test_words_are_32_bit () =
  let words =
    Test_data.stimulus_words Test_data.Random ~seed:5L ~words_per_pattern:10
      ~patterns:20
  in
  List.iter
    (fun w ->
      Alcotest.(check bool) "32-bit" true (w >= 0 && w <= 0xFFFFFFFF))
    words

let test_measured_footprint_in_cost_layer () =
  let sys = Util.small_system () in
  let estimate =
    Nocplan_core.Test_access.decompression_footprint sys ~module_id:3
  in
  let measured =
    Nocplan_core.Test_access.decompression_footprint_measured sys ~module_id:3
  in
  Alcotest.(check bool) "both positive" true (estimate > 0 && measured > 0);
  (* At care density 0.05 the measured image is smaller than the
     assumed-run-length-4 estimate. *)
  Alcotest.(check bool) "measured below estimate" true (measured < estimate)

let suite =
  [
    Alcotest.test_case "stream size" `Quick test_stream_size;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed matters" `Quick test_seed_matters;
    Alcotest.test_case "atpg compresses, random expands" `Quick
      test_atpg_compresses_random_does_not;
    Alcotest.test_case "density monotone" `Quick test_density_monotone;
    Alcotest.test_case "footprint = image + program" `Quick
      test_memory_is_encode_plus_program;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "32-bit words" `Quick test_words_are_32_bit;
    Alcotest.test_case "measured footprint in cost layer" `Quick
      test_measured_footprint_in_cost_layer;
  ]
