open Util
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Data_gen = Nocplan_itc02.Data_gen

let scan_cells soc =
  List.fold_left
    (fun acc m -> acc + Module_def.scan_cells m)
    0 soc.Soc.modules

let test_d695_structure () =
  let soc = Nocplan_itc02.Data_d695.soc () in
  Alcotest.(check int) "10 modules" 10 (Soc.module_count soc);
  Alcotest.(check string) "name" "d695" soc.Soc.name;
  (* The two ISCAS'85 cores are combinational, the rest are scan. *)
  let comb =
    List.filter Module_def.is_combinational soc.Soc.modules
    |> List.map (fun (m : Module_def.t) -> m.Module_def.name)
  in
  Alcotest.(check (list string)) "combinational cores" [ "c6288"; "c7552" ] comb;
  (* Published figures within transcription precision. *)
  let s38417 = Soc.find soc 5 in
  Alcotest.(check int) "s38417 cells" 1636 (Module_def.scan_cells s38417);
  Alcotest.(check int) "s38417 patterns" 68 s38417.Module_def.patterns;
  let total = scan_cells soc in
  Alcotest.(check bool) "total cells ~6.4k" true
    (total > 6_000 && total < 7_000)

let test_generated_calibration () =
  let p22810 = Nocplan_itc02.Data_p22810.soc () in
  let p93791 = Nocplan_itc02.Data_p93791.soc () in
  Alcotest.(check int) "p22810 modules" 28 (Soc.module_count p22810);
  Alcotest.(check int) "p93791 modules" 32 (Soc.module_count p93791);
  (* Rescaling lands within 1% of the calibration target. *)
  let close target actual =
    abs (target - actual) * 100 <= target
  in
  Alcotest.(check bool) "p22810 cells calibrated" true
    (close Nocplan_itc02.Data_p22810.profile.Data_gen.target_scan_cells
       (scan_cells p22810));
  Alcotest.(check bool) "p93791 cells calibrated" true
    (close Nocplan_itc02.Data_p93791.profile.Data_gen.target_scan_cells
       (scan_cells p93791));
  (* Volume ordering of the published set. *)
  let d695 = Nocplan_itc02.Data_d695.soc () in
  Alcotest.(check bool) "d695 < p22810 < p93791" true
    (Soc.total_test_bits d695 < Soc.total_test_bits p22810
    && Soc.total_test_bits p22810 < Soc.total_test_bits p93791)

let test_generation_deterministic () =
  let a = Nocplan_itc02.Data_p22810.soc () in
  let b = Nocplan_itc02.Data_p22810.soc () in
  Alcotest.(check bool) "same benchmark on every call" true (Soc.equal a b)

let test_different_seeds_differ () =
  let profile = Nocplan_itc02.Data_p22810.profile in
  let other = Data_gen.generate { profile with Data_gen.seed = 999L } in
  Alcotest.(check bool) "different seed, different benchmark" false
    (Soc.equal (Data_gen.generate profile) other)

let test_generate_validation () =
  let profile = Nocplan_itc02.Data_p22810.profile in
  let expect_invalid p =
    match Data_gen.generate p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { profile with Data_gen.scan_modules = 0 };
  expect_invalid { profile with Data_gen.comb_modules = -1 };
  expect_invalid { profile with Data_gen.min_patterns = 0 };
  expect_invalid { profile with Data_gen.max_chains = 0 };
  expect_invalid { profile with Data_gen.target_scan_cells = 1 }

(* --- the PRNG ------------------------------------------------------ *)

let rng_of seed = Data_gen.Rng.create (Int64.of_int seed)

let prop_int_in_bounds =
  qcheck "Rng.int stays in [0, bound)"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (bound, seed) ->
      let rng = rng_of seed in
      let v = Data_gen.Rng.int rng ~bound in
      v >= 0 && v < bound)

let prop_int_range_in_bounds =
  qcheck "Rng.int_range stays in [lo, hi]"
    QCheck2.Gen.(
      triple (int_range (-1000) 1000) (int_range 0 2000) (int_range 0 10_000))
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = rng_of seed in
      let v = Data_gen.Rng.int_range rng ~lo ~hi in
      v >= lo && v <= hi)

let prop_float_unit =
  qcheck "Rng.float stays in [0, 1)" QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = rng_of seed in
      let v = Data_gen.Rng.float rng in
      v >= 0.0 && v < 1.0)

let prop_log_uniform_in_bounds =
  qcheck "Rng.log_uniform_int stays in [lo, hi]"
    QCheck2.Gen.(
      triple (int_range 1 1000) (int_range 0 100_000) (int_range 0 10_000))
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = rng_of seed in
      let v = Data_gen.Rng.log_uniform_int rng ~lo ~hi in
      v >= lo && v <= hi)

let test_rng_deterministic () =
  let a = rng_of 42 and b = rng_of 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream"
      (Data_gen.Rng.int a ~bound:1_000_000)
      (Data_gen.Rng.int b ~bound:1_000_000)
  done

let test_rng_spread () =
  (* A coarse uniformity check: over 10k draws of [0, 10), every value
     appears a plausible number of times. *)
  let rng = rng_of 7 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Data_gen.Rng.int rng ~bound:10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "value %d drawn %d times out of 10000" i c)
    counts

let suite =
  [
    Alcotest.test_case "d695 structure" `Quick test_d695_structure;
    Alcotest.test_case "generated benchmarks calibrated" `Quick
      test_generated_calibration;
    Alcotest.test_case "generation deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "seeds matter" `Quick test_different_seeds_differ;
    Alcotest.test_case "profile validation" `Quick test_generate_validation;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng spread" `Quick test_rng_spread;
    prop_int_in_bounds;
    prop_int_range_in_bounds;
    prop_float_unit;
    prop_log_uniform_in_bounds;
  ]
