(* The full ITC'02 corpus. *)

module Benchmarks = Nocplan_itc02.Benchmarks
module Soc = Nocplan_itc02.Soc

let published_module_counts =
  [
    ("u226", 9); ("d281", 8); ("d695", 10); ("h953", 8); ("g1023", 14);
    ("f2126", 4); ("q12710", 4); ("p22810", 28); ("p34392", 19);
    ("p93791", 32); ("t512505", 31); ("a586710", 7);
  ]

let test_corpus_complete () =
  Alcotest.(check int) "twelve benchmarks" 12 (List.length Benchmarks.names);
  List.iter
    (fun name ->
      match Benchmarks.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "%s missing" name)
    Benchmarks.names;
  Alcotest.(check (option bool)) "unknown name" None
    (Option.map (fun _ -> true) (Benchmarks.find "nonsense"))

let test_module_counts () =
  List.iter
    (fun (name, count) ->
      match Benchmarks.find name with
      | Some soc -> Alcotest.(check int) name count (Soc.module_count soc)
      | None -> Alcotest.failf "%s missing" name)
    published_module_counts

let test_volume_ordering () =
  (* The published extremes: the academic systems are small; t512505
     and a586710 carry the largest test sets. *)
  let volume name =
    match Benchmarks.find name with
    | Some soc -> Soc.total_test_bits soc
    | None -> Alcotest.failf "%s missing" name
  in
  Alcotest.(check bool) "u226 smallest of the checked set" true
    (volume "u226" < volume "d695");
  Alcotest.(check bool) "p93791 > p22810" true
    (volume "p93791" > volume "p22810");
  Alcotest.(check bool) "t512505 > p93791" true
    (volume "t512505" > volume "p93791");
  Alcotest.(check bool) "a586710 above p93791" true
    (volume "a586710" > volume "p93791")

let test_deterministic () =
  List.iter
    (fun name ->
      match (Benchmarks.find name, Benchmarks.find name) with
      | Some a, Some b ->
          Alcotest.(check bool) (name ^ " deterministic") true (Soc.equal a b)
      | _ -> Alcotest.failf "%s missing" name)
    Benchmarks.names

let test_profiles_exposed () =
  Alcotest.(check bool) "d695 has no profile (embedded)" true
    (Benchmarks.profile "d695" = None);
  List.iter
    (fun name ->
      if name <> "d695" then
        match Benchmarks.profile name with
        | Some p ->
            Alcotest.(check string) (name ^ " profile name") name
              p.Nocplan_itc02.Data_gen.name
        | None -> Alcotest.failf "%s profile missing" name)
    Benchmarks.names

let test_all_schedule () =
  (* Every corpus member plans end-to-end with two Leons on an
     auto-sized mesh and validates. *)
  List.iter
    (fun soc ->
      let modules = Soc.module_count soc + 2 in
      let side = int_of_float (ceil (sqrt (float_of_int modules))) in
      let topology = Nocplan_noc.Topology.make ~width:side ~height:side in
      let sys =
        Nocplan_core.System.build ~soc ~topology
          ~processors:
            [ Nocplan_proc.Processor.leon ~id:1; Nocplan_proc.Processor.leon ~id:1 ]
          ~io_inputs:[ Nocplan_noc.Coord.make ~x:0 ~y:0 ]
          ~io_outputs:[ Nocplan_noc.Coord.make ~x:(side - 1) ~y:(side - 1) ]
          ()
      in
      let sched = Nocplan_core.Planner.schedule ~reuse:2 sys in
      match
        Nocplan_core.Schedule.validate sys
          ~application:Nocplan_proc.Processor.Bist ~power_limit:None ~reuse:2
          sched
      with
      | Ok () -> ()
      | Error vs ->
          Alcotest.failf "%s: %a" soc.Soc.name
            (Fmt.list Nocplan_core.Schedule.pp_violation)
            vs)
    (Benchmarks.all ())

let suite =
  [
    Alcotest.test_case "corpus complete" `Quick test_corpus_complete;
    Alcotest.test_case "published module counts" `Quick test_module_counts;
    Alcotest.test_case "volume ordering" `Quick test_volume_ordering;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "profiles exposed" `Quick test_profiles_exposed;
    Alcotest.test_case "whole corpus schedules" `Slow test_all_schedule;
  ]
