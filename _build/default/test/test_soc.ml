open Util
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def

let test_sorted_and_lookup () =
  let m id = small_module ~id () in
  let soc = Soc.make ~name:"s" ~modules:[ m 3; m 1; m 2 ] in
  Alcotest.(check (list int)) "ids sorted" [ 1; 2; 3 ] (Soc.module_ids soc);
  Alcotest.(check int) "find" 2 (Soc.find soc 2).Module_def.id;
  Alcotest.(check bool) "mem" true (Soc.mem soc 3);
  Alcotest.(check bool) "not mem" false (Soc.mem soc 4);
  Alcotest.check_raises "find missing" Not_found (fun () ->
      ignore (Soc.find soc 99))

let test_duplicate_rejected () =
  match
    Soc.make ~name:"s" ~modules:[ small_module ~id:1 (); small_module ~id:1 () ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate ids accepted"

let test_add_modules () =
  let soc = small_soc () in
  let extra = small_module ~id:10 () in
  let soc2 = Soc.add_modules soc [ extra ] in
  Alcotest.(check int) "count" (Soc.module_count soc + 1)
    (Soc.module_count soc2);
  Alcotest.(check bool) "new module present" true (Soc.mem soc2 10);
  (match Soc.add_modules soc [ small_module ~id:1 () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clashing add accepted")

let test_totals () =
  let soc = small_soc () in
  let manual_power =
    List.fold_left
      (fun acc (m : Module_def.t) -> acc +. m.Module_def.test_power)
      0.0 soc.Soc.modules
  in
  Alcotest.(check (float 1e-9)) "total power" manual_power
    (Soc.total_test_power soc);
  let manual_bits =
    List.fold_left (fun acc m -> acc + Module_def.test_bits m) 0 soc.Soc.modules
  in
  Alcotest.(check int) "total bits" manual_bits (Soc.total_test_bits soc)

let prop_max_id =
  qcheck "max_module_id is the maximum id" soc_gen (fun soc ->
      Nocplan_itc02.Soc.max_module_id soc
      = List.fold_left max 0 (Nocplan_itc02.Soc.module_ids soc))

let prop_map_identity =
  qcheck "map_modules with identity preserves equality" soc_gen (fun soc ->
      Nocplan_itc02.Soc.equal soc (Nocplan_itc02.Soc.map_modules Fun.id soc))

let suite =
  [
    Alcotest.test_case "sorted ids and lookup" `Quick test_sorted_and_lookup;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "add_modules" `Quick test_add_modules;
    Alcotest.test_case "totals" `Quick test_totals;
    prop_max_id;
    prop_map_identity;
  ]
