open Util
module Parser = Nocplan_itc02.Parser
module Printer = Nocplan_itc02.Printer
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def

let parse_ok text =
  match Parser.parse text with
  | Ok soc -> soc
  | Error e -> Alcotest.failf "unexpected parse error: %a" Parser.pp_error e

let parse_err text =
  match Parser.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let minimal =
  {|Soc one
Module 1 core
  Inputs 4
  Outputs 2
  ScanChains 0
  Patterns 3
End|}

let test_minimal () =
  let soc = parse_ok minimal in
  Alcotest.(check string) "name" "one" soc.Soc.name;
  let m = Soc.find soc 1 in
  Alcotest.(check int) "inputs" 4 m.Module_def.inputs;
  Alcotest.(check int) "patterns" 3 m.Module_def.patterns;
  Alcotest.(check bool) "no scan" true (Module_def.is_combinational m)

let test_scan_chain_lengths () =
  let soc =
    parse_ok
      {|Soc s
Module 7 x
  Inputs 1
  Outputs 1
  ScanChains 3 10 20 30
  Patterns 2
End|}
  in
  Alcotest.(check (list int)) "chains" [ 10; 20; 30 ]
    (Soc.find soc 7).Module_def.scan_chains

let test_comments_and_case () =
  let soc =
    parse_ok
      {|# header comment
soc S  # trailing comment
MODULE 1 a
  inputs 1
  OUTPUTS 2   # fields any case
  scanchains 0
  patterns 1
  POWER 7.5
end|}
  in
  let m = Soc.find soc 1 in
  Alcotest.(check (float 1e-9)) "power" 7.5 m.Module_def.test_power

let test_field_order_irrelevant () =
  let soc =
    parse_ok
      {|Soc s
Module 1 a
  Patterns 4
  ScanChains 1 5
  Outputs 2
  Inputs 3
End|}
  in
  let m = Soc.find soc 1 in
  Alcotest.(check int) "inputs" 3 m.Module_def.inputs;
  Alcotest.(check int) "patterns" 4 m.Module_def.patterns

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_error text fragment =
  let e = parse_err text in
  let msg = Fmt.str "%a" Parser.pp_error e in
  if not (contains msg fragment) then
    Alcotest.failf "error %S does not mention %S" msg fragment

let test_errors () =
  expect_error "" "empty";
  expect_error "Module 1 a" "Soc";
  expect_error "Soc s\nFoo" "Module";
  expect_error "Soc s\nModule 1 a\n Inputs 1\nEnd" "missing";
  expect_error
    "Soc s\nModule 1 a\nInputs 1\nOutputs 1\nScanChains 0\nPatterns 1\nInputs 2\nEnd"
    "duplicate";
  expect_error "Soc s\nModule 1 a\nInputs x\nEnd" "integer";
  (* A truncated chain-length list swallows the next keyword. *)
  expect_error "Soc s\nModule 1 a\nInputs 1\nOutputs 1\nScanChains 2 5\nPatterns 1\nEnd"
    "integer";
  expect_error
    "Soc s\nModule 1 a\nInputs 1\nOutputs 1\nScanChains 0\nPatterns 1\nEnd\n\
     Module 1 b\nInputs 1\nOutputs 1\nScanChains 0\nPatterns 1\nEnd"
    "duplicate"

let test_error_line_numbers () =
  let e = parse_err "Soc s\nModule 1 a\n  Inputs oops\nEnd" in
  Alcotest.(check int) "line of the bad token" 3 e.Parser.line

let prop_roundtrip =
  qcheck ~count:200 "print/parse round-trips any benchmark" soc_gen (fun soc ->
      match Parser.parse (Printer.to_string soc) with
      | Ok soc2 -> Soc.equal soc soc2
      | Error _ -> false)

let test_builtin_files_roundtrip () =
  List.iter
    (fun soc ->
      match Parser.parse (Printer.to_string soc) with
      | Ok soc2 ->
          Alcotest.(check bool)
            (soc.Soc.name ^ " round-trips")
            true (Soc.equal soc soc2)
      | Error e -> Alcotest.failf "%s: %a" soc.Soc.name Parser.pp_error e)
    [
      Nocplan_itc02.Data_d695.soc ();
      Nocplan_itc02.Data_p22810.soc ();
      Nocplan_itc02.Data_p93791.soc ();
    ]

let test_of_file () =
  let path = Filename.temp_file "nocplan" ".soc" in
  Printer.to_file path (small_soc ());
  (match Parser.of_file path with
  | Ok soc -> Alcotest.(check bool) "file round-trip" true (Soc.equal soc (small_soc ()))
  | Error e -> Alcotest.failf "of_file: %a" Parser.pp_error e);
  Sys.remove path;
  match Parser.of_file "/nonexistent/nocplan.soc" with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error e -> Alcotest.(check int) "io error on line 0" 0 e.Parser.line

let suite =
  [
    Alcotest.test_case "minimal description" `Quick test_minimal;
    Alcotest.test_case "scan chain lengths" `Quick test_scan_chain_lengths;
    Alcotest.test_case "comments and case" `Quick test_comments_and_case;
    Alcotest.test_case "field order" `Quick test_field_order_irrelevant;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "builtin benchmarks round-trip" `Quick
      test_builtin_files_roundtrip;
    Alcotest.test_case "file I/O" `Quick test_of_file;
    prop_roundtrip;
  ]
