open Util
module Power_model = Nocplan_itc02.Power_model
module Module_def = Nocplan_itc02.Module_def
module Soc = Nocplan_itc02.Soc

let test_uniform () =
  let soc = Power_model.apply (Power_model.Uniform 10.0) (small_soc ()) in
  List.iter
    (fun (m : Module_def.t) ->
      Alcotest.(check (float 1e-9)) "uniform power" 10.0 m.Module_def.test_power)
    soc.Soc.modules

let test_default_matches_make () =
  (* Applying the default model is a no-op on modules built without an
     explicit power. *)
  let soc = small_soc () in
  let soc2 = Power_model.apply Power_model.default soc in
  Alcotest.(check bool) "no-op" true (Soc.equal soc soc2)

let test_volume_proportional () =
  let m = small_module () in
  let p = Power_model.module_power (Power_model.Volume_proportional 1.0) m in
  Alcotest.(check (float 1e-6)) "volume per pattern"
    (float_of_int (Module_def.test_bits m) /. float_of_int m.Module_def.patterns)
    p

let prop_toggle_scales =
  qcheck "toggle model scales linearly in k" module_gen (fun m ->
      let p1 = Power_model.module_power (Power_model.Toggle_proportional 1.0) m in
      let p2 = Power_model.module_power (Power_model.Toggle_proportional 2.0) m in
      Float.abs (p2 -. (2.0 *. p1)) < 1e-6)

let prop_apply_preserves_structure =
  qcheck "apply changes only powers" soc_gen (fun soc ->
      let soc2 = Power_model.apply (Power_model.Uniform 5.0) soc in
      List.for_all2
        (fun (a : Module_def.t) (b : Module_def.t) ->
          a.Module_def.id = b.Module_def.id
          && a.Module_def.scan_chains = b.Module_def.scan_chains
          && a.Module_def.patterns = b.Module_def.patterns)
        soc.Soc.modules soc2.Soc.modules)

let suite =
  [
    Alcotest.test_case "uniform model" `Quick test_uniform;
    Alcotest.test_case "default model is make's default" `Quick
      test_default_matches_make;
    Alcotest.test_case "volume-proportional model" `Quick
      test_volume_proportional;
    prop_toggle_scales;
    prop_apply_preserves_structure;
  ]
