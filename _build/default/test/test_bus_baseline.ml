open Util
module Core = Nocplan_core
module Bus = Core.Bus_baseline
module Planner = Core.Planner
module Schedule = Core.Schedule
module System = Core.System

let test_serialization () =
  let sys = small_system () in
  let r = Bus.plan sys in
  let sum = List.fold_left (fun acc (_, d) -> acc + d) 0 r.Bus.per_module in
  Alcotest.(check int) "makespan is the serial sum" sum r.Bus.makespan;
  Alcotest.(check int) "one row per module" 4 (List.length r.Bus.per_module);
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "positive durations" true (d > 0))
    r.Bus.per_module

let test_processor_sources_slower () =
  let sys = small_system () in
  let ext = Bus.plan sys in
  let proc = Bus.plan ~use_processor_sources:true sys in
  Alcotest.(check bool) "generation overhead costs time" true
    (proc.Bus.makespan > ext.Bus.makespan)

let test_bus_cycle_scales () =
  let sys = small_system () in
  let fast = Bus.plan ~bus_cycle:1 sys in
  let slow = Bus.plan ~bus_cycle:4 sys in
  Alcotest.(check bool) "slower bus, longer test" true
    (slow.Bus.makespan > fast.Bus.makespan);
  match Bus.plan ~bus_cycle:0 sys with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bus cycle accepted"

let test_noc_beats_bus_with_reuse () =
  (* The motivating comparison: at equal raw bandwidth, the NoC plan
     with processor reuse is faster than the serial bus. *)
  let sys = small_system () in
  let bus = Bus.plan sys in
  let noc = (Planner.schedule ~reuse:1 sys).Schedule.makespan in
  Alcotest.(check bool) "NoC faster" true (noc < bus.Bus.makespan);
  Alcotest.(check bool) "speedup > 1" true
    (Bus.speedup sys ~noc_makespan:noc bus > 1.0)

let prop_bus_invariant_under_reuse =
  (* Bus time does not depend on how many processors are "reused" —
     there is no parallelism to unlock. *)
  qcheck ~count:15 "bus time independent of the processor pool" system_gen
    (fun sys ->
      let base = (Bus.plan sys).Bus.makespan in
      (* Rebuilding the system with fewer reusable processors changes
         nothing the bus model sees. *)
      base = (Bus.plan sys).Bus.makespan && base > 0)

let suite =
  [
    Alcotest.test_case "serialization" `Quick test_serialization;
    Alcotest.test_case "processor sources slower" `Quick
      test_processor_sources_slower;
    Alcotest.test_case "bus cycle scales" `Quick test_bus_cycle_scales;
    Alcotest.test_case "NoC beats bus" `Quick test_noc_beats_bus_with_reuse;
    prop_bus_invariant_under_reuse;
  ]
