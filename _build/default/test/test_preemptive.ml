open Util
module Core = Nocplan_core
module Preemptive = Core.Preemptive
module Scheduler = Core.Scheduler
module Schedule = Core.Schedule
module System = Core.System
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Proc = Nocplan_proc

let validate ?(application = Proc.Processor.Bist) ?(power_limit = None)
    ~reuse sys plan =
  Preemptive.validate sys ~application ~power_limit ~reuse plan

let assert_valid ?application ?power_limit ~reuse sys plan =
  match validate ?application ?power_limit ~reuse sys plan with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid plan: %a"
        (Fmt.list ~sep:Fmt.comma Preemptive.pp_violation)
        vs

let test_one_session_equals_greedy () =
  (* With max_sessions = 1 the preemptive engine degenerates to the
     paper's greedy scheduler. *)
  let sys = small_system () in
  let greedy = Scheduler.run sys (Scheduler.config ~reuse:1 ()) in
  let plan =
    Preemptive.schedule sys (Preemptive.config ~max_sessions:1 ~reuse:1 ())
  in
  Alcotest.(check int) "same makespan" greedy.Schedule.makespan
    plan.Preemptive.makespan;
  Alcotest.(check int) "one session per module"
    (List.length greedy.Schedule.entries)
    (List.length plan.Preemptive.sessions)

let test_sessions_validate () =
  let sys = small_system () in
  List.iter
    (fun max_sessions ->
      let plan =
        Preemptive.schedule sys
          (Preemptive.config ~max_sessions ~reuse:1 ())
      in
      assert_valid ~reuse:1 sys plan)
    [ 1; 2; 3; 6 ]

let test_coverage_is_full () =
  let sys = small_system () in
  let plan =
    Preemptive.schedule sys (Preemptive.config ~max_sessions:3 ~reuse:1 ())
  in
  List.iter
    (fun id ->
      let m = Soc.find sys.System.soc id in
      let applied =
        List.fold_left
          (fun acc (s : Preemptive.session) ->
            if s.Preemptive.module_id = id then acc + s.Preemptive.patterns
            else acc)
          0 plan.Preemptive.sessions
      in
      Alcotest.(check int)
        (Printf.sprintf "module %d fully tested" id)
        m.Module_def.patterns applied)
    (System.module_ids sys)

let test_small_pattern_sets_not_oversplit () =
  (* A 3-pattern core asked for 10 sessions gets at most 3. *)
  let soc =
    Soc.make ~name:"tiny"
      ~modules:
        [
          Module_def.make ~id:1 ~name:"a" ~inputs:4 ~outputs:4 ~scan_chains:[]
            ~patterns:3 ();
        ]
  in
  let sys =
    System.build ~soc
      ~topology:(Nocplan_noc.Topology.make ~width:2 ~height:2)
      ~processors:[]
      ~io_inputs:[ Nocplan_noc.Coord.make ~x:0 ~y:0 ]
      ~io_outputs:[ Nocplan_noc.Coord.make ~x:1 ~y:1 ]
      ()
  in
  let plan =
    Preemptive.schedule sys (Preemptive.config ~max_sessions:10 ~reuse:0 ())
  in
  Alcotest.(check bool) "at most 3 sessions" true
    (List.length plan.Preemptive.sessions <= 3);
  assert_valid ~reuse:0 sys plan

let test_validator_catches_missing_patterns () =
  let sys = small_system () in
  let plan =
    Preemptive.schedule sys (Preemptive.config ~max_sessions:2 ~reuse:1 ())
  in
  let truncated =
    Preemptive.plan_of_sessions (List.tl plan.Preemptive.sessions)
  in
  match validate ~reuse:1 sys truncated with
  | Ok () -> Alcotest.fail "missing coverage not caught"
  | Error vs ->
      Alcotest.(check bool) "Patterns_not_covered reported" true
        (List.exists
           (function
             | Preemptive.Patterns_not_covered _ -> true | _ -> false)
           vs)

let test_validator_catches_overlap () =
  let sys = small_system () in
  let plan =
    Preemptive.schedule sys (Preemptive.config ~max_sessions:1 ~reuse:0 ())
  in
  let squashed =
    Preemptive.plan_of_sessions
      (List.map
         (fun (s : Preemptive.session) ->
           {
             s with
             Preemptive.start = 0;
             Preemptive.finish = s.Preemptive.finish - s.Preemptive.start;
           })
         plan.Preemptive.sessions)
  in
  match validate ~reuse:0 sys squashed with
  | Ok () -> Alcotest.fail "overlaps not caught"
  | Error vs ->
      Alcotest.(check bool) "Resource_overlap reported" true
        (List.exists
           (function Preemptive.Resource_overlap _ -> true | _ -> false)
           vs)

let test_power_limited_plan () =
  let sys = small_system () in
  let power_limit = Some (System.power_limit_of_pct sys ~pct:95.0) in
  let plan =
    Preemptive.schedule sys
      (Preemptive.config ~power_limit ~max_sessions:2 ~reuse:1 ())
  in
  assert_valid ~power_limit ~reuse:1 sys plan

let prop_plans_always_valid =
  qcheck ~count:25 "preemptive plans validate on random systems"
    QCheck2.Gen.(pair system_gen (int_range 1 4))
    (fun (sys, max_sessions) ->
      let reuse = List.length sys.System.processors in
      let plan =
        Preemptive.schedule sys (Preemptive.config ~max_sessions ~reuse ())
      in
      Result.is_ok
        (Preemptive.validate sys ~application:Proc.Processor.Bist
           ~power_limit:None ~reuse plan))

let prop_session_overhead_bounded =
  qcheck ~count:10 "splitting costs at most 20% on the fixture"
    QCheck2.Gen.(int_range 2 5)
    (fun max_sessions ->
      let sys = small_system () in
      let base =
        (Preemptive.schedule sys
           (Preemptive.config ~max_sessions:1 ~reuse:1 ()))
          .Preemptive.makespan
      in
      let split =
        (Preemptive.schedule sys (Preemptive.config ~max_sessions ~reuse:1 ()))
          .Preemptive.makespan
      in
      float_of_int split <= 1.2 *. float_of_int base)

let suite =
  [
    Alcotest.test_case "one session equals greedy" `Quick
      test_one_session_equals_greedy;
    Alcotest.test_case "sessions validate" `Quick test_sessions_validate;
    Alcotest.test_case "full coverage" `Quick test_coverage_is_full;
    Alcotest.test_case "small pattern sets" `Quick
      test_small_pattern_sets_not_oversplit;
    Alcotest.test_case "validator: missing patterns" `Quick
      test_validator_catches_missing_patterns;
    Alcotest.test_case "validator: overlaps" `Quick
      test_validator_catches_overlap;
    Alcotest.test_case "power-limited plan" `Quick test_power_limited_plan;
    prop_plans_always_valid;
    prop_session_overhead_bounded;
  ]
