(* Hierarchical benchmarks: the ITC'02 parent relation. *)

open Util
module Soc = Nocplan_itc02.Soc
module Module_def = Nocplan_itc02.Module_def
module Parser = Nocplan_itc02.Parser
module Printer = Nocplan_itc02.Printer

let core ?parent id =
  Module_def.make ?parent ~id ~name:(Printf.sprintf "m%d" id) ~inputs:4
    ~outputs:4 ~scan_chains:[ 8 ] ~patterns:5 ()

let nested () =
  (* 1 is the chip; 2 and 3 sit inside 1; 4 inside 3. *)
  Soc.make ~name:"h"
    ~modules:[ core 1; core ~parent:1 2; core ~parent:1 3; core ~parent:3 4 ]

let test_queries () =
  let soc = nested () in
  Alcotest.(check (list int)) "roots" [ 1 ] (Soc.roots soc);
  Alcotest.(check (list int)) "children of 1" [ 2; 3 ] (Soc.children soc 1);
  Alcotest.(check (list int)) "children of 3" [ 4 ] (Soc.children soc 3);
  Alcotest.(check (list int)) "leaf has none" [] (Soc.children soc 4);
  Alcotest.(check int) "depth" 3 (Soc.hierarchy_depth soc)

let test_flat_depth () =
  Alcotest.(check int) "flat benchmark depth" 1
    (Soc.hierarchy_depth (small_soc ()))

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* self-parent *)
  expect_invalid (fun () -> core ~parent:7 7);
  (* unknown parent *)
  expect_invalid (fun () ->
      Soc.make ~name:"h" ~modules:[ core 1; core ~parent:9 2 ]);
  (* cycle *)
  expect_invalid (fun () ->
      Soc.make ~name:"h" ~modules:[ core ~parent:2 1; core ~parent:1 2 ])

let test_parse_and_roundtrip () =
  let text =
    {|Soc h
Module 1 chip
  Inputs 4
  Outputs 4
  ScanChains 0
  Patterns 1
End
Module 2 inner
  Inputs 4
  Outputs 4
  ScanChains 1 8
  Patterns 5
  Parent 1
End|}
  in
  let soc =
    match Parser.parse text with
    | Ok soc -> soc
    | Error e -> Alcotest.failf "parse: %a" Parser.pp_error e
  in
  Alcotest.(check (list int)) "children" [ 2 ] (Soc.children soc 1);
  match Parser.parse (Printer.to_string soc) with
  | Ok soc2 ->
      Alcotest.(check bool) "round-trips with parents" true (Soc.equal soc soc2)
  | Error e -> Alcotest.failf "re-parse: %a" Parser.pp_error e

let test_planner_flattens () =
  (* The planner treats hierarchical benchmarks as flat: every module,
     nested or not, gets exactly one test. *)
  let sys =
    Nocplan_core.System.build ~soc:(nested ())
      ~topology:(Nocplan_noc.Topology.make ~width:2 ~height:2)
      ~processors:[]
      ~io_inputs:[ Nocplan_noc.Coord.make ~x:0 ~y:0 ]
      ~io_outputs:[ Nocplan_noc.Coord.make ~x:1 ~y:1 ]
      ()
  in
  let sched = Nocplan_core.Planner.schedule ~reuse:0 sys in
  Alcotest.(check int) "four tests" 4
    (List.length sched.Nocplan_core.Schedule.entries)

let prop_roundtrip_with_random_parents =
  qcheck ~count:60 "hierarchical benchmarks round-trip" soc_gen (fun soc ->
      (* Rebuild the generated flat soc as a chain hierarchy: module i
         is parented to i-1. *)
      let modules =
        List.map
          (fun (m : Module_def.t) ->
            let parent =
              if m.Module_def.id > 1 then Some (m.Module_def.id - 1) else None
            in
            Module_def.make ?parent ~bidirs:m.Module_def.bidirs
              ~test_power:m.Module_def.test_power ~id:m.Module_def.id
              ~name:m.Module_def.name ~inputs:m.Module_def.inputs
              ~outputs:m.Module_def.outputs
              ~scan_chains:m.Module_def.scan_chains
              ~patterns:m.Module_def.patterns ())
          soc.Soc.modules
      in
      let chained = Soc.make ~name:soc.Soc.name ~modules in
      match Parser.parse (Printer.to_string chained) with
      | Ok soc2 -> Soc.equal chained soc2
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "hierarchy queries" `Quick test_queries;
    Alcotest.test_case "flat depth" `Quick test_flat_depth;
    Alcotest.test_case "hierarchy validation" `Quick test_validation;
    Alcotest.test_case "parse and round-trip" `Quick test_parse_and_roundtrip;
    Alcotest.test_case "planner flattens" `Quick test_planner_flattens;
    prop_roundtrip_with_random_parents;
  ]
