(* Torus topology: wraparound channels and shorter-way routing. *)

open Util
module Noc = Nocplan_noc
module Topology = Noc.Topology
module Coord = Noc.Coord
module Xy = Noc.Xy_routing
module Link = Noc.Link
module Flit_sim = Noc.Flit_sim
module Latency = Noc.Latency
module Packet = Noc.Packet

let c x y = Coord.make ~x ~y
let torus5 = Topology.torus ~width:5 ~height:5

let test_distance_wraps () =
  Alcotest.(check int) "wrap x" 1 (Topology.distance torus5 (c 0 0) (c 4 0));
  Alcotest.(check int) "wrap y" 2 (Topology.distance torus5 (c 0 0) (c 0 3));
  Alcotest.(check int) "both axes" 3
    (Topology.distance torus5 (c 0 0) (c 4 3));
  (* mesh distance is unchanged *)
  let mesh5 = Topology.make ~width:5 ~height:5 in
  Alcotest.(check int) "mesh no wrap" 4
    (Topology.distance mesh5 (c 0 0) (c 4 0))

let test_neighbors_torus () =
  (* Every torus router has four neighbours on a >= 3-wide torus. *)
  List.iter
    (fun coord ->
      Alcotest.(check int)
        (Fmt.str "%a" Coord.pp coord)
        4
        (List.length (Topology.neighbors torus5 coord)))
    (Topology.coords torus5);
  (* Corner wraps to the opposite edges. *)
  let n = Topology.neighbors torus5 (c 0 0) in
  Alcotest.(check bool) "wraps west" true (List.exists (Coord.equal (c 4 0)) n);
  Alcotest.(check bool) "wraps north" true (List.exists (Coord.equal (c 0 4)) n)

let test_degenerate_axes () =
  (* 1-wide axis: wrapping reaches yourself — excluded; 2-wide: one
     partner, not two copies. *)
  let t1 = Topology.torus ~width:1 ~height:3 in
  Alcotest.(check int) "1-wide axis" 2
    (List.length (Topology.neighbors t1 (c 0 1)));
  let t2 = Topology.torus ~width:2 ~height:1 in
  Alcotest.(check int) "2-wide ring of two" 1
    (List.length (Topology.neighbors t2 (c 0 0)))

let test_route_takes_short_way () =
  let route = Xy.route torus5 ~src:(c 0 0) ~dst:(c 4 0) in
  Alcotest.(check int) "one hop via wraparound" 2 (List.length route);
  match route with
  | [ a; b ] ->
      Alcotest.(check bool) "from origin" true (Coord.equal a (c 0 0));
      Alcotest.(check bool) "to the far column" true (Coord.equal b (c 4 0))
  | _ -> Alcotest.fail "unexpected route"

let prop_route_length_is_distance =
  qcheck "torus route length = torus distance + 1"
    QCheck2.Gen.(
      let coord = pair (int_range 0 4) (int_range 0 4) in
      pair coord coord)
    (fun ((sx, sy), (dx, dy)) ->
      let src = c sx sy and dst = c dx dy in
      List.length (Xy.route torus5 ~src ~dst)
      = Topology.distance torus5 src dst + 1)

let prop_route_steps_adjacent =
  qcheck "torus route steps are torus-adjacent"
    QCheck2.Gen.(
      let coord = pair (int_range 0 4) (int_range 0 4) in
      pair coord coord)
    (fun ((sx, sy), (dx, dy)) ->
      let route = Xy.route torus5 ~src:(c sx sy) ~dst:(c dx dy) in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            List.exists (Coord.equal b) (Topology.neighbors torus5 a)
            && ok rest
        | [ _ ] | [] -> true
      in
      ok route)

let test_flit_sim_on_torus () =
  (* The simulator agrees with the analytic model on torus paths too,
     including wraparound ones. *)
  let config = Flit_sim.config torus5 Latency.hermes_like in
  List.iter
    (fun ((sx, sy), (dx, dy), flits) ->
      let src = c sx sy and dst = c dx dy in
      let hops = Xy.hops torus5 ~src ~dst in
      let p = Packet.make ~id:0 ~src ~dst ~flits ~inject_time:0 in
      match (Flit_sim.run config [ p ]).Flit_sim.deliveries with
      | [ d ] ->
          Alcotest.(check int)
            (Printf.sprintf "(%d,%d)->(%d,%d) f=%d" sx sy dx dy flits)
            (Latency.packet_latency Latency.hermes_like ~hops ~flits)
            (Flit_sim.latency d)
      | _ -> Alcotest.fail "expected one delivery")
    [
      ((0, 0), (4, 0), 4);
      ((0, 0), (4, 4), 8);
      ((2, 2), (0, 3), 2);
      ((1, 0), (3, 4), 16);
    ]

let test_characterization_on_torus () =
  let config = Flit_sim.config torus5 Latency.hermes_like in
  let t = Noc.Characterize.measure_timing config in
  Alcotest.(check int) "routing recovered" 5 t.Noc.Characterize.routing_latency;
  Alcotest.(check int) "flow recovered" 2 t.Noc.Characterize.flow_latency;
  Alcotest.(check int) "exact" 0 t.Noc.Characterize.residual

let test_torus_system_plans () =
  (* A full planning run on a torus system, validated. *)
  let sys =
    Nocplan_core.System.build ~soc:(small_soc ())
      ~topology:(Topology.torus ~width:3 ~height:3)
      ~processors:[ Nocplan_proc.Processor.leon ~id:1 ]
      ~io_inputs:[ c 0 0 ] ~io_outputs:[ c 2 2 ] ()
  in
  let sched = Nocplan_core.Planner.schedule ~reuse:1 sys in
  match
    Nocplan_core.Schedule.validate sys
      ~application:Nocplan_proc.Processor.Bist ~power_limit:None ~reuse:1
      sched
  with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid: %a"
        (Fmt.list Nocplan_core.Schedule.pp_violation)
        vs

let test_torus_never_slower_than_mesh () =
  (* Same system on mesh and torus: wraparound shortens fills and never
     lengthens any path, so the baseline cannot get worse. *)
  let build topology =
    Nocplan_core.System.build ~soc:(small_soc ()) ~topology
      ~processors:[] ~io_inputs:[ c 0 0 ] ~io_outputs:[ c 2 2 ] ()
  in
  let mesh =
    Nocplan_core.Baseline.makespan (build (Topology.make ~width:3 ~height:3))
  in
  let torus =
    Nocplan_core.Baseline.makespan (build (Topology.torus ~width:3 ~height:3))
  in
  Alcotest.(check bool) "torus <= mesh" true (torus <= mesh)

let test_replay_on_torus () =
  let sys =
    Nocplan_core.Schedule_sim.downscale ~max_patterns:8
      (Nocplan_core.System.build ~soc:(small_soc ())
         ~topology:(Topology.torus ~width:3 ~height:3)
         ~processors:[ Nocplan_proc.Processor.leon ~id:1 ]
         ~io_inputs:[ c 0 0 ] ~io_outputs:[ c 2 2 ] ())
  in
  let sched = Nocplan_core.Planner.schedule ~reuse:1 sys in
  let r = Nocplan_core.Schedule_sim.replay sys sched in
  Alcotest.(check bool) "torus replay within schedule" true
    (r.Nocplan_core.Schedule_sim.worst_slack >= 0)

let suite =
  [
    Alcotest.test_case "distance wraps" `Quick test_distance_wraps;
    Alcotest.test_case "neighbors" `Quick test_neighbors_torus;
    Alcotest.test_case "degenerate axes" `Quick test_degenerate_axes;
    Alcotest.test_case "route takes the short way" `Quick
      test_route_takes_short_way;
    Alcotest.test_case "flit sim on torus" `Quick test_flit_sim_on_torus;
    Alcotest.test_case "characterization on torus" `Quick
      test_characterization_on_torus;
    Alcotest.test_case "torus system plans" `Quick test_torus_system_plans;
    Alcotest.test_case "torus never slower" `Quick
      test_torus_never_slower_than_mesh;
    Alcotest.test_case "replay on torus" `Quick test_replay_on_torus;
    prop_route_length_is_distance;
    prop_route_steps_adjacent;
  ]
