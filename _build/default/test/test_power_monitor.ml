open Util
module Power_monitor = Nocplan_core.Power_monitor

let test_no_limit_always_fits () =
  let m = Power_monitor.create ~limit:None in
  Alcotest.(check bool) "fits" true
    (Power_monitor.fits m ~start:0 ~finish:100 ~power:1e12)

let test_limit_enforced () =
  let m = Power_monitor.create ~limit:(Some 10.0) in
  Power_monitor.add m ~start:0 ~finish:50 ~power:6.0;
  Alcotest.(check bool) "second 6.0 does not fit concurrently" false
    (Power_monitor.fits m ~start:25 ~finish:75 ~power:6.0);
  Alcotest.(check bool) "fits after" true
    (Power_monitor.fits m ~start:50 ~finish:100 ~power:6.0);
  Power_monitor.add m ~start:50 ~finish:100 ~power:6.0;
  Alcotest.(check (float 1e-9)) "peak" 6.0 (Power_monitor.peak m)

let test_peak_of_overlaps () =
  let m = Power_monitor.create ~limit:None in
  Power_monitor.add m ~start:0 ~finish:10 ~power:1.0;
  Power_monitor.add m ~start:5 ~finish:15 ~power:2.0;
  Power_monitor.add m ~start:8 ~finish:9 ~power:4.0;
  Alcotest.(check (float 1e-9)) "stacked peak" 7.0 (Power_monitor.peak m);
  Alcotest.(check (float 1e-9)) "power at 6" 3.0 (Power_monitor.power_at m 6);
  Alcotest.(check (float 1e-9)) "power at 14" 2.0 (Power_monitor.power_at m 14);
  Alcotest.(check (float 1e-9)) "power at 20" 0.0 (Power_monitor.power_at m 20)

let test_half_open () =
  let m = Power_monitor.create ~limit:(Some 5.0) in
  Power_monitor.add m ~start:0 ~finish:10 ~power:5.0;
  (* The window ends exactly where the next begins: no overlap. *)
  Alcotest.(check bool) "adjacent fits" true
    (Power_monitor.fits m ~start:10 ~finish:20 ~power:5.0)

let test_add_over_limit_rejected () =
  let m = Power_monitor.create ~limit:(Some 1.0) in
  match Power_monitor.add m ~start:0 ~finish:10 ~power:2.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-limit add accepted"

let test_empty_window () =
  let m = Power_monitor.create ~limit:(Some 1.0) in
  Alcotest.(check bool) "empty window fits anything" true
    (Power_monitor.fits m ~start:5 ~finish:5 ~power:100.0)

let intervals_gen =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (triple (int_range 0 50) (int_range 1 30) (int_range 1 10)))

let prop_fits_respected_by_add =
  qcheck "greedy adds never exceed the limit" intervals_gen (fun intervals ->
      let limit = 12.0 in
      let m = Power_monitor.create ~limit:(Some limit) in
      List.iter
        (fun (s, d, p) ->
          let power = float_of_int p in
          if Power_monitor.fits m ~start:s ~finish:(s + d) ~power then
            Power_monitor.add m ~start:s ~finish:(s + d) ~power)
        intervals;
      Power_monitor.peak m <= limit +. 1e-6)

let prop_peak_is_max_of_power_at =
  qcheck "peak equals the max instantaneous power" intervals_gen
    (fun intervals ->
      let m = Power_monitor.create ~limit:None in
      List.iter
        (fun (s, d, p) ->
          Power_monitor.add m ~start:s ~finish:(s + d)
            ~power:(float_of_int p))
        intervals;
      let brute =
        List.fold_left
          (fun acc t -> Float.max acc (Power_monitor.power_at m t))
          0.0
          (List.init 100 Fun.id)
      in
      Float.abs (Power_monitor.peak m -. brute) < 1e-9)

let suite =
  [
    Alcotest.test_case "no limit" `Quick test_no_limit_always_fits;
    Alcotest.test_case "limit enforced" `Quick test_limit_enforced;
    Alcotest.test_case "peak of overlaps" `Quick test_peak_of_overlaps;
    Alcotest.test_case "half-open windows" `Quick test_half_open;
    Alcotest.test_case "over-limit add rejected" `Quick
      test_add_over_limit_rejected;
    Alcotest.test_case "empty window" `Quick test_empty_window;
    prop_fits_respected_by_add;
    prop_peak_is_max_of_power_at;
  ]
