open Util
module Core = Nocplan_core
module Priority = Core.Priority
module System = Core.System
module Coord = Nocplan_noc.Coord

let test_order_is_permutation () =
  let system = small_system () in
  let order = Priority.order system ~reuse:1 in
  Alcotest.(check (list int)) "permutation of module ids"
    (List.sort Stdlib.compare (System.module_ids system))
    (List.sort Stdlib.compare order)

let test_closer_first () =
  let system = small_system () in
  let order = Priority.order system ~reuse:0 in
  let distance id = Priority.distance_to_nearest_resource system ~reuse:0 id in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> distance a <= distance b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "distances non-decreasing along the order" true
    (nondecreasing order)

let test_distance_computation () =
  let system = small_system () in
  (* IO ports at (0,0) and (2,2) on a 3x3 mesh: every tile is within
     manhattan distance 2 of one of them. *)
  List.iter
    (fun id ->
      let d = Priority.distance_to_nearest_resource system ~reuse:0 id in
      Alcotest.(check bool) "within 2" true (d >= 0 && d <= 2))
    (System.module_ids system)

let test_reuse_extends_resources () =
  let system = small_system () in
  (* Adding processor tiles can only shrink distances. *)
  List.iter
    (fun id ->
      let d0 = Priority.distance_to_nearest_resource system ~reuse:0 id in
      let d1 = Priority.distance_to_nearest_resource system ~reuse:1 id in
      Alcotest.(check bool) "more resources, closer or equal" true (d1 <= d0))
    (System.module_ids system)

let prop_ties_broken_by_volume =
  qcheck ~count:30 "equal distance: larger test volume first" system_gen
    (fun system ->
      let reuse = List.length system.Core.System.processors in
      let order = Priority.order system ~reuse in
      let dist id = Priority.distance_to_nearest_resource system ~reuse id in
      let volume id =
        Nocplan_itc02.Module_def.test_bits
          (Nocplan_itc02.Soc.find system.Core.System.soc id)
      in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            (dist a < dist b || (dist a = dist b && volume a >= volume b))
            && ok rest
        | [ _ ] | [] -> true
      in
      ok order)

let suite =
  [
    Alcotest.test_case "order is a permutation" `Quick test_order_is_permutation;
    Alcotest.test_case "closer cores first" `Quick test_closer_first;
    Alcotest.test_case "distance values" `Quick test_distance_computation;
    Alcotest.test_case "reuse shrinks distances" `Quick
      test_reuse_extends_resources;
    prop_ties_broken_by_volume;
  ]
