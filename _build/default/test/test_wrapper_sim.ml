(* Bit-level wrapper scan simulation: the timing model, executed. *)

open Util
module Wrapper = Nocplan_itc02.Wrapper
module Wrapper_sim = Nocplan_itc02.Wrapper_sim
module Module_def = Nocplan_itc02.Module_def
module Rng = Nocplan_itc02.Data_gen.Rng

let module_fixture =
  Module_def.make ~id:1 ~name:"w" ~inputs:5 ~outputs:3
    ~scan_chains:[ 7; 4 ] ~patterns:1 ()

let test_cycle_counts_match_design () =
  let width = 4 in
  let design = Wrapper.design ~width module_fixture in
  let sim = Wrapper_sim.create (Wrapper.layout ~width module_fixture) in
  Alcotest.(check int) "scan-in cycles" design.Wrapper.scan_in_max
    (Wrapper_sim.shift_in_cycles sim);
  Alcotest.(check int) "scan-out cycles" design.Wrapper.scan_out_max
    (Wrapper_sim.shift_out_cycles sim);
  Alcotest.(check int) "stimulus bits"
    (Module_def.scan_cells module_fixture + module_fixture.Module_def.inputs)
    (Wrapper_sim.in_cells sim)

let random_bits rng n = List.init n (fun _ -> Rng.bool rng 0.5)

let test_load_recovers_pattern () =
  let sim = Wrapper_sim.create (Wrapper.layout ~width:4 module_fixture) in
  let rng = Rng.create 11L in
  let pattern = random_bits rng (Wrapper_sim.in_cells sim) in
  Wrapper_sim.load_pattern sim pattern;
  Alcotest.(check (list bool)) "chains hold the pattern" pattern
    (Wrapper_sim.stimulus sim)

let test_capture_shift_out_roundtrip () =
  let sim = Wrapper_sim.create (Wrapper.layout ~width:4 module_fixture) in
  let rng = Rng.create 12L in
  let response = random_bits rng (Wrapper_sim.out_cells sim) in
  Wrapper_sim.capture sim ~response;
  Alcotest.(check (list bool)) "response recovered" response
    (Wrapper_sim.shift_out_all sim)

let test_narrow_flit_rejected () =
  let sim = Wrapper_sim.create (Wrapper.layout ~width:4 module_fixture) in
  match Wrapper_sim.shift_in sim ~flit:[ true ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "narrow flit accepted"

let test_wrong_sizes_rejected () =
  let sim = Wrapper_sim.create (Wrapper.layout ~width:4 module_fixture) in
  (match Wrapper_sim.load_pattern sim [ true ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "short pattern accepted");
  match Wrapper_sim.capture sim ~response:[ true ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "short response accepted"

let prop_roundtrip_random_modules =
  qcheck ~count:40 "load/stimulus and capture/shift-out round-trip"
    QCheck2.Gen.(pair (int_range 1 16) module_gen)
    (fun (width, m) ->
      let layout = Wrapper.layout ~width m in
      let sim = Wrapper_sim.create layout in
      let rng = Rng.create 77L in
      let pattern = random_bits rng (Wrapper_sim.in_cells sim) in
      let response = random_bits rng (Wrapper_sim.out_cells sim) in
      (if pattern <> [] then Wrapper_sim.load_pattern sim pattern);
      (if response <> [] then Wrapper_sim.capture sim ~response);
      (pattern = [] || Wrapper_sim.stimulus sim = pattern)
      && (response = [] || Wrapper_sim.shift_out_all sim = response))

let prop_layout_maxima_match_design =
  qcheck "layout maxima equal the design's si/so"
    QCheck2.Gen.(pair (int_range 1 24) module_gen)
    (fun (width, m) ->
      let design = Wrapper.design ~width m in
      let layout = Wrapper.layout ~width m in
      List.fold_left max 0 layout.Wrapper.in_lengths
      = design.Wrapper.scan_in_max
      && List.fold_left max 0 layout.Wrapper.out_lengths
         = design.Wrapper.scan_out_max)

let prop_layout_conserves_cells =
  qcheck "layout conserves total cells"
    QCheck2.Gen.(pair (int_range 1 24) module_gen)
    (fun (width, m) ->
      let layout = Wrapper.layout ~width m in
      List.fold_left ( + ) 0 layout.Wrapper.in_lengths
      = Module_def.scan_cells m + m.Module_def.inputs + m.Module_def.bidirs
      && List.fold_left ( + ) 0 layout.Wrapper.out_lengths
         = Module_def.scan_cells m + m.Module_def.outputs
           + m.Module_def.bidirs)

let suite =
  [
    Alcotest.test_case "cycle counts match the design" `Quick
      test_cycle_counts_match_design;
    Alcotest.test_case "load recovers the pattern" `Quick
      test_load_recovers_pattern;
    Alcotest.test_case "capture/shift-out round-trip" `Quick
      test_capture_shift_out_roundtrip;
    Alcotest.test_case "narrow flit rejected" `Quick test_narrow_flit_rejected;
    Alcotest.test_case "wrong sizes rejected" `Quick test_wrong_sizes_rejected;
    prop_roundtrip_random_modules;
    prop_layout_maxima_match_design;
    prop_layout_conserves_cells;
  ]
