open Util
module Core = Nocplan_core
module Placement = Core.Placement
module Topology = Nocplan_noc.Topology
module Coord = Nocplan_noc.Coord

let topo = Topology.make ~width:3 ~height:3

let test_of_assoc () =
  let p =
    Placement.of_assoc topo
      [ (1, Coord.make ~x:0 ~y:0); (2, Coord.make ~x:2 ~y:2) ]
  in
  Alcotest.(check bool) "coord" true
    (Coord.equal (Placement.coord p 1) (Coord.make ~x:0 ~y:0));
  Alcotest.(check bool) "mem" true (Placement.mem p 2);
  Alcotest.(check bool) "not mem" false (Placement.mem p 3);
  Alcotest.(check (list int)) "ids" [ 1; 2 ] (Placement.module_ids p)

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Placement.of_assoc topo []);
  expect_invalid (fun () ->
      Placement.of_assoc topo [ (1, Coord.make ~x:5 ~y:0) ]);
  expect_invalid (fun () ->
      Placement.of_assoc topo
        [ (1, Coord.make ~x:0 ~y:0); (1, Coord.make ~x:1 ~y:0) ])

let test_sharing_allowed () =
  let tile = Coord.make ~x:1 ~y:1 in
  let p = Placement.of_assoc topo [ (1, tile); (2, tile) ] in
  Alcotest.(check (list int)) "both modules on the tile" [ 1; 2 ]
    (List.sort Stdlib.compare (Placement.modules_at p tile))

let test_spread_avoids_pins () =
  let pin = Coord.make ~x:1 ~y:1 in
  let p = Placement.spread topo ~pinned:[ (100, pin) ] [ 1; 2; 3; 4 ] in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "module %d off the pinned tile" id)
        false
        (Coord.equal (Placement.coord p id) pin))
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "pin placed" true (Coord.equal (Placement.coord p 100) pin)

let test_spread_wraps () =
  (* More modules than free tiles: wraps around, sharing tiles. *)
  let small = Topology.make ~width:2 ~height:1 in
  let p = Placement.spread small ~pinned:[] [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "all placed" 5 (List.length (Placement.module_ids p))

let test_spread_all_pinned () =
  (* Degenerate: every tile pinned; free modules still get placed. *)
  let small = Topology.make ~width:1 ~height:1 in
  let tile = Coord.make ~x:0 ~y:0 in
  let p = Placement.spread small ~pinned:[ (9, tile) ] [ 1 ] in
  Alcotest.(check bool) "placed on the only tile" true
    (Coord.equal (Placement.coord p 1) tile)

let prop_spread_places_everything =
  qcheck "spread places every id in bounds"
    QCheck2.Gen.(pair topology_gen (int_range 1 30))
    (fun (topo, n) ->
      let ids = List.init n (fun i -> i + 1) in
      let p = Placement.spread topo ~pinned:[] ids in
      List.for_all
        (fun id -> Topology.in_bounds topo (Placement.coord p id))
        ids)

let suite =
  [
    Alcotest.test_case "of_assoc" `Quick test_of_assoc;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "tile sharing" `Quick test_sharing_allowed;
    Alcotest.test_case "spread avoids pins" `Quick test_spread_avoids_pins;
    Alcotest.test_case "spread wraps" `Quick test_spread_wraps;
    Alcotest.test_case "spread with all tiles pinned" `Quick
      test_spread_all_pinned;
    prop_spread_places_everything;
  ]
