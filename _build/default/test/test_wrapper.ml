open Util
module Module_def = Nocplan_itc02.Module_def
module Wrapper = Nocplan_itc02.Wrapper

let design width m = Wrapper.design ~width m

let test_combinational_core () =
  (* No scan: wrapper chains carry only functional cells; with width 4
     and 10 inputs the longest scan-in chain holds ceil(10/4) = 3. *)
  let m =
    Module_def.make ~id:1 ~name:"c" ~inputs:10 ~outputs:7 ~scan_chains:[]
      ~patterns:5 ()
  in
  let w = design 4 m in
  Alcotest.(check int) "si" 3 w.Wrapper.scan_in_max;
  Alcotest.(check int) "so" 2 w.Wrapper.scan_out_max

let test_single_chain_dominates () =
  (* One long chain cannot be split: si >= its length. *)
  let m =
    Module_def.make ~id:1 ~name:"s" ~inputs:0 ~outputs:0 ~scan_chains:[ 100 ]
      ~patterns:5 ()
  in
  let w = design 8 m in
  Alcotest.(check int) "si equals the chain" 100 w.Wrapper.scan_in_max;
  Alcotest.(check int) "so equals the chain" 100 w.Wrapper.scan_out_max

let test_width_one () =
  (* Width 1: everything serializes: si = cells + inputs. *)
  let m =
    Module_def.make ~id:1 ~name:"s" ~inputs:5 ~outputs:3
      ~scan_chains:[ 10; 10 ] ~patterns:2 ()
  in
  let w = design 1 m in
  Alcotest.(check int) "si" 25 w.Wrapper.scan_in_max;
  Alcotest.(check int) "so" 23 w.Wrapper.scan_out_max

let test_cycles_formulas () =
  let m =
    Module_def.make ~id:1 ~name:"s" ~inputs:0 ~outputs:0 ~scan_chains:[ 8; 6 ]
      ~patterns:10 ()
  in
  let w = design 2 m in
  (* Scan chains shift both in and out: si = so = 8 under LPT. *)
  Alcotest.(check int) "pattern cycles" (8 + 1) (Wrapper.pattern_cycles w);
  Alcotest.(check int) "test cycles" (((1 + 8) * 10) + 8)
    (Wrapper.test_cycles w ~patterns:10)

let bidir_counted_both_sides () =
  let m =
    Module_def.make ~bidirs:4 ~id:1 ~name:"b" ~inputs:0 ~outputs:0
      ~scan_chains:[] ~patterns:1 ()
  in
  let w = design 2 m in
  Alcotest.(check int) "si includes bidirs" 2 w.Wrapper.scan_in_max;
  Alcotest.(check int) "so includes bidirs" 2 w.Wrapper.scan_out_max

(* LPT properties *)

let cells_and_inputs (m : Module_def.t) =
  Module_def.scan_cells m + m.Module_def.inputs + m.Module_def.bidirs

let prop_si_bounds =
  qcheck "si between load bound and single-bin bound"
    QCheck2.Gen.(pair (int_range 1 40) module_gen)
    (fun (width, m) ->
      let w = design width m in
      let total = cells_and_inputs m in
      let longest_chain =
        List.fold_left max 0 m.Module_def.scan_chains
      in
      let lower = max longest_chain ((total + width - 1) / width) in
      w.Wrapper.scan_in_max >= lower && w.Wrapper.scan_in_max <= total)

let prop_wider_never_worse =
  qcheck "si is non-increasing in width"
    QCheck2.Gen.(pair (int_range 1 20) module_gen)
    (fun (width, m) ->
      let a = design width m in
      let b = design (width + 1) m in
      b.Wrapper.scan_in_max <= a.Wrapper.scan_in_max
      && b.Wrapper.scan_out_max <= a.Wrapper.scan_out_max)

let prop_lpt_quality =
  (* LPT is a 4/3-approximation of the optimal makespan; with unit
     cells appended the bound still holds against the trivial lower
     bound. *)
  qcheck "LPT within 4/3 + chain of the load lower bound"
    QCheck2.Gen.(pair (int_range 1 16) module_gen)
    (fun (width, m) ->
      let w = design width m in
      let total = cells_and_inputs m in
      let longest_chain = List.fold_left max 0 m.Module_def.scan_chains in
      let lower =
        max longest_chain ((total + width - 1) / width)
      in
      float_of_int w.Wrapper.scan_in_max
      <= (4.0 /. 3.0 *. float_of_int lower) +. float_of_int longest_chain +. 1.0)

(* Brute-force optimal partition of small chain sets: every assignment
   of chains to bins, then unit cells greedily (optimal for units given
   fixed chain loads is spreading them evenly over the bins). *)
let optimal_si ~bins ~chains ~cells =
  let best = ref max_int in
  let loads = Array.make bins 0 in
  let rec assign = function
    | [] ->
        (* Distribute unit cells to minimize the maximum: fill bins up
           to a common level.  Binary search on the level. *)
        let feasible level =
          let capacity =
            Array.fold_left
              (fun acc load -> acc + max 0 (level - load))
              0 loads
          in
          capacity >= cells && Array.for_all (fun load -> load <= level) loads
        in
        let max_load = Array.fold_left max 0 loads in
        let rec search lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if feasible mid then search lo mid else search (mid + 1) hi
        in
        let level = search max_load (max_load + cells) in
        if level < !best then best := level
    | chain :: rest ->
        for b = 0 to bins - 1 do
          loads.(b) <- loads.(b) + chain;
          assign rest;
          loads.(b) <- loads.(b) - chain
        done
  in
  assign (List.sort (fun a b -> Stdlib.compare b a) chains);
  !best

let prop_lpt_vs_bruteforce =
  (* On instances small enough to solve exactly, LPT is within the
     classical 4/3 factor of the true optimum (usually equal). *)
  qcheck ~count:60 "LPT within 4/3 of the brute-force optimum"
    QCheck2.Gen.(
      triple (int_range 1 4)
        (list_size (int_range 0 5) (int_range 1 60))
        (int_range 0 40))
    (fun (bins, chains, cells) ->
      let m =
        Module_def.make ~id:1 ~name:"bf" ~inputs:cells ~outputs:0
          ~scan_chains:chains ~patterns:1 ()
      in
      let w = design bins m in
      let optimal = optimal_si ~bins ~chains ~cells in
      (* both sides zero when there is nothing to place *)
      (optimal = 0 && w.Wrapper.scan_in_max = 0)
      || float_of_int w.Wrapper.scan_in_max
         <= (4.0 /. 3.0 *. float_of_int optimal) +. 1.0)

let prop_pattern_cycles_consistent =
  qcheck "test_cycles ~ patterns * pattern_cycles"
    QCheck2.Gen.(pair (int_range 1 16) module_gen)
    (fun (width, m) ->
      let w = design width m in
      let p = m.Module_def.patterns in
      let total = Wrapper.test_cycles w ~patterns:p in
      let per = Wrapper.pattern_cycles w in
      total >= ((per - 1) * p) && total <= (per * p) + per)

let suite =
  [
    Alcotest.test_case "combinational core" `Quick test_combinational_core;
    Alcotest.test_case "single chain dominates" `Quick
      test_single_chain_dominates;
    Alcotest.test_case "width one serializes" `Quick test_width_one;
    Alcotest.test_case "cycle formulas" `Quick test_cycles_formulas;
    Alcotest.test_case "bidirs on both sides" `Quick bidir_counted_both_sides;
    prop_si_bounds;
    prop_wider_never_worse;
    prop_lpt_quality;
    prop_lpt_vs_bruteforce;
    prop_pattern_cycles_consistent;
  ]
