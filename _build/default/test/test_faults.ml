(* Fault-aware planning: tests must route around failed NoC channels. *)

open Util
module Core = Nocplan_core
module Test_access = Core.Test_access
module Resource = Core.Resource
module System = Core.System
module Schedule = Core.Schedule
module Scheduler = Core.Scheduler
module Link = Nocplan_noc.Link
module Coord = Nocplan_noc.Coord
module Xy = Nocplan_noc.Xy_routing
module Proc = Nocplan_proc

let c x y = Coord.make ~x ~y
let mesh3 = Nocplan_noc.Topology.make ~width:3 ~height:3

let test_route_feasible_basics () =
  let sys = small_system () in
  let ein = Resource.External_in (List.hd sys.System.io_inputs) in
  let eout = Resource.External_out (List.hd sys.System.io_outputs) in
  (* No failures: everything routes. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "feasible" true
        (Test_access.route_feasible sys ~module_id:id ~source:ein ~sink:eout))
    (System.module_ids sys)

let test_failed_link_blocks_path () =
  let sys = small_system () in
  let ein = Resource.External_in (List.hd sys.System.io_inputs) in
  let eout = Resource.External_out (List.hd sys.System.io_outputs) in
  (* Fail a link on the stimulus path of module 2 and check the pair
     becomes infeasible for exactly the modules whose path uses it. *)
  let cut = System.coord_of_module sys 2 in
  let stim_links = Xy.links mesh3 ~src:(c 0 0) ~dst:cut in
  let victim =
    List.find (function Link.Channel _ -> true | _ -> false) stim_links
  in
  let broken = System.with_failed_links sys [ victim ] in
  Alcotest.(check bool) "module 2 blocked" false
    (Test_access.route_feasible broken ~module_id:2 ~source:ein ~sink:eout);
  (* Modules whose paths avoid the victim stay feasible. *)
  let unaffected =
    List.filter
      (fun id ->
        let cut = System.coord_of_module broken id in
        not
          (List.exists (Link.equal victim)
             (Xy.links mesh3 ~src:(c 0 0) ~dst:cut
             @ Xy.links mesh3 ~src:cut ~dst:(c 2 2))))
      (System.module_ids broken)
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "module %d unaffected" id)
        true
        (Test_access.route_feasible broken ~module_id:id ~source:ein
           ~sink:eout))
    unaffected

let test_scheduler_routes_around_fault () =
  (* Break the channel (1,0)->(2,0): it carries the external response
     path of the west cores and the stimulus path to (2,0).  The Leon
     at (1,1) remains reachable and becomes the detour source/sink, so
     a complete plan still exists — the scheduler must find it. *)
  let sys = small_system () in
  let victim = Link.channel (c 1 0) (c 2 0) in
  let broken = System.with_failed_links sys [ victim ] in
  let sched = Scheduler.run broken (Scheduler.config ~reuse:1 ()) in
  (match
     Schedule.validate broken ~application:Proc.Processor.Bist
       ~power_limit:None ~reuse:1 sched
   with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid: %a" (Fmt.list Schedule.pp_violation) vs);
  (* And the faulty link is really avoided. *)
  List.iter
    (fun (e : Schedule.entry) ->
      Alcotest.(check bool) "victim link unused" false
        (List.exists (Link.equal victim) e.Schedule.links))
    sched.Schedule.entries

let test_unschedulable_when_isolated () =
  (* Fail every channel around the single external input port with no
     processors: nothing can be tested. *)
  let sys = small_system ~processors:[] () in
  let isolating =
    [ Link.channel (c 0 0) (c 1 0); Link.channel (c 0 0) (c 0 1) ]
  in
  let broken = System.with_failed_links sys isolating in
  match Scheduler.run broken (Scheduler.config ~reuse:0 ()) with
  | exception Scheduler.Unschedulable _ -> ()
  | _ ->
      (* Cores co-located with the port remain testable; only fail if
         every module could still be tested, which would mean the
         fault model did nothing. *)
      let blocked =
        List.filter
          (fun id ->
            not
              (Test_access.route_feasible broken ~module_id:id
                 ~source:(Resource.External_in (c 0 0))
                 ~sink:(Resource.External_out (c 2 2))))
          (System.module_ids broken)
      in
      Alcotest.(check bool) "some module is blocked" true (blocked <> [])

let test_validator_catches_failed_link_use () =
  let sys = small_system () in
  let sched = Scheduler.run sys (Scheduler.config ~reuse:1 ()) in
  (* Declare a link faulty after the fact: the old schedule must now
     fail validation. *)
  let used_link =
    List.concat_map (fun (e : Schedule.entry) -> e.Schedule.links)
      sched.Schedule.entries
    |> List.find (function Link.Channel _ -> true | _ -> false)
  in
  let broken = System.with_failed_links sys [ used_link ] in
  match
    Schedule.validate broken ~application:Proc.Processor.Bist
      ~power_limit:None ~reuse:1 sched
  with
  | Ok () -> Alcotest.fail "failed-link use not caught"
  | Error vs ->
      Alcotest.(check bool) "Uses_failed_link reported" true
        (List.exists
           (function Schedule.Uses_failed_link _ -> true | _ -> false)
           vs)

let test_with_failed_links_accumulates () =
  let sys = small_system () in
  let l1 = Link.channel (c 0 0) (c 1 0) in
  let l2 = Link.channel (c 1 0) (c 2 0) in
  let broken = System.with_failed_links (System.with_failed_links sys [ l1 ]) [ l2 ] in
  Alcotest.(check int) "two failed links" 2
    (Link.Set.cardinal broken.System.failed_links)

let prop_fault_free_systems_unaffected =
  qcheck ~count:20 "no failed links: feasibility = pair validity" system_gen
    (fun sys ->
      let endpoints =
        Resource.all_endpoints sys ~reuse:(List.length sys.System.processors)
      in
      List.for_all
        (fun id ->
          List.for_all
            (fun source ->
              List.for_all
                (fun sink ->
                  Test_access.feasible sys ~application:Proc.Processor.Bist
                    ~module_id:id ~source ~sink
                  = Resource.valid_pair ~source ~sink)
                endpoints)
            endpoints)
        (System.module_ids sys))

let suite =
  [
    Alcotest.test_case "route feasibility basics" `Quick
      test_route_feasible_basics;
    Alcotest.test_case "failed link blocks its paths" `Quick
      test_failed_link_blocks_path;
    Alcotest.test_case "scheduler routes around faults" `Quick
      test_scheduler_routes_around_fault;
    Alcotest.test_case "isolation detected" `Quick
      test_unschedulable_when_isolated;
    Alcotest.test_case "validator catches failed-link use" `Quick
      test_validator_catches_failed_link_use;
    Alcotest.test_case "failures accumulate" `Quick
      test_with_failed_links_accumulates;
    prop_fault_free_systems_unaffected;
  ]
